#!/usr/bin/env python3
"""Outbreak monitoring: where to place sensors in a contact network.

The independent cascade model also describes epidemic spread, and influence
maximization has a dual reading: the seed set that maximises expected spread
is also the set of individuals whose infection would be most damaging — the
natural targets for vaccination or monitoring (cf. the outbreak-detection
motivation of CELF).  This example

1. builds a contact network with an explicit core-whisker structure
   (a dense community plus tree-like peripheries),
2. compares transmission regimes (low vs high infectiousness via uniform
   cascade probabilities),
3. selects monitoring targets with the Snapshot approach — the paper's
   recommendation for small, low-probability networks — and
4. estimates how much of the expected outbreak the monitored set covers.

Run with::

    python examples/outbreak_detection.py
"""

from __future__ import annotations

from repro import RRPoolOracle, SnapshotEstimator, greedy_maximize
from repro.diffusion import RandomSource, activation_probabilities
from repro.graphs.generators import core_whisker
from repro.graphs.probability import uniform_cascade


def main() -> None:
    contact_network = core_whisker(
        core_size=150, num_whiskers=40, whisker_length=4, core_degree=6, seed=11
    )
    print(
        f"contact network: n={contact_network.num_vertices}, "
        f"m={contact_network.num_edges} (core of 150 + 40 whiskers)\n"
    )

    for regime, probability in (("low transmission", 0.02), ("high transmission", 0.15)):
        graph = uniform_cascade(contact_network, probability)
        oracle = RRPoolOracle(graph, pool_size=20_000, seed=5)

        # Snapshot-based greedy: the paper's preferred approach for small,
        # low-probability networks (Section 6).
        plan = greedy_maximize(graph, 5, SnapshotEstimator(200), seed=3)
        monitored = plan.seed_set
        expected_outbreak = oracle.spread(monitored)

        # How likely is each monitored individual to be reached if the
        # outbreak instead starts at the single most influential vertex?
        worst_origin = oracle.top_vertices(1)[0][0]
        reach_probabilities = activation_probabilities(
            graph, (worst_origin,), 400, RandomSource(8)
        )
        coverage = sum(reach_probabilities[v] for v in monitored)

        print(f"{regime} (p = {probability}):")
        print(f"  monitored individuals          : {monitored}")
        print(f"  expected outbreak if they seed : {expected_outbreak:.1f} people")
        print(f"  worst-case origin              : vertex {worst_origin}")
        print(
            "  expected monitored hits from the worst-case origin: "
            f"{coverage:.2f} of {len(monitored)} sensors\n"
        )


if __name__ == "__main__":
    main()
