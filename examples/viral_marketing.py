#!/usr/bin/env python3
"""Viral-marketing campaign planning on a follower network.

The motivating application of influence maximization (Section 1): a company
wants to give free samples to a small number of customers so that
word-of-mouth reaches as much of the network as possible.  This example

1. builds a scale-free follower network (the Wiki-Vote-style proxy),
2. assigns in-degree weighted influence probabilities (each user divides
   their attention over the accounts they follow),
3. sweeps the campaign budget k, comparing RIS-selected seeds against the
   "just pick the most-followed accounts" heuristic, and
4. reports the expected reach of each plan plus the marginal value of each
   additional seed.

Run with::

    python examples/viral_marketing.py
"""

from __future__ import annotations

from repro import (
    DegreeEstimator,
    RISEstimator,
    RRPoolOracle,
    assign_probabilities,
    greedy_maximize,
    load_dataset,
)


def main() -> None:
    # A ~1,000-user follower network with hub accounts.
    graph = assign_probabilities(
        load_dataset("wiki_vote", scale=0.4, seed=7), "iwc"
    )
    oracle = RRPoolOracle(graph, pool_size=30_000, seed=1)
    print(
        f"follower network: n={graph.num_vertices}, m={graph.num_edges}, "
        f"expected live edges per cascade ~ {graph.expected_live_edges:.0f}"
    )

    budgets = (1, 2, 4, 8, 16)
    print("\nexpected reach by campaign budget (number of seeded users):")
    print(f"{'k':>4} | {'RIS greedy':>12} | {'top-degree':>12} | {'uplift':>7}")
    previous_reach = 0.0
    for k in budgets:
        ris_plan = greedy_maximize(graph, k, RISEstimator(8192), seed=99)
        degree_plan = greedy_maximize(graph, k, DegreeEstimator(), seed=99)
        ris_reach = oracle.spread(ris_plan.seed_set)
        degree_reach = oracle.spread(degree_plan.seed_set)
        uplift = (ris_reach - degree_reach) / degree_reach * 100 if degree_reach else 0.0
        print(f"{k:>4} | {ris_reach:>12.1f} | {degree_reach:>12.1f} | {uplift:>6.1f}%")
        previous_reach = ris_reach

    # Diminishing returns: the marginal reach of each extra seed shrinks, the
    # practical face of submodularity.
    print("\nmarginal reach of each seed in the k=16 RIS plan:")
    plan = greedy_maximize(graph, 16, RISEstimator(8192), seed=99)
    covered: tuple[int, ...] = ()
    last = 0.0
    for position, seed in enumerate(plan.seeds, start=1):
        covered = covered + (seed,)
        reach = oracle.spread(covered)
        print(f"  seed #{position:2d} (vertex {seed:4d}): +{reach - last:6.2f} "
              f"(cumulative {reach:7.1f})")
        last = reach
    del previous_reach


if __name__ == "__main__":
    main()
