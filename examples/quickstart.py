#!/usr/bin/env python3
"""Quickstart: pick influential seeds in a social network with each approach.

This example loads the karate-club network, assigns uniform influence
probabilities, runs the greedy framework with each of the paper's three
estimators (Oneshot, Snapshot, RIS), and scores every solution with a shared
RR-pool oracle so the numbers are directly comparable.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    OneshotEstimator,
    RISEstimator,
    RRPoolOracle,
    SnapshotEstimator,
    assign_probabilities,
    greedy_maximize,
    load_dataset,
)


def main() -> None:
    # 1. Build the instance: Zachary's karate club under the uniform cascade.
    graph = assign_probabilities(load_dataset("karate"), "uc0.1")
    print(f"instance: {graph.name} with n={graph.num_vertices}, m={graph.num_edges}")

    # 2. Build a shared ground-truth oracle (the paper uses a 10^7 RR-set pool;
    #    50k is plenty for a 34-vertex graph).
    oracle = RRPoolOracle(graph, pool_size=50_000, seed=0)
    print(f"oracle: {oracle.pool_size} RR sets, 99% CI half-width "
          f"{oracle.confidence_radius():.3f}\n")

    # 3. Run each approach with a sample number in the regime the paper finds
    #    sufficient for near-optimal solutions on this instance (Table 5).
    estimators = {
        "Oneshot (beta=256)": OneshotEstimator(256),
        "Snapshot (tau=128)": SnapshotEstimator(128),
        "RIS (theta=4096)": RISEstimator(4096),
    }
    k = 4
    print(f"selecting k={k} seeds with each approach:")
    for label, estimator in estimators.items():
        result = greedy_maximize(graph, k, estimator, seed=2024)
        spread = oracle.spread(result.seed_set)
        cost = result.cost
        print(
            f"  {label:22s} seeds={result.seed_set}  "
            f"influence={spread:6.2f}  "
            f"traversal=(v={cost.traversal.vertices:,}, e={cost.traversal.edges:,})  "
            f"stored=(v={cost.sample_size.vertices:,}, e={cost.sample_size.edges:,})"
        )

    # 4. Compare against the most influential single vertices for context.
    print("\ntop-3 single vertices by influence:")
    for vertex, value in oracle.top_vertices(3):
        print(f"  vertex {vertex:2d}: Inf = {value:.2f}")


if __name__ == "__main__":
    main()
