#!/usr/bin/env python3
"""A miniature version of the paper's experimental study on one instance.

This example reproduces the paper's methodology end to end on Karate (uc0.1):

1. sweep the sample number of Oneshot, Snapshot, and RIS,
2. run repeated trials per grid point and build the seed-set distribution,
3. report the Shannon-entropy decay (Figure 1), the influence-distribution
   statistics (Figure 4), the least sample number for near-optimal solutions
   (Table 5), and the comparable number ratios between approaches
   (Tables 6-7).

Run with::

    python examples/solution_distribution_study.py
"""

from __future__ import annotations

from repro import RRPoolOracle, assign_probabilities, load_dataset, powers_of_two
from repro.experiments import (
    comparable_ratio_curve,
    estimator_factory,
    format_multi_series,
    format_table,
    least_sample_number,
    reference_spread_from_sweep,
    sweep_sample_numbers,
)

TRIALS = 40
GRIDS = {
    "oneshot": powers_of_two(7),
    "snapshot": powers_of_two(7),
    "ris": powers_of_two(12, min_exponent=2),
}


def main() -> None:
    graph = assign_probabilities(load_dataset("karate"), "uc0.1")
    oracle = RRPoolOracle(graph, pool_size=50_000, seed=3)
    print(f"instance: {graph.name}, k=1, trials per grid point: {TRIALS}\n")

    sweeps = {}
    for approach, grid in GRIDS.items():
        sweeps[approach] = sweep_sample_numbers(
            graph, 1, estimator_factory(approach), grid,
            num_trials=TRIALS, oracle=oracle, experiment_seed=2020,
        )

    # Figure 1: entropy decay.
    print(format_multi_series(
        {approach: sweep.entropies() for approach, sweep in sweeps.items()},
        title="Entropy of the seed-set distribution (Figure 1 methodology)",
    ))

    # Figure 4: influence distribution statistics for RIS.
    ris_rows = []
    for samples, dist in sweeps["ris"].influence_distributions().items():
        row = {"theta": samples}
        row.update(dist.as_row())
        ris_rows.append(row)
    print()
    print(format_table(
        ris_rows,
        columns=["theta", "mean", "std", "p1", "median", "p99"],
        title="RIS influence distribution by sample number (Figure 4 methodology)",
    ))

    # Table 5: least sample number for near-optimal solutions.
    reference = reference_spread_from_sweep(sweeps["ris"])
    table5_rows = []
    for approach, sweep in sweeps.items():
        result = least_sample_number(sweep, reference, quality=0.9, probability=0.95)
        table5_rows.append(result.as_row())
    print()
    print(format_table(
        table5_rows,
        title=f"Least sample number for 0.9-near-optimal solutions (reference spread {reference:.2f})",
    ))

    # Tables 6-7: comparable ratios against Snapshot.
    comparison_rows = []
    for target in ("oneshot", "ris"):
        curve = comparable_ratio_curve(sweeps["snapshot"], sweeps[target])
        comparison_rows.append(
            {
                "comparison": f"{target} vs snapshot",
                "median_number_ratio": curve.median_number_ratio(),
                "median_size_ratio": curve.median_size_ratio(),
            }
        )
    print()
    print(format_table(
        comparison_rows,
        title="Comparable ratios relative to Snapshot (Tables 6-7 methodology)",
    ))


if __name__ == "__main__":
    main()
