#!/usr/bin/env python3
"""A miniature version of the paper's experimental study on one instance.

This example reproduces the paper's methodology end to end on Karate (uc0.1),
driven entirely by the declarative spec API:

1. load the canonical sweep template ``specs/solution_distribution_study_ris.json``
   and derive one :class:`repro.SweepSpec` per approach from it,
2. execute each through the single ``repro.run()`` entry point,
3. report the Shannon-entropy decay (Figure 1), the influence-distribution
   statistics (Figure 4), the least sample number for near-optimal solutions
   (Table 5), and the comparable number ratios between approaches
   (Tables 6-7).

Every run shares the same ``(graph, pool_size, oracle seed)`` triple, so all
influence scores come from byte-identical RR pools and remain comparable
across approaches — the paper's shared-oracle protocol, now pinned by the
spec document instead of hand-threaded keyword arguments.

Run with::

    python examples/solution_distribution_study.py
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import repro
from repro.experiments import (
    comparable_ratio_curve,
    format_multi_series,
    format_table,
    least_sample_number,
    reference_spread_from_sweep,
)

TEMPLATE = Path(__file__).resolve().parent / "specs" / "solution_distribution_study_ris.json"


def build_specs() -> dict[str, repro.SweepSpec]:
    """One sweep spec per approach, all derived from the canonical template."""
    ris = repro.load_spec(TEMPLATE)
    # The forward approaches converge at far smaller sample numbers, so their
    # grids stop at 2^7 (the template's RIS grid spans 2^2 .. 2^12).
    oneshot = dataclasses.replace(ris, approach="oneshot", min_exponent=0, max_exponent=7)
    snapshot = dataclasses.replace(ris, approach="snapshot", min_exponent=0, max_exponent=7)
    return {"oneshot": oneshot, "snapshot": snapshot, "ris": ris}


def main() -> None:
    specs = build_specs()
    template = specs["ris"]
    print(
        f"instance: {template.graph.dataset} ({template.graph.probability}), "
        f"k={template.k}, trials per grid point: {template.num_trials}\n"
    )

    results = {approach: repro.run(spec) for approach, spec in specs.items()}
    sweeps = {approach: result.sweep for approach, result in results.items()}

    # Figure 1: entropy decay.
    print(format_multi_series(
        {approach: sweep.entropies() for approach, sweep in sweeps.items()},
        title="Entropy of the seed-set distribution (Figure 1 methodology)",
    ))

    # Figure 4: influence distribution statistics for RIS.
    ris_rows = []
    for samples, dist in sweeps["ris"].influence_distributions().items():
        row = {"theta": samples}
        row.update(dist.as_row())
        ris_rows.append(row)
    print()
    print(format_table(
        ris_rows,
        columns=["theta", "mean", "std", "p1", "median", "p99"],
        title="RIS influence distribution by sample number (Figure 4 methodology)",
    ))

    # Table 5: least sample number for near-optimal solutions.
    reference = reference_spread_from_sweep(sweeps["ris"])
    table5_rows = []
    for approach, sweep in sweeps.items():
        result = least_sample_number(sweep, reference, quality=0.9, probability=0.95)
        table5_rows.append(result.as_row())
    print()
    print(format_table(
        table5_rows,
        title=f"Least sample number for 0.9-near-optimal solutions (reference spread {reference:.2f})",
    ))

    # Tables 6-7: comparable ratios against Snapshot.
    comparison_rows = []
    for target in ("oneshot", "ris"):
        curve = comparable_ratio_curve(sweeps["snapshot"], sweeps[target])
        comparison_rows.append(
            {
                "comparison": f"{target} vs snapshot",
                "median_number_ratio": curve.median_number_ratio(),
                "median_size_ratio": curve.median_size_ratio(),
            }
        )
    print()
    print(format_table(
        comparison_rows,
        title="Comparable ratios relative to Snapshot (Tables 6-7 methodology)",
    ))

    # The spec documents make the whole study reproducible from the shell:
    # each sweep is `python -m repro run <spec.json> --out <result.json>`.
    print()
    print("spec documents (re-runnable via `python -m repro run`):")
    for approach, spec in specs.items():
        print(f"  {approach}: {spec.to_json(indent=None)}")


if __name__ == "__main__":
    main()
