"""Table 7 / Figure 8: comparable number and size ratios of RIS to Snapshot.

The paper's Table 7 shows that to match Snapshot's accuracy, RIS needs far
*more* samples (number ratio from 4 up to ~5x10^5) but those samples are far
*smaller*, so on large sparse networks RIS stores less in total (size ratio
well below 1).  This bench regenerates both ratios on Karate (small graph:
size ratio above 1, matching the paper's Karate row) and on the com-Youtube
proxy (large sparse graph under iwc: size ratio below 1).
"""

from __future__ import annotations

from repro.experiments.comparison import comparable_ratio_curve
from repro.experiments.factories import estimator_factory
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import powers_of_two, sweep_sample_numbers

from .conftest import emit

TRIALS = 20


def ratio_row(graph, oracle, label: str, k: int, snapshot_grid, ris_grid, seed: int):
    snapshot_sweep = sweep_sample_numbers(
        graph, k, estimator_factory("snapshot"), snapshot_grid,
        num_trials=TRIALS, oracle=oracle, experiment_seed=seed,
    )
    ris_sweep = sweep_sample_numbers(
        graph, k, estimator_factory("ris"), ris_grid,
        num_trials=TRIALS, oracle=oracle, experiment_seed=seed + 1,
    )
    curve = comparable_ratio_curve(snapshot_sweep, ris_sweep)
    return {
        "network": label,
        "k": k,
        "number_ratio_theta_over_tau": curve.median_number_ratio(),
        "size_ratio": curve.median_size_ratio(),
        "defined_points": len(curve.defined_points()),
    }


def compute_rows(instance_cache, oracle_cache):
    rows = []
    karate = instance_cache("karate", "uc0.1")
    karate_oracle = oracle_cache("karate", "uc0.1")
    rows.append(
        ratio_row(
            karate, karate_oracle, "karate (uc0.1)", 1,
            powers_of_two(5), powers_of_two(12, min_exponent=2), seed=91,
        )
    )
    karate_iwc = instance_cache("karate", "iwc")
    karate_iwc_oracle = oracle_cache("karate", "iwc")
    rows.append(
        ratio_row(
            karate_iwc, karate_iwc_oracle, "karate (iwc)", 1,
            powers_of_two(5), powers_of_two(12, min_exponent=2), seed=93,
        )
    )
    youtube = instance_cache("com_youtube", "iwc", scale=0.25)
    youtube_oracle = oracle_cache("com_youtube", "iwc", scale=0.25, pool_size=10_000)
    rows.append(
        ratio_row(
            youtube, youtube_oracle, "com_youtube proxy (iwc)", 1,
            powers_of_two(3), powers_of_two(12, min_exponent=4), seed=95,
        )
    )
    return rows


def test_table7_comparable_ris_snapshot(benchmark, instance_cache, oracle_cache):
    rows = benchmark.pedantic(
        compute_rows, args=(instance_cache, oracle_cache), rounds=1, iterations=1
    )
    emit(
        "table7_comparable_ris_snapshot",
        format_table(
            rows,
            title="Table 7: median comparable number and size ratios of RIS to Snapshot",
        ),
    )
    by_network = {row["network"]: row for row in rows}
    # RIS always needs more samples than Snapshot to match accuracy.
    for row in rows:
        if row["number_ratio_theta_over_tau"] is not None:
            assert row["number_ratio_theta_over_tau"] > 1.0
    # Large sparse low-probability proxy: RIS's samples are smaller in total
    # (size ratio < 1), the paper's "RIS is more space-saving" conclusion.
    youtube_row = by_network["com_youtube proxy (iwc)"]
    if youtube_row["size_ratio"] is not None:
        assert youtube_row["size_ratio"] < 1.5
