"""Figure 6: the mean is a sufficient statistic for comparing approaches.

The paper plots, for each approach and each sample number, the mean influence
against the standard deviation (Figure 6a) and against the 1st percentile
(Figure 6b); the curves for Oneshot, Snapshot, and RIS coincide, which
justifies ranking influence distributions by their mean alone.  This bench
regenerates both relations on Karate (uc0.1, k = 4).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.distributions import mean_versus_statistics
from repro.experiments.factories import estimator_factory
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import powers_of_two, sweep_sample_numbers

from .conftest import emit

GRIDS = {
    "oneshot": powers_of_two(5),
    "snapshot": powers_of_two(6),
    "ris": powers_of_two(10, min_exponent=2),
}


def relation_rows(instance_cache, oracle_cache):
    graph = instance_cache("karate", "uc0.1")
    oracle = oracle_cache("karate", "uc0.1")
    rows = []
    series = {}
    for approach, grid in GRIDS.items():
        sweep = sweep_sample_numbers(
            graph, 4, estimator_factory(approach), grid,
            num_trials=25, oracle=oracle, experiment_seed=71,
        )
        distributions = list(sweep.influence_distributions().values())
        relation = mean_versus_statistics(distributions)
        series[approach] = relation
        for mean, std, p1 in zip(relation["mean"], relation["std"], relation["p1"]):
            rows.append(
                {
                    "approach": approach,
                    "mean": round(mean, 3),
                    "std": round(std, 3),
                    "p1": round(p1, 3),
                }
            )
    return rows, series


def test_figure6_mean_vs_statistics(benchmark, instance_cache, oracle_cache):
    rows, series = benchmark.pedantic(
        relation_rows, args=(instance_cache, oracle_cache), rounds=1, iterations=1
    )
    emit(
        "figure6_mean_vs_statistics",
        format_table(
            rows,
            title="Figure 6: mean vs SD and 1st percentile, Karate (uc0.1, k=4)",
        ),
    )
    # The paper's observation translated to an assertion: at comparable means,
    # the 1st percentile is comparable across approaches.  Check that the
    # highest-mean point of every approach has a 1st percentile within 20% of
    # the best approach's.
    top_p1 = {
        approach: relation["p1"][-1] for approach, relation in series.items()
    }
    best = max(top_p1.values())
    assert all(value >= 0.8 * best for value in top_p1.values())
    # And the mean-p1 relation is increasing for each approach.
    for relation in series.values():
        assert np.all(np.diff(relation["mean"]) >= -1e-9)
