"""Figure 2: entropy plateaus caused by almost-tied seed sets.

On Karate (iwc, k = 4) and Physicians (iwc, k = 1) the paper observes the
entropy hovering near 1 bit over a long range of sample numbers: two seed
sets have nearly identical influence, so the random tie-breaking picks either
with roughly equal probability before eventually separating them.  This bench
regenerates the Karate (iwc, k = 1) curve — which exhibits the same
mechanism at tractable cost (two top vertices with nearly equal influence) —
and reports the top-2 seed sets at the largest sample number.
"""

from __future__ import annotations

from repro.experiments.factories import estimator_factory
from repro.experiments.reporting import format_multi_series, format_table
from repro.experiments.sweeps import powers_of_two, sweep_sample_numbers

from .conftest import emit

GRIDS = {
    "snapshot": powers_of_two(7),
    "ris": powers_of_two(11, min_exponent=2),
}


def plateau_series(instance_cache, oracle_cache):
    graph = instance_cache("karate", "iwc")
    oracle = oracle_cache("karate", "iwc")
    series = {}
    final_modes = []
    for approach, grid in GRIDS.items():
        sweep = sweep_sample_numbers(
            graph, 1, estimator_factory(approach), grid,
            num_trials=30, oracle=oracle, experiment_seed=21,
        )
        series[approach] = {s: round(e, 3) for s, e in sweep.entropies().items()}
        final = sweep.final_trial_set().seed_set_distribution()
        for seed_set, probability in final.top_seed_sets(2):
            final_modes.append(
                {
                    "approach": approach,
                    "seed_set": seed_set,
                    "probability": round(probability, 3),
                    "influence": round(oracle.spread(seed_set), 3),
                }
            )
    return series, final_modes


def test_figure2_entropy_plateau(benchmark, instance_cache, oracle_cache):
    series, final_modes = benchmark.pedantic(
        plateau_series, args=(instance_cache, oracle_cache), rounds=1, iterations=1
    )
    emit(
        "figure2_entropy_plateau",
        format_multi_series(
            series, title="Figure 2 (adapted): entropy decay on Karate (iwc, k=1)"
        )
        + "\n\n"
        + format_table(
            final_modes,
            title="Top-2 seed sets at the largest sample number (near-tied influence)",
        ),
    )
    # The near-tie should be visible: the runner-up influence is within a few
    # percent of the winner for at least one approach.
    by_approach: dict[str, list[float]] = {}
    for row in final_modes:
        by_approach.setdefault(row["approach"], []).append(row["influence"])
    assert any(
        len(values) > 1 and min(values) >= 0.8 * max(values)
        for values in by_approach.values()
    ) or any(len(values) == 1 for values in by_approach.values())
