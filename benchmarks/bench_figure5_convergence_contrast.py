"""Figure 5: quick vs slow influence convergence by probability model.

On ca-GrQc the paper contrasts uc0.1 (mean influence starts below 20% of the
maximum and converges quickly — a giant component forms in the core and
identifying any core vertex suffices) with owc (mean starts above half the
maximum but improves very slowly — all vertices have one expected live
out-edge and are nearly interchangeable).  This bench regenerates the RIS
influence trajectories on the ca-GrQc proxy (power-law cluster graph with
core-whisker structure) under both models.
"""

from __future__ import annotations

from repro.experiments.factories import estimator_factory
from repro.experiments.reporting import format_multi_series
from repro.experiments.sweeps import powers_of_two, sweep_sample_numbers

from .conftest import emit

GRID = powers_of_two(12, min_exponent=2)
SCALE = 0.3  # ~600-vertex proxy


def normalised_mean_series(instance_cache, oracle_cache, model: str):
    graph = instance_cache("ca_grqc", model, scale=SCALE)
    oracle = oracle_cache("ca_grqc", model, scale=SCALE, pool_size=10_000)
    sweep = sweep_sample_numbers(
        graph, 1, estimator_factory("ris"), GRID,
        num_trials=20, oracle=oracle, experiment_seed=51,
    )
    means = sweep.mean_influences()
    best = max(means.values())
    return {s: round(value / best, 4) for s, value in means.items()}, means


def test_figure5_convergence_contrast(benchmark, instance_cache, oracle_cache):
    def compute():
        uc_series, uc_raw = normalised_mean_series(instance_cache, oracle_cache, "uc0.1")
        owc_series, owc_raw = normalised_mean_series(instance_cache, oracle_cache, "owc")
        return uc_series, owc_series, uc_raw, owc_raw

    uc_series, owc_series, uc_raw, owc_raw = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    emit(
        "figure5_convergence_contrast",
        format_multi_series(
            {"uc0.1 (normalised mean)": uc_series, "owc (normalised mean)": owc_series},
            title="Figure 5: RIS mean influence vs sample number, ca-GrQc proxy (k=1)",
        ),
    )
    # Paper's contrast: under uc0.1 the first grid point sits far below the
    # final value (quick convergence from a poor start), while under owc the
    # first grid point is already a sizable fraction of the final value.
    first, last = GRID[0], GRID[-1]
    assert uc_series[first] < owc_series[first]
    assert uc_raw[last] >= uc_raw[first]
    assert owc_raw[last] >= owc_raw[first]
