"""Serial-vs-parallel wall-time benchmark for the execution runtime.

Measures the two workloads the runtime was built for:

* **RR-pool construction** — ``sample_rr_sets`` over a proxy dataset large
  enough that process start-up is amortised (the RR-pool oracle and the RIS
  estimator Build share this path), and
* **one sweep grid point** — ``run_trials`` with the RIS estimator, the
  paper's trial-heavy inner loop.

Both workloads are run with ``jobs=1`` and with a shared
:class:`~repro.runtime.ParallelExecutor`, results are checked to be
bit-identical (the runtime's determinism contract), and a summary is written
atomically to ``benchmarks/output/BENCH_parallel.json``.

Each run carries its own :class:`repro.obs.Telemetry`, so the summary records
*where* the parallel wall-time goes — the per-phase breakdown
(``serialize``/``dispatch``/``merge`` span seconds, worker-side
``kernel_seconds``, ``pickle_bytes`` crossing the pool boundary) that decides
the ROADMAP's pickling-dominates hypothesis — plus the host description from
:func:`repro.obs.host_info` so ratios are interpretable across machines.

Run directly::

    PYTHONPATH=src python benchmarks/bench_parallel_speedup.py [--jobs 4]

Note: the speedup is bounded by physical CPUs; on a single-core machine the
parallel path only adds process overhead, and the JSON records ``cpu_count``
so readers can interpret the ratio.
"""

from __future__ import annotations

import argparse
import os
import time
from pathlib import Path

from repro.diffusion.random_source import RandomSource
from repro.diffusion.reverse import sample_rr_sets
from repro.estimation.oracle import RRPoolOracle
from repro.experiments.factories import estimator_factory
from repro.experiments.trials import run_trials
from repro.graphs.datasets import load_dataset
from repro.graphs.probability import assign_probabilities
from repro.obs import Telemetry, atomic_write_json, host_info
from repro.runtime import ParallelExecutor

OUTPUT_PATH = Path(__file__).parent / "output" / "BENCH_parallel.json"


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _phase_breakdown(telemetry: Telemetry) -> dict[str, float | int]:
    """Aggregate the ``runtime.*`` dispatch metrics recorded by one workload.

    Span paths depend on the caller's nesting (``run_trials`` wraps dispatch
    in a ``trials.run`` span), so phases are summed by leaf name.
    """
    by_leaf: dict[str, float] = {}
    for path, _count, seconds in telemetry.span_table():
        by_leaf[path[-1]] = by_leaf.get(path[-1], 0.0) + seconds
    counters = telemetry.counters
    return {
        "chunks": int(counters.get("runtime.chunks", 0)),
        "pickle_bytes": int(counters.get("runtime.pickle_bytes", 0)),
        "serialize_seconds": by_leaf.get("runtime.serialize", 0.0),
        "dispatch_seconds": by_leaf.get("runtime.dispatch", 0.0),
        "kernel_seconds": float(counters.get("runtime.kernel_seconds", 0.0)),
        "merge_seconds": by_leaf.get("runtime.merge", 0.0),
    }


def bench_rr_pool(graph, pool_size: int, executor) -> dict[str, object]:
    """Serial vs parallel RR-pool construction on one graph."""
    serial_tel, parallel_tel = Telemetry(), Telemetry()
    serial, serial_seconds = _timed(
        lambda: sample_rr_sets(
            graph, pool_size, RandomSource(1), jobs=1, telemetry=serial_tel
        )
    )
    parallel, parallel_seconds = _timed(
        lambda: sample_rr_sets(
            graph, pool_size, RandomSource(1), executor=executor,
            telemetry=parallel_tel,
        )
    )
    identical = [(r.target, r.vertices) for r in serial] == [
        (r.target, r.vertices) for r in parallel
    ]
    return {
        "pool_size": pool_size,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds if parallel_seconds else float("inf"),
        "bit_identical": identical,
        "serial_phases": _phase_breakdown(serial_tel),
        "parallel_phases": _phase_breakdown(parallel_tel),
    }


def bench_sweep_point(graph, oracle, num_trials: int, num_samples: int, executor):
    """Serial vs parallel greedy trials at one sweep grid point."""
    serial_tel, parallel_tel = Telemetry(), Telemetry()
    serial, serial_seconds = _timed(
        lambda: run_trials(
            graph, 2, estimator_factory("ris"), num_samples, num_trials,
            oracle=oracle, experiment_seed=7, jobs=1, telemetry=serial_tel,
        )
    )
    parallel, parallel_seconds = _timed(
        lambda: run_trials(
            graph, 2, estimator_factory("ris"), num_samples, num_trials,
            oracle=oracle, experiment_seed=7, executor=executor,
            telemetry=parallel_tel,
        )
    )
    return {
        "num_trials": num_trials,
        "num_samples": num_samples,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds if parallel_seconds else float("inf"),
        "bit_identical": serial == parallel,
        "serial_phases": _phase_breakdown(serial_tel),
        "parallel_phases": _phase_breakdown(parallel_tel),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4, help="parallel worker count")
    parser.add_argument("--dataset", default="wiki_vote", help="proxy dataset name")
    parser.add_argument("--scale", type=float, default=1.0, help="proxy size multiplier")
    parser.add_argument("--pool-size", type=int, default=6000, help="RR sets to build")
    parser.add_argument("--trials", type=int, default=12, help="trials per grid point")
    parser.add_argument("--samples", type=int, default=512, help="theta per trial")
    args = parser.parse_args()

    graph = assign_probabilities(
        load_dataset(args.dataset, scale=args.scale), "iwc"
    )
    print(
        f"benchmarking on {graph.name}: n={graph.num_vertices}, m={graph.num_edges}, "
        f"jobs={args.jobs}, cpu_count={os.cpu_count()}"
    )

    with ParallelExecutor(args.jobs) as executor:
        # Warm the pool so worker start-up is not charged to the first workload.
        executor.map(abs, list(range(args.jobs)))
        rr_result = bench_rr_pool(graph, args.pool_size, executor)
        phases = rr_result["parallel_phases"]
        print(
            f"rr_pool: serial {rr_result['serial_seconds']:.2f}s, "
            f"parallel {rr_result['parallel_seconds']:.2f}s, "
            f"speedup {rr_result['speedup']:.2f}x, "
            f"bit_identical={rr_result['bit_identical']}"
        )
        print(
            f"rr_pool parallel phases: serialize {phases['serialize_seconds']:.3f}s "
            f"({phases['pickle_bytes']} bytes), dispatch {phases['dispatch_seconds']:.3f}s, "
            f"kernel {phases['kernel_seconds']:.3f}s, merge {phases['merge_seconds']:.3f}s"
        )
        oracle = RRPoolOracle(graph, pool_size=2000, seed=3, executor=executor)
        sweep_result = bench_sweep_point(
            graph, oracle, args.trials, args.samples, executor
        )
        phases = sweep_result["parallel_phases"]
        print(
            f"sweep_point: serial {sweep_result['serial_seconds']:.2f}s, "
            f"parallel {sweep_result['parallel_seconds']:.2f}s, "
            f"speedup {sweep_result['speedup']:.2f}x, "
            f"bit_identical={sweep_result['bit_identical']}"
        )
        print(
            f"sweep_point parallel phases: serialize {phases['serialize_seconds']:.3f}s "
            f"({phases['pickle_bytes']} bytes), dispatch {phases['dispatch_seconds']:.3f}s, "
            f"kernel {phases['kernel_seconds']:.3f}s, merge {phases['merge_seconds']:.3f}s"
        )

    summary = {
        "benchmark": "parallel_speedup",
        "dataset": graph.name,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "jobs": args.jobs,
        "cpu_count": os.cpu_count(),
        "host": host_info(),
        "rr_pool": rr_result,
        "sweep_point": sweep_result,
    }
    OUTPUT_PATH.parent.mkdir(exist_ok=True)
    atomic_write_json(OUTPUT_PATH, summary)
    print(f"wrote {OUTPUT_PATH}")
    if not (rr_result["bit_identical"] and sweep_result["bit_identical"]):
        print("ERROR: parallel results diverged from serial results")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
