"""Shared fixtures and helpers for the benchmark harness.

Every benchmark module regenerates one of the paper's tables or figures at
reduced scale (see EXPERIMENTS.md for the scale map) and both prints the rows
and writes them to ``benchmarks/output/<name>.txt`` so results survive output
capturing.  Expensive per-instance artifacts (graphs, oracles) are cached at
session scope; the benchmarked callables are run with
``benchmark.pedantic(rounds=1)`` because a full experiment is itself the unit
of measurement.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.estimation.oracle import RRPoolOracle
from repro.obs import atomic_write_text
from repro.graphs.datasets import load_dataset
from repro.graphs.probability import assign_probabilities

#: Directory where benchmark tables are written.
OUTPUT_DIR = Path(__file__).parent / "output"

#: Trials per configuration (the paper uses 1,000; reduced for pure Python).
DEFAULT_TRIALS = 25

#: Oracle pool size (the paper uses 10^7; reduced for pure Python).
DEFAULT_POOL_SIZE = 15_000


def emit(name: str, text: str) -> None:
    """Print a rendered table/series and persist it under benchmarks/output/.

    Written atomically so an interrupted benchmark run never leaves a
    truncated table behind.
    """
    OUTPUT_DIR.mkdir(exist_ok=True)
    atomic_write_text(OUTPUT_DIR / f"{name}.txt", text + "\n")
    print(f"\n{text}\n")


@pytest.fixture(scope="session")
def instance_cache():
    """Cache of (dataset, probability model, scale) -> influence graph."""
    cache: dict[tuple[str, str, float], object] = {}

    def get(dataset: str, model: str, *, scale: float = 1.0, seed: int = 0):
        key = (dataset, model, scale)
        if key not in cache:
            graph = load_dataset(dataset, scale=scale, seed=seed)
            cache[key] = assign_probabilities(graph, model)
        return cache[key]

    return get


@pytest.fixture(scope="session")
def oracle_cache(instance_cache):
    """Cache of instance -> shared RR-pool oracle."""
    cache: dict[tuple[str, str, float], RRPoolOracle] = {}

    def get(dataset: str, model: str, *, scale: float = 1.0, pool_size: int = DEFAULT_POOL_SIZE):
        key = (dataset, model, scale)
        if key not in cache:
            graph = instance_cache(dataset, model, scale=scale)
            cache[key] = RRPoolOracle(graph, pool_size=pool_size, seed=1234)
        return cache[key]

    return get
