"""Old-vs-new micro-benchmark of the three frontier hot-path kernels.

Measures the per-vertex reference loops (``repro.diffusion._reference``,
kept verbatim from the pre-vectorization code) against the whole-frontier
vectorized kernels that replaced them, on the same inputs and the same PRNG
streams, for:

* forward IC cascade simulation (``simulate_cascade`` / ``simulate_cascades``),
* reverse RR-set generation (``sample_rr_set`` / ``sample_rr_sets``),
* snapshot reachability (``reachable_set``).

Because both implementations consume the random stream identically, every
pair of runs does exactly the same traversal work — the measured ratio is the
pure kernel speedup.  Equality of outputs is asserted before timing, so a
kernel that drifts from the reference fails loudly instead of reporting a
meaningless number.

Results go to ``benchmarks/output/BENCH_vectorized.json``.  CI runs this
script on karate as a smoke check; the speedup acceptance target (>= 3x on
graphs with >= 5k edges) is evaluated only for instances that large, since
tiny graphs spend their time in per-call bookkeeping rather than frontier
expansion.

Run directly::

    PYTHONPATH=src python benchmarks/bench_vectorized_kernels.py \
        --datasets karate wiki_vote --probability-model uc0.1
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.diffusion._reference import (
    reachable_set_reference,
    sample_rr_set_reference,
    simulate_cascade_reference,
)
from repro.diffusion.cascade import simulate_cascades
from repro.diffusion.random_source import RandomSource
from repro.diffusion.reverse import sample_rr_sets
from repro.diffusion.snapshots import reachable_set, sample_snapshot
from repro.graphs.datasets import load_dataset
from repro.graphs.probability import assign_probabilities
from repro.obs import atomic_write_json

OUTPUT_PATH = Path(__file__).parent / "output" / "BENCH_vectorized.json"

#: Acceptance threshold for the pure-kernel speedup, applied to instances
#: with at least this many edges.
SPEEDUP_TARGET = 3.0
SPEEDUP_MIN_EDGES = 5_000


def _timed(fn, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time: robust against scheduler noise on
    shared/single-core machines, which matters more than averaging here
    because both sides of every ratio do identical traversal work."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_graph(graph, *, cascade_reps: int, rr_reps: int, reach_reps: int) -> dict:
    """Time old vs new kernels on one instance, asserting identical outputs."""
    seeds = tuple(range(min(3, graph.num_vertices)))

    # --- forward cascades -------------------------------------------------
    def run_cascades_reference():
        generator = RandomSource(1).generator
        return [
            simulate_cascade_reference(graph, seeds, generator)
            for _ in range(cascade_reps)
        ]

    def run_cascades_vectorized():
        return simulate_cascades(graph, seeds, cascade_reps, RandomSource(1))

    reference_out = run_cascades_reference()
    vectorized_out = run_cascades_vectorized()
    assert [r.activated for r in reference_out] == [r.activated for r in vectorized_out]
    cascade_old = _timed(run_cascades_reference)
    cascade_new = _timed(run_cascades_vectorized)

    # --- RR sets ----------------------------------------------------------
    def run_rr_reference():
        generator = RandomSource(2).generator
        return [sample_rr_set_reference(graph, generator) for _ in range(rr_reps)]

    def run_rr_vectorized():
        return sample_rr_sets(graph, rr_reps, RandomSource(2))

    reference_rr = run_rr_reference()
    vectorized_rr = run_rr_vectorized()
    assert [(r.target, r.vertices, r.weight) for r in reference_rr] == [
        (r.target, r.vertices, r.weight) for r in vectorized_rr
    ]
    rr_old = _timed(run_rr_reference)
    rr_new = _timed(run_rr_vectorized)

    # --- snapshot reachability -------------------------------------------
    snapshot = sample_snapshot(graph, RandomSource(3))

    def run_reach_reference():
        return [reachable_set_reference(snapshot, seeds) for _ in range(reach_reps)]

    def run_reach_vectorized():
        return [reachable_set(snapshot, seeds) for _ in range(reach_reps)]

    assert run_reach_reference()[0] == run_reach_vectorized()[0]
    reach_old = _timed(run_reach_reference)
    reach_new = _timed(run_reach_vectorized)

    return {
        "dataset": graph.name,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "snapshot_live_edges": snapshot.num_live_edges,
        "kernels": {
            "cascade": {
                "repetitions": cascade_reps,
                "seconds_old": cascade_old,
                "seconds_new": cascade_new,
                "speedup": cascade_old / cascade_new,
            },
            "rr_set": {
                "repetitions": rr_reps,
                "seconds_old": rr_old,
                "seconds_new": rr_new,
                "speedup": rr_old / rr_new,
            },
            "reachability": {
                "repetitions": reach_reps,
                "seconds_old": reach_old,
                "seconds_new": reach_new,
                "speedup": reach_old / reach_new,
            },
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--datasets", nargs="+", default=["karate", "wiki_vote", "ba_d"],
        help="registry dataset names to benchmark",
    )
    parser.add_argument(
        "--probability-model", default="uc0.1",
        help="edge-probability assignment (uc0.1 yields non-trivial frontiers)",
    )
    parser.add_argument("--scale", type=float, default=1.0, help="proxy size multiplier")
    parser.add_argument("--cascade-reps", type=int, default=30)
    parser.add_argument("--rr-reps", type=int, default=200)
    parser.add_argument("--reach-reps", type=int, default=60)
    args = parser.parse_args()

    results = []
    failures = []
    for name in args.datasets:
        graph = assign_probabilities(
            load_dataset(name, scale=args.scale), args.probability_model
        )
        row = bench_graph(
            graph,
            cascade_reps=args.cascade_reps,
            rr_reps=args.rr_reps,
            reach_reps=args.reach_reps,
        )
        results.append(row)
        print(f"{graph.name}: n={graph.num_vertices}, m={graph.num_edges}")
        for kernel, stats in row["kernels"].items():
            print(
                f"  {kernel}: old {stats['seconds_old'] * 1e3:.1f}ms, "
                f"new {stats['seconds_new'] * 1e3:.1f}ms, "
                f"speedup {stats['speedup']:.1f}x"
            )
            if (
                graph.num_edges >= SPEEDUP_MIN_EDGES
                and stats["speedup"] < SPEEDUP_TARGET
            ):
                failures.append((graph.name, kernel, stats["speedup"]))

    summary = {
        "benchmark": "vectorized_kernels",
        "probability_model": args.probability_model,
        "scale": args.scale,
        "speedup_target": SPEEDUP_TARGET,
        "speedup_min_edges": SPEEDUP_MIN_EDGES,
        "results": results,
    }
    OUTPUT_PATH.parent.mkdir(exist_ok=True)
    atomic_write_json(OUTPUT_PATH, summary)
    print(f"wrote {OUTPUT_PATH}")
    if failures:
        for name, kernel, speedup in failures:
            print(
                f"ERROR: {name}/{kernel} speedup {speedup:.2f}x below the "
                f"{SPEEDUP_TARGET}x target for graphs with >= {SPEEDUP_MIN_EDGES} edges"
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
