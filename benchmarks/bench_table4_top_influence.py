"""Table 4: top-3 single-vertex influence spreads on BA_s and BA_d.

The paper uses Table 4 to explain Figure 3: the larger the gap between the
maximum and second-maximum single-vertex influence, the faster the seed-set
distribution converges.  This bench reports the top three Inf(v) values per
probability model, estimated with the shared RR-pool oracle.
"""

from __future__ import annotations

from repro.experiments.reporting import format_table

from .conftest import emit

MODELS = ("uc0.1", "uc0.01", "iwc", "owc")
SCALE = 0.4


def top_three_rows(oracle_cache, dataset: str):
    rows = []
    for model in MODELS:
        oracle = oracle_cache(dataset, model, scale=SCALE, pool_size=10_000)
        top = oracle.top_vertices(3)
        rows.append(
            {
                "model": model,
                "Inf(v1st)": round(top[0][1], 4),
                "Inf(v2nd)": round(top[1][1], 4),
                "Inf(v3rd)": round(top[2][1], 4),
                "gap_1st_2nd": round(top[0][1] - top[1][1], 4),
            }
        )
    return rows


def test_table4_ba_sparse(benchmark, oracle_cache):
    rows = benchmark.pedantic(top_three_rows, args=(oracle_cache, "ba_s"), rounds=1, iterations=1)
    emit(
        "table4_ba_s",
        format_table(rows, title="Table 4 (BA_s): top-3 single-vertex influence per model"),
    )
    for row in rows:
        assert row["Inf(v1st)"] >= row["Inf(v2nd)"] >= row["Inf(v3rd)"]


def test_table4_ba_dense(benchmark, oracle_cache):
    rows = benchmark.pedantic(top_three_rows, args=(oracle_cache, "ba_d"), rounds=1, iterations=1)
    emit(
        "table4_ba_d",
        format_table(rows, title="Table 4 (BA_d): top-3 single-vertex influence per model"),
    )
    by_model = {row["model"]: row for row in rows}
    # The paper's qualitative ordering: iwc spreads are much larger than uc0.01
    # spreads on both BA graphs (uc0.01 barely diffuses at all).
    assert by_model["iwc"]["Inf(v1st)"] > by_model["uc0.01"]["Inf(v1st)"]
