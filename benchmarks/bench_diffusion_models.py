"""IC-vs-LT cost per primitive: cascade, snapshot, and RR set.

For each requested dataset (paper proxy networks) and each registered
diffusion model, this bench measures the average wall time and traversal
cost / sample size of the three sampling primitives behind the
``DiffusionModel`` protocol:

* one forward cascade from a fixed seed vertex,
* one live-edge snapshot, and
* one reverse-reachable set (uniform target).

The probability assignment defaults to ``iwc`` because it is feasible for
the LT model on every graph (incoming weights sum to exactly one); models
whose feasibility check rejects an instance are recorded as skipped rather
than failing the bench.  Results are written to
``benchmarks/output/BENCH_diffusion.json``; CI runs this script on karate as
a smoke check so the bench trajectory stays populated.

Run directly::

    PYTHONPATH=src python benchmarks/bench_diffusion_models.py \
        --datasets karate wiki_vote --repetitions 20
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.diffusion.costs import SampleSize, TraversalCost
from repro.diffusion.models import available_models, get_model
from repro.diffusion.random_source import RandomSource
from repro.exceptions import InvalidParameterError
from repro.graphs.datasets import load_dataset
from repro.graphs.probability import assign_probabilities
from repro.obs import atomic_write_json

OUTPUT_PATH = Path(__file__).parent / "output" / "BENCH_diffusion.json"


def _bench_primitive(fn, repetitions: int) -> dict[str, float]:
    """Average wall time of ``fn(rep_index)`` over ``repetitions`` calls."""
    start = time.perf_counter()
    for repetition in range(repetitions):
        fn(repetition)
    elapsed = time.perf_counter() - start
    return {"seconds_total": elapsed, "seconds_per_call": elapsed / repetitions}


def bench_model_on_graph(model_name: str, graph, repetitions: int) -> dict[str, object]:
    """Per-primitive cost of one model on one instance."""
    model = get_model(model_name)
    try:
        model.validate(graph)
    except InvalidParameterError as error:
        return {"model": model_name, "skipped": True, "reason": str(error)}

    cascade_cost = TraversalCost()
    cascade = _bench_primitive(
        lambda rep: model.simulate_cascade(
            graph, (0,), RandomSource(1000 + rep), cost=cascade_cost
        ),
        repetitions,
    )
    cascade["traversal_vertices_per_call"] = cascade_cost.vertices / repetitions
    cascade["traversal_edges_per_call"] = cascade_cost.edges / repetitions

    snapshot_size = SampleSize()
    snapshot = _bench_primitive(
        lambda rep: model.sample_snapshot(
            graph, RandomSource(2000 + rep), sample_size=snapshot_size
        ),
        repetitions,
    )
    snapshot["live_edges_per_call"] = snapshot_size.edges / repetitions

    rr_cost = TraversalCost()
    rr_size = SampleSize()
    rr_set = _bench_primitive(
        lambda rep: model.sample_rr_set(
            graph, RandomSource(3000 + rep), cost=rr_cost, sample_size=rr_size
        ),
        repetitions,
    )
    rr_set["traversal_vertices_per_call"] = rr_cost.vertices / repetitions
    rr_set["traversal_edges_per_call"] = rr_cost.edges / repetitions
    rr_set["stored_vertices_per_call"] = rr_size.vertices / repetitions

    return {
        "model": model_name,
        "skipped": False,
        "cascade": cascade,
        "snapshot": snapshot,
        "rr_set": rr_set,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--datasets", nargs="+", default=["karate", "wiki_vote"],
        help="registry dataset names to benchmark",
    )
    parser.add_argument(
        "--probability-model", default="iwc",
        help="edge-probability assignment (iwc is LT-feasible on every graph)",
    )
    parser.add_argument("--scale", type=float, default=1.0, help="proxy size multiplier")
    parser.add_argument(
        "--repetitions", type=int, default=20, help="calls per primitive measurement"
    )
    args = parser.parse_args()

    results = []
    for name in args.datasets:
        graph = assign_probabilities(
            load_dataset(name, scale=args.scale), args.probability_model
        )
        print(f"{graph.name}: n={graph.num_vertices}, m={graph.num_edges}")
        for model_name in available_models():
            row = bench_model_on_graph(model_name, graph, args.repetitions)
            row["dataset"] = graph.name
            results.append(row)
            if row["skipped"]:
                print(f"  {model_name}: skipped ({row['reason']})")
            else:
                print(
                    f"  {model_name}: cascade "
                    f"{row['cascade']['seconds_per_call'] * 1e6:.0f}us, snapshot "
                    f"{row['snapshot']['seconds_per_call'] * 1e6:.0f}us, rr_set "
                    f"{row['rr_set']['seconds_per_call'] * 1e6:.0f}us"
                )

    summary = {
        "benchmark": "diffusion_models",
        "probability_model": args.probability_model,
        "scale": args.scale,
        "repetitions": args.repetitions,
        "models": list(available_models()),
        "results": results,
    }
    OUTPUT_PATH.parent.mkdir(exist_ok=True)
    atomic_write_json(OUTPUT_PATH, summary)
    print(f"wrote {OUTPUT_PATH}")
    measured = [row for row in results if not row["skipped"]]
    if not measured:
        print("ERROR: every (dataset, model) pair was skipped")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
