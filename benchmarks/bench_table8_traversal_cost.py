"""Table 8: per-sample traversal cost at k = 1 and sample number 1.

The paper measures, for every instance, the vertex and edge traversal cost of
Oneshot, Snapshot, and RIS when the greedy framework runs its first iteration
with sample number 1.  The empirical relation it extracts (Section 5.3) is

    vertex cost:  Oneshot ~ Snapshot ~ n x RIS
    edge cost:    Oneshot ~ (m/m~) x Snapshot ~ n x RIS

This bench regenerates the rows for the small instances across the four
probability models and checks those two relations.
"""

from __future__ import annotations

from repro.experiments.factories import estimator_factory
from repro.experiments.reporting import format_table
from repro.experiments.traversal import traversal_cost_table

from .conftest import emit

DATASETS = [
    ("karate", 1.0),
    ("physicians", 1.0),
    ("ba_s", 1.0),
    ("ba_d", 0.5),
]
MODELS = ("uc0.1", "uc0.01", "iwc", "owc")
APPROACHES = ("oneshot", "snapshot", "ris")


def cost_rows(instance_cache):
    rows = []
    for dataset, scale in DATASETS:
        for model in MODELS:
            graph = instance_cache(dataset, model, scale=scale)
            table = traversal_cost_table(
                graph,
                {name: estimator_factory(name) for name in APPROACHES},
                k=1,
                num_samples=1,
                num_repetitions=3,
                experiment_seed=7,
            )
            for row in table:
                rendered = row.as_row()
                rendered["network"] = f"{dataset} ({model})"
                rendered["n"] = graph.num_vertices
                rendered["m_tilde_over_m"] = round(
                    graph.expected_live_edges / graph.num_edges, 4
                )
                rows.append(rendered)
    return rows


def test_table8_traversal_cost(benchmark, instance_cache):
    rows = benchmark.pedantic(cost_rows, args=(instance_cache,), rounds=1, iterations=1)
    emit(
        "table8_traversal_cost",
        format_table(
            rows,
            columns=[
                "network", "algorithm", "vertex", "edge",
                "sample_vertices", "sample_edges", "n", "m_tilde_over_m",
            ],
            title="Table 8: traversal cost at k=1 and sample number 1",
        ),
    )
    # Check the Section 5.3 relations on every instance.
    by_instance: dict[str, dict[str, dict]] = {}
    for row in rows:
        by_instance.setdefault(row["network"], {})[row["algorithm"]] = row
    for network, algorithms in by_instance.items():
        oneshot, snapshot, ris = (
            algorithms["oneshot"], algorithms["snapshot"], algorithms["ris"],
        )
        n = oneshot["n"]
        # Vertex costs of Oneshot and Snapshot agree within noise (factor 2).
        assert 0.5 <= (snapshot["vertex"] + 1) / (oneshot["vertex"] + 1) <= 2.0, network
        # RIS vertex cost is roughly n times smaller than Oneshot's.
        assert ris["vertex"] * n >= 0.1 * oneshot["vertex"], network
        assert ris["vertex"] <= oneshot["vertex"], network
        # Snapshot edge cost is at most about (m~/m) of Oneshot's (allow 3x noise).
        live_fraction = oneshot["m_tilde_over_m"]
        assert snapshot["edge"] <= 3.0 * live_fraction * oneshot["edge"] + 5.0, network
