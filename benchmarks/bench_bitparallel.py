"""Scalar-vs-bit-parallel benchmark of batched spread and RR-set sampling.

Measures the scalar batch path (``batch_mode="scalar"``, the golden
byte-identical stream) against the bit-parallel engine
(``batch_mode="bitparallel"``, 64 simulated worlds per ``uint64`` word) for:

* forward Monte Carlo spread (``simulate_spread``),
* reverse RR-set generation (``sample_rr_sets``),

at several batch sizes (64 / 256 / 1024 simulations by default).  Unlike
``bench_vectorized_kernels.py``, the two sides here have *different* draw
contracts by design, so the benchmark asserts statistical agreement of the
spread means (both paths sample the same distribution) rather than byte
equality, then times the work.

Results go to ``benchmarks/output/BENCH_bitparallel.json``.  CI runs this
script on karate as a smoke check; the speedup acceptance target (>= 4x for
>= 64-simulation spread batches) is evaluated only on graphs with >= 5k
edges, since tiny graphs spend their time in per-call bookkeeping rather
than frontier expansion.

Run directly::

    PYTHONPATH=src python benchmarks/bench_bitparallel.py \
        --datasets karate ba_d --probability-model uc0.1
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.diffusion.cascade import simulate_spread
from repro.diffusion.random_source import RandomSource
from repro.diffusion.reverse import sample_rr_sets
from repro.graphs.datasets import load_dataset
from repro.graphs.probability import assign_probabilities
from repro.obs import atomic_write_json

OUTPUT_PATH = Path(__file__).parent / "output" / "BENCH_bitparallel.json"

#: Acceptance threshold for the bit-parallel speedup on spread batches of at
#: least 64 simulations, applied to instances with at least this many edges.
SPEEDUP_TARGET = 4.0
SPEEDUP_MIN_EDGES = 5_000
SPEEDUP_MIN_SIMULATIONS = 64


def _timed(fn, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time: robust against scheduler noise on
    shared/single-core machines."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


#: Sample count for the per-graph statistical agreement check.  Small batches
#: of heavy-tailed quantities (RR sizes on scale-free graphs have std larger
#: than their mean) fluctuate by 2x between seeds, so agreement is checked
#: once per graph at this count, not per timed batch.
AGREEMENT_SAMPLES = 2048
AGREEMENT_BAND = (0.75, 4 / 3)


def _check_agreement(graph, seeds) -> None:
    """Assert scalar and bit-parallel sample the same distribution.

    The two paths have *different* draw contracts by design, so this checks
    means at ``AGREEMENT_SAMPLES`` draws, not bytes.  A kernel bug (empty
    cascades, double counting, dead lanes) trips the band long before it
    could distort the timing comparison.
    """
    low, high = AGREEMENT_BAND
    mean_scalar = simulate_spread(
        graph, seeds, AGREEMENT_SAMPLES, RandomSource(1), batch_mode="scalar"
    )
    mean_bitparallel = simulate_spread(
        graph, seeds, AGREEMENT_SAMPLES, RandomSource(1), batch_mode="bitparallel"
    )
    assert low * mean_scalar <= mean_bitparallel <= high * mean_scalar, (
        f"spread means diverge on {graph.name}: "
        f"scalar {mean_scalar}, bitparallel {mean_bitparallel}"
    )
    size_scalar = sum(
        r.size
        for r in sample_rr_sets(
            graph, AGREEMENT_SAMPLES, RandomSource(2), batch_mode="scalar"
        )
    ) / AGREEMENT_SAMPLES
    size_bitparallel = sum(
        r.size
        for r in sample_rr_sets(
            graph, AGREEMENT_SAMPLES, RandomSource(2), batch_mode="bitparallel"
        )
    ) / AGREEMENT_SAMPLES
    assert low * size_scalar <= size_bitparallel <= high * size_scalar + 1.0, (
        f"RR sizes diverge on {graph.name}: "
        f"scalar {size_scalar}, bitparallel {size_bitparallel}"
    )


def bench_graph(graph, *, batch_sizes: list[int], repeats: int) -> dict:
    """Time scalar vs bit-parallel batches on one instance per batch size."""
    seeds = tuple(range(min(3, graph.num_vertices)))
    _check_agreement(graph, seeds)
    rows = []
    for count in batch_sizes:
        def run_spread_scalar():
            return simulate_spread(
                graph, seeds, count, RandomSource(1), batch_mode="scalar"
            )

        def run_spread_bitparallel():
            return simulate_spread(
                graph, seeds, count, RandomSource(1), batch_mode="bitparallel"
            )

        spread_scalar = _timed(run_spread_scalar, repeats)
        spread_bitparallel = _timed(run_spread_bitparallel, repeats)

        def run_rr_scalar():
            return sample_rr_sets(graph, count, RandomSource(2), batch_mode="scalar")

        def run_rr_bitparallel():
            return sample_rr_sets(
                graph, count, RandomSource(2), batch_mode="bitparallel"
            )

        rr_scalar = _timed(run_rr_scalar, repeats)
        rr_bitparallel = _timed(run_rr_bitparallel, repeats)

        rows.append(
            {
                "num_simulations": count,
                "spread": {
                    "seconds_scalar": spread_scalar,
                    "seconds_bitparallel": spread_bitparallel,
                    "speedup": spread_scalar / spread_bitparallel,
                },
                "rr_set": {
                    "seconds_scalar": rr_scalar,
                    "seconds_bitparallel": rr_bitparallel,
                    "speedup": rr_scalar / rr_bitparallel,
                },
            }
        )
    return {
        "dataset": graph.name,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "batches": rows,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--datasets", nargs="+", default=["karate", "ba_d"],
        help="registry dataset names to benchmark",
    )
    parser.add_argument(
        "--probability-model", default="uc0.1",
        help="edge-probability assignment (uc0.1 yields non-trivial frontiers)",
    )
    parser.add_argument("--scale", type=float, default=1.0, help="proxy size multiplier")
    parser.add_argument(
        "--batch-sizes", nargs="+", type=int, default=[64, 256, 1024],
        help="simulation counts per timed batch",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats per timing")
    args = parser.parse_args()

    results = []
    failures = []
    for name in args.datasets:
        graph = assign_probabilities(
            load_dataset(name, scale=args.scale), args.probability_model
        )
        row = bench_graph(graph, batch_sizes=args.batch_sizes, repeats=args.repeats)
        results.append(row)
        print(f"{graph.name}: n={graph.num_vertices}, m={graph.num_edges}")
        for batch in row["batches"]:
            count = batch["num_simulations"]
            for kernel in ("spread", "rr_set"):
                stats = batch[kernel]
                print(
                    f"  {kernel}@{count}: scalar {stats['seconds_scalar'] * 1e3:.1f}ms, "
                    f"bitparallel {stats['seconds_bitparallel'] * 1e3:.1f}ms, "
                    f"speedup {stats['speedup']:.1f}x"
                )
            if (
                graph.num_edges >= SPEEDUP_MIN_EDGES
                and count >= SPEEDUP_MIN_SIMULATIONS
                and batch["spread"]["speedup"] < SPEEDUP_TARGET
            ):
                failures.append((graph.name, count, batch["spread"]["speedup"]))

    summary = {
        "benchmark": "bitparallel",
        "probability_model": args.probability_model,
        "scale": args.scale,
        "speedup_target": SPEEDUP_TARGET,
        "speedup_min_edges": SPEEDUP_MIN_EDGES,
        "speedup_min_simulations": SPEEDUP_MIN_SIMULATIONS,
        "results": results,
    }
    OUTPUT_PATH.parent.mkdir(exist_ok=True)
    atomic_write_json(OUTPUT_PATH, summary)
    print(f"wrote {OUTPUT_PATH}")
    if failures:
        for name, count, speedup in failures:
            print(
                f"ERROR: {name}/spread@{count} speedup {speedup:.2f}x below the "
                f"{SPEEDUP_TARGET}x target for graphs with >= {SPEEDUP_MIN_EDGES} edges"
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
