"""Figure 3: entropy decay speed under different edge-probability settings.

The paper's Figure 3 fixes the algorithm (RIS) and the graphs (BA_s, BA_d,
k = 1) and varies the probability model (uc0.1, uc0.01, iwc, owc).  The decay
speed differs markedly: iwc converges fastest because the gap between the
most and second-most influential vertex is largest (Table 4), while uc0.01
(BA_s) and owc (BA_d) stay diverse much longer.
"""

from __future__ import annotations

from repro.experiments.factories import estimator_factory
from repro.experiments.reporting import format_multi_series
from repro.experiments.sweeps import powers_of_two, sweep_sample_numbers

from .conftest import emit

MODELS = ("uc0.1", "uc0.01", "iwc", "owc")
GRID = powers_of_two(11, min_exponent=2)
SCALE = 0.4  # BA graphs at 400 vertices keep the oracle and sweeps fast.


def entropy_by_model(instance_cache, oracle_cache, dataset: str):
    series = {}
    for model in MODELS:
        graph = instance_cache(dataset, model, scale=SCALE)
        oracle = oracle_cache(dataset, model, scale=SCALE, pool_size=10_000)
        sweep = sweep_sample_numbers(
            graph, 1, estimator_factory("ris"), GRID,
            num_trials=25, oracle=oracle, experiment_seed=31,
        )
        series[model] = {s: round(e, 3) for s, e in sweep.entropies().items()}
    return series


def test_figure3a_ba_sparse(benchmark, instance_cache, oracle_cache):
    series = benchmark.pedantic(
        entropy_by_model, args=(instance_cache, oracle_cache, "ba_s"), rounds=1, iterations=1
    )
    emit(
        "figure3a_ba_s",
        format_multi_series(
            series, title="Figure 3a: RIS entropy decay by probability model, BA_s (k=1)"
        ),
    )
    assert set(series) == set(MODELS)


def test_figure3b_ba_dense(benchmark, instance_cache, oracle_cache):
    series = benchmark.pedantic(
        entropy_by_model, args=(instance_cache, oracle_cache, "ba_d"), rounds=1, iterations=1
    )
    emit(
        "figure3b_ba_d",
        format_multi_series(
            series, title="Figure 3b: RIS entropy decay by probability model, BA_d (k=1)"
        ),
    )
    # iwc has the cleanest gap between the top two vertices, so at the largest
    # sample number its entropy should be no higher than uc0.01's.
    last = GRID[-1]
    assert series["iwc"][last] <= series["uc0.01"][last] + 1e-9
