"""Table 1: theoretical per-sample cost ratios of the three approaches.

The paper's Table 1 states the expected per-sample traversal cost and sample
size of Oneshot, Snapshot, and RIS.  This bench evaluates the analytic ratios
(1 : m~/m : 1/n for edges, 1 : 1 : 1/n for vertices) on each small instance
so Table 8's empirical measurements can be compared against them.
"""

from __future__ import annotations

from repro.algorithms.bounds import theoretical_cost_ratios
from repro.experiments.reporting import format_table

from .conftest import emit

INSTANCES = [
    ("karate", "uc0.1"),
    ("karate", "iwc"),
    ("physicians", "uc0.01"),
    ("ba_s", "uc0.1"),
    ("ba_d", "uc0.1"),
    ("ba_d", "owc"),
]


def compute_rows(instance_cache):
    rows = []
    for dataset, model in INSTANCES:
        graph = instance_cache(dataset, model)
        ratios = theoretical_cost_ratios(
            graph.num_vertices, graph.num_edges, graph.expected_live_edges
        )
        rows.append(
            {
                "network": f"{dataset} ({model})",
                "n": graph.num_vertices,
                "m": graph.num_edges,
                "m_tilde": round(graph.expected_live_edges, 1),
                "snapshot_edge_ratio": round(ratios["snapshot_edge"], 4),
                "ris_vertex_ratio": round(ratios["ris_vertex"], 6),
                "ris_edge_ratio": round(ratios["ris_edge"], 6),
            }
        )
    return rows


def test_table1_theoretical_ratios(benchmark, instance_cache):
    rows = benchmark.pedantic(compute_rows, args=(instance_cache,), rounds=1, iterations=1)
    emit(
        "table1_theory",
        format_table(rows, title="Table 1 (analytic): per-sample cost ratios, Oneshot = 1"),
    )
    assert all(row["ris_vertex_ratio"] < 1.0 for row in rows)
