"""Table 6 / Figure 7: comparable number ratio of Oneshot to Snapshot.

For each Snapshot sample number tau, the comparable Oneshot sample number is
the least beta whose mean influence matches Snapshot's at tau; the ratio
beta/tau is roughly constant in tau (Figure 7) and its median (Table 6) lies
between 1 and ~32, growing with the seed size k.  This bench regenerates the
Karate rows for k = 1 and k = 4.
"""

from __future__ import annotations

from repro.experiments.comparison import comparable_ratio_curve
from repro.experiments.factories import estimator_factory
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import powers_of_two, sweep_sample_numbers

from .conftest import emit

MODELS = ("uc0.1", "iwc")
SEED_SIZES = (1, 4)
SNAPSHOT_GRID = powers_of_two(5)
ONESHOT_GRID = powers_of_two(6)
TRIALS = 20


def comparable_rows(instance_cache, oracle_cache):
    rows = []
    curves = []
    for model in MODELS:
        graph = instance_cache("karate", model)
        oracle = oracle_cache("karate", model)
        for k in SEED_SIZES:
            snapshot_sweep = sweep_sample_numbers(
                graph, k, estimator_factory("snapshot"), SNAPSHOT_GRID,
                num_trials=TRIALS, oracle=oracle, experiment_seed=81,
            )
            oneshot_sweep = sweep_sample_numbers(
                graph, k, estimator_factory("oneshot"), ONESHOT_GRID,
                num_trials=TRIALS, oracle=oracle, experiment_seed=82,
            )
            curve = comparable_ratio_curve(snapshot_sweep, oneshot_sweep)
            curves.append((model, k, curve))
            rows.append(
                {
                    "network": f"karate ({model})",
                    "k": k,
                    "median_ratio_beta_over_tau": curve.median_number_ratio(),
                    "defined_points": len(curve.defined_points()),
                }
            )
    return rows, curves


def test_table6_comparable_oneshot_snapshot(benchmark, instance_cache, oracle_cache):
    rows, curves = benchmark.pedantic(
        comparable_rows, args=(instance_cache, oracle_cache), rounds=1, iterations=1
    )
    per_point_rows = []
    for model, k, curve in curves:
        for point_row in curve.as_rows():
            point_row.update({"network": f"karate ({model})", "k": k})
            per_point_rows.append(point_row)
    emit(
        "table6_comparable_oneshot_snapshot",
        format_table(rows, title="Table 6: median comparable number ratio of Oneshot to Snapshot")
        + "\n\n"
        + format_table(
            per_point_rows,
            columns=["network", "k", "reference_samples", "comparable_samples", "number_ratio"],
            title="Figure 7: per-point comparable ratios",
        ),
    )
    # The paper's range: ratios fall between ~1 and ~32 on Karate.
    for row in rows:
        ratio = row["median_ratio_beta_over_tau"]
        if ratio is not None:
            assert 0.25 <= ratio <= 64.0
