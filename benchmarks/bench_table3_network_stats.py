"""Table 3: network statistics of every dataset in the registry.

The paper's Table 3 reports n, m, maximum out-/in-degree, clustering
coefficient, and average distance per network.  Real data is only embedded
for Karate; the other rows describe this repository's synthetic proxies, so
the bench also prints the paper's original n and m for comparison.
"""

from __future__ import annotations

from repro.experiments.reporting import format_table
from repro.graphs.datasets import PAPER_DATASETS, dataset_spec, load_dataset
from repro.graphs.statistics import network_statistics

from .conftest import emit

#: Proxy scale per dataset: the two huge networks use a small fraction.
SCALES = {
    "com_youtube": 0.25,
    "soc_pokec": 0.25,
    "ca_grqc": 0.5,
    "wiki_vote": 0.5,
}


def compute_rows():
    rows = []
    for name in PAPER_DATASETS:
        spec = dataset_spec(name)
        graph = load_dataset(name, scale=SCALES.get(name, 1.0))
        stats = network_statistics(graph, max_distance_sources=100)
        row = stats.as_row()
        row["paper_n"] = spec.paper_num_vertices
        row["paper_m"] = spec.paper_num_edges
        rows.append(row)
    return rows


def test_table3_network_statistics(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    emit(
        "table3_network_stats",
        format_table(
            rows,
            columns=[
                "network", "n", "m", "paper_n", "paper_m",
                "max_out_degree", "max_in_degree",
                "clustering_coefficient", "average_distance",
            ],
            title="Table 3: network statistics (proxy vs paper sizes)",
        ),
    )
    karate = next(row for row in rows if row["network"] == "karate")
    assert karate["n"] == 34 and karate["m"] == 156
