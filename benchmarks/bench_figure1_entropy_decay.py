"""Figure 1: Shannon-entropy decay of seed-set distributions on Karate (uc0.1).

The paper's Figure 1 plots, for k = 1, 4, 16, the entropy of the seed-set
distribution of Oneshot, Snapshot, and RIS against the sample number; all
three curves drop at the same rate up to a horizontal scaling, and for k = 1
and 4 they converge to zero.  This bench regenerates the k = 1 and k = 4
series at reduced trial counts and sample-number ceilings (the paper sweeps
to 2^16 / 2^24 with 1,000 trials; pure Python cannot, see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.experiments.factories import estimator_factory
from repro.experiments.reporting import format_multi_series
from repro.experiments.sweeps import powers_of_two, sweep_sample_numbers

from .conftest import emit

#: Per-seed-size sample-number grids (Oneshot is the pure-Python bottleneck).
GRIDS = {
    1: {
        "oneshot": powers_of_two(6),
        "snapshot": powers_of_two(6),
        "ris": powers_of_two(10, min_exponent=2),
    },
    4: {
        "oneshot": powers_of_two(5),
        "snapshot": powers_of_two(5),
        "ris": powers_of_two(10, min_exponent=2),
    },
}

TRIALS = {1: 25, 4: 20}


def entropy_series(instance_cache, oracle_cache, k: int):
    graph = instance_cache("karate", "uc0.1")
    oracle = oracle_cache("karate", "uc0.1")
    series = {}
    for approach, grid in GRIDS[k].items():
        sweep = sweep_sample_numbers(
            graph, k, estimator_factory(approach), grid,
            num_trials=TRIALS[k], oracle=oracle, experiment_seed=10 + k,
        )
        series[approach] = {
            s: round(entropy, 3) for s, entropy in sweep.entropies().items()
        }
    return series


def test_figure1a_entropy_karate_k1(benchmark, instance_cache, oracle_cache):
    series = benchmark.pedantic(
        entropy_series, args=(instance_cache, oracle_cache, 1), rounds=1, iterations=1
    )
    emit(
        "figure1a_entropy_karate_k1",
        format_multi_series(
            series, title="Figure 1a: entropy of seed-set distributions, Karate (uc0.1, k=1)"
        ),
    )
    for approach, curve in series.items():
        samples = sorted(curve)
        assert curve[samples[-1]] <= curve[samples[0]], approach


def test_figure1b_entropy_karate_k4(benchmark, instance_cache, oracle_cache):
    series = benchmark.pedantic(
        entropy_series, args=(instance_cache, oracle_cache, 4), rounds=1, iterations=1
    )
    emit(
        "figure1b_entropy_karate_k4",
        format_multi_series(
            series, title="Figure 1b: entropy of seed-set distributions, Karate (uc0.1, k=4)"
        ),
    )
    # Larger seed size -> larger solution space -> entropy starts high.
    assert max(series["ris"].values()) > 0.0
