"""Table 9: traversal cost when conditioned to identical accuracy.

Setting beta = cr1 * gamma, tau = gamma, theta = cr2 * gamma — where cr1 and
cr2 are the comparable number ratios of Oneshot and RIS to Snapshot — makes
the three approaches produce influence distributions of identical mean; the
equal-accuracy cost per unit gamma is then the per-sample traversal cost
multiplied by the respective ratio.  The paper's conclusions (Section 6):
Oneshot is almost always the least time-efficient, RIS wins on large complex
networks, and Snapshot wins on small low-probability networks.

This bench combines the measured comparable ratios with the measured
per-sample costs on Karate (uc0.1 and uc0.01) and the com-Youtube proxy (iwc).
"""

from __future__ import annotations

from repro.experiments.comparison import comparable_ratio_curve
from repro.experiments.factories import estimator_factory
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import powers_of_two, sweep_sample_numbers
from repro.experiments.traversal import equal_accuracy_costs, traversal_cost_table

from .conftest import emit

TRIALS = 20


def equal_accuracy_rows(instance_cache, oracle_cache, dataset, model, scale, grids, seed):
    graph = instance_cache(dataset, model, scale=scale)
    oracle = oracle_cache(dataset, model, scale=scale, pool_size=10_000)
    sweeps = {
        approach: sweep_sample_numbers(
            graph, 1, estimator_factory(approach), grid,
            num_trials=TRIALS, oracle=oracle, experiment_seed=seed + index,
        )
        for index, (approach, grid) in enumerate(grids.items())
    }
    ratios = {"snapshot": 1.0}
    oneshot_curve = comparable_ratio_curve(sweeps["snapshot"], sweeps["oneshot"])
    ris_curve = comparable_ratio_curve(sweeps["snapshot"], sweeps["ris"])
    if oneshot_curve.median_number_ratio() is not None:
        ratios["oneshot"] = oneshot_curve.median_number_ratio()
    if ris_curve.median_number_ratio() is not None:
        ratios["ris"] = ris_curve.median_number_ratio()
    per_sample = traversal_cost_table(
        graph,
        {name: estimator_factory(name) for name in ("oneshot", "snapshot", "ris")},
        k=1,
        num_samples=1,
        num_repetitions=3,
    )
    rows = []
    for cost_row in equal_accuracy_costs(per_sample, ratios):
        rendered = cost_row.as_row()
        rendered["network"] = f"{dataset} ({model})"
        rows.append(rendered)
    return rows


def compute_all(instance_cache, oracle_cache):
    small_grids = {
        "oneshot": powers_of_two(6),
        "snapshot": powers_of_two(5),
        "ris": powers_of_two(11, min_exponent=2),
    }
    rows = []
    rows += equal_accuracy_rows(
        instance_cache, oracle_cache, "karate", "uc0.1", 1.0, small_grids, seed=101
    )
    rows += equal_accuracy_rows(
        instance_cache, oracle_cache, "karate", "uc0.01", 1.0, small_grids, seed=111
    )
    youtube_grids = {
        "oneshot": powers_of_two(3),
        "snapshot": powers_of_two(3),
        "ris": powers_of_two(11, min_exponent=4),
    }
    rows += equal_accuracy_rows(
        instance_cache, oracle_cache, "com_youtube", "iwc", 0.25, youtube_grids, seed=121
    )
    return rows


def test_table9_equal_accuracy_cost(benchmark, instance_cache, oracle_cache):
    rows = benchmark.pedantic(
        compute_all, args=(instance_cache, oracle_cache), rounds=1, iterations=1
    )
    emit(
        "table9_equal_accuracy_cost",
        format_table(
            rows,
            columns=["network", "algorithm", "comparable_ratio", "cost_per_gamma"],
            title="Table 9: traversal cost per unit gamma at identical accuracy",
        ),
    )
    by_network: dict[str, dict[str, float]] = {}
    for row in rows:
        by_network.setdefault(row["network"], {})[row["algorithm"]] = row["cost_per_gamma"]
    # Oneshot is never the cheapest option (Section 6).
    for network, costs in by_network.items():
        assert costs["oneshot"] >= min(costs.values()), network
    # On the large sparse low-probability proxy, RIS beats Oneshot decisively.
    youtube = by_network["com_youtube (iwc)"]
    assert youtube["ris"] < youtube["oneshot"]
