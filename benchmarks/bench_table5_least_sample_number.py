"""Table 5: least sample number for near-optimal solutions with probability 99%.

For each instance the paper finds the smallest sample number at which an
algorithm returns a seed set with influence at least 0.95x the Exact Greedy
reference in at least 99% of trials, and reports it together with the entropy
at that point.  The bench regenerates the Karate rows (four probability
models, k = 1) with reduced trials and also prints the worst-case bounds from
Section 3 to reproduce the paper's bound-vs-empirical gap discussion.
"""

from __future__ import annotations

from repro.algorithms.bounds import oneshot_sample_bound, ris_sample_bound
from repro.experiments.convergence import least_sample_number, reference_spread_from_sweep
from repro.experiments.factories import estimator_factory
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import powers_of_two, sweep_sample_numbers

from .conftest import emit

MODELS = ("uc0.1", "uc0.01", "iwc", "owc")
GRIDS = {
    "oneshot": powers_of_two(6),
    "snapshot": powers_of_two(6),
    "ris": powers_of_two(12, min_exponent=2),
}
TRIALS = 25
# Reduced success probability: with 25 trials the finest resolvable
# probability is 0.96, so the paper's 0.99 criterion is approximated by 0.95.
PROBABILITY = 0.95
QUALITY = 0.9


def least_sample_rows(instance_cache, oracle_cache):
    rows = []
    for model in MODELS:
        graph = instance_cache("karate", model)
        oracle = oracle_cache("karate", model)
        sweeps = {}
        for approach, grid in GRIDS.items():
            sweeps[approach] = sweep_sample_numbers(
                graph, 1, estimator_factory(approach), grid,
                num_trials=TRIALS, oracle=oracle, experiment_seed=61,
            )
        reference = reference_spread_from_sweep(sweeps["ris"])
        row: dict[str, object] = {"network": f"karate ({model})", "k": 1}
        for approach, sweep in sweeps.items():
            result = least_sample_number(
                sweep, reference, quality=QUALITY, probability=PROBABILITY
            )
            row[f"{approach}_samples"] = (
                result.sample_number if result.found else ">max"
            )
            row[f"{approach}_entropy"] = (
                round(result.entropy, 2) if result.entropy is not None else None
            )
        # Worst-case bounds for comparison (Section 5.2.1's gap discussion).
        row["oneshot_bound"] = round(
            oneshot_sample_bound(0.05, 0.01, graph.num_vertices, 1, reference), 0
        )
        row["ris_bound"] = round(
            ris_sample_bound(0.05, 0.01, graph.num_vertices, 1, reference), 0
        )
        rows.append(row)
    return rows


def test_table5_least_sample_number(benchmark, instance_cache, oracle_cache):
    rows = benchmark.pedantic(
        least_sample_rows, args=(instance_cache, oracle_cache), rounds=1, iterations=1
    )
    emit(
        "table5_least_sample_number",
        format_table(
            rows,
            title=(
                "Table 5 (Karate, k=1): least sample number for near-optimal "
                "solutions (reduced criterion: quality 0.9, probability 0.95) "
                "vs worst-case bounds"
            ),
        ),
    )
    # The paper's headline gap: empirical least sample numbers are orders of
    # magnitude below the worst-case bounds wherever they were found.
    for row in rows:
        if isinstance(row["ris_samples"], int):
            assert row["ris_samples"] < row["ris_bound"]
        if isinstance(row["oneshot_samples"], int):
            assert row["oneshot_samples"] < row["oneshot_bound"]
