"""Ablation benches for the design choices listed in DESIGN.md §6.

Two ablations with measurable, paper-relevant effects:

* **CELF lazy evaluation** (Section 3.3.3's Estimate-call pruning): identical
  solutions for submodular estimators with far fewer Estimate calls.
* **Snapshot graph-reduction Update** (Section 3.4.3): identical estimates
  with lower traversal cost for k > 1.
"""

from __future__ import annotations

from repro.algorithms.celf import celf_maximize
from repro.algorithms.framework import greedy_maximize
from repro.algorithms.snapshot import SnapshotEstimator
from repro.algorithms.ris import RISEstimator
from repro.experiments.reporting import format_table

from .conftest import emit


def celf_rows(instance_cache):
    graph = instance_cache("karate", "uc0.1")
    rows = []
    for k in (2, 4, 8):
        lazy_result, stats = celf_maximize(graph, k, RISEstimator(2048), seed=5)
        full_result = greedy_maximize(graph, k, RISEstimator(2048), seed=5)
        rows.append(
            {
                "k": k,
                "full_estimate_calls": stats.full_greedy_calls,
                "celf_estimate_calls": stats.estimate_calls,
                "savings": round(stats.savings_ratio, 3),
                "same_solution": lazy_result.seed_set == full_result.seed_set,
            }
        )
    return rows


def test_ablation_celf_lazy_evaluation(benchmark, instance_cache):
    rows = benchmark.pedantic(celf_rows, args=(instance_cache,), rounds=1, iterations=1)
    emit(
        "ablation_celf",
        format_table(rows, title="Ablation: CELF lazy evaluation vs full greedy (RIS, Karate uc0.1)"),
    )
    for row in rows:
        assert row["celf_estimate_calls"] <= row["full_estimate_calls"]
    assert any(row["savings"] > 0 for row in rows)


def snapshot_update_rows(instance_cache):
    graph = instance_cache("karate", "uc0.1")
    rows = []
    for k in (1, 4, 8):
        naive = greedy_maximize(
            graph, k, SnapshotEstimator(64, update_strategy="naive"), seed=9
        )
        reduced = greedy_maximize(
            graph, k, SnapshotEstimator(64, update_strategy="reduce"), seed=9
        )
        rows.append(
            {
                "k": k,
                "naive_vertex_cost": naive.cost.traversal.vertices,
                "reduce_vertex_cost": reduced.cost.traversal.vertices,
                "naive_edge_cost": naive.cost.traversal.edges,
                "reduce_edge_cost": reduced.cost.traversal.edges,
                "same_solution": naive.seed_set == reduced.seed_set,
            }
        )
    return rows


def test_ablation_snapshot_graph_reduction(benchmark, instance_cache):
    rows = benchmark.pedantic(
        snapshot_update_rows, args=(instance_cache,), rounds=1, iterations=1
    )
    emit(
        "ablation_snapshot_update",
        format_table(
            rows,
            title="Ablation: Snapshot naive vs graph-reduction Update (Karate uc0.1, tau=64)",
        ),
    )
    for row in rows:
        assert row["same_solution"]
        if row["k"] > 1:
            assert row["reduce_vertex_cost"] < row["naive_vertex_cost"]
