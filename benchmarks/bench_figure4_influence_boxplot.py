"""Figure 4: influence-distribution box plots against the sample number.

The paper's Figure 4 shows notched box plots of the influence distribution of
Oneshot, Snapshot, and RIS on Physicians (uc0.1, k = 16) as the sample number
grows: mean and median increase monotonically toward the unique limit.  This
bench regenerates the same box-plot statistics on Karate (uc0.1, k = 4) —
Physicians at k = 16 with Oneshot is out of the pure-Python budget — and on
the Physicians proxy for RIS only.
"""

from __future__ import annotations

from repro.experiments.factories import estimator_factory
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import powers_of_two, sweep_sample_numbers

from .conftest import emit

GRIDS = {
    "oneshot": powers_of_two(5),
    "snapshot": powers_of_two(6),
    "ris": powers_of_two(10, min_exponent=2),
}


def boxplot_rows(instance_cache, oracle_cache):
    graph = instance_cache("karate", "uc0.1")
    oracle = oracle_cache("karate", "uc0.1")
    rows = []
    for approach, grid in GRIDS.items():
        sweep = sweep_sample_numbers(
            graph, 4, estimator_factory(approach), grid,
            num_trials=25, oracle=oracle, experiment_seed=41,
        )
        for num_samples, distribution in sweep.influence_distributions().items():
            row = {"approach": approach, "samples": num_samples}
            row.update(distribution.as_row())
            rows.append(row)
    return rows


def ris_physicians_rows(instance_cache, oracle_cache):
    graph = instance_cache("physicians", "uc0.1", scale=0.6)
    oracle = oracle_cache("physicians", "uc0.1", scale=0.6, pool_size=10_000)
    sweep = sweep_sample_numbers(
        graph, 4, estimator_factory("ris"), powers_of_two(11, min_exponent=3),
        num_trials=20, oracle=oracle, experiment_seed=42,
    )
    rows = []
    for num_samples, distribution in sweep.influence_distributions().items():
        row = {"approach": "ris", "samples": num_samples}
        row.update(distribution.as_row())
        rows.append(row)
    return rows


def test_figure4_karate_boxplots(benchmark, instance_cache, oracle_cache):
    rows = benchmark.pedantic(
        boxplot_rows, args=(instance_cache, oracle_cache), rounds=1, iterations=1
    )
    emit(
        "figure4_boxplot_karate_k4",
        format_table(
            rows,
            columns=["approach", "samples", "mean", "p1", "p25", "median", "p75", "p99"],
            title="Figure 4 (adapted): influence distribution vs sample number, Karate (uc0.1, k=4)",
        ),
    )
    # Mean influence at the largest sample number beats the smallest for every approach.
    for approach in GRIDS:
        approach_rows = [r for r in rows if r["approach"] == approach]
        approach_rows.sort(key=lambda r: r["samples"])
        assert approach_rows[-1]["mean"] >= approach_rows[0]["mean"] - 1e-9


def test_figure4_physicians_ris_boxplots(benchmark, instance_cache, oracle_cache):
    rows = benchmark.pedantic(
        ris_physicians_rows, args=(instance_cache, oracle_cache), rounds=1, iterations=1
    )
    emit(
        "figure4_boxplot_physicians_ris",
        format_table(
            rows,
            columns=["approach", "samples", "mean", "p1", "p25", "median", "p75", "p99"],
            title="Figure 4 (adapted): RIS influence distribution, Physicians proxy (uc0.1, k=4)",
        ),
    )
    rows.sort(key=lambda r: r["samples"])
    assert rows[-1]["mean"] >= rows[0]["mean"] - 1e-9
