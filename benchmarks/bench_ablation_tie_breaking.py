"""Ablation: random tie-breaking versus fixed vertex order.

Algorithm 3.1 shuffles the vertex order once per run so ties between equal
estimates are broken uniformly at random; without it, the seed-set
distribution collapses onto whichever tied vertex happens to come first,
hiding exactly the diversity the paper studies (and the Figure 2 plateaus
would disappear).  This bench quantifies the effect on a star graph where all
leaves are exactly tied for the second seed.
"""

from __future__ import annotations

from repro.algorithms.framework import greedy_maximize
from repro.algorithms.snapshot import SnapshotEstimator
from repro.experiments.reporting import format_table
from repro.experiments.seed_distribution import SeedSetDistribution
from repro.graphs.generators import star

from .conftest import emit

NUM_RUNS = 40


def tie_breaking_rows():
    graph = star(8)
    shuffled_seed_sets = []
    for run in range(NUM_RUNS):
        result = greedy_maximize(graph, 2, SnapshotEstimator(2), seed=run)
        shuffled_seed_sets.append(result.seed_set)
    shuffled = SeedSetDistribution.from_seed_sets(shuffled_seed_sets)

    # Fixed order: reuse the same run seed so the shuffle is identical every
    # run, which is what a naive implementation without per-run shuffling does.
    fixed_seed_sets = []
    for _ in range(NUM_RUNS):
        result = greedy_maximize(graph, 2, SnapshotEstimator(2), seed=0)
        fixed_seed_sets.append(result.seed_set)
    fixed = SeedSetDistribution.from_seed_sets(fixed_seed_sets)

    return [
        {
            "tie_breaking": "random shuffle per run (Algorithm 3.1)",
            "distinct_seed_sets": shuffled.support_size,
            "entropy": round(shuffled.entropy(), 3),
        },
        {
            "tie_breaking": "fixed order (ablated)",
            "distinct_seed_sets": fixed.support_size,
            "entropy": round(fixed.entropy(), 3),
        },
    ]


def test_ablation_tie_breaking(benchmark):
    rows = benchmark.pedantic(tie_breaking_rows, rounds=1, iterations=1)
    emit(
        "ablation_tie_breaking",
        format_table(rows, title="Ablation: tie-breaking rule on a star graph (k=2, tied leaves)"),
    )
    shuffled_row, fixed_row = rows
    assert shuffled_row["distinct_seed_sets"] > fixed_row["distinct_seed_sets"]
    assert fixed_row["entropy"] == 0.0
