"""Ablation: adaptive sample-number determination (the paper's Section 7 direction).

The paper concludes that Oneshot and Snapshot lack a sample-number selection
mechanism and asks whether RIS-style determination can be applied to them.
This bench exercises the two mechanisms implemented in
:mod:`repro.algorithms.stopping`:

* the worst-case RR-set count from the TIM-style OPT lower bound versus the
  sample number the doubling heuristic actually settles on, and
* the doubling rule applied uniformly to Oneshot, Snapshot, and RIS, showing
  the chosen sample number and the resulting solution quality per approach.
"""

from __future__ import annotations

from repro.algorithms.stopping import (
    adaptive_sample_number,
    determine_theta,
    estimate_opt_lower_bound,
)
from repro.experiments.factories import estimator_factory
from repro.experiments.reporting import format_table

from .conftest import emit

APPROACHES = ("oneshot", "snapshot", "ris")
MAX_SAMPLES = {"oneshot": 256, "snapshot": 256, "ris": 8192}


def stopping_rows(instance_cache, oracle_cache):
    graph = instance_cache("karate", "uc0.1")
    oracle = oracle_cache("karate", "uc0.1")
    best_single = oracle.top_vertices(1)[0][1]

    rows = []
    for approach in APPROACHES:
        outcome = adaptive_sample_number(
            graph, 1, estimator_factory(approach), oracle,
            initial_samples=1 if approach != "ris" else 8,
            max_samples=MAX_SAMPLES[approach],
            relative_tolerance=0.02,
            seed=13,
        )
        rows.append(
            {
                "approach": approach,
                "chosen_samples": outcome.sample_number,
                "converged": outcome.converged,
                "influence": round(oracle.spread(outcome.result.seed_set), 3),
                "fraction_of_best_single": round(
                    oracle.spread(outcome.result.seed_set) / best_single, 3
                ),
                "doubling_rounds": len(outcome.trace),
            }
        )

    opt_lb = estimate_opt_lower_bound(graph, 1, seed=3)
    theta_guaranteed = determine_theta(graph, 1, epsilon=0.1, opt_lower_bound=opt_lb)
    bound_rows = [
        {
            "quantity": "TIM-style OPT lower bound (k=1)",
            "value": round(opt_lb, 3),
        },
        {
            "quantity": "guaranteed theta (eps=0.1, delta=1/n)",
            "value": theta_guaranteed,
        },
        {
            "quantity": "doubling-rule theta (empirical)",
            "value": next(r["chosen_samples"] for r in rows if r["approach"] == "ris"),
        },
    ]
    return rows, bound_rows


def test_ablation_adaptive_stopping(benchmark, instance_cache, oracle_cache):
    rows, bound_rows = benchmark.pedantic(
        stopping_rows, args=(instance_cache, oracle_cache), rounds=1, iterations=1
    )
    emit(
        "ablation_stopping",
        format_table(
            rows,
            title="Ablation: doubling sample-number selection per approach (Karate uc0.1, k=1)",
        )
        + "\n\n"
        + format_table(bound_rows, title="Worst-case vs empirical RR-set counts"),
    )
    for row in rows:
        assert row["fraction_of_best_single"] >= 0.7
    guaranteed = next(r["value"] for r in bound_rows if "guaranteed" in r["quantity"])
    empirical = next(r["value"] for r in bound_rows if "doubling" in r["quantity"])
    assert empirical < guaranteed
