"""Legacy setup shim.

The environment's setuptools predates PEP 660 editable installs (no ``wheel``
package available offline), so ``pip install -e . --no-use-pep517`` falls back
to ``setup.py develop`` through this shim.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
)
