"""Shared fixtures for the repro test suite.

The fixtures favour tiny, hand-analysable graphs so that tests can assert
exact values (exact spreads, exact reachability) rather than loose bounds.
"""

from __future__ import annotations

import pytest

from repro.diffusion.random_source import RandomSource
from repro.estimation.oracle import RRPoolOracle
from repro.graphs.builder import GraphBuilder
from repro.graphs.datasets import load_dataset
from repro.graphs.generators import path, star
from repro.graphs.probability import assign_probabilities


@pytest.fixture
def rng() -> RandomSource:
    """A deterministic random source."""
    return RandomSource(12345)


@pytest.fixture
def star_graph():
    """Star with centre 0 and 5 leaves, deterministic edges (p = 1)."""
    return star(5)


@pytest.fixture
def path_graph():
    """Directed path on 4 vertices with deterministic edges."""
    return path(4)


@pytest.fixture
def two_hubs_graph():
    """Two competing hubs: vertex 0 reaches {1,2,3}, vertex 4 reaches {5,6}.

    With all probabilities 1, the optimal single seed is vertex 0 (spread 4)
    and the optimal pair is {0, 4} (spread 7).
    """
    builder = GraphBuilder(7)
    builder.add_edge(0, 1)
    builder.add_edge(0, 2)
    builder.add_edge(0, 3)
    builder.add_edge(4, 5)
    builder.add_edge(4, 6)
    return builder.build(name="two_hubs")


@pytest.fixture
def probabilistic_diamond():
    """Diamond 0 -> {1, 2} -> 3 with probability 0.5 everywhere.

    Small enough (4 edges) for exact enumeration; asymmetric enough that the
    optimal seed is unambiguous (vertex 0).
    """
    builder = GraphBuilder(4, default_probability=0.5)
    builder.add_edge(0, 1)
    builder.add_edge(0, 2)
    builder.add_edge(1, 3)
    builder.add_edge(2, 3)
    return builder.build(name="diamond")


@pytest.fixture(scope="session")
def karate_uc01():
    """Karate club under uc0.1 (the paper's headline small instance)."""
    return assign_probabilities(load_dataset("karate"), "uc0.1")


@pytest.fixture(scope="session")
def karate_iwc():
    """Karate club under the in-degree weighted cascade."""
    return assign_probabilities(load_dataset("karate"), "iwc")


@pytest.fixture(scope="session")
def karate_oracle(karate_uc01) -> RRPoolOracle:
    """A moderately sized shared oracle for karate (uc0.1)."""
    return RRPoolOracle(karate_uc01, pool_size=20_000, seed=99)
