"""Tests for per-sample traversal cost and equal-accuracy cost (Tables 8-9)."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentConfigurationError
from repro.experiments.factories import estimator_factory
from repro.experiments.traversal import (
    empirical_cost_ratios,
    equal_accuracy_costs,
    per_sample_traversal_cost,
    traversal_cost_table,
)


@pytest.fixture(scope="module")
def karate_cost_rows(karate_uc01):
    factories = {
        name: estimator_factory(name) for name in ("oneshot", "snapshot", "ris")
    }
    return traversal_cost_table(
        karate_uc01, factories, k=1, num_samples=1, num_repetitions=5, experiment_seed=0
    )


class TestPerSampleTraversalCost:
    def test_row_metadata(self, karate_uc01):
        row = per_sample_traversal_cost(
            karate_uc01, estimator_factory("ris"), num_repetitions=2
        )
        assert row.approach == "ris"
        assert row.graph_name == karate_uc01.name
        assert row.num_repetitions == 2
        assert set(row.as_row()) >= {"network", "algorithm", "vertex", "edge"}

    def test_oneshot_vertex_cost_close_to_total_influence(self, karate_cost_rows, karate_oracle):
        # Table 8 / Appendix: Oneshot vertex cost at beta=1, k=1 is sum_v Inf(v).
        oneshot = next(r for r in karate_cost_rows if r.approach == "oneshot")
        expected = float(karate_oracle.single_vertex_spreads().sum())
        assert oneshot.vertex_cost == pytest.approx(expected, rel=0.25)

    def test_snapshot_vertex_cost_matches_oneshot(self, karate_cost_rows):
        # Section 5.3.2: vertex traversal cost of Snapshot equals Oneshot's.
        oneshot = next(r for r in karate_cost_rows if r.approach == "oneshot")
        snapshot = next(r for r in karate_cost_rows if r.approach == "snapshot")
        assert snapshot.vertex_cost == pytest.approx(oneshot.vertex_cost, rel=0.35)

    def test_snapshot_edge_cost_scaled_by_live_fraction(self, karate_cost_rows, karate_uc01):
        # Snapshot scans only live edges: edge cost ~ (m~/m) x Oneshot edge cost.
        oneshot = next(r for r in karate_cost_rows if r.approach == "oneshot")
        snapshot = next(r for r in karate_cost_rows if r.approach == "snapshot")
        live_fraction = karate_uc01.expected_live_edges / karate_uc01.num_edges
        assert snapshot.edge_cost / oneshot.edge_cost == pytest.approx(
            live_fraction, rel=0.6
        )

    def test_ris_is_cheapest_per_sample(self, karate_cost_rows):
        ris = next(r for r in karate_cost_rows if r.approach == "ris")
        for row in karate_cost_rows:
            if row.approach != "ris":
                assert ris.total_cost < row.total_cost

    def test_ris_vertex_cost_about_ept(self, karate_cost_rows):
        # Table 8 reports about 2.0 vertices for Karate uc0.1.
        ris = next(r for r in karate_cost_rows if r.approach == "ris")
        assert 1.0 <= ris.vertex_cost <= 5.0

    def test_sample_size_columns(self, karate_cost_rows):
        oneshot = next(r for r in karate_cost_rows if r.approach == "oneshot")
        snapshot = next(r for r in karate_cost_rows if r.approach == "snapshot")
        ris = next(r for r in karate_cost_rows if r.approach == "ris")
        assert oneshot.sample_vertices == 0 and oneshot.sample_edges == 0
        assert snapshot.sample_edges > 0
        assert ris.sample_vertices > 0


class TestEmpiricalCostRatios:
    def test_ratios_normalised_to_oneshot(self, karate_cost_rows):
        ratios = empirical_cost_ratios(karate_cost_rows)
        assert ratios["oneshot_vertex"] == 1.0
        assert ratios["oneshot_edge"] == 1.0
        assert ratios["ris_vertex"] < 0.2
        assert ratios["snapshot_edge"] < 0.5

    def test_requires_oneshot_row(self, karate_cost_rows):
        without_oneshot = [r for r in karate_cost_rows if r.approach != "oneshot"]
        with pytest.raises(ExperimentConfigurationError):
            empirical_cost_ratios(without_oneshot)


class TestEqualAccuracyCosts:
    def test_combines_ratio_and_cost(self, karate_cost_rows):
        rows = equal_accuracy_costs(
            karate_cost_rows, {"oneshot": 2.0, "snapshot": 1.0, "ris": 32.0}
        )
        by_approach = {row.approach: row for row in rows}
        oneshot_base = next(r for r in karate_cost_rows if r.approach == "oneshot")
        assert by_approach["oneshot"].cost_per_gamma == pytest.approx(
            2.0 * oneshot_base.total_cost
        )
        assert by_approach["snapshot"].comparable_ratio == 1.0

    def test_missing_ratio_defaults_to_one(self, karate_cost_rows):
        rows = equal_accuracy_costs(karate_cost_rows, {})
        for row, base in zip(rows, karate_cost_rows):
            assert row.cost_per_gamma == pytest.approx(base.total_cost)

    def test_invalid_ratio_rejected(self, karate_cost_rows):
        with pytest.raises(ExperimentConfigurationError):
            equal_accuracy_costs(karate_cost_rows, {"oneshot": -1.0})

    def test_as_row_keys(self, karate_cost_rows):
        rows = equal_accuracy_costs(karate_cost_rows, {"ris": 8.0})
        assert {"network", "algorithm", "comparable_ratio", "cost_per_gamma"} <= set(
            rows[0].as_row()
        )
