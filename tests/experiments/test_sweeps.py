"""Tests for sample-number sweeps."""

from __future__ import annotations

import pytest

from repro.estimation.oracle import RRPoolOracle
from repro.exceptions import ExperimentConfigurationError
from repro.experiments.factories import estimator_factory
from repro.experiments.sweeps import SweepResult, powers_of_two, sweep_sample_numbers
from repro.graphs.datasets import load_dataset
from repro.graphs.probability import assign_probabilities


class TestPowersOfTwo:
    def test_default_range(self):
        assert powers_of_two(4) == (1, 2, 4, 8, 16)

    def test_min_exponent(self):
        assert powers_of_two(5, min_exponent=3) == (8, 16, 32)

    def test_single_point(self):
        assert powers_of_two(0) == (1,)

    def test_invalid_range(self):
        with pytest.raises(ExperimentConfigurationError):
            powers_of_two(2, min_exponent=5)


@pytest.fixture(scope="module")
def karate_sweep():
    graph = assign_probabilities(load_dataset("karate"), "uc0.1")
    oracle = RRPoolOracle(graph, pool_size=10_000, seed=5)
    sweep = sweep_sample_numbers(
        graph,
        1,
        estimator_factory("ris"),
        powers_of_two(8, min_exponent=2),
        num_trials=20,
        oracle=oracle,
        experiment_seed=1,
    )
    return graph, oracle, sweep


class TestSweepSampleNumbers:
    def test_grid_covered(self, karate_sweep):
        _, _, sweep = karate_sweep
        assert sweep.sample_numbers == (4, 8, 16, 32, 64, 128, 256)

    def test_metadata(self, karate_sweep):
        graph, _, sweep = karate_sweep
        assert sweep.approach == "ris"
        assert sweep.k == 1
        assert sweep.graph_name == graph.name

    def test_trial_set_lookup(self, karate_sweep):
        _, _, sweep = karate_sweep
        assert sweep.trial_set(16).num_samples == 16
        with pytest.raises(ExperimentConfigurationError):
            sweep.trial_set(1024)

    def test_entropy_decreases_overall(self, karate_sweep):
        _, _, sweep = karate_sweep
        entropies = sweep.entropies()
        assert entropies[sweep.sample_numbers[-1]] <= entropies[sweep.sample_numbers[0]]

    def test_mean_influence_improves_overall(self, karate_sweep):
        _, _, sweep = karate_sweep
        means = sweep.mean_influences()
        assert means[sweep.sample_numbers[-1]] >= means[sweep.sample_numbers[0]]

    def test_influence_distributions_keys(self, karate_sweep):
        _, _, sweep = karate_sweep
        distributions = sweep.influence_distributions()
        assert set(distributions) == set(sweep.sample_numbers)

    def test_sample_sizes_grow_with_sample_number(self, karate_sweep):
        _, _, sweep = karate_sweep
        sizes = sweep.mean_sample_sizes()
        assert sizes[256] > sizes[4]

    def test_final_trial_set(self, karate_sweep):
        _, _, sweep = karate_sweep
        assert sweep.final_trial_set().num_samples == 256

    def test_empty_sample_numbers_rejected(self, karate_sweep):
        graph, oracle, _ = karate_sweep
        with pytest.raises(ExperimentConfigurationError):
            sweep_sample_numbers(
                graph, 1, estimator_factory("ris"), [], 5, oracle=oracle
            )

    def test_duplicate_sample_numbers_deduplicated(self, karate_sweep):
        graph, oracle, _ = karate_sweep
        sweep = sweep_sample_numbers(
            graph, 1, estimator_factory("ris"), [8, 8, 16], 5, oracle=oracle
        )
        assert sweep.sample_numbers == (8, 16)
