"""Tests for influence-distribution summaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ExperimentConfigurationError
from repro.experiments.distributions import (
    InfluenceDistribution,
    mean_versus_statistics,
    near_optimal_probability,
)


class TestInfluenceDistribution:
    def test_constant_values(self):
        dist = InfluenceDistribution.from_values([5.0] * 20)
        assert dist.mean == 5.0
        assert dist.std == 0.0
        assert dist.median == 5.0
        assert dist.percentile_1 == 5.0
        assert dist.percentile_99 == 5.0
        assert dist.interquartile_range == 0.0

    def test_known_statistics(self):
        values = np.arange(1, 101, dtype=float)
        dist = InfluenceDistribution.from_values(values)
        assert dist.mean == pytest.approx(50.5)
        assert dist.median == pytest.approx(50.5)
        assert dist.minimum == 1.0
        assert dist.maximum == 100.0
        assert dist.percentile_25 == pytest.approx(np.percentile(values, 25))

    def test_notch_contains_median(self):
        dist = InfluenceDistribution.from_values(np.random.default_rng(0).normal(10, 2, 200))
        assert dist.notch_low <= dist.median <= dist.notch_high

    def test_notch_shrinks_with_more_trials(self):
        rng = np.random.default_rng(1)
        small = InfluenceDistribution.from_values(rng.normal(10, 2, 50))
        large = InfluenceDistribution.from_values(rng.normal(10, 2, 5000))
        assert (large.notch_high - large.notch_low) < (small.notch_high - small.notch_low)

    def test_empty_values_rejected(self):
        with pytest.raises(ExperimentConfigurationError):
            InfluenceDistribution.from_values([])

    def test_single_value(self):
        dist = InfluenceDistribution.from_values([3.0])
        assert dist.num_trials == 1
        assert dist.std == 0.0

    def test_as_row_keys(self):
        row = InfluenceDistribution.from_values([1.0, 2.0, 3.0]).as_row()
        assert {"mean", "std", "median", "p1", "p99"} <= set(row)

    def test_is_better_than_compares_means(self):
        better = InfluenceDistribution.from_values([10.0, 12.0])
        worse = InfluenceDistribution.from_values([5.0, 20.0 - 14.0])
        assert better.is_better_than(worse)
        assert not worse.is_better_than(better)


class TestNearOptimalProbability:
    def test_all_above_threshold(self):
        assert near_optimal_probability([10, 10, 10], reference=10) == 1.0

    def test_none_above_threshold(self):
        assert near_optimal_probability([1, 2, 3], reference=100) == 0.0

    def test_partial(self):
        values = [9.5, 9.4, 8.0, 10.0]
        # threshold is 0.95 * 10 = 9.5: only 9.5 and 10.0 qualify.
        assert near_optimal_probability(values, reference=10, quality=0.95) == 0.5

    def test_empty_values(self):
        assert near_optimal_probability([], reference=10) == 0.0

    def test_invalid_reference(self):
        with pytest.raises(ExperimentConfigurationError):
            near_optimal_probability([1.0], reference=0.0)

    def test_invalid_quality(self):
        with pytest.raises(ExperimentConfigurationError):
            near_optimal_probability([1.0], reference=1.0, quality=1.5)


class TestMeanVersusStatistics:
    def test_series_sorted_by_mean(self):
        distributions = [
            InfluenceDistribution.from_values([5.0, 6.0]),
            InfluenceDistribution.from_values([1.0, 2.0]),
            InfluenceDistribution.from_values([10.0, 11.0]),
        ]
        series = mean_versus_statistics(distributions)
        assert series["mean"] == sorted(series["mean"])
        assert len(series["std"]) == 3
        assert len(series["p1"]) == 3
