"""Tests for least-sample-number and entropy-convergence analyses."""

from __future__ import annotations

import pytest

from repro.estimation.oracle import RRPoolOracle
from repro.exceptions import ExperimentConfigurationError
from repro.experiments.convergence import (
    entropy_convergence_point,
    entropy_scaling_factor,
    least_sample_number,
    reference_spread_from_sweep,
)
from repro.experiments.factories import estimator_factory
from repro.experiments.sweeps import sweep_sample_numbers
from repro.graphs.datasets import load_dataset
from repro.graphs.generators import star
from repro.graphs.probability import assign_probabilities


@pytest.fixture(scope="module")
def star_sweep():
    graph = star(6)
    oracle = RRPoolOracle(graph, pool_size=2000, seed=0)
    sweep = sweep_sample_numbers(
        graph, 1, estimator_factory("snapshot"), (1, 2, 4, 8), 10, oracle=oracle
    )
    return graph, oracle, sweep


@pytest.fixture(scope="module")
def karate_ris_sweep():
    graph = assign_probabilities(load_dataset("karate"), "uc0.1")
    oracle = RRPoolOracle(graph, pool_size=10_000, seed=2)
    sweep = sweep_sample_numbers(
        graph, 1, estimator_factory("ris"), (4, 16, 64, 256, 1024), 25,
        oracle=oracle, experiment_seed=3,
    )
    return graph, oracle, sweep


class TestReferenceSpread:
    def test_star_reference_is_full_graph(self, star_sweep):
        _, _, sweep = star_sweep
        assert reference_spread_from_sweep(sweep) == pytest.approx(7.0)

    def test_karate_reference_close_to_best_single_vertex(self, karate_ris_sweep):
        _, oracle, sweep = karate_ris_sweep
        reference = reference_spread_from_sweep(sweep)
        best = oracle.top_vertices(1)[0][1]
        assert reference >= 0.9 * best


class TestLeastSampleNumber:
    def test_deterministic_graph_needs_one_sample(self, star_sweep):
        _, _, sweep = star_sweep
        result = least_sample_number(sweep, reference_spread=7.0)
        assert result.found
        assert result.sample_number == 1
        assert result.entropy == 0.0

    def test_unreachable_requirement_reports_not_found(self, star_sweep):
        _, _, sweep = star_sweep
        result = least_sample_number(sweep, reference_spread=100.0)
        assert not result.found
        assert result.sample_number is None
        assert result.as_row()["sample_number"] == ">max"

    def test_karate_least_sample_number_is_reasonable(self, karate_ris_sweep):
        # Karate uc0.1 has two nearly tied top vertices (0 and 33), so a 0.95
        # quality cutoff sits right between them; 0.9 keeps the test robust
        # while still requiring genuine convergence.
        _, _, sweep = karate_ris_sweep
        reference = reference_spread_from_sweep(sweep)
        result = least_sample_number(sweep, reference, quality=0.9, probability=0.9)
        assert result.found
        assert result.sample_number in sweep.sample_numbers

    def test_lower_quality_needs_fewer_samples(self, karate_ris_sweep):
        _, _, sweep = karate_ris_sweep
        reference = reference_spread_from_sweep(sweep)
        strict = least_sample_number(sweep, reference, quality=0.99, probability=0.95)
        lenient = least_sample_number(sweep, reference, quality=0.5, probability=0.95)
        if strict.found and lenient.found:
            assert lenient.sample_number <= strict.sample_number

    def test_invalid_reference(self, star_sweep):
        _, _, sweep = star_sweep
        with pytest.raises(ExperimentConfigurationError):
            least_sample_number(sweep, reference_spread=0.0)

    def test_invalid_probability(self, star_sweep):
        _, _, sweep = star_sweep
        with pytest.raises(ExperimentConfigurationError):
            least_sample_number(sweep, reference_spread=1.0, probability=1.5)

    def test_as_row_log2(self, star_sweep):
        _, _, sweep = star_sweep
        row = least_sample_number(sweep, reference_spread=7.0).as_row()
        assert row["log2_sample_number"] == 0.0


class TestEntropyConvergence:
    def test_deterministic_graph_converges_immediately(self, star_sweep):
        _, _, sweep = star_sweep
        assert entropy_convergence_point(sweep) == 1

    def test_threshold_parameter(self, karate_ris_sweep):
        _, _, sweep = karate_ris_sweep
        loose = entropy_convergence_point(sweep, threshold=3.0)
        strict = entropy_convergence_point(sweep, threshold=0.0)
        if loose is not None and strict is not None:
            assert loose <= strict

    def test_invalid_threshold(self, star_sweep):
        _, _, sweep = star_sweep
        with pytest.raises(ExperimentConfigurationError):
            entropy_convergence_point(sweep, threshold=-1.0)


class TestEntropyScalingFactor:
    def test_identical_sweeps_scale_factor_one(self, karate_ris_sweep):
        _, _, sweep = karate_ris_sweep
        factor = entropy_scaling_factor(sweep, sweep, entropy_level=1.0)
        if factor is not None:
            assert factor == pytest.approx(1.0)

    def test_never_converging_returns_none(self, karate_ris_sweep, star_sweep):
        _, _, karate = karate_ris_sweep
        factor = entropy_scaling_factor(karate, karate, entropy_level=-1.0)
        assert factor is None
