"""Tests for comparable number/size ratio computation."""

from __future__ import annotations

import pytest

from repro.estimation.oracle import RRPoolOracle
from repro.exceptions import ExperimentConfigurationError
from repro.experiments.comparison import (
    comparable_ratio_curve,
    median_comparable_number_ratio,
    median_comparable_size_ratio,
)
from repro.experiments.factories import estimator_factory
from repro.experiments.sweeps import sweep_sample_numbers
from repro.graphs.datasets import load_dataset
from repro.graphs.probability import assign_probabilities


@pytest.fixture(scope="module")
def karate_sweeps():
    graph = assign_probabilities(load_dataset("karate"), "uc0.1")
    oracle = RRPoolOracle(graph, pool_size=10_000, seed=4)
    common = dict(num_trials=15, oracle=oracle, experiment_seed=2)
    snapshot_sweep = sweep_sample_numbers(
        graph, 1, estimator_factory("snapshot"), (1, 2, 4, 8, 16, 32), **common
    )
    ris_sweep = sweep_sample_numbers(
        graph, 1, estimator_factory("ris"), (4, 16, 64, 256, 1024, 4096), **common
    )
    oneshot_sweep = sweep_sample_numbers(
        graph, 1, estimator_factory("oneshot"), (1, 2, 4, 8, 16, 32, 64), **common
    )
    return graph, snapshot_sweep, ris_sweep, oneshot_sweep


class TestComparableRatioCurve:
    def test_self_comparison_ratio_at_most_one(self, karate_sweeps):
        _, snapshot_sweep, _, _ = karate_sweeps
        curve = comparable_ratio_curve(snapshot_sweep, snapshot_sweep)
        for point in curve.defined_points():
            # The least own sample number matching its own mean is <= itself.
            assert point.number_ratio <= 1.0

    def test_metadata(self, karate_sweeps):
        _, snapshot_sweep, ris_sweep, _ = karate_sweeps
        curve = comparable_ratio_curve(snapshot_sweep, ris_sweep)
        assert curve.reference_approach == "snapshot"
        assert curve.target_approach == "ris"
        assert len(curve.points) == len(snapshot_sweep.sample_numbers)

    def test_ris_needs_more_samples_than_snapshot(self, karate_sweeps):
        # Paper Table 7: on Karate uc0.1 the RIS/Snapshot comparable number
        # ratio is around 32 (>> 1).
        _, snapshot_sweep, ris_sweep, _ = karate_sweeps
        ratio = median_comparable_number_ratio(snapshot_sweep, ris_sweep)
        assert ratio is not None
        assert ratio > 1.0

    def test_oneshot_needs_at_least_as_many_as_snapshot(self, karate_sweeps):
        # Paper Table 6: Oneshot/Snapshot comparable ratio >= 1 (typically 1-32).
        _, snapshot_sweep, _, oneshot_sweep = karate_sweeps
        ratio = median_comparable_number_ratio(snapshot_sweep, oneshot_sweep)
        assert ratio is not None
        assert ratio >= 0.5

    def test_size_ratio_defined_for_ris_vs_snapshot(self, karate_sweeps):
        _, snapshot_sweep, ris_sweep, _ = karate_sweeps
        size_ratio = median_comparable_size_ratio(snapshot_sweep, ris_sweep)
        assert size_ratio is not None
        assert size_ratio > 0.0

    def test_restricting_reference_points(self, karate_sweeps):
        _, snapshot_sweep, ris_sweep, _ = karate_sweeps
        curve = comparable_ratio_curve(
            snapshot_sweep, ris_sweep, reference_sample_numbers=(4, 16)
        )
        assert len(curve.points) == 2

    def test_unknown_reference_point_rejected(self, karate_sweeps):
        _, snapshot_sweep, ris_sweep, _ = karate_sweeps
        with pytest.raises(ExperimentConfigurationError):
            comparable_ratio_curve(
                snapshot_sweep, ris_sweep, reference_sample_numbers=(3,)
            )

    def test_mismatched_instances_rejected(self, karate_sweeps):
        from repro.graphs.generators import star

        graph = star(4)
        oracle = RRPoolOracle(graph, pool_size=500, seed=0)
        other = sweep_sample_numbers(
            graph, 1, estimator_factory("ris"), (2, 4), 4, oracle=oracle
        )
        _, snapshot_sweep, _, _ = karate_sweeps
        with pytest.raises(ExperimentConfigurationError):
            comparable_ratio_curve(snapshot_sweep, other)

    def test_undefined_points_when_target_sweep_too_short(self, karate_sweeps):
        _, snapshot_sweep, _, _ = karate_sweeps
        graph = assign_probabilities(load_dataset("karate"), "uc0.1")
        oracle = RRPoolOracle(graph, pool_size=5_000, seed=7)
        tiny_ris = sweep_sample_numbers(
            graph, 1, estimator_factory("ris"), (1, 2), 10, oracle=oracle
        )
        curve = comparable_ratio_curve(snapshot_sweep, tiny_ris)
        assert any(point.comparable_samples is None for point in curve.points)

    def test_as_rows_shape(self, karate_sweeps):
        _, snapshot_sweep, ris_sweep, _ = karate_sweeps
        rows = comparable_ratio_curve(snapshot_sweep, ris_sweep).as_rows()
        assert len(rows) == len(snapshot_sweep.sample_numbers)
        assert {"reference_samples", "comparable_samples", "number_ratio"} <= set(rows[0])
