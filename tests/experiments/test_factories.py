"""Tests for the named estimator factories."""

from __future__ import annotations

import pytest

from repro.algorithms.oneshot import OneshotEstimator
from repro.algorithms.ris import RISEstimator
from repro.algorithms.snapshot import SnapshotEstimator
from repro.exceptions import InvalidParameterError
from repro.experiments.factories import (
    PAPER_APPROACHES,
    available_approaches,
    estimator_factory,
    make_estimator,
)


class TestFactories:
    def test_paper_approaches_available(self):
        assert set(PAPER_APPROACHES) <= set(available_approaches())

    def test_factory_types(self):
        assert isinstance(estimator_factory("oneshot")(4), OneshotEstimator)
        assert isinstance(estimator_factory("snapshot")(4), SnapshotEstimator)
        assert isinstance(estimator_factory("ris")(4), RISEstimator)

    def test_sample_number_passed_through(self):
        assert make_estimator("ris", 77).num_samples == 77
        assert make_estimator("oneshot", 12).num_samples == 12

    def test_snapshot_reduce_variant(self):
        estimator = make_estimator("snapshot_reduce", 4)
        assert isinstance(estimator, SnapshotEstimator)
        assert estimator.update_strategy == "reduce"

    def test_heuristics_ignore_sample_number(self):
        estimator = make_estimator("degree", 999)
        assert estimator.num_samples == 1

    def test_unknown_approach_rejected(self):
        with pytest.raises(InvalidParameterError):
            estimator_factory("simulated_annealing")

    def test_factories_produce_fresh_instances(self):
        factory = estimator_factory("ris")
        assert factory(8) is not factory(8)
