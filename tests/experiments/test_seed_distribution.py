"""Tests for seed-set distributions and Shannon entropy."""

from __future__ import annotations

import math

import pytest

from repro.experiments.seed_distribution import (
    SeedSetDistribution,
    entropy_of_counts,
    shannon_entropy,
)


class TestSeedSetDistribution:
    def test_from_seed_sets_canonicalises(self):
        distribution = SeedSetDistribution.from_seed_sets([(1, 0), (0, 1), (2, 3)])
        assert distribution.num_trials == 3
        assert distribution.probability((0, 1)) == pytest.approx(2 / 3)
        assert distribution.probability((3, 2)) == pytest.approx(1 / 3)

    def test_degenerate_distribution(self):
        distribution = SeedSetDistribution.from_seed_sets([(5,)] * 10)
        assert distribution.is_degenerate
        assert distribution.support_size == 1
        assert distribution.entropy() == 0.0

    def test_uniform_distribution_entropy(self):
        seed_sets = [(0,), (1,), (2,), (3,)]
        distribution = SeedSetDistribution.from_seed_sets(seed_sets)
        assert distribution.entropy() == pytest.approx(2.0)

    def test_entropy_never_exceeds_log2_trials(self):
        seed_sets = [(index,) for index in range(10)]
        distribution = SeedSetDistribution.from_seed_sets(seed_sets)
        assert distribution.entropy() <= distribution.max_possible_entropy() + 1e-12
        assert distribution.max_possible_entropy() == pytest.approx(math.log2(10))

    def test_mode(self):
        distribution = SeedSetDistribution.from_seed_sets([(0,), (0,), (1,)])
        seed_set, probability = distribution.mode()
        assert seed_set == (0,)
        assert probability == pytest.approx(2 / 3)

    def test_top_seed_sets_ordered(self):
        distribution = SeedSetDistribution.from_seed_sets([(0,)] * 3 + [(1,)] * 2 + [(2,)])
        top = distribution.top_seed_sets(2)
        assert top[0][0] == (0,)
        assert top[1][0] == (1,)

    def test_unseen_seed_set_probability_zero(self):
        distribution = SeedSetDistribution.from_seed_sets([(0,)])
        assert distribution.probability((9,)) == 0.0

    def test_empty_distribution(self):
        distribution = SeedSetDistribution.from_seed_sets([])
        assert distribution.entropy() == 0.0
        assert distribution.mode() == ((), 0.0)
        assert distribution.probability((0,)) == 0.0

    def test_total_variation_distance(self):
        a = SeedSetDistribution.from_seed_sets([(0,), (0,), (1,), (1,)])
        b = SeedSetDistribution.from_seed_sets([(0,), (0,), (0,), (0,)])
        assert a.total_variation_distance(b) == pytest.approx(0.5)
        assert a.total_variation_distance(a) == 0.0

    def test_two_equal_ties_entropy_one(self):
        # The paper's "plateau at entropy 1" situation: two seed sets chosen
        # with near-equal probability.
        distribution = SeedSetDistribution.from_seed_sets([(0,)] * 50 + [(1,)] * 50)
        assert distribution.entropy() == pytest.approx(1.0)


class TestHelpers:
    def test_shannon_entropy_wrapper(self):
        assert shannon_entropy([(0,), (1,)]) == pytest.approx(1.0)

    def test_entropy_of_counts(self):
        assert entropy_of_counts([1, 1, 1, 1]) == pytest.approx(2.0)
        assert entropy_of_counts([10]) == 0.0
        assert entropy_of_counts([]) == 0.0
        assert entropy_of_counts([0, 5, 0]) == 0.0

    def test_entropy_of_counts_ignores_zeros(self):
        assert entropy_of_counts([3, 0, 3]) == pytest.approx(1.0)
