"""Tests for the repeated-trial harness."""

from __future__ import annotations

import pytest

from repro.algorithms.ris import RISEstimator
from repro.algorithms.snapshot import SnapshotEstimator
from repro.estimation.oracle import RRPoolOracle
from repro.exceptions import ExperimentConfigurationError, InvalidParameterError
from repro.experiments.factories import estimator_factory
from repro.experiments.trials import merge_trial_sets, run_single_trial, run_trials


@pytest.fixture(scope="module")
def star_oracle():
    from repro.graphs.generators import star

    graph = star(5)
    return graph, RRPoolOracle(graph, pool_size=2000, seed=0)


class TestRunTrials:
    def test_trial_count_and_metadata(self, star_oracle):
        graph, oracle = star_oracle
        trial_set = run_trials(
            graph, 1, estimator_factory("ris"), 64, 10, oracle=oracle, experiment_seed=1
        )
        assert trial_set.num_trials == 10
        assert trial_set.approach == "ris"
        assert trial_set.num_samples == 64
        assert trial_set.k == 1
        assert trial_set.graph_name == graph.name

    def test_deterministic_given_experiment_seed(self, star_oracle):
        graph, oracle = star_oracle
        a = run_trials(graph, 1, estimator_factory("snapshot"), 4, 6, oracle=oracle, experiment_seed=3)
        b = run_trials(graph, 1, estimator_factory("snapshot"), 4, 6, oracle=oracle, experiment_seed=3)
        assert [o.seed_set for o in a.outcomes] == [o.seed_set for o in b.outcomes]
        assert a.influences.tolist() == b.influences.tolist()

    def test_deterministic_graph_always_finds_centre(self, star_oracle):
        graph, oracle = star_oracle
        trial_set = run_trials(
            graph, 1, estimator_factory("snapshot"), 2, 8, oracle=oracle, experiment_seed=0
        )
        distribution = trial_set.seed_set_distribution()
        assert distribution.is_degenerate
        assert distribution.mode()[0] == (0,)

    def test_influences_scored_by_oracle(self, star_oracle):
        graph, oracle = star_oracle
        trial_set = run_trials(
            graph, 1, estimator_factory("ris"), 32, 5, oracle=oracle, experiment_seed=0
        )
        assert trial_set.mean_influence == pytest.approx(6.0)
        assert trial_set.quality_probability(5.9) == 1.0

    def test_mean_cost_positive_for_sampling_methods(self, karate_uc01, karate_oracle):
        trial_set = run_trials(
            karate_uc01, 1, estimator_factory("ris"), 32, 3,
            oracle=karate_oracle, experiment_seed=0,
        )
        cost = trial_set.mean_cost()
        assert cost["traversal_vertices"] > 0
        assert cost["sample_vertices"] > 0

    def test_oracle_graph_mismatch_rejected(self, star_oracle, karate_uc01):
        _, oracle = star_oracle
        with pytest.raises(ExperimentConfigurationError):
            run_trials(karate_uc01, 1, estimator_factory("ris"), 8, 2, oracle=oracle)

    def test_oracle_model_mismatch_rejected(self, karate_iwc):
        from repro.estimation.oracle import RRPoolOracle

        ic_oracle = RRPoolOracle(karate_iwc, pool_size=200, seed=1)
        with pytest.raises(ExperimentConfigurationError, match="diffusion model"):
            run_trials(
                karate_iwc, 1, estimator_factory("ris", model="lt"), 8, 2,
                oracle=ic_oracle, model="lt",
            )

    def test_factory_model_probed_without_explicit_model(self, karate_iwc):
        # Even with model= omitted, an LT-bound factory against an IC oracle
        # must be rejected — the estimator's own binding is probed.
        from repro.estimation.oracle import RRPoolOracle

        ic_oracle = RRPoolOracle(karate_iwc, pool_size=200, seed=1)
        with pytest.raises(ExperimentConfigurationError, match="diffusion model"):
            run_trials(
                karate_iwc, 1, estimator_factory("ris", model="lt"), 8, 2,
                oracle=ic_oracle,
            )

    def test_declared_model_must_match_factory_binding(self, karate_iwc):
        from repro.estimation.oracle import RRPoolOracle

        lt_oracle = RRPoolOracle(karate_iwc, pool_size=200, seed=1, model="lt")
        with pytest.raises(ExperimentConfigurationError, match="estimator"):
            run_trials(
                karate_iwc, 1, estimator_factory("ris"), 8, 2,
                oracle=lt_oracle, model="lt",
            )

    def test_heuristic_factories_exempt_from_model_check(self, karate_iwc):
        # Structural heuristics have no model binding; scoring them under
        # any oracle model is a legitimate cross-model comparison.
        from repro.estimation.oracle import RRPoolOracle

        lt_oracle = RRPoolOracle(karate_iwc, pool_size=200, seed=1, model="lt")
        trial_set = run_trials(
            karate_iwc, 1, estimator_factory("degree"), 8, 2, oracle=lt_oracle
        )
        assert trial_set.num_trials == 2

    def test_invalid_parameters(self, star_oracle):
        graph, oracle = star_oracle
        with pytest.raises(InvalidParameterError):
            run_trials(graph, 0, estimator_factory("ris"), 8, 2, oracle=oracle)
        with pytest.raises(InvalidParameterError):
            run_trials(graph, 1, estimator_factory("ris"), 0, 2, oracle=oracle)
        with pytest.raises(InvalidParameterError):
            run_trials(graph, 1, estimator_factory("ris"), 8, 0, oracle=oracle)


class TestRunSingleTrial:
    def test_explicit_estimator(self, star_oracle):
        graph, oracle = star_oracle
        outcome = run_single_trial(graph, 1, SnapshotEstimator(2), oracle=oracle, trial_seed=5)
        assert outcome.seed_set == (0,)
        assert outcome.influence == pytest.approx(6.0)
        assert outcome.k == 1
        assert outcome.trial_seed == 5


class TestMergeTrialSets:
    def test_merge_same_configuration(self, star_oracle):
        graph, oracle = star_oracle
        a = run_trials(graph, 1, estimator_factory("ris"), 16, 3, oracle=oracle, experiment_seed=1)
        b = run_trials(graph, 1, estimator_factory("ris"), 16, 4, oracle=oracle, experiment_seed=2)
        merged = merge_trial_sets([a, b])
        assert merged.num_trials == 7
        assert merged.approach == "ris"

    def test_merge_mismatched_configuration_rejected(self, star_oracle):
        graph, oracle = star_oracle
        a = run_trials(graph, 1, estimator_factory("ris"), 16, 2, oracle=oracle)
        b = run_trials(graph, 1, estimator_factory("ris"), 32, 2, oracle=oracle)
        with pytest.raises(ExperimentConfigurationError):
            merge_trial_sets([a, b])

    def test_merge_empty_rejected(self):
        with pytest.raises(ExperimentConfigurationError):
            merge_trial_sets([])


class TestEstimatorReuseEquivalence:
    def test_factory_instances_are_fresh(self, karate_uc01, karate_oracle):
        # run_trials passes a fresh estimator per trial; using RISEstimator
        # directly twice with the same seed must give the same outcome.
        outcome_a = run_single_trial(
            karate_uc01, 2, RISEstimator(128), oracle=karate_oracle, trial_seed=7
        )
        outcome_b = run_single_trial(
            karate_uc01, 2, RISEstimator(128), oracle=karate_oracle, trial_seed=7
        )
        assert outcome_a.seed_set == outcome_b.seed_set
