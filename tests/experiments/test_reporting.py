"""Tests for plain-text table and series rendering."""

from __future__ import annotations

from repro.experiments.reporting import (
    ascii_sparkline,
    format_multi_series,
    format_series,
    format_table,
)


class TestFormatTable:
    def test_empty_rows(self):
        assert format_table([]) == "(empty)"
        assert format_table([], title="Table X") == "Table X\n(empty)"

    def test_basic_alignment(self):
        rows = [{"name": "karate", "n": 34}, {"name": "ba_d", "n": 1000}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "karate" in lines[2]
        assert "1,000" in lines[3]

    def test_title_printed_first(self):
        text = format_table([{"a": 1}], title="Table 8")
        assert text.splitlines()[0] == "Table 8"

    def test_missing_keys_render_dash(self):
        text = format_table([{"a": 1, "b": 2}, {"a": 3}])
        assert "-" in text.splitlines()[-1]

    def test_column_selection_and_order(self):
        text = format_table([{"a": 1, "b": 2, "c": 3}], columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_float_formatting(self):
        text = format_table([{"x": 0.000123456, "y": 1234567.0, "z": float("nan")}])
        assert "0.000123" in text
        assert "1.23e+06" in text
        assert "nan" in text

    def test_none_renders_dash(self):
        assert "-" in format_table([{"x": None}]).splitlines()[-1]


class TestFormatSeries:
    def test_log2_axis(self):
        text = format_series({1: 5.0, 2: 4.0, 1024: 0.0})
        assert "2^0" in text
        assert "2^10" in text

    def test_non_power_of_two_rendered_verbatim(self):
        text = format_series({3: 1.0}, log2_x=True)
        assert "3" in text

    def test_labels(self):
        text = format_series({1: 2.0}, x_label="beta", y_label="entropy")
        assert text.splitlines()[0].startswith("beta")


class TestFormatMultiSeries:
    def test_columns_per_algorithm(self):
        text = format_multi_series(
            {"oneshot": {1: 5.0, 2: 4.0}, "ris": {2: 3.0, 4: 1.0}},
            title="Figure 1",
        )
        header = text.splitlines()[1]
        assert "oneshot" in header
        assert "ris" in header
        # Sample number 1 exists only for oneshot; ris column shows "-".
        first_data_row = text.splitlines()[3]
        assert "-" in first_data_row


class TestSparkline:
    def test_empty(self):
        assert ascii_sparkline([]) == ""

    def test_constant_series(self):
        line = ascii_sparkline([3.0, 3.0, 3.0])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_monotone_series_ends_higher(self):
        line = ascii_sparkline([0, 1, 2, 3, 4, 5])
        assert line[0] != line[-1]

    def test_width_cap(self):
        line = ascii_sparkline(list(range(1000)), width=40)
        assert len(line) == 40
