"""Tests on the public API surface: exports, docstrings, and example scripts."""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.api",
    "repro.context",
    "repro.graphs",
    "repro.diffusion",
    "repro.algorithms",
    "repro.estimation",
    "repro.experiments",
    "repro.cli",
]


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_subpackage_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        package = importlib.import_module("repro")
        missing = []
        for module_info in pkgutil.walk_packages(package.__path__, prefix="repro."):
            module = importlib.import_module(module_info.name)
            if not (module.__doc__ or "").strip():
                missing.append(module_info.name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_classes_and_functions_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not (getattr(obj, "__doc__", "") or "").strip():
                undocumented.append(name)
        assert not undocumented, f"undocumented public callables: {undocumented}"


class TestExampleScripts:
    @pytest.mark.parametrize(
        "script",
        ["quickstart", "viral_marketing", "solution_distribution_study", "outbreak_detection"],
    )
    def test_examples_are_importable_and_define_main(self, script):
        import importlib.util
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "examples" / f"{script}.py"
        assert path.exists(), path
        spec = importlib.util.spec_from_file_location(f"example_{script}", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert callable(module.main)
        assert (module.__doc__ or "").strip()
