"""Integration: telemetry through ``repro.run`` and the CLI entry points.

Pins the three contract points of the observability subsystem:

* opt-in — a spec without telemetry produces the exact pre-telemetry
  payload (no ``"telemetry"`` key, same numbers);
* fidelity — the counters reproduce the legacy cost accounting exactly;
* determinism — the draw-deterministic counters and the span-tree shape are
  identical for every explicit ``jobs`` value.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro import (
    EstimatorSpec,
    GraphSpec,
    MaximizeSpec,
    RunContext,
    Telemetry,
    TrialsSpec,
)
from repro.cli import main
from repro.obs import read_trace, validate_trace

KARATE = GraphSpec(dataset="karate", probability="uc0.1")


def _maximize_spec(telemetry=None, jobs=None) -> MaximizeSpec:
    return MaximizeSpec(
        graph=KARATE,
        estimator=EstimatorSpec(approach="ris", num_samples=64),
        k=2,
        pool_size=300,
        context=RunContext(seed=1, jobs=jobs, telemetry=telemetry),
    )


def _trials_spec(telemetry=None, jobs=None) -> TrialsSpec:
    return TrialsSpec(
        graph=KARATE,
        estimator=EstimatorSpec(approach="ris", num_samples=16),
        k=1,
        num_trials=4,
        pool_size=200,
        context=RunContext(seed=1, jobs=jobs, telemetry=telemetry),
    )


class TestOptIn:
    def test_plain_spec_has_no_telemetry_block(self):
        result = repro.run(_maximize_spec())
        assert result.telemetry is None
        assert "telemetry" not in result.to_dict()

    def test_payload_is_unchanged_by_instrumentation(self):
        plain = repro.run(_maximize_spec()).to_dict()
        observed = repro.run(_maximize_spec(telemetry=Telemetry())).to_dict()
        telemetry_block = observed.pop("telemetry")
        assert telemetry_block  # recorded something...
        assert observed == plain  # ...without touching the payload

    def test_spec_document_does_not_leak_telemetry(self):
        result = repro.run(_maximize_spec(telemetry=Telemetry()))
        document = result.to_dict()
        assert "telemetry" not in json.dumps(document["spec"])


class TestCostFidelity:
    def test_counters_reproduce_maximize_cost_totals(self):
        tel = Telemetry()
        result = repro.run(_maximize_spec(telemetry=tel))
        cost = result.to_dict()["cost"]
        counters = tel.counters
        assert counters["traversal.vertices"] == cost["traversal_vertices"]
        assert counters["traversal.edges"] == cost["traversal_edges"]
        assert counters["sample.vertices"] == cost["sample_vertices"]
        assert counters["sample.edges"] == cost["sample_edges"]
        assert tel.traversal_view().vertices == cost["traversal_vertices"]

    def test_counters_reproduce_trials_cost_totals(self):
        tel = Telemetry()
        result = repro.run(_trials_spec(telemetry=tel))
        totals = {"traversal_vertices": 0, "traversal_edges": 0}
        for outcome in result.trial_set.outcomes:
            totals["traversal_vertices"] += outcome.cost.traversal.vertices
            totals["traversal_edges"] += outcome.cost.traversal.edges
        assert tel.counters["traversal.vertices"] == totals["traversal_vertices"]
        assert tel.counters["traversal.edges"] == totals["traversal_edges"]
        assert tel.counters["trials.count"] == 4

    def test_span_tree_covers_the_run_phases(self):
        tel = Telemetry()
        repro.run(_maximize_spec(telemetry=tel))
        paths = {path for path, _, _ in tel.span_table()}
        assert ("run.maximize",) in paths
        assert ("run.maximize", "graph.build") in paths
        assert ("run.maximize", "greedy.build") in paths
        assert ("run.maximize", "oracle.build") in paths
        assert ("run.maximize", "oracle.score") in paths


class TestJobsDeterminism:
    def test_deterministic_counters_match_across_jobs(self):
        tel_serial, tel_parallel = Telemetry(), Telemetry()
        serial = repro.run(_trials_spec(telemetry=tel_serial, jobs=1))
        parallel = repro.run(_trials_spec(telemetry=tel_parallel, jobs=4))
        assert serial.trial_set == parallel.trial_set  # draws bit-identical
        assert (
            tel_serial.deterministic_counters()
            == tel_parallel.deterministic_counters()
        )

    def test_span_shape_matches_across_jobs_outside_runtime(self):
        tel_serial, tel_parallel = Telemetry(), Telemetry()
        repro.run(_trials_spec(telemetry=tel_serial, jobs=1))
        repro.run(_trials_spec(telemetry=tel_parallel, jobs=4))

        def shape(tel):
            return {
                path
                for path, _, _ in tel.span_table()
                if not path[-1].startswith("runtime.")
            }

        assert shape(tel_serial) == shape(tel_parallel)

    def test_parallel_run_records_runtime_metrics(self):
        tel = Telemetry()
        repro.run(_trials_spec(telemetry=tel, jobs=2))
        counters = tel.counters
        assert counters["runtime.tasks"] >= 4
        assert counters["runtime.pickle_bytes"] > 0
        assert counters["runtime.kernel_seconds"] > 0.0


class TestCLI:
    ARGS = [
        "maximize", "--dataset", "karate", "--samples", "64", "-k", "2",
        "--pool-size", "300",
    ]

    def test_json_output_carries_telemetry_block(self, capsys):
        assert main(self.ARGS + ["--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        telemetry = document["telemetry"]
        assert telemetry["counters"]["traversal.vertices"] == (
            document["cost"]["traversal_vertices"]
        )
        assert telemetry["spans"][0]["name"] == "run.maximize"

    def test_trace_flag_writes_a_valid_trace(self, tmp_path, capsys):
        target = tmp_path / "run.jsonl"
        assert main(self.ARGS + ["--trace", str(target)]) == 0
        capsys.readouterr()
        records = read_trace(target)
        assert validate_trace(records) == len(records)
        counter_names = {r["name"] for r in records if r["type"] == "counter"}
        assert "traversal.vertices" in counter_names

    def test_repro_trace_env_sets_the_default(self, tmp_path, capsys, monkeypatch):
        target = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(target))
        assert main(self.ARGS) == 0
        capsys.readouterr()
        assert validate_trace(read_trace(target)) > 0

    def test_profile_flag_prints_tree_to_stderr(self, capsys):
        assert main(self.ARGS + ["--profile"]) == 0
        captured = capsys.readouterr()
        assert "telemetry profile" in captured.err
        assert "run.maximize" in captured.err
        assert "telemetry profile" not in captured.out

    def test_out_file_is_complete_json_matching_stdout(self, tmp_path, capsys):
        target = tmp_path / "result.json"
        assert main(self.ARGS + ["--format", "json", "--out", str(target)]) == 0
        stdout_document = json.loads(capsys.readouterr().out)
        file_document = json.loads(target.read_text())
        assert file_document == stdout_document
        assert [p.name for p in tmp_path.iterdir()] == ["result.json"]
