"""Telemetry contract of the bit-parallel fast path.

The ``bitparallel.words`` / ``bitparallel.lanes_used`` counters follow the
deterministic-counter convention: they count draw-contract facts (how many
64-world words the run consumed, how many lanes were actually used), so they
must be identical for every ``jobs`` value — the counters are recorded at the
dispatch seam, before the serial/parallel split.  The ``bitparallel.kernel``
span wraps the serial kernel invocations.
"""

from __future__ import annotations

import repro
from repro import (
    EstimatorSpec,
    GraphSpec,
    MaximizeSpec,
    RunContext,
    Telemetry,
)
from repro.estimation.monte_carlo import monte_carlo_spread
from repro.graphs.datasets import load_dataset


def _maximize_spec(telemetry=None, jobs=None, batch_mode="bitparallel"):
    return MaximizeSpec(
        graph=GraphSpec(dataset="karate", probability="uc0.1"),
        estimator=EstimatorSpec(approach="ris", num_samples=200),
        k=2,
        pool_size=300,
        context=RunContext(
            seed=1, jobs=jobs, telemetry=telemetry, batch_mode=batch_mode
        ),
    )


class TestCounters:
    def test_run_records_word_and_lane_counters(self):
        tel = Telemetry()
        repro.run(_maximize_spec(telemetry=tel))
        counters = tel.counters
        # The 300-set oracle pool consumes ceil(300/64) = 5 words.  The RIS
        # build phase does not thread telemetry (matching the pre-existing
        # ``rr.sets`` counter, which only the oracle records), so its words
        # are not counted; oracle scoring reuses the pool and consumes none.
        assert counters["bitparallel.words"] == 5
        assert counters["bitparallel.lanes_used"] == 300

    def test_scalar_run_records_no_bitparallel_counters(self):
        tel = Telemetry()
        repro.run(_maximize_spec(telemetry=tel, batch_mode="scalar"))
        assert not any(name.startswith("bitparallel.") for name in tel.counters)

    def test_monte_carlo_records_partial_word_lanes(self):
        tel = Telemetry()
        graph = load_dataset("karate")
        monte_carlo_spread(
            graph, (0,), 70, seed=3, batch_mode="bitparallel",
            context=RunContext(telemetry=tel),
        )
        assert tel.counters["bitparallel.words"] == 2  # 64 + 6 lanes
        assert tel.counters["bitparallel.lanes_used"] == 70


class TestJobsDeterminism:
    def test_deterministic_counters_match_across_jobs(self):
        tel_serial, tel_parallel = Telemetry(), Telemetry()
        serial = repro.run(_maximize_spec(telemetry=tel_serial, jobs=1))
        parallel = repro.run(_maximize_spec(telemetry=tel_parallel, jobs=4))
        assert serial.greedy.seed_set == parallel.greedy.seed_set
        assert (
            tel_serial.deterministic_counters()
            == tel_parallel.deterministic_counters()
        )
        assert "bitparallel.words" in tel_serial.deterministic_counters()

    def test_monte_carlo_counters_match_across_jobs(self):
        graph = load_dataset("karate")
        results = {}
        for jobs in (1, 4):
            tel = Telemetry()
            estimate = monte_carlo_spread(
                graph, (0, 33), 300, seed=5, jobs=jobs,
                batch_mode="bitparallel", context=RunContext(telemetry=tel),
            )
            results[jobs] = (estimate, tel.deterministic_counters())
        assert results[1] == results[4]


class TestKernelSpan:
    def test_serial_run_emits_kernel_span(self):
        tel = Telemetry()
        repro.run(_maximize_spec(telemetry=tel, jobs=None))
        names = {path[-1] for path, _, _ in tel.span_table()}
        assert "bitparallel.kernel" in names

    def test_scalar_run_emits_no_kernel_span(self):
        tel = Telemetry()
        repro.run(_maximize_spec(telemetry=tel, jobs=None, batch_mode="scalar"))
        names = {path[-1] for path, _, _ in tel.span_table()}
        assert "bitparallel.kernel" not in names
