"""Unit tests for the telemetry core: counters, spans, merge, cost bridge."""

from __future__ import annotations

import pickle

import pytest

from repro.diffusion.costs import CostReport, SampleSize, TraversalCost
from repro.diffusion.random_source import RandomSource
from repro.diffusion.reverse import sample_rr_set
from repro.graphs.generators import path
from repro.obs import (
    NULL_TELEMETRY,
    CounterCost,
    NullTelemetry,
    Telemetry,
    TelemetrySnapshot,
    as_telemetry,
    is_deterministic_counter,
)


class TestCountersAndGauges:
    def test_incr_accumulates(self):
        tel = Telemetry()
        tel.incr("rr.sets", 5)
        tel.incr("rr.sets", 3)
        tel.incr("other")
        assert tel.counters == {"rr.sets": 8, "other": 1}

    def test_gauge_is_last_write_wins(self):
        tel = Telemetry()
        tel.gauge("graph.vertices", 10)
        tel.gauge("graph.vertices", 34)
        assert tel.gauges == {"graph.vertices": 34}

    def test_counters_view_is_a_copy(self):
        tel = Telemetry()
        tel.incr("a")
        view = tel.counters
        view["a"] = 999  # type: ignore[index]
        assert tel.counters == {"a": 1}


class TestDeterminismConvention:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("rr.sets", True),
            ("traversal.vertices", True),
            ("greedy.estimate_calls", True),
            ("runtime.tasks", False),
            ("runtime.pickle_bytes", False),
            ("trials.kernel_seconds", False),
            ("payload_bytes", False),
        ],
    )
    def test_is_deterministic_counter(self, name, expected):
        assert is_deterministic_counter(name) is expected

    def test_deterministic_counters_filters_environmental_names(self):
        tel = Telemetry()
        tel.incr("rr.sets", 7)
        tel.incr("runtime.tasks", 3)
        tel.incr("runtime.kernel_seconds", 0.25)
        assert tel.deterministic_counters() == {"rr.sets": 7}


class TestSpans:
    def test_span_aggregates_by_path(self):
        tel = Telemetry()
        for _ in range(3):
            with tel.span("build"):
                pass
        assert tel.span_count("build") == 3
        assert tel.span_seconds("build") >= 0.0
        assert len(tel.span_table()) == 1

    def test_nested_spans_form_a_tree(self):
        tel = Telemetry()
        with tel.span("outer"):
            with tel.span("inner"):
                pass
            with tel.span("inner"):
                pass
        paths = [path for path, _, _ in tel.span_table()]
        assert paths == [("outer",), ("outer", "inner")]
        assert tel.span_count("outer", "inner") == 2

    def test_stack_unwinds_after_exit(self):
        tel = Telemetry()
        with tel.span("first"):
            pass
        with tel.span("second"):
            pass
        paths = {path for path, _, _ in tel.span_table()}
        assert paths == {("first",), ("second",)}

    def test_to_dict_nests_children(self):
        tel = Telemetry()
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        tree = tel.to_dict()["spans"]
        assert tree[0]["name"] == "outer"
        assert tree[0]["children"][0]["name"] == "inner"
        assert tree[0]["children"][0]["children"] == []


class TestEventsAndWarnings:
    def test_event_stream_preserves_order_and_fields(self):
        tel = Telemetry()
        tel.event("alpha", value=1)
        tel.event("beta", value=2)
        assert [event["name"] for event in tel.events] == ["alpha", "beta"]
        assert tel.events[0]["fields"] == {"value": 1}

    def test_warn_once_is_once_per_key(self, capsys):
        tel = Telemetry()
        assert tel.warn_once("k", "message one") is True
        assert tel.warn_once("k", "message two") is False
        captured = capsys.readouterr()
        assert captured.err.count("repro: warning:") == 1
        warnings = [event for event in tel.events if event["type"] == "warning"]
        assert len(warnings) == 1

    def test_check_jobs_warns_on_oversubscription(self, monkeypatch, capsys):
        monkeypatch.setattr("repro.obs.telemetry.os.cpu_count", lambda: 2)
        tel = Telemetry()
        tel.check_jobs(None)
        tel.check_jobs(2)
        assert tel.events == ()
        tel.check_jobs(8)
        tel.check_jobs(8)  # second call is silent
        warnings = [event for event in tel.events if event["type"] == "warning"]
        assert len(warnings) == 1
        assert "jobs=8" in warnings[0]["message"]
        assert "repro: warning:" in capsys.readouterr().err


class TestCostBridge:
    def test_record_cost_reproduces_report_totals(self):
        report = CostReport(
            traversal=TraversalCost(11, 29), sample_size=SampleSize(7, 3)
        )
        tel = Telemetry()
        tel.record_cost(report)
        assert tel.counters == {
            "traversal.vertices": 11,
            "traversal.edges": 29,
            "sample.vertices": 7,
            "sample.edges": 3,
        }
        assert tel.traversal_view() == TraversalCost(11, 29)

    def test_counter_cost_matches_traversal_cost_on_a_real_kernel(self):
        graph = path(6)
        legacy = TraversalCost()
        legacy_rr = sample_rr_set(graph, RandomSource(5), cost=legacy)
        tel = Telemetry()
        counting = tel.cost("rr")
        counted_rr = sample_rr_set(graph, RandomSource(5), cost=counting)
        assert counted_rr.vertices == legacy_rr.vertices
        assert counting.vertices == legacy.vertices
        assert counting.edges == legacy.edges
        assert counting.total == legacy.total
        assert counting.snapshot() == TraversalCost(legacy.vertices, legacy.edges)
        assert tel.traversal_view("rr") == legacy

    def test_counter_cost_merge_duck_types_traversal_cost(self):
        tel = Telemetry()
        cost = CounterCost(tel)
        cost.merge(TraversalCost(4, 9))
        cost.add_vertices(1)
        assert (cost.vertices, cost.edges) == (5, 9)


class TestSnapshotMerge:
    def _populated(self, base: int) -> Telemetry:
        tel = Telemetry()
        tel.incr("rr.sets", base)
        tel.gauge("graph.vertices", base)
        with tel.span("build"):
            pass
        tel.event("done", index=base)
        return tel

    def test_snapshot_is_picklable_and_immutable(self):
        snap = self._populated(3).snapshot()
        restored = pickle.loads(pickle.dumps(snap))
        assert restored == snap
        assert isinstance(snap, TelemetrySnapshot)

    def test_merge_sums_counters_and_spans(self):
        parent = self._populated(1)
        parent.merge(self._populated(2).snapshot())
        assert parent.counters["rr.sets"] == 3
        assert parent.span_count("build") == 2
        assert parent.gauges["graph.vertices"] == 2  # last write wins
        assert [event["fields"]["index"] for event in parent.events] == [1, 2]

    def test_merge_in_fixed_order_is_deterministic(self):
        snaps = [self._populated(i).snapshot() for i in range(4)]
        merged_a, merged_b = Telemetry(), Telemetry()
        for snap in snaps:
            merged_a.merge(snap)
        for snap in snaps:
            merged_b.merge(snap)
        assert merged_a.snapshot() == merged_b.snapshot()

    def test_merge_accepts_a_live_telemetry(self):
        parent = Telemetry()
        parent.merge(self._populated(5))
        assert parent.counters["rr.sets"] == 5


class TestNullTelemetry:
    def test_is_disabled_and_shared(self):
        assert NULL_TELEMETRY.enabled is False
        assert as_telemetry(None) is NULL_TELEMETRY

    def test_span_returns_shared_noop_guard(self):
        first = NULL_TELEMETRY.span("a")
        second = NULL_TELEMETRY.span("b")
        assert first is second
        with first:
            pass

    def test_everything_is_a_noop(self):
        tel = NullTelemetry()
        tel.incr("x", 5)
        tel.gauge("y", 1.0)
        tel.event("z")
        tel.check_jobs(10_000)
        assert tel.warn_once("k", "m") is False
        assert tel.counters == {}
        assert tel.gauges == {}
        assert tel.events == ()
        assert tel.deterministic_counters() == {}
        assert tel.span_table() == []
        assert tel.to_dict() == {}
        assert tel.snapshot() == TelemetrySnapshot()
        assert tel.cost().total == 0
        assert tel.traversal_view() == TraversalCost()

    def test_as_telemetry_passthrough_and_rejection(self):
        live = Telemetry()
        assert as_telemetry(live) is live
        null = NullTelemetry()
        assert as_telemetry(null) is null
        with pytest.raises(TypeError, match="telemetry must be"):
            as_telemetry("verbose")
