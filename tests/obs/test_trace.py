"""JSONL trace schema round-trip, validation errors, and atomic file IO."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    TRACE_SCHEMA_VERSION,
    Telemetry,
    TraceSchemaError,
    atomic_write_json,
    atomic_write_text,
    host_info,
    read_trace,
    render_trace,
    validate_trace,
    write_trace,
)
from repro.obs.trace import trace_records


def _populated_telemetry() -> Telemetry:
    tel = Telemetry()
    tel.incr("rr.sets", 100)
    tel.incr("traversal.vertices", 42)
    tel.gauge("graph.vertices", 34)
    with tel.span("oracle.build"):
        with tel.span("runtime.dispatch"):
            pass
    tel.event("checkpoint", step=1)
    tel.warn_once("jobs.oversubscribed", "too many workers")
    return tel


class TestTraceRecords:
    def test_meta_header_comes_first(self):
        records = trace_records(_populated_telemetry())
        head = records[0]
        assert head["type"] == "meta"
        assert head["schema"] == TRACE_SCHEMA_VERSION
        assert head["host"] == host_info()

    def test_counters_sorted_and_spans_pathed(self):
        records = trace_records(_populated_telemetry())
        counter_names = [r["name"] for r in records if r["type"] == "counter"]
        assert counter_names == sorted(counter_names)
        spans = [r for r in records if r["type"] == "span"]
        assert [s["path"] for s in spans] == [
            ["oracle.build"],
            ["oracle.build", "runtime.dispatch"],
        ]

    def test_events_and_warnings_are_emitted(self):
        records = trace_records(_populated_telemetry())
        kinds = {r["type"] for r in records}
        assert {"event", "warning"} <= kinds

    def test_host_info_shape(self):
        host = host_info()
        assert set(host) == {
            "platform", "python", "implementation", "machine", "cpu_count",
        }


class TestRoundTrip:
    def test_write_then_read_preserves_records(self, tmp_path):
        tel = _populated_telemetry()
        target = tmp_path / "trace.jsonl"
        write_trace(tel, target)
        records = read_trace(target)
        assert records == trace_records(tel)
        assert validate_trace(records) == len(records)

    def test_render_is_one_compact_object_per_line(self):
        text = render_trace(_populated_telemetry())
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            assert json.loads(line)
            assert "\n" not in line

    def test_read_trace_rejects_bad_json(self, tmp_path):
        target = tmp_path / "broken.jsonl"
        target.write_text('{"type": "meta"}\nnot json\n')
        with pytest.raises(TraceSchemaError, match="line 2"):
            read_trace(target)


class TestValidateTrace:
    def _valid(self) -> list[dict]:
        return trace_records(_populated_telemetry())

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceSchemaError, match="empty"):
            validate_trace([])

    def test_missing_meta_rejected(self):
        records = self._valid()[1:]
        with pytest.raises(TraceSchemaError, match="meta"):
            validate_trace(records)

    def test_wrong_schema_version_rejected(self):
        records = self._valid()
        records[0] = dict(records[0], schema=999)
        with pytest.raises(TraceSchemaError, match="unsupported trace schema"):
            validate_trace(records)

    def test_missing_host_rejected(self):
        records = self._valid()
        records[0] = {"type": "meta", "schema": TRACE_SCHEMA_VERSION}
        with pytest.raises(TraceSchemaError, match="host"):
            validate_trace(records)

    def test_unknown_record_type_rejected(self):
        records = self._valid() + [{"type": "metric", "name": "x"}]
        with pytest.raises(TraceSchemaError, match="unknown type 'metric'"):
            validate_trace(records)

    def test_missing_required_key_rejected(self):
        records = self._valid() + [{"type": "counter", "name": "x"}]
        with pytest.raises(TraceSchemaError, match="missing required"):
            validate_trace(records)

    def test_span_path_must_be_a_list(self):
        records = self._valid() + [
            {"type": "span", "path": "oracle.build", "count": 1, "seconds": 0.0}
        ]
        with pytest.raises(TraceSchemaError, match="'path' must be a list"):
            validate_trace(records)


class TestAtomicWrites:
    def test_writes_and_replaces_content(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, "first\n")
        atomic_write_text(target, "second\n")
        assert target.read_text() == "second\n"

    def test_no_temp_files_left_behind(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, "content\n")
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_json_helper_round_trips(self, tmp_path):
        target = tmp_path / "payload.json"
        atomic_write_json(target, {"a": [1, 2], "b": "x"})
        assert json.loads(target.read_text()) == {"a": [1, 2], "b": "x"}
        assert target.read_text().endswith("\n")

    def test_missing_directory_raises_and_leaves_nothing(self, tmp_path):
        target = tmp_path / "nope" / "out.json"
        with pytest.raises(FileNotFoundError):
            atomic_write_text(target, "content\n")
        assert not (tmp_path / "nope").exists()
