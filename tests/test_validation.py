"""Tests for the shared validation helpers and exception hierarchy."""

from __future__ import annotations

import pytest

from repro._validation import (
    normalize_seed_set,
    require_choice,
    require_fraction,
    require_non_negative_int,
    require_positive_int,
    require_probability,
    require_vertex,
)
from repro.exceptions import (
    EstimatorStateError,
    ExperimentConfigurationError,
    GraphConstructionError,
    InvalidParameterError,
    InvalidProbabilityError,
    InvalidSeedSetError,
    ReproError,
    UnknownDatasetError,
    UnknownProbabilityModelError,
)


class TestRequirePositiveInt:
    def test_accepts_positive(self):
        assert require_positive_int(5, "x") == 5

    def test_rejects_zero_and_negative(self):
        with pytest.raises(InvalidParameterError):
            require_positive_int(0, "x")
        with pytest.raises(InvalidParameterError):
            require_positive_int(-2, "x")

    def test_rejects_bool_and_float(self):
        with pytest.raises(InvalidParameterError):
            require_positive_int(True, "x")
        with pytest.raises(InvalidParameterError):
            require_positive_int(2.0, "x")

    def test_error_message_names_parameter(self):
        with pytest.raises(InvalidParameterError, match="num_samples"):
            require_positive_int(-1, "num_samples")


class TestRequireNonNegativeInt:
    def test_accepts_zero(self):
        assert require_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            require_non_negative_int(-1, "x")


class TestRequireProbability:
    def test_accepts_half_open_interval(self):
        assert require_probability(1.0, "p") == 1.0
        assert require_probability(0.001, "p") == 0.001

    def test_rejects_zero_by_default(self):
        with pytest.raises(InvalidParameterError):
            require_probability(0.0, "p")

    def test_allow_zero(self):
        assert require_probability(0.0, "p", allow_zero=True) == 0.0

    def test_rejects_above_one(self):
        with pytest.raises(InvalidParameterError):
            require_probability(1.01, "p")

    def test_rejects_non_numeric(self):
        with pytest.raises(InvalidParameterError):
            require_probability("high", "p")


class TestRequireFraction:
    def test_accepts_interior_points(self):
        assert require_fraction(0.5, "eps") == 0.5

    def test_rejects_endpoints(self):
        with pytest.raises(InvalidParameterError):
            require_fraction(0.0, "eps")
        with pytest.raises(InvalidParameterError):
            require_fraction(1.0, "eps")


class TestRequireVertexAndSeedSet:
    def test_vertex_in_range(self):
        assert require_vertex(3, 5) == 3

    def test_vertex_out_of_range(self):
        with pytest.raises(InvalidSeedSetError):
            require_vertex(5, 5)
        with pytest.raises(InvalidSeedSetError):
            require_vertex(-1, 5)

    def test_vertex_must_be_int(self):
        with pytest.raises(InvalidSeedSetError):
            require_vertex(True, 5)

    def test_normalize_sorts_and_validates(self):
        assert normalize_seed_set([3, 1, 2], 5) == (1, 2, 3)

    def test_normalize_rejects_duplicates(self):
        with pytest.raises(InvalidSeedSetError):
            normalize_seed_set([1, 1], 5)

    def test_normalize_empty(self):
        assert normalize_seed_set([], 5) == ()


class TestRequireChoice:
    def test_accepts_member(self):
        assert require_choice("a", ("a", "b"), "mode") == "a"

    def test_rejects_non_member(self):
        with pytest.raises(InvalidParameterError):
            require_choice("c", ("a", "b"), "mode")


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            GraphConstructionError,
            InvalidProbabilityError,
            UnknownDatasetError,
            UnknownProbabilityModelError,
            InvalidSeedSetError,
            InvalidParameterError,
            EstimatorStateError,
            ExperimentConfigurationError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_lookup_errors_are_key_errors(self):
        assert issubclass(UnknownDatasetError, KeyError)
        assert issubclass(UnknownProbabilityModelError, KeyError)

    def test_value_errors(self):
        assert issubclass(InvalidParameterError, ValueError)
        assert issubclass(InvalidSeedSetError, ValueError)
