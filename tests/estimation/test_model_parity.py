"""IC-vs-LT estimator parity on graphs where the two models coincide.

On a graph where every vertex has in-degree at most one, the IC and LT
live-edge distributions are identical: the single in-edge ``(u, v)`` is kept
independently with probability ``p(u, v)`` under IC, and selected (as the
only candidate) with the same probability under LT.  Exact spreads are
therefore equal, and every unbiased estimator must agree across the two
models up to sampling noise.  These tests pin that equivalence down — they
are the cheapest end-to-end check that the LT primitives implement the same
live-edge semantics as the IC ones.
"""

from __future__ import annotations

import pytest

from repro.algorithms.framework import greedy_maximize
from repro.algorithms.ris import RISEstimator
from repro.algorithms.snapshot import SnapshotEstimator
from repro.diffusion.models import INDEPENDENT_CASCADE, LINEAR_THRESHOLD
from repro.diffusion.random_source import RandomSource
from repro.estimation.monte_carlo import monte_carlo_spread
from repro.estimation.oracle import RRPoolOracle
from repro.graphs.builder import GraphBuilder

MODELS = (INDEPENDENT_CASCADE, LINEAR_THRESHOLD)


@pytest.fixture(scope="module")
def chain():
    """0 -> 1 -> 2 -> 3 with p = 0.6: every vertex has in-degree <= 1."""
    builder = GraphBuilder(4, default_probability=0.6)
    builder.add_edge(0, 1)
    builder.add_edge(1, 2)
    builder.add_edge(2, 3)
    return builder.build(name="parity_chain")


@pytest.fixture(scope="module")
def out_tree():
    """Rooted out-tree on 7 vertices with p = 0.7 (in-degree <= 1 everywhere)."""
    builder = GraphBuilder(7, default_probability=0.7)
    builder.add_edge(0, 1)
    builder.add_edge(0, 2)
    builder.add_edge(1, 3)
    builder.add_edge(1, 4)
    builder.add_edge(2, 5)
    builder.add_edge(2, 6)
    return builder.build(name="parity_tree")


class TestExactParity:
    @pytest.mark.parametrize("seeds", [(0,), (1,), (0, 2)])
    def test_chain_exact_spreads_coincide(self, chain, seeds):
        assert LINEAR_THRESHOLD.exact_spread(chain, seeds) == pytest.approx(
            INDEPENDENT_CASCADE.exact_spread(chain, seeds)
        )

    @pytest.mark.parametrize("seeds", [(0,), (1,), (2,)])
    def test_tree_exact_spreads_coincide(self, out_tree, seeds):
        assert LINEAR_THRESHOLD.exact_spread(out_tree, seeds) == pytest.approx(
            INDEPENDENT_CASCADE.exact_spread(out_tree, seeds)
        )


class TestEstimatorParity:
    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    def test_monte_carlo_matches_exact(self, out_tree, model):
        exact = INDEPENDENT_CASCADE.exact_spread(out_tree, (0,))
        estimate = monte_carlo_spread(out_tree, (0,), 4000, seed=1, model=model)
        assert estimate.mean == pytest.approx(exact, rel=0.05)

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    def test_oracle_matches_exact(self, out_tree, model):
        exact = INDEPENDENT_CASCADE.exact_spread(out_tree, (0,))
        oracle = RRPoolOracle(out_tree, pool_size=20_000, seed=2, model=model)
        assert oracle.spread((0,)) == pytest.approx(exact, rel=0.05)

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    def test_ris_estimator_matches_exact(self, chain, model):
        exact = INDEPENDENT_CASCADE.exact_spread(chain, (0,))
        estimator = RISEstimator(20_000, model=model)
        estimator.build(chain, RandomSource(3))
        assert estimator.spread((0,)) == pytest.approx(exact, rel=0.05)

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    def test_snapshot_estimator_matches_exact(self, chain, model):
        exact = INDEPENDENT_CASCADE.exact_spread(chain, (0,))
        estimator = SnapshotEstimator(8000, model=model)
        estimator.build(chain, RandomSource(4))
        assert estimator.spread((0,)) == pytest.approx(exact, rel=0.05)

    def test_monte_carlo_rejects_infeasible_lt_instance(self):
        from repro.exceptions import InvalidParameterError
        from repro.graphs.datasets import load_dataset
        from repro.graphs.probability import uniform_cascade

        infeasible = uniform_cascade(load_dataset("karate"), 0.1)
        with pytest.raises(InvalidParameterError, match="incoming weights"):
            monte_carlo_spread(infeasible, (0,), 10, model="lt")

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    def test_greedy_finds_the_root(self, out_tree, model):
        # The root dominates every other vertex on an out-tree, so both
        # models must select it regardless of sampling noise.
        result = greedy_maximize(out_tree, 1, RISEstimator(2000, model=model), seed=5)
        assert result.seed_set == (0,)
