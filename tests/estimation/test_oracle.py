"""Tests for the RR-pool ground-truth oracle."""

from __future__ import annotations

import pytest

from repro.diffusion.exact import exact_spread
from repro.estimation.oracle import RRPoolOracle
from repro.exceptions import InvalidParameterError, InvalidSeedSetError


class TestSpreadEstimates:
    def test_unbiased_on_diamond(self, probabilistic_diamond):
        oracle = RRPoolOracle(probabilistic_diamond, pool_size=30000, seed=1)
        for seeds in [(0,), (1,), (0, 3)]:
            assert oracle.spread(seeds) == pytest.approx(
                exact_spread(probabilistic_diamond, seeds), rel=0.05
            )

    def test_deterministic_star(self, star_graph):
        oracle = RRPoolOracle(star_graph, pool_size=5000, seed=2)
        assert oracle.spread((0,)) == pytest.approx(6.0)
        assert oracle.spread((1,)) == pytest.approx(1.0, rel=0.3)

    def test_identical_seed_sets_get_identical_scores(self, karate_oracle):
        assert karate_oracle.spread((0, 33)) == karate_oracle.spread((33, 0))

    def test_monotone_in_seed_set(self, karate_oracle):
        assert karate_oracle.spread((0, 33)) >= karate_oracle.spread((0,))

    def test_spread_bounded_by_n(self, karate_oracle, karate_uc01):
        full_set = tuple(range(karate_uc01.num_vertices))
        assert karate_oracle.spread(full_set) == pytest.approx(karate_uc01.num_vertices)

    def test_invalid_seed_rejected(self, karate_oracle):
        with pytest.raises(InvalidSeedSetError):
            karate_oracle.spread((999,))

    def test_invalid_pool_size(self, star_graph):
        with pytest.raises(InvalidParameterError):
            RRPoolOracle(star_graph, pool_size=0)


class TestCoverageAndTopVertices:
    def test_coverage_count_single_vs_set(self, karate_oracle):
        single = karate_oracle.coverage_count((0,))
        pair = karate_oracle.coverage_count((0, 33))
        assert pair >= single

    def test_top_vertices_ordering(self, karate_oracle):
        top = karate_oracle.top_vertices(5)
        values = [value for _, value in top]
        assert values == sorted(values, reverse=True)
        assert len(top) == 5

    def test_single_vertex_spreads_match_spread(self, karate_oracle):
        spreads = karate_oracle.single_vertex_spreads()
        for vertex in (0, 7, 33):
            assert spreads[vertex] == pytest.approx(karate_oracle.spread((vertex,)))

    def test_karate_hubs_most_influential(self, karate_oracle):
        top_two = {vertex for vertex, _ in karate_oracle.top_vertices(2)}
        assert top_two <= {0, 2, 32, 33}


class TestConfidence:
    def test_confidence_radius_shrinks_with_pool_size(self, star_graph):
        small = RRPoolOracle(star_graph, pool_size=100, seed=0)
        large = RRPoolOracle(star_graph, pool_size=10000, seed=0)
        assert large.confidence_radius() < small.confidence_radius()

    def test_spread_with_confidence_interval_contains_truth(self, probabilistic_diamond):
        oracle = RRPoolOracle(probabilistic_diamond, pool_size=30000, seed=3)
        estimate = oracle.spread_with_confidence((0,))
        truth = exact_spread(probabilistic_diamond, (0,))
        assert estimate.lower <= truth <= estimate.upper

    def test_average_rr_size_positive(self, karate_oracle):
        assert karate_oracle.average_rr_size > 1.0
