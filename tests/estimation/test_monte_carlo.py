"""Tests for the forward Monte-Carlo spread estimator."""

from __future__ import annotations

import pytest

from repro.diffusion.exact import exact_spread
from repro.estimation.monte_carlo import monte_carlo_spread
from repro.exceptions import InvalidParameterError


class TestMonteCarloSpread:
    def test_deterministic_graph_zero_variance(self, star_graph):
        estimate = monte_carlo_spread(star_graph, (0,), 50, seed=0)
        assert estimate.mean == pytest.approx(6.0)
        assert estimate.std == pytest.approx(0.0)
        assert estimate.standard_error == pytest.approx(0.0)

    def test_unbiased_on_diamond(self, probabilistic_diamond):
        estimate = monte_carlo_spread(probabilistic_diamond, (0,), 5000, seed=1)
        assert estimate.mean == pytest.approx(
            exact_spread(probabilistic_diamond, (0,)), rel=0.05
        )

    def test_confidence_interval_contains_truth(self, probabilistic_diamond):
        estimate = monte_carlo_spread(probabilistic_diamond, (0,), 3000, seed=2)
        low, high = estimate.confidence_interval(z=3.0)
        assert low <= exact_spread(probabilistic_diamond, (0,)) <= high

    def test_standard_error_shrinks_with_simulations(self, probabilistic_diamond):
        few = monte_carlo_spread(probabilistic_diamond, (0,), 100, seed=3)
        many = monte_carlo_spread(probabilistic_diamond, (0,), 5000, seed=3)
        assert many.standard_error < few.standard_error

    def test_single_simulation_has_infinite_standard_error(self, probabilistic_diamond):
        estimate = monte_carlo_spread(probabilistic_diamond, (0,), 1, seed=0)
        assert estimate.standard_error == float("inf")

    def test_single_simulation_interval_degenerates_to_point(self, probabilistic_diamond):
        # With no variance information the interval must not be (-inf, inf);
        # it collapses to the point estimate instead.
        estimate = monte_carlo_spread(probabilistic_diamond, (0,), 1, seed=0)
        low, high = estimate.confidence_interval()
        assert low == high == estimate.mean
        assert low != float("-inf") and high != float("inf")

    def test_zero_simulation_estimate_interval_is_finite(self):
        from repro.estimation.monte_carlo import MonteCarloEstimate

        estimate = MonteCarloEstimate(mean=2.5, std=0.0, num_simulations=0)
        assert estimate.confidence_interval() == (2.5, 2.5)

    def test_invalid_simulation_count(self, star_graph):
        with pytest.raises(InvalidParameterError):
            monte_carlo_spread(star_graph, (0,), 0)

    def test_deterministic_given_seed(self, karate_uc01):
        a = monte_carlo_spread(karate_uc01, (0,), 200, seed=9)
        b = monte_carlo_spread(karate_uc01, (0,), 200, seed=9)
        assert a.mean == b.mean
        assert a.std == b.std
