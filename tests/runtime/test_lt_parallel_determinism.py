"""LT determinism regression: ``jobs=1`` and ``jobs=4`` are bit-identical.

Mirrors ``tests/runtime/test_parallel_determinism.py`` for the linear
threshold model: the runtime's split-stream contract is model-agnostic, so
every LT sampling path fanned out through the executor must be a pure
function of the root seed and the task count.  Karate under ``iwc`` is the
instance (incoming weights sum to exactly one, a feasible LT input).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.framework import greedy_maximize
from repro.algorithms.ris import RISEstimator
from repro.algorithms.snapshot import SnapshotEstimator
from repro.diffusion.costs import SampleSize, TraversalCost
from repro.diffusion.models import LINEAR_THRESHOLD
from repro.diffusion.random_source import RandomSource
from repro.estimation.monte_carlo import monte_carlo_spread
from repro.estimation.oracle import RRPoolOracle
from repro.experiments.factories import estimator_factory
from repro.experiments.trials import run_trials

JOBS = 4


@pytest.fixture(scope="module")
def lt_oracle(karate_iwc):
    """A shared LT scoring oracle on karate (iwc)."""
    return RRPoolOracle(karate_iwc, pool_size=4000, seed=77, model="lt")


class TestLTSamplingDeterminism:
    def test_rr_sets_bit_identical(self, karate_iwc):
        serial = LINEAR_THRESHOLD.sample_rr_sets(karate_iwc, 60, RandomSource(17), jobs=1)
        parallel = LINEAR_THRESHOLD.sample_rr_sets(
            karate_iwc, 60, RandomSource(17), jobs=JOBS
        )
        assert serial == parallel

    def test_rr_set_cost_accounting_identical(self, karate_iwc):
        cost_serial, size_serial = TraversalCost(), SampleSize()
        cost_parallel, size_parallel = TraversalCost(), SampleSize()
        LINEAR_THRESHOLD.sample_rr_sets(
            karate_iwc, 60, RandomSource(17), jobs=1,
            cost=cost_serial, sample_size=size_serial,
        )
        LINEAR_THRESHOLD.sample_rr_sets(
            karate_iwc, 60, RandomSource(17), jobs=JOBS,
            cost=cost_parallel, sample_size=size_parallel,
        )
        assert (cost_serial.vertices, cost_serial.edges) == (
            cost_parallel.vertices, cost_parallel.edges,
        )
        assert (size_serial.vertices, size_serial.edges) == (
            size_parallel.vertices, size_parallel.edges,
        )

    def test_snapshots_bit_identical(self, karate_iwc):
        serial = LINEAR_THRESHOLD.sample_snapshots(karate_iwc, 25, RandomSource(3), jobs=1)
        parallel = LINEAR_THRESHOLD.sample_snapshots(
            karate_iwc, 25, RandomSource(3), jobs=JOBS
        )
        assert len(serial) == len(parallel) == 25
        for left, right in zip(serial, parallel):
            assert np.array_equal(left.indptr, right.indptr)
            assert np.array_equal(left.targets, right.targets)

    def test_monte_carlo_estimate_bit_identical(self, karate_iwc):
        serial = monte_carlo_spread(karate_iwc, (0, 33), 80, seed=9, model="lt", jobs=1)
        parallel = monte_carlo_spread(
            karate_iwc, (0, 33), 80, seed=9, model="lt", jobs=JOBS
        )
        assert serial == parallel  # frozen dataclass: exact float equality


class TestLTOracleAndEstimatorDeterminism:
    def test_oracle_pool_bit_identical(self, karate_iwc):
        serial = RRPoolOracle(karate_iwc, pool_size=800, seed=4, model="lt", jobs=1)
        parallel = RRPoolOracle(karate_iwc, pool_size=800, seed=4, model="lt", jobs=JOBS)
        assert np.array_equal(
            serial.single_vertex_spreads(), parallel.single_vertex_spreads()
        )
        assert serial.spread((0, 33)) == parallel.spread((0, 33))
        assert serial.average_rr_size == parallel.average_rr_size

    def test_ris_estimator_greedy_bit_identical(self, karate_iwc):
        serial = greedy_maximize(
            karate_iwc, 3, RISEstimator(256, model="lt", jobs=1), seed=21
        )
        parallel = greedy_maximize(
            karate_iwc, 3, RISEstimator(256, model="lt", jobs=JOBS), seed=21
        )
        assert serial == parallel

    def test_snapshot_estimator_greedy_bit_identical(self, karate_iwc):
        serial = greedy_maximize(
            karate_iwc, 2, SnapshotEstimator(16, model="lt", jobs=1), seed=21
        )
        parallel = greedy_maximize(
            karate_iwc, 2, SnapshotEstimator(16, model="lt", jobs=JOBS), seed=21
        )
        assert serial == parallel


class TestLTExperimentDeterminism:
    @pytest.mark.parametrize("approach", ["ris", "snapshot"])
    def test_run_trials_bit_identical(self, karate_iwc, lt_oracle, approach):
        serial = run_trials(
            karate_iwc, 2, estimator_factory(approach, model="lt"), 64, 8,
            oracle=lt_oracle, experiment_seed=13, model="lt", jobs=1,
        )
        parallel = run_trials(
            karate_iwc, 2, estimator_factory(approach, model="lt"), 64, 8,
            oracle=lt_oracle, experiment_seed=13, model="lt", jobs=JOBS,
        )
        assert serial == parallel
