"""Tests for the stateless stream-splitter in ``repro.runtime.seeding``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.random_source import RandomSource
from repro.exceptions import InvalidParameterError
from repro.runtime.seeding import (
    child_generator,
    child_sequence,
    child_sources,
    seed_key,
)


class TestSeedKey:
    def test_int_root(self):
        assert seed_key(42) == (42, ())

    def test_seed_sequence_root(self):
        sequence = np.random.SeedSequence(7, spawn_key=(3,))
        assert seed_key(sequence) == (7, (3,))

    def test_random_source_root(self):
        assert seed_key(RandomSource(99)) == (99, ())

    def test_spawned_source_keeps_spawn_key(self):
        child = RandomSource(5).spawn(2)[1]
        entropy, spawn_key = seed_key(child)
        assert entropy == 5
        assert spawn_key == (1,)

    def test_generator_rejected(self):
        with pytest.raises(InvalidParameterError):
            seed_key(np.random.default_rng(0))

    def test_key_is_picklable_plain_data(self):
        entropy, spawn_key = seed_key(RandomSource(5).spawn(1)[0])
        assert isinstance(entropy, int)
        assert all(isinstance(k, int) for k in spawn_key)


class TestChildDerivation:
    def test_stateless_and_repeatable(self):
        key = seed_key(123)
        first = child_generator(key, 4).random(8)
        second = child_generator(key, 4).random(8)
        assert np.array_equal(first, second)

    def test_distinct_indices_give_distinct_streams(self):
        key = seed_key(123)
        draws = [child_generator(key, index).random(4).tolist() for index in range(16)]
        assert len({tuple(d) for d in draws}) == 16

    def test_matches_fresh_spawn(self):
        # The stateless derivation reproduces exactly what SeedSequence.spawn
        # would hand out from a fresh parent.
        spawned = np.random.SeedSequence(77).spawn(3)
        key = seed_key(77)
        for index, child in enumerate(spawned):
            derived = child_sequence(key, index)
            assert derived.entropy == child.entropy
            assert tuple(derived.spawn_key) == tuple(child.spawn_key)

    def test_child_sources_wraps_random_source(self):
        sources = child_sources(9, 3)
        assert len(sources) == 3
        assert all(isinstance(source, RandomSource) for source in sources)
        again = child_sources(9, 3)
        for first, second in zip(sources, again):
            assert first.uniform() == second.uniform()
