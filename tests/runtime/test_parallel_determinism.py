"""Determinism regression tests: ``jobs=1`` and ``jobs=4`` are bit-identical.

This is the runtime's central contract (see ``repro.runtime``): for every
parallel-enabled entry point, the result is a pure function of the root seed
and the task count — worker count and chunk layout must not leak into any
output.  Each test runs the same workload serially and with a 4-worker
process pool and asserts full equality (seed sets, RR collections, snapshot
arrays, spread estimates, costs), not approximate closeness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.framework import greedy_maximize
from repro.algorithms.ris import RISEstimator
from repro.algorithms.snapshot import SnapshotEstimator
from repro.diffusion.costs import SampleSize, TraversalCost
from repro.diffusion.random_source import RandomSource
from repro.diffusion.reverse import sample_rr_sets
from repro.diffusion.snapshots import sample_snapshots
from repro.estimation.monte_carlo import monte_carlo_spread
from repro.estimation.oracle import RRPoolOracle
from repro.experiments.factories import estimator_factory
from repro.experiments.sweeps import sweep_sample_numbers
from repro.experiments.traversal import per_sample_traversal_cost
from repro.experiments.trials import run_trials

JOBS = 4


class TestSamplingDeterminism:
    def test_rr_sets_bit_identical(self, karate_uc01):
        serial = sample_rr_sets(karate_uc01, 60, RandomSource(17), jobs=1)
        parallel = sample_rr_sets(karate_uc01, 60, RandomSource(17), jobs=JOBS)
        assert [(r.target, r.vertices, r.weight) for r in serial] == [
            (r.target, r.vertices, r.weight) for r in parallel
        ]

    def test_rr_set_cost_accounting_identical(self, karate_uc01):
        cost_serial, size_serial = TraversalCost(), SampleSize()
        cost_parallel, size_parallel = TraversalCost(), SampleSize()
        sample_rr_sets(
            karate_uc01, 60, RandomSource(17), jobs=1,
            cost=cost_serial, sample_size=size_serial,
        )
        sample_rr_sets(
            karate_uc01, 60, RandomSource(17), jobs=JOBS,
            cost=cost_parallel, sample_size=size_parallel,
        )
        assert (cost_serial.vertices, cost_serial.edges) == (
            cost_parallel.vertices, cost_parallel.edges,
        )
        assert (size_serial.vertices, size_serial.edges) == (
            size_parallel.vertices, size_parallel.edges,
        )

    def test_rr_sets_invariant_to_chunking(self, karate_uc01):
        from repro.diffusion.models import INDEPENDENT_CASCADE, _model_rr_chunk_worker
        from repro.runtime.engine import run_seeded_tasks

        def flatten(num_chunks):
            chunks = run_seeded_tasks(
                _model_rr_chunk_worker, 30, 5, jobs=1,
                payload=(INDEPENDENT_CASCADE, karate_uc01), num_chunks=num_chunks,
            )
            return [r.vertices for chunk in chunks for r in chunk[0]]

        assert flatten(1) == flatten(7) == flatten(30)

    def test_snapshots_bit_identical(self, karate_uc01):
        serial = sample_snapshots(karate_uc01, 25, RandomSource(3), jobs=1)
        parallel = sample_snapshots(karate_uc01, 25, RandomSource(3), jobs=JOBS)
        assert len(serial) == len(parallel) == 25
        for left, right in zip(serial, parallel):
            assert np.array_equal(left.indptr, right.indptr)
            assert np.array_equal(left.targets, right.targets)

    def test_monte_carlo_estimate_bit_identical(self, karate_uc01):
        serial = monte_carlo_spread(karate_uc01, (0, 33), 80, seed=9, jobs=1)
        parallel = monte_carlo_spread(karate_uc01, (0, 33), 80, seed=9, jobs=JOBS)
        assert serial == parallel  # frozen dataclass: exact float equality


class TestOracleAndEstimatorDeterminism:
    def test_oracle_pool_bit_identical(self, karate_uc01):
        serial = RRPoolOracle(karate_uc01, pool_size=800, seed=4, jobs=1)
        parallel = RRPoolOracle(karate_uc01, pool_size=800, seed=4, jobs=JOBS)
        assert np.array_equal(
            serial.single_vertex_spreads(), parallel.single_vertex_spreads()
        )
        assert serial.spread((0, 33)) == parallel.spread((0, 33))
        assert serial.average_rr_size == parallel.average_rr_size

    def test_ris_estimator_greedy_bit_identical(self, karate_uc01):
        serial = greedy_maximize(karate_uc01, 3, RISEstimator(256, jobs=1), seed=21)
        parallel = greedy_maximize(karate_uc01, 3, RISEstimator(256, jobs=JOBS), seed=21)
        assert serial == parallel

    def test_snapshot_estimator_greedy_bit_identical(self, karate_uc01):
        serial = greedy_maximize(karate_uc01, 2, SnapshotEstimator(16, jobs=1), seed=21)
        parallel = greedy_maximize(
            karate_uc01, 2, SnapshotEstimator(16, jobs=JOBS), seed=21
        )
        assert serial == parallel


class TestExperimentDeterminism:
    @pytest.mark.parametrize("approach", ["ris", "snapshot"])
    def test_run_trials_bit_identical(self, karate_uc01, karate_oracle, approach):
        serial = run_trials(
            karate_uc01, 2, estimator_factory(approach), 64, 8,
            oracle=karate_oracle, experiment_seed=13, jobs=1,
        )
        parallel = run_trials(
            karate_uc01, 2, estimator_factory(approach), 64, 8,
            oracle=karate_oracle, experiment_seed=13, jobs=JOBS,
        )
        assert serial == parallel

    def test_run_trials_parallel_matches_legacy_serial(self, karate_uc01, karate_oracle):
        # Trials were already seeded per trial before the runtime existed, so
        # even the legacy (jobs=None) path must equal the parallel one.
        legacy = run_trials(
            karate_uc01, 2, estimator_factory("ris"), 64, 8,
            oracle=karate_oracle, experiment_seed=13,
        )
        parallel = run_trials(
            karate_uc01, 2, estimator_factory("ris"), 64, 8,
            oracle=karate_oracle, experiment_seed=13, jobs=JOBS,
        )
        assert legacy == parallel

    def test_sweep_bit_identical(self, karate_uc01, karate_oracle):
        serial = sweep_sample_numbers(
            karate_uc01, 1, estimator_factory("ris"), (4, 16, 64), 6,
            oracle=karate_oracle, experiment_seed=5, jobs=1,
        )
        parallel = sweep_sample_numbers(
            karate_uc01, 1, estimator_factory("ris"), (4, 16, 64), 6,
            oracle=karate_oracle, experiment_seed=5, jobs=JOBS,
        )
        assert serial == parallel
        assert serial.entropies() == parallel.entropies()
        assert serial.mean_influences() == parallel.mean_influences()

    def test_traversal_costs_bit_identical(self, karate_uc01):
        serial = per_sample_traversal_cost(
            karate_uc01, estimator_factory("ris"), num_repetitions=6, jobs=1
        )
        parallel = per_sample_traversal_cost(
            karate_uc01, estimator_factory("ris"), num_repetitions=6, jobs=JOBS
        )
        assert serial == parallel
