"""Tests for deterministic index-span chunking."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.runtime.chunking import chunk_spans, default_num_chunks


class TestChunkSpans:
    @pytest.mark.parametrize("count,num_chunks", [(1, 1), (10, 3), (7, 7), (5, 9), (100, 8)])
    def test_spans_partition_the_range(self, count, num_chunks):
        spans = chunk_spans(count, num_chunks)
        covered = [index for start, stop in spans for index in range(start, stop)]
        assert covered == list(range(count))

    def test_balanced_within_one(self):
        lengths = [stop - start for start, stop in chunk_spans(10, 3)]
        assert max(lengths) - min(lengths) <= 1
        assert sum(lengths) == 10

    def test_never_more_chunks_than_items(self):
        assert len(chunk_spans(3, 100)) == 3

    def test_zero_count_gives_no_spans(self):
        assert chunk_spans(0, 4) == []

    def test_deterministic(self):
        assert chunk_spans(37, 5) == chunk_spans(37, 5)

    def test_negative_count_rejected(self):
        with pytest.raises(InvalidParameterError):
            chunk_spans(-1, 2)

    def test_zero_chunks_rejected(self):
        with pytest.raises(InvalidParameterError):
            chunk_spans(5, 0)


class TestDefaultNumChunks:
    def test_serial_is_single_chunk(self):
        assert default_num_chunks(1000, 1) == 1

    def test_parallel_oversubscribes_for_balance(self):
        assert default_num_chunks(1000, 4) == 16

    def test_capped_at_count(self):
        assert default_num_chunks(3, 4) == 3

    def test_empty_workload(self):
        assert default_num_chunks(0, 4) == 0
