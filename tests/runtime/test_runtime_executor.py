"""Tests for the Executor implementations and the engine."""

from __future__ import annotations

import os

import pytest

from repro.exceptions import InvalidParameterError
from repro.runtime.engine import executor_scope, run_seeded_tasks, run_tasks
from repro.runtime.executor import ParallelExecutor, SerialExecutor
from repro.runtime.seeding import child_generator


def _square(value: int) -> int:
    """Module-level so it pickles into worker processes."""
    return value * value


def _sum_of_uniform_counts(payload: int, root_key: tuple, start: int, stop: int) -> list[int]:
    """Seeded chunk worker: integer draw per index, payload as an offset."""
    return [
        payload + int(child_generator(root_key, index).integers(1_000_000))
        for index in range(start, stop)
    ]


def _pid_worker(_task: int) -> int:
    return os.getpid()


class TestSerialExecutor:
    def test_map_preserves_order(self):
        assert SerialExecutor().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_jobs_is_one(self):
        assert SerialExecutor().jobs == 1

    def test_context_manager(self):
        with SerialExecutor() as resolved:
            assert resolved.map(_square, []) == []


class TestParallelExecutor:
    def test_map_preserves_order(self):
        with ParallelExecutor(2) as pool:
            assert pool.map(_square, list(range(10))) == [v * v for v in range(10)]

    def test_runs_in_worker_processes(self):
        with ParallelExecutor(2) as pool:
            pids = pool.map(_pid_worker, [0, 1, 2, 3])
        assert os.getpid() not in pids

    def test_pool_reused_across_maps(self):
        with ParallelExecutor(2) as pool:
            first = set(pool.map(_pid_worker, range(4)))
            second = set(pool.map(_pid_worker, range(4)))
        assert first & second

    def test_invalid_jobs_rejected(self):
        with pytest.raises(InvalidParameterError):
            ParallelExecutor(0)

    def test_empty_map_spawns_nothing(self):
        pool = ParallelExecutor(2)
        assert pool.map(_square, []) == []
        assert pool._pool is None  # nothing was started
        pool.close()


class TestExecutorScope:
    def test_default_is_serial(self):
        with executor_scope() as resolved:
            assert isinstance(resolved, SerialExecutor)

    def test_jobs_one_is_serial(self):
        with executor_scope(jobs=1) as resolved:
            assert isinstance(resolved, SerialExecutor)

    def test_jobs_many_is_parallel_and_closed(self):
        with executor_scope(jobs=2) as resolved:
            assert isinstance(resolved, ParallelExecutor)
            resolved.map(_square, [1, 2])
            assert resolved._pool is not None
        assert resolved._pool is None  # closed on scope exit

    def test_explicit_executor_is_caller_owned(self):
        pool = ParallelExecutor(2)
        try:
            with executor_scope(executor=pool) as resolved:
                assert resolved is pool
                resolved.map(_square, [1])
            assert pool._pool is not None  # scope exit must not close it
        finally:
            pool.close()


class TestEngine:
    def test_run_tasks_matches_serial(self):
        tasks = list(range(20))
        assert run_tasks(_square, tasks, jobs=2) == [v * v for v in tasks]

    def test_seeded_results_invariant_to_jobs_and_chunking(self):
        def collect(**kwargs):
            chunks = run_seeded_tasks(
                _sum_of_uniform_counts, 23, 99, payload=1000, **kwargs
            )
            return [value for chunk in chunks for value in chunk]

        reference = collect(jobs=1)
        assert collect(jobs=1, num_chunks=7) == reference
        assert collect(jobs=2) == reference
        assert collect(jobs=2, num_chunks=23) == reference

    def test_zero_tasks(self):
        assert run_seeded_tasks(_sum_of_uniform_counts, 0, 1, payload=0, jobs=2) == []
