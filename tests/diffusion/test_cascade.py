"""Tests for forward IC cascade simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.cascade import (
    activation_probabilities,
    simulate_cascade,
    simulate_spread,
)
from repro.diffusion.costs import TraversalCost
from repro.diffusion.exact import exact_spread
from repro.diffusion.random_source import RandomSource
from repro.exceptions import InvalidParameterError, InvalidSeedSetError
from repro.graphs.builder import GraphBuilder


class TestDeterministicGraphs:
    def test_star_activates_everything(self, star_graph, rng):
        result = simulate_cascade(star_graph, (0,), rng)
        assert result.num_activated == 6
        assert set(result.activated) == set(range(6))

    def test_leaf_seed_activates_only_itself(self, star_graph, rng):
        result = simulate_cascade(star_graph, (3,), rng)
        assert result.activated == (3,)

    def test_path_propagates_fully(self, path_graph, rng):
        result = simulate_cascade(path_graph, (0,), rng)
        assert result.num_activated == 4

    def test_path_from_middle(self, path_graph, rng):
        result = simulate_cascade(path_graph, (2,), rng)
        assert set(result.activated) == {2, 3}

    def test_multiple_seeds(self, two_hubs_graph, rng):
        result = simulate_cascade(two_hubs_graph, (0, 4), rng)
        assert result.num_activated == 7

    def test_contains_dunder(self, star_graph, rng):
        result = simulate_cascade(star_graph, (0,), rng)
        assert 3 in result
        assert 99 not in result


class TestSeedValidation:
    def test_out_of_range_seed(self, star_graph, rng):
        with pytest.raises(InvalidSeedSetError):
            simulate_cascade(star_graph, (10,), rng)

    def test_duplicate_seed(self, star_graph, rng):
        with pytest.raises(InvalidSeedSetError):
            simulate_cascade(star_graph, [0, 0], rng)

    def test_negative_seed(self, star_graph, rng):
        with pytest.raises(InvalidSeedSetError):
            simulate_cascade(star_graph, (-1,), rng)


class TestCostAccounting:
    def test_star_costs(self, star_graph, rng):
        cost = TraversalCost()
        simulate_cascade(star_graph, (0,), rng, cost=cost)
        # All 6 vertices activate; only the centre has out-edges (5 of them).
        assert cost.vertices == 6
        assert cost.edges == 5

    def test_leaf_costs(self, star_graph, rng):
        cost = TraversalCost()
        simulate_cascade(star_graph, (3,), rng, cost=cost)
        assert cost.vertices == 1
        assert cost.edges == 0

    def test_cost_accumulates_over_calls(self, star_graph, rng):
        cost = TraversalCost()
        simulate_cascade(star_graph, (0,), rng, cost=cost)
        simulate_cascade(star_graph, (0,), rng, cost=cost)
        assert cost.vertices == 12

    def test_zero_probability_edges_still_examined(self, rng):
        builder = GraphBuilder(3, default_probability=0.001)
        builder.add_edge(0, 1)
        builder.add_edge(0, 2)
        cost = TraversalCost()
        simulate_cascade(builder.build(), (0,), rng, cost=cost)
        # Both out-edges receive a coin flip even though activation is unlikely.
        assert cost.edges == 2


class TestStochasticBehaviour:
    def test_unbiasedness_on_diamond(self, probabilistic_diamond):
        exact = exact_spread(probabilistic_diamond, (0,))
        estimate = simulate_spread(
            probabilistic_diamond, (0,), 4000, RandomSource(11)
        )
        assert estimate == pytest.approx(exact, rel=0.05)

    def test_spread_bounded_by_graph_size(self, probabilistic_diamond):
        estimate = simulate_spread(probabilistic_diamond, (0,), 500, RandomSource(3))
        assert 1.0 <= estimate <= 4.0

    def test_determinism_given_rng(self, karate_uc01):
        a = simulate_cascade(karate_uc01, (0,), RandomSource(5).generator)
        b = simulate_cascade(karate_uc01, (0,), RandomSource(5).generator)
        assert a.activated == b.activated

    def test_invalid_simulation_count(self, star_graph):
        with pytest.raises(InvalidParameterError):
            simulate_spread(star_graph, (0,), 0, RandomSource(0))

    def test_monotone_in_seed_set_on_average(self, karate_uc01):
        small = simulate_spread(karate_uc01, (0,), 600, RandomSource(1))
        large = simulate_spread(karate_uc01, (0, 33), 600, RandomSource(1))
        assert large > small


class TestActivationProbabilities:
    def test_deterministic_star(self, star_graph):
        probs = activation_probabilities(star_graph, (0,), 50, RandomSource(0))
        assert np.allclose(probs, 1.0)

    def test_unreachable_vertices_never_activate(self, two_hubs_graph):
        probs = activation_probabilities(two_hubs_graph, (0,), 50, RandomSource(0))
        assert probs[0] == 1.0
        assert probs[5] == 0.0
        assert probs[6] == 0.0

    def test_probabilities_in_unit_interval(self, karate_uc01):
        probs = activation_probabilities(karate_uc01, (0,), 100, RandomSource(2))
        assert probs.min() >= 0.0
        assert probs.max() <= 1.0
        assert probs[0] == 1.0
