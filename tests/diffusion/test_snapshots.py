"""Tests for live-edge snapshot sampling and reachability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.costs import SampleSize, TraversalCost
from repro.diffusion.random_source import RandomSource
from repro.diffusion.snapshots import (
    reachable_count,
    reachable_set,
    sample_snapshot,
    sample_snapshots,
    single_source_reachability,
)
from repro.graphs.builder import GraphBuilder
from repro.graphs.probability import uniform_cascade


class TestSampleSnapshot:
    def test_deterministic_graph_keeps_all_edges(self, star_graph, rng):
        snapshot = sample_snapshot(star_graph, rng)
        assert snapshot.num_live_edges == star_graph.num_edges

    def test_low_probability_keeps_few_edges(self, karate_uc01):
        counts = [
            sample_snapshot(karate_uc01, RandomSource(seed)).num_live_edges
            for seed in range(30)
        ]
        # Expected number of live edges is m~ = 15.6.
        assert 5 <= float(np.mean(counts)) <= 30

    def test_sample_size_accounting(self, karate_uc01):
        size = SampleSize()
        snapshot = sample_snapshot(karate_uc01, RandomSource(0), sample_size=size)
        assert size.edges == snapshot.num_live_edges
        assert size.vertices == 0

    def test_live_edges_subset_of_original(self, karate_uc01):
        snapshot = sample_snapshot(karate_uc01, RandomSource(1))
        original = {(e.source, e.target) for e in karate_uc01.edges()}
        for vertex in range(snapshot.num_vertices):
            for target in snapshot.out_neighbors(vertex):
                assert (vertex, int(target)) in original

    def test_sample_snapshots_count(self, karate_uc01):
        snapshots = sample_snapshots(karate_uc01, 5, RandomSource(2))
        assert len(snapshots) == 5

    def test_expected_live_edge_count_matches_m_tilde(self, karate_uc01):
        size = SampleSize()
        sample_snapshots(karate_uc01, 200, RandomSource(3), sample_size=size)
        mean_live = size.edges / 200
        assert mean_live == pytest.approx(karate_uc01.expected_live_edges, rel=0.15)


class TestReachability:
    def test_reachable_set_on_deterministic_star(self, star_graph, rng):
        snapshot = sample_snapshot(star_graph, rng)
        assert reachable_set(snapshot, (0,)) == set(range(6))
        assert reachable_set(snapshot, (2,)) == {2}

    def test_reachable_count(self, path_graph, rng):
        snapshot = sample_snapshot(path_graph, rng)
        assert reachable_count(snapshot, (0,)) == 4
        assert reachable_count(snapshot, (3,)) == 1

    def test_multiple_seeds_union(self, two_hubs_graph, rng):
        snapshot = sample_snapshot(two_hubs_graph, rng)
        assert reachable_count(snapshot, (0, 4)) == 7

    def test_blocked_vertices_excluded(self, star_graph, rng):
        snapshot = sample_snapshot(star_graph, rng)
        blocked = np.zeros(6, dtype=bool)
        blocked[[1, 2]] = True
        assert reachable_set(snapshot, (0,), blocked=blocked) == {0, 3, 4, 5}

    def test_blocked_seed_returns_empty(self, star_graph, rng):
        snapshot = sample_snapshot(star_graph, rng)
        blocked = np.zeros(6, dtype=bool)
        blocked[0] = True
        assert reachable_set(snapshot, (0,), blocked=blocked) == set()

    def test_cost_accounting(self, star_graph, rng):
        snapshot = sample_snapshot(star_graph, rng)
        cost = TraversalCost()
        reachable_set(snapshot, (0,), cost=cost)
        assert cost.vertices == 6
        assert cost.edges == 5

    def test_snapshot_reachability_only_counts_live_edges(self):
        builder = GraphBuilder(3, default_probability=1.0)
        builder.add_edge(0, 1)
        builder.add_edge(1, 2)
        graph = uniform_cascade(builder.build(), 0.0001)
        # With tiny probabilities the snapshot is almost surely empty.
        snapshot = sample_snapshot(graph, RandomSource(0))
        cost = TraversalCost()
        assert reachable_count(snapshot, (0,), cost=cost) == 1
        assert cost.edges == snapshot.num_live_edges == 0


class TestSingleSourceReachability:
    def test_deterministic_path(self, path_graph, rng):
        snapshot = sample_snapshot(path_graph, rng)
        counts = single_source_reachability(snapshot)
        assert counts.tolist() == [4, 3, 2, 1]

    def test_matches_individual_queries(self, karate_uc01):
        snapshot = sample_snapshot(karate_uc01, RandomSource(4))
        counts = single_source_reachability(snapshot)
        for vertex in (0, 7, 33):
            assert counts[vertex] == reachable_count(snapshot, (vertex,))
