"""Tests for the seeded random source and trial-seed derivation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.random_source import RandomSource, trial_seeds
from repro.exceptions import InvalidParameterError


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a = RandomSource(42)
        b = RandomSource(42)
        assert a.uniform(5).tolist() == b.uniform(5).tolist()

    def test_different_seed_different_stream(self):
        assert RandomSource(1).uniform(10).tolist() != RandomSource(2).uniform(10).tolist()

    def test_scalar_uniform_in_unit_interval(self):
        source = RandomSource(0)
        for _ in range(100):
            value = source.uniform()
            assert 0.0 <= value < 1.0

    def test_integers_in_range(self):
        source = RandomSource(0)
        draws = source.integers(7, size=200)
        assert draws.min() >= 0
        assert draws.max() < 7

    def test_scalar_integer(self):
        assert isinstance(RandomSource(0).integers(10), int)

    def test_permutation_is_permutation(self):
        perm = RandomSource(3).permutation(20)
        assert sorted(perm.tolist()) == list(range(20))

    def test_spawn_children_are_independent_and_deterministic(self):
        children_a = RandomSource(7).spawn(3)
        children_b = RandomSource(7).spawn(3)
        for child_a, child_b in zip(children_a, children_b):
            assert child_a.uniform(4).tolist() == child_b.uniform(4).tolist()
        streams = [tuple(np.round(child.uniform(4), 12)) for child in RandomSource(7).spawn(3)]
        assert len(set(streams)) == 3

    def test_negative_seed_rejected(self):
        with pytest.raises(InvalidParameterError):
            RandomSource(-1)

    def test_generator_exposed(self):
        assert isinstance(RandomSource(0).generator, np.random.Generator)


class TestTrialSeeds:
    def test_count_and_determinism(self):
        seeds_a = trial_seeds(5, 10)
        seeds_b = trial_seeds(5, 10)
        assert len(seeds_a) == 10
        assert seeds_a == seeds_b

    def test_distinct_within_experiment(self):
        seeds = trial_seeds(0, 200)
        assert len(set(seeds)) == 200

    def test_different_experiments_differ(self):
        assert trial_seeds(1, 5) != trial_seeds(2, 5)

    def test_zero_trials(self):
        assert trial_seeds(0, 0) == []
