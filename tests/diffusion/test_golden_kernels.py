"""Golden determinism tests for the vectorized frontier kernels.

Two layers of protection against draw-order drift:

* **Reference equivalence** — the vectorized kernels must reproduce the
  per-vertex reference loops (:mod:`repro.diffusion._reference`, kept
  verbatim from the pre-vectorization code) bit-for-bit: activation order,
  RR-set contents and weights, traversal-cost totals, and PRNG stream
  consumption, across graphs whose frontiers cross the scalar/vectorized
  threshold in both directions.
* **Pinned goldens** — concrete values captured from the pre-refactor code on
  karate and a random scale-free graph.  These catch the failure mode the
  reference comparison cannot: both implementations drifting together.

The pinned values also cover the runtime's split-stream path (``jobs=1`` ==
``jobs=4`` == the pinned collection) and the LT model (whose kernels share
the result types and must stay byte-identical through the refactor).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion._reference import (
    reachable_set_reference,
    sample_rr_set_reference,
    simulate_cascade_reference,
)
from repro.diffusion.cascade import simulate_cascade, simulate_cascades
from repro.diffusion.costs import SampleSize, TraversalCost
from repro.diffusion.models import LINEAR_THRESHOLD
from repro.diffusion.random_source import RandomSource
from repro.diffusion.reverse import sample_rr_set, sample_rr_sets
from repro.diffusion.snapshots import (
    reachable_count,
    reachable_mask,
    reachable_set,
    sample_snapshot,
)
from repro.estimation.monte_carlo import monte_carlo_spread
from repro.graphs.datasets import load_dataset
from repro.graphs.generators import directed_scale_free
from repro.graphs.probability import assign_probabilities


@pytest.fixture(scope="module")
def karate():
    return assign_probabilities(load_dataset("karate"), "iwc")


@pytest.fixture(scope="module")
def scale_free():
    return assign_probabilities(
        directed_scale_free(300, average_out_degree=6.0, seed=7, hub_bias=0.6), "iwc"
    )


def _graphs_for_equivalence():
    """Graph family crossing the scalar/vectorized frontier threshold."""
    specs = []
    for seed in range(10):
        model = ("iwc", "uc0.1", "trivalency")[seed % 3]
        specs.append((seed, model))
    return specs


class TestReferenceEquivalence:
    """Vectorized kernels == per-vertex reference loops, bit for bit."""

    @pytest.mark.parametrize("seed,prob_model", _graphs_for_equivalence())
    def test_cascade_order_cost_and_stream(self, seed, prob_model):
        graph = assign_probabilities(
            directed_scale_free(150, average_out_degree=10.0, seed=seed), prob_model
        )
        reference_cost, vector_cost = TraversalCost(), TraversalCost()
        reference_rng = RandomSource(seed).generator
        vector_rng = RandomSource(seed).generator
        reference = simulate_cascade_reference(
            graph, (0, 1, 2, 3), reference_rng, cost=reference_cost
        )
        vectorized = simulate_cascade(graph, (0, 1, 2, 3), vector_rng, cost=vector_cost)
        assert vectorized.activated == reference.activated
        assert (vector_cost.vertices, vector_cost.edges) == (
            reference_cost.vertices,
            reference_cost.edges,
        )
        # Stream consumption must match exactly: the next draw agrees.
        assert reference_rng.random() == vector_rng.random()

    @pytest.mark.parametrize("seed,prob_model", _graphs_for_equivalence())
    def test_rr_set_contents_weight_cost_and_stream(self, seed, prob_model):
        graph = assign_probabilities(
            directed_scale_free(150, average_out_degree=10.0, seed=seed), prob_model
        )
        reference_cost, vector_cost = TraversalCost(), TraversalCost()
        reference_size, vector_size = SampleSize(), SampleSize()
        reference_rng = RandomSource(seed + 50).generator
        vector_rng = RandomSource(seed + 50).generator
        reference = sample_rr_set_reference(
            graph, reference_rng, cost=reference_cost, sample_size=reference_size
        )
        vectorized = sample_rr_set(
            graph, vector_rng, cost=vector_cost, sample_size=vector_size
        )
        assert (vectorized.target, vectorized.vertices, vectorized.weight) == (
            reference.target,
            reference.vertices,
            reference.weight,
        )
        assert (vector_cost.vertices, vector_cost.edges) == (
            reference_cost.vertices,
            reference_cost.edges,
        )
        assert vector_size.vertices == reference_size.vertices
        assert reference_rng.random() == vector_rng.random()

    @pytest.mark.parametrize("seed,prob_model", _graphs_for_equivalence())
    def test_reachability_set_and_cost(self, seed, prob_model):
        graph = assign_probabilities(
            directed_scale_free(150, average_out_degree=10.0, seed=seed), prob_model
        )
        snapshot = sample_snapshot(graph, RandomSource(seed + 99))
        blocked = np.zeros(graph.num_vertices, dtype=bool)
        blocked[::5] = True
        for blocked_mask in (None, blocked):
            reference_cost, vector_cost = TraversalCost(), TraversalCost()
            reference = reachable_set_reference(
                snapshot, (0, 2), cost=reference_cost, blocked=blocked_mask
            )
            vectorized = reachable_set(
                snapshot, (0, 2), cost=vector_cost, blocked=blocked_mask
            )
            assert vectorized == reference
            assert (vector_cost.vertices, vector_cost.edges) == (
                reference_cost.vertices,
                reference_cost.edges,
            )
            mask = reachable_mask(snapshot, (0, 2), blocked=blocked_mask)
            assert set(np.nonzero(mask)[0].tolist()) == reference
            assert reachable_count(snapshot, (0, 2), blocked=blocked_mask) == len(
                reference
            )

    def test_batch_equals_repeated_single_calls(self, karate):
        single_rng = RandomSource(3).generator
        singles = [simulate_cascade_reference(karate, (0,), single_rng) for _ in range(20)]
        batch = simulate_cascades(karate, (0,), 20, RandomSource(3))
        assert [result.activated for result in batch] == [
            result.activated for result in singles
        ]

        single_rng = RandomSource(4).generator
        single_sets = [sample_rr_set_reference(karate, single_rng) for _ in range(20)]
        batch_sets = sample_rr_sets(karate, 20, RandomSource(4))
        assert [(r.target, r.vertices, r.weight) for r in batch_sets] == [
            (r.target, r.vertices, r.weight) for r in single_sets
        ]


#: Values captured from the pre-refactor per-vertex loops (RandomSource(11),
#: seeds (0, 5), iwc probabilities) — see the module docstring.
KARATE_CASCADE_GOLDEN = (
    0, 5, 4, 7, 8, 11, 12, 19, 21, 6, 30, 16, 33, 13, 14, 20, 22, 23, 26, 29,
    32, 2, 25, 9, 28, 24, 31, 27,
)
#: Re-captured when directed_scale_free gained deterministic (sorted) edge
#: emission per source — the edge *set* per seed is unchanged, but the edge
#: order (and hence the kernel draw order on this graph) is now independent
#: of Python's set iteration order.
SCALE_FREE_CASCADE_GOLDEN = (
    0, 5, 39, 151, 32, 140, 159, 43, 18, 294, 35, 162, 218, 295, 286, 166,
    298, 6, 15, 50, 37, 52, 129, 189, 41, 243, 285, 91, 153, 20, 72, 289, 66,
    86, 173, 36, 103, 290, 79, 219, 94, 161, 106, 179, 194, 97, 17, 183, 229,
    28, 143,
)


class TestPinnedGoldens:
    """Hard-coded pre-refactor outputs on karate and a scale-free graph."""

    def test_karate_cascade(self, karate):
        cost = TraversalCost()
        result = simulate_cascade(karate, (0, 5), RandomSource(11), cost=cost)
        assert result.activated == KARATE_CASCADE_GOLDEN
        assert (cost.vertices, cost.edges) == (28, 132)

    def test_scale_free_cascade(self, scale_free):
        cost = TraversalCost()
        result = simulate_cascade(scale_free, (0, 5), RandomSource(11), cost=cost)
        assert result.activated == SCALE_FREE_CASCADE_GOLDEN
        assert (cost.vertices, cost.edges) == (51, 298)

    def test_karate_rr_set(self, karate):
        cost, size = TraversalCost(), SampleSize()
        rr_set = sample_rr_set(karate, RandomSource(22), cost=cost, sample_size=size)
        assert rr_set.target == 26
        assert sorted(rr_set.vertices) == [9, 15, 26, 29, 33]
        assert rr_set.weight == 27
        assert (cost.vertices, cost.edges, size.vertices) == (5, 27, 5)

    def test_scale_free_rr_set(self, scale_free):
        cost, size = TraversalCost(), SampleSize()
        rr_set = sample_rr_set(scale_free, RandomSource(22), cost=cost, sample_size=size)
        assert rr_set.target == 231
        assert sorted(rr_set.vertices) == [0, 56, 58, 76, 90, 139, 179, 231, 241, 242]
        assert rr_set.weight == 78
        assert (cost.vertices, cost.edges, size.vertices) == (10, 78, 10)

    def test_karate_snapshot_reachability(self, karate):
        snapshot = sample_snapshot(karate, RandomSource(33))
        assert snapshot.num_live_edges == 35
        cost = TraversalCost()
        reach = reachable_set(snapshot, (0,), cost=cost)
        assert sorted(reach) == [0, 3, 4, 5, 6, 10, 11, 12, 13, 16, 17, 21]
        assert (cost.vertices, cost.edges) == (12, 12)

    def test_scale_free_snapshot_reachability(self, scale_free):
        snapshot = sample_snapshot(scale_free, RandomSource(33))
        assert snapshot.num_live_edges == 301
        cost = TraversalCost()
        assert reachable_set(snapshot, (0,), cost=cost) == {0}
        assert (cost.vertices, cost.edges) == (1, 0)


class TestSplitStreamGoldens:
    """jobs=1 == jobs=4 == the pre-refactor split-stream collections."""

    def test_rr_sets_jobs_pinned_and_equal(self, karate):
        jobs_one = sample_rr_sets(karate, 50, RandomSource(9), jobs=1)
        jobs_four = sample_rr_sets(karate, 50, RandomSource(9), jobs=4)
        as_tuples = [(r.target, sorted(r.vertices), r.weight) for r in jobs_one]
        assert as_tuples == [
            (r.target, sorted(r.vertices), r.weight) for r in jobs_four
        ]
        assert as_tuples[:3] == [
            (12, [0, 5, 6, 12, 16], 28),
            (19, [0, 4, 6, 19], 26),
            (23, [23], 5),
        ]

    def test_rr_jobs_cost_totals_independent_of_workers(self, karate):
        cost_one, cost_four = TraversalCost(), TraversalCost()
        size_one, size_four = SampleSize(), SampleSize()
        sample_rr_sets(karate, 50, RandomSource(9), jobs=1, cost=cost_one, sample_size=size_one)
        sample_rr_sets(karate, 50, RandomSource(9), jobs=4, cost=cost_four, sample_size=size_four)
        assert (cost_one.vertices, cost_one.edges) == (cost_four.vertices, cost_four.edges)
        assert size_one.vertices == size_four.vertices

    def test_monte_carlo_pinned_serial_and_jobs(self, karate):
        assert monte_carlo_spread(karate, (0, 33), 200, seed=5).mean == 18.44
        assert monte_carlo_spread(karate, (0, 33), 200, seed=5, jobs=1).mean == 17.635
        assert monte_carlo_spread(karate, (0, 33), 200, seed=5, jobs=4).mean == 17.635


class TestLinearThresholdGoldens:
    """LT shares the result types; its outputs must survive the refactor."""

    def test_lt_cascade_pinned(self, karate):
        result = LINEAR_THRESHOLD.simulate_cascade(karate, (0,), RandomSource(13))
        assert result.activated == (0, 4, 7, 10, 11, 12, 17, 3)

    def test_lt_rr_set_pinned(self, karate):
        rr_set = LINEAR_THRESHOLD.sample_rr_set(karate, RandomSource(14))
        assert (rr_set.target, sorted(rr_set.vertices), rr_set.weight) == (5, [5, 6], 8)

    def test_lt_jobs_equal(self, karate):
        jobs_one = LINEAR_THRESHOLD.sample_rr_sets(karate, 20, RandomSource(15), jobs=1)
        jobs_four = LINEAR_THRESHOLD.sample_rr_sets(karate, 20, RandomSource(15), jobs=4)
        assert [(r.target, r.vertices, r.weight) for r in jobs_one] == [
            (r.target, r.vertices, r.weight) for r in jobs_four
        ]
