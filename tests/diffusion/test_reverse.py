"""Tests for RR-set generation and the RR-set collection."""

from __future__ import annotations

import pytest

from repro.diffusion.costs import SampleSize, TraversalCost
from repro.diffusion.exact import exact_spread
from repro.diffusion.random_source import RandomSource
from repro.diffusion.reverse import RRSetCollection, sample_rr_set, sample_rr_sets
from repro.graphs.generators import path, star


class TestSampleRRSet:
    def test_target_always_included(self, karate_uc01):
        for seed in range(20):
            rr_set = sample_rr_set(karate_uc01, RandomSource(seed))
            assert rr_set.target in rr_set.vertices

    def test_fixed_target(self, karate_uc01, rng):
        rr_set = sample_rr_set(karate_uc01, rng, target=5)
        assert rr_set.target == 5

    def test_deterministic_star_rr_set(self, star_graph, rng):
        # In an outward star with p=1, the RR set of a leaf is {leaf, centre},
        # and the RR set of the centre is just {centre}.
        leaf_rr = sample_rr_set(star_graph, rng, target=3)
        assert leaf_rr.vertices == frozenset({0, 3})
        centre_rr = sample_rr_set(star_graph, rng, target=0)
        assert centre_rr.vertices == frozenset({0})

    def test_weight_is_sum_of_in_degrees(self, star_graph, rng):
        rr_set = sample_rr_set(star_graph, rng, target=3)
        expected = sum(star_graph.in_degree(v) for v in rr_set.vertices)
        assert rr_set.weight == expected

    def test_path_rr_set_reaches_all_ancestors(self, path_graph, rng):
        rr_set = sample_rr_set(path_graph, rng, target=3)
        assert rr_set.vertices == frozenset({0, 1, 2, 3})

    def test_cost_and_sample_size_accounting(self, path_graph, rng):
        cost = TraversalCost()
        size = SampleSize()
        rr_set = sample_rr_set(path_graph, rng, target=3, cost=cost, sample_size=size)
        assert cost.vertices == rr_set.size == 4
        assert cost.edges == rr_set.weight == 3
        assert size.vertices == 4
        assert size.edges == 0

    def test_intersects(self, star_graph, rng):
        rr_set = sample_rr_set(star_graph, rng, target=2)
        assert rr_set.intersects({0})
        assert rr_set.intersects((2, 5))
        assert not rr_set.intersects({4})

    def test_empty_graph_raises(self):
        from repro.graphs.builder import GraphBuilder

        with pytest.raises(ValueError):
            sample_rr_set(GraphBuilder(0).build(), RandomSource(0))


class TestRRSetIdentity:
    """Pr[R intersects S] == Inf(S) / n (Borgs et al., Observation 3.2)."""

    def test_identity_on_diamond(self, probabilistic_diamond):
        num_sets = 6000
        rng = RandomSource(17)
        rr_sets = sample_rr_sets(probabilistic_diamond, num_sets, rng)
        for seeds in [(0,), (1,), (0, 3)]:
            hits = sum(1 for rr_set in rr_sets if rr_set.intersects(set(seeds)))
            estimate = probabilistic_diamond.num_vertices * hits / num_sets
            assert estimate == pytest.approx(exact_spread(probabilistic_diamond, seeds), rel=0.08)

    def test_expected_size_is_average_influence(self, star_graph):
        # EPT = sum_v Inf(v) / n; for the outward star with 5 leaves this is
        # (Inf(centre)=6, Inf(leaf)=1 each) -> (6 + 5) / 6 = 11/6.
        rr_sets = sample_rr_sets(star_graph, 3000, RandomSource(23))
        mean_size = sum(rr_set.size for rr_set in rr_sets) / len(rr_sets)
        assert mean_size == pytest.approx(11 / 6, rel=0.05)


class TestRRSetCollection:
    def make_collection(self, graph, count=200, seed=0):
        rr_sets = sample_rr_sets(graph, count, RandomSource(seed))
        return RRSetCollection(rr_sets, graph.num_vertices), rr_sets

    def test_counts(self, karate_uc01):
        collection, rr_sets = self.make_collection(karate_uc01)
        assert collection.num_total == len(rr_sets) == 200
        assert collection.num_alive == 200
        assert collection.total_size == sum(r.size for r in rr_sets)
        assert collection.total_weight == sum(r.weight for r in rr_sets)

    def test_coverage_matches_membership(self, karate_uc01):
        collection, rr_sets = self.make_collection(karate_uc01)
        for vertex in (0, 16, 33):
            expected = sum(1 for r in rr_sets if vertex in r.vertices)
            assert collection.coverage(vertex) == expected

    def test_fraction_covered(self, karate_uc01):
        collection, rr_sets = self.make_collection(karate_uc01)
        expected = sum(1 for r in rr_sets if r.intersects({0, 33})) / len(rr_sets)
        assert collection.fraction_covered({0, 33}) == pytest.approx(expected)

    def test_remove_covered_by(self, karate_uc01):
        collection, rr_sets = self.make_collection(karate_uc01)
        before = collection.coverage(0)
        removed = collection.remove_covered_by(0)
        assert removed == before
        assert collection.coverage(0) == 0
        assert collection.num_alive == collection.num_total - removed

    def test_remove_is_idempotent(self, karate_uc01):
        collection, _ = self.make_collection(karate_uc01)
        first = collection.remove_covered_by(0)
        second = collection.remove_covered_by(0)
        assert first > 0
        assert second == 0

    def test_marginal_coverage_after_removal(self, karate_uc01):
        collection, rr_sets = self.make_collection(karate_uc01)
        collection.remove_covered_by(0)
        expected = sum(
            1 for r in rr_sets if 33 in r.vertices and 0 not in r.vertices
        )
        assert collection.coverage(33) == expected

    def test_iteration_and_len(self, karate_uc01):
        collection, rr_sets = self.make_collection(karate_uc01, count=10)
        assert len(collection) == 10
        assert list(collection) == rr_sets

    def test_coverage_array(self, star_graph):
        collection, _ = self.make_collection(star_graph, count=50, seed=1)
        array = collection.coverage_array()
        for vertex in range(star_graph.num_vertices):
            assert array[vertex] == collection.coverage(vertex)

    def test_centre_dominates_star_coverage(self, star_graph):
        collection, _ = self.make_collection(star_graph, count=500, seed=2)
        centre_coverage = collection.coverage(0)
        assert all(
            centre_coverage >= collection.coverage(leaf) for leaf in range(1, 6)
        )
