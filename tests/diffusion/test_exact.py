"""Tests for exact spread computation by live-edge enumeration."""

from __future__ import annotations

import pytest

from repro.diffusion.exact import (
    MAX_EXACT_EDGES,
    exact_optimal_seed_set,
    exact_single_vertex_spreads,
    exact_spread,
)
from repro.exceptions import InvalidParameterError
from repro.graphs.builder import GraphBuilder
from repro.graphs.generators import path, star


class TestExactSpread:
    def test_deterministic_star(self):
        graph = star(4)
        assert exact_spread(graph, (0,)) == pytest.approx(5.0)
        assert exact_spread(graph, (1,)) == pytest.approx(1.0)

    def test_deterministic_path(self):
        graph = path(4)
        assert exact_spread(graph, (0,)) == pytest.approx(4.0)
        assert exact_spread(graph, (2,)) == pytest.approx(2.0)

    def test_single_edge_half_probability(self):
        builder = GraphBuilder(2, default_probability=0.5)
        builder.add_edge(0, 1)
        graph = builder.build()
        assert exact_spread(graph, (0,)) == pytest.approx(1.5)
        assert exact_spread(graph, (1,)) == pytest.approx(1.0)

    def test_two_hop_chain(self):
        builder = GraphBuilder(3, default_probability=0.5)
        builder.add_edge(0, 1)
        builder.add_edge(1, 2)
        graph = builder.build()
        # Inf(0) = 1 + 0.5 + 0.25 = 1.75
        assert exact_spread(graph, (0,)) == pytest.approx(1.75)

    def test_diamond_by_hand(self, probabilistic_diamond):
        # Inf(0) = 1 + 0.5 + 0.5 + P(3 reached); P(3 reached) = 1 - (1 - 0.25)^2 = 0.4375
        assert exact_spread(probabilistic_diamond, (0,)) == pytest.approx(2.4375)

    def test_seed_set_union(self, probabilistic_diamond):
        value = exact_spread(probabilistic_diamond, (1, 2))
        # Both middles seeded: 2 + P(3) = 2 + 1 - 0.5^2 = 2.75
        assert value == pytest.approx(2.75)

    def test_monotonicity(self, probabilistic_diamond):
        assert exact_spread(probabilistic_diamond, (0, 1)) >= exact_spread(
            probabilistic_diamond, (0,)
        )

    def test_submodularity_on_diamond(self, probabilistic_diamond):
        # f(S + v) - f(S) >= f(T + v) - f(T) for S subset T, v outside T.
        small_gain = exact_spread(probabilistic_diamond, (1, 2)) - exact_spread(
            probabilistic_diamond, (1,)
        )
        large_gain = exact_spread(probabilistic_diamond, (0, 1, 2)) - exact_spread(
            probabilistic_diamond, (0, 1)
        )
        assert small_gain >= large_gain - 1e-12

    def test_edge_limit_enforced(self):
        builder = GraphBuilder(30, default_probability=0.5)
        for index in range(MAX_EXACT_EDGES + 1):
            builder.add_edge(index, index + 1)
        with pytest.raises(InvalidParameterError):
            exact_spread(builder.build(), (0,))


class TestExactHelpers:
    def test_single_vertex_spreads(self, probabilistic_diamond):
        spreads = exact_single_vertex_spreads(probabilistic_diamond)
        assert spreads[0] == pytest.approx(2.4375)
        assert spreads[3] == pytest.approx(1.0)
        assert spreads[1] == pytest.approx(1.5)

    def test_optimal_seed_set_star(self):
        graph = star(4)
        seeds, value = exact_optimal_seed_set(graph, 1)
        assert seeds == (0,)
        assert value == pytest.approx(5.0)

    def test_optimal_pair_two_hubs(self, two_hubs_graph):
        seeds, value = exact_optimal_seed_set(two_hubs_graph, 2)
        assert seeds == (0, 4)
        assert value == pytest.approx(7.0)

    def test_optimal_k_too_large(self, probabilistic_diamond):
        with pytest.raises(InvalidParameterError):
            exact_optimal_seed_set(probabilistic_diamond, 10)
