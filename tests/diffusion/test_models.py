"""Tests for the pluggable diffusion-model protocol and registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.cascade import CascadeResult, simulate_cascade
from repro.diffusion.exact import exact_spread
from repro.diffusion.linear_threshold import (
    LTRRSet,
    lt_reachable_set,
    sample_lt_rr_set,
    sample_lt_snapshot,
    simulate_lt_cascade,
)
from repro.diffusion.models import (
    INDEPENDENT_CASCADE,
    LINEAR_THRESHOLD,
    DiffusionModel,
    IndependentCascade,
    LinearThreshold,
    available_models,
    get_model,
    register_model,
    resolve_model,
)
from repro.diffusion.random_source import RandomSource
from repro.diffusion.reverse import RRSet, RRSetCollection, sample_rr_set
from repro.diffusion.snapshots import Snapshot, reachable_set, sample_snapshot
from repro.exceptions import InvalidParameterError
from repro.graphs.builder import GraphBuilder
from repro.graphs.datasets import load_dataset
from repro.graphs.probability import in_degree_weighted_cascade


@pytest.fixture(scope="module")
def karate_lt():
    """Karate under iwc: incoming weights sum to exactly one (valid LT)."""
    return in_degree_weighted_cascade(load_dataset("karate"))


class TestRegistry:
    def test_builtin_models_registered(self):
        assert "ic" in available_models()
        assert "lt" in available_models()

    def test_get_model_returns_singletons(self):
        assert get_model("ic") is INDEPENDENT_CASCADE
        assert get_model("lt") is LINEAR_THRESHOLD

    def test_unknown_model_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown diffusion model"):
            get_model("percolation")

    def test_resolve_none_is_ic(self):
        assert resolve_model(None) is INDEPENDENT_CASCADE

    def test_resolve_name_and_instance(self):
        assert resolve_model("lt") is LINEAR_THRESHOLD
        assert resolve_model(LINEAR_THRESHOLD) is LINEAR_THRESHOLD

    def test_resolve_rejects_other_types(self):
        with pytest.raises(InvalidParameterError):
            resolve_model(42)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(InvalidParameterError, match="cannot be replaced"):
            register_model(IndependentCascade())

    def test_builtin_names_cannot_be_overwritten(self):
        # resolve_model(None) and the IC shorthands alias the singletons, so
        # replacing "ic"/"lt" in the registry would desynchronise them.
        with pytest.raises(InvalidParameterError, match="cannot be replaced"):
            register_model(IndependentCascade(), overwrite=True)

    def test_register_requires_model_instance(self):
        with pytest.raises(InvalidParameterError):
            register_model("ic")

    def test_third_model_plugs_in(self):
        class AlwaysIC(IndependentCascade):
            name = "test-third-model"

        try:
            registered = register_model(AlwaysIC())
            assert "test-third-model" in available_models()
            assert get_model("test-third-model") is registered
        finally:
            from repro.diffusion import models as models_module

            models_module._REGISTRY.pop("test-third-model", None)


class TestIndependentCascadeDelegation:
    """The IC model is a pure wrapper: same streams, same results."""

    def test_cascade_matches_primitive(self, karate_uc01):
        direct = simulate_cascade(karate_uc01, (0,), RandomSource(7).generator)
        via_model = INDEPENDENT_CASCADE.simulate_cascade(
            karate_uc01, (0,), RandomSource(7).generator
        )
        assert direct == via_model

    def test_rr_set_matches_primitive(self, karate_uc01):
        direct = sample_rr_set(karate_uc01, RandomSource(11).generator)
        via_model = INDEPENDENT_CASCADE.sample_rr_set(
            karate_uc01, RandomSource(11).generator
        )
        assert direct == via_model

    def test_snapshot_matches_primitive(self, karate_uc01):
        direct = sample_snapshot(karate_uc01, RandomSource(13).generator)
        via_model = INDEPENDENT_CASCADE.sample_snapshot(
            karate_uc01, RandomSource(13).generator
        )
        assert np.array_equal(direct.indptr, via_model.indptr)
        assert np.array_equal(direct.targets, via_model.targets)

    def test_exact_spread_matches_primitive(self, probabilistic_diamond):
        assert INDEPENDENT_CASCADE.exact_spread(
            probabilistic_diamond, (0,)
        ) == exact_spread(probabilistic_diamond, (0,))

    def test_plural_samplers_match_serial_primitives(self, karate_uc01):
        rng_a, rng_b = RandomSource(5), RandomSource(5)
        direct = [sample_rr_set(karate_uc01, rng_a.generator) for _ in range(10)]
        via_model = INDEPENDENT_CASCADE.sample_rr_sets(karate_uc01, 10, rng_b.generator)
        assert direct == via_model


class TestLinearThresholdModel:
    def test_validate_rejects_overweight(self):
        builder = GraphBuilder(3, default_probability=0.8)
        builder.add_edge(0, 2)
        builder.add_edge(1, 2)
        graph = builder.build()
        with pytest.raises(InvalidParameterError):
            LINEAR_THRESHOLD.validate(graph)
        # IC accepts the same instance.
        INDEPENDENT_CASCADE.validate(graph)

    def test_snapshot_is_shared_csr_type(self, karate_lt):
        snapshot = LINEAR_THRESHOLD.sample_snapshot(karate_lt, RandomSource(3))
        assert isinstance(snapshot, Snapshot)
        # At most one in-edge per vertex: each vertex appears as a target
        # at most once across the whole snapshot.
        targets = snapshot.targets.tolist()
        assert len(targets) == len(set(targets))

    def test_snapshot_conversion_preserves_reachability(self, karate_lt):
        for seed in range(5):
            lt_snapshot = sample_lt_snapshot(karate_lt, RandomSource(seed))
            csr = lt_snapshot.to_snapshot()
            for start in (0, 5, 33):
                assert reachable_set(csr, (start,)) == lt_reachable_set(
                    lt_snapshot, (start,)
                )

    def test_snapshot_sample_size_counts_live_edges(self, karate_lt):
        from repro.diffusion.costs import SampleSize

        size = SampleSize()
        snapshot = LINEAR_THRESHOLD.sample_snapshot(
            karate_lt, RandomSource(4), sample_size=size
        )
        assert size.edges == snapshot.num_live_edges

    def test_rr_sets_feed_shared_collection(self, karate_lt):
        rr_sets = LINEAR_THRESHOLD.sample_rr_sets(karate_lt, 50, RandomSource(8))
        collection = RRSetCollection(rr_sets, karate_lt.num_vertices)
        assert collection.num_total == 50
        assert collection.total_size == sum(r.size for r in rr_sets)

    def test_cascade_returns_shared_result_type(self, karate_lt):
        result = LINEAR_THRESHOLD.simulate_cascade(karate_lt, (0,), RandomSource(2))
        assert isinstance(result, CascadeResult)
        assert 0 in result


class TestUnifiedResultTypes:
    def test_lt_cascade_is_cascade_result(self, star_graph, rng):
        assert isinstance(simulate_lt_cascade(star_graph, (0,), rng), CascadeResult)

    def test_lt_rr_set_is_rr_set(self, star_graph, rng):
        assert LTRRSet is RRSet
        assert isinstance(sample_lt_rr_set(star_graph, rng), RRSet)

    def test_contains_is_cached(self):
        result = CascadeResult((3, 1, 4), 3)
        assert 3 in result
        assert 2 not in result
        # The frozenset is materialised once and reused.
        assert result._activated_set is result._activated_set
        assert result == CascadeResult((3, 1, 4), 3)
