"""Tests for the bit-parallel cascade engine (64 worlds per machine word).

Four layers of protection:

* **Primitive correctness** — both popcount implementations (the
  ``np.bitwise_count`` fast path and the 16-bit lookup fallback) agree on
  arbitrary words; ``pack_lanes``/``unpack_lanes`` round-trip (hypothesis).
* **Exact equality** — on deterministic graphs (every probability 1.0) the
  mask kernels must reproduce the scalar BFS exactly: activated sets,
  RR memberships/weights, and traversal-cost totals, for every lane.
* **Statistical equivalence** — the bit-parallel draw-order contract is
  *different* from the scalar stream, so on probabilistic graphs we check
  distribution, not bytes: the bit-parallel Monte Carlo mean must fall
  inside a generous confidence interval of the scalar estimate.
* **Seam behaviour** — ``batch_mode`` resolution (explicit > env > scalar),
  the split-stream jobs contract (any worker count bit-identical), stream
  injection rejection, and spec/context validation.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion import bitparallel as bp
from repro.diffusion.cascade import simulate_cascades, simulate_spread
from repro.diffusion.costs import SampleSize, TraversalCost
from repro.diffusion.models import INDEPENDENT_CASCADE, LINEAR_THRESHOLD
from repro.diffusion.reverse import sample_rr_sets
from repro.estimation.monte_carlo import monte_carlo_spread
from repro.exceptions import InvalidParameterError, SpecValidationError
from repro.graphs.datasets import load_dataset
from repro.graphs.influence_graph import InfluenceGraph
from repro.graphs.probability import assign_probabilities


@pytest.fixture(scope="module")
def karate():
    return load_dataset("karate")


@pytest.fixture(scope="module")
def karate_certain(karate):
    return assign_probabilities(karate, "uc1.0")


@pytest.fixture(scope="module")
def karate_iwc(karate):
    return assign_probabilities(karate, "iwc")


# --------------------------------------------------------------------------- #
# popcount portability
# --------------------------------------------------------------------------- #
class TestPopcount:
    def test_paths_agree_on_random_words(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2**64, size=1023, dtype=np.uint64)
        lut = bp._popcount_lookup(words)
        fast = bp._popcount_bitwise_count(words)
        assert lut.dtype == fast.dtype == np.int64
        np.testing.assert_array_equal(lut, fast)

    def test_paths_agree_on_edge_words(self):
        words = np.array(
            [0, 1, 2**63, 2**64 - 1, 0x5555555555555555, 0xAAAAAAAAAAAAAAAA],
            dtype=np.uint64,
        )
        np.testing.assert_array_equal(
            bp._popcount_lookup(words), [0, 1, 1, 64, 32, 32]
        )
        np.testing.assert_array_equal(
            bp._popcount_bitwise_count(words), [0, 1, 1, 64, 32, 32]
        )

    def test_lookup_preserves_shape(self):
        rng = np.random.default_rng(1)
        words = rng.integers(0, 2**64, size=(7, 5), dtype=np.uint64)
        out = bp._popcount_lookup(words)
        assert out.shape == (7, 5)
        np.testing.assert_array_equal(out, bp._popcount_bitwise_count(words))

    def test_public_popcount_matches_python_bit_count(self):
        rng = np.random.default_rng(2)
        words = rng.integers(0, 2**64, size=100, dtype=np.uint64)
        expected = [int(w).bit_count() for w in words]
        np.testing.assert_array_equal(bp.popcount(words), expected)


# --------------------------------------------------------------------------- #
# lane packing round-trips (hypothesis)
# --------------------------------------------------------------------------- #
class TestPackUnpack:
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip(self, seed, num_lanes, num_columns):
        rng = np.random.default_rng(seed)
        matrix = rng.random((num_lanes, num_columns)) < 0.5
        words = bp.pack_lanes(matrix)
        assert words.dtype == np.uint64
        assert words.shape == (num_columns,)
        np.testing.assert_array_equal(bp.unpack_lanes(words, num_lanes), matrix)

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=40, deadline=None)
    def test_lane_counts_match_unpacked_sums(self, seed, num_lanes):
        rng = np.random.default_rng(seed)
        words = rng.integers(0, 2**64, size=17, dtype=np.uint64)
        words &= bp.lanes_mask(num_lanes)
        counts = bp.lane_counts(words, num_lanes)
        np.testing.assert_array_equal(
            counts, bp.unpack_lanes(words, num_lanes).sum(axis=1)
        )

    def test_word_spans_cover_count_exactly(self):
        assert bp.word_spans(1) == [(0, 1)]
        assert bp.word_spans(64) == [(0, 64)]
        assert bp.word_spans(65) == [(0, 64), (64, 1)]
        assert bp.word_spans(200) == [(0, 64), (64, 64), (128, 64), (192, 8)]
        assert sum(lanes for _, lanes in bp.word_spans(1000)) == 1000


# --------------------------------------------------------------------------- #
# batch-mode resolution
# --------------------------------------------------------------------------- #
class TestBatchModeResolution:
    def test_explicit_values(self):
        assert bp.require_batch_mode("scalar") == "scalar"
        assert bp.require_batch_mode("bitparallel") == "bitparallel"
        with pytest.raises(InvalidParameterError):
            bp.require_batch_mode("vectorized")

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(bp.ENV_VAR, "1")
        assert bp.resolve_batch_mode("scalar") == "scalar"
        monkeypatch.setenv(bp.ENV_VAR, "0")
        assert bp.resolve_batch_mode("bitparallel") == "bitparallel"

    @pytest.mark.parametrize("value", ["1", "true", "YES", "on", "bitparallel"])
    def test_env_truthy(self, monkeypatch, value):
        monkeypatch.setenv(bp.ENV_VAR, value)
        assert bp.resolve_batch_mode(None) == "bitparallel"

    @pytest.mark.parametrize("value", ["", "0", "false", "No", "off", "scalar"])
    def test_env_falsy(self, monkeypatch, value):
        monkeypatch.setenv(bp.ENV_VAR, value)
        assert bp.resolve_batch_mode(None) == "scalar"

    def test_env_invalid_raises(self, monkeypatch):
        monkeypatch.setenv(bp.ENV_VAR, "fast")
        with pytest.raises(InvalidParameterError, match="REPRO_BITPARALLEL"):
            bp.resolve_batch_mode(None)

    def test_default_is_scalar(self, monkeypatch):
        monkeypatch.delenv(bp.ENV_VAR, raising=False)
        assert bp.resolve_batch_mode(None) == "scalar"

    def test_env_opt_in_reaches_kernels(self, karate_certain, monkeypatch):
        monkeypatch.setenv(bp.ENV_VAR, "1")
        spread = simulate_spread(karate_certain, (0,), 3, np.random.default_rng(0))
        assert spread == float(karate_certain.num_vertices)


# --------------------------------------------------------------------------- #
# exact equality on deterministic graphs
# --------------------------------------------------------------------------- #
class TestDeterministicEquality:
    def test_forward_matches_scalar_on_certain_karate(self, karate_certain):
        for seeds in [(0,), (33,), (0, 16)]:
            scalar = simulate_cascades(
                karate_certain, seeds, 5, np.random.default_rng(1), batch_mode="scalar"
            )
            masks = simulate_cascades(
                karate_certain, seeds, 5, np.random.default_rng(1),
                batch_mode="bitparallel",
            )
            for got, want in zip(masks, scalar):
                assert set(got.activated) == set(want.activated)
                assert got.num_activated == want.num_activated

    def test_forward_costs_match_scalar_on_certain_karate(self, karate_certain):
        cost_scalar, cost_masks = TraversalCost(), TraversalCost()
        simulate_cascades(
            karate_certain, (0,), 130, np.random.default_rng(2),
            cost=cost_scalar, batch_mode="scalar",
        )
        simulate_cascades(
            karate_certain, (0,), 130, np.random.default_rng(2),
            cost=cost_masks, batch_mode="bitparallel",
        )
        assert (cost_masks.vertices, cost_masks.edges) == (
            cost_scalar.vertices, cost_scalar.edges,
        )

    def test_rr_sets_match_scalar_on_certain_karate(self, karate_certain):
        cost_scalar, cost_masks = TraversalCost(), TraversalCost()
        size_scalar, size_masks = SampleSize(), SampleSize()
        scalar = sample_rr_sets(
            karate_certain, 100, np.random.default_rng(3),
            cost=cost_scalar, sample_size=size_scalar, batch_mode="scalar",
        )
        masks = sample_rr_sets(
            karate_certain, 100, np.random.default_rng(3),
            cost=cost_masks, sample_size=size_masks, batch_mode="bitparallel",
        )
        # The graph is strongly connected with p=1, so every RR set contains
        # all vertices and weighs the full edge count, whatever the target.
        for collection in (scalar, masks):
            for rr_set in collection:
                assert rr_set.size == karate_certain.num_vertices
                assert rr_set.weight == karate_certain.num_edges
        assert (cost_masks.vertices, cost_masks.edges) == (
            cost_scalar.vertices, cost_scalar.edges,
        )
        assert size_masks.vertices == size_scalar.vertices

    def test_line_graph_partial_reachability(self):
        # 0 -> 1 -> 2 -> 3 with certainty: RR set of target t is {0..t},
        # forward cascade from s reaches {s..3}.
        graph = InfluenceGraph(4, [0, 1, 2], [1, 2, 3], [1.0, 1.0, 1.0])
        results = simulate_cascades(
            graph, (1,), 70, np.random.default_rng(4), batch_mode="bitparallel"
        )
        assert len(results) == 70
        for result in results:
            assert set(result.activated) == {1, 2, 3}
        rr_sets = sample_rr_sets(
            graph, 128, np.random.default_rng(5), batch_mode="bitparallel"
        )
        for rr_set in rr_sets:
            assert set(rr_set.vertices) == set(range(rr_set.target + 1))
            assert rr_set.weight == rr_set.target  # in-degree sum of members

    def test_empty_graph_rejected_for_rr_sets(self):
        graph = InfluenceGraph(0, [], [], [])
        with pytest.raises(ValueError):
            sample_rr_sets(
                graph, 4, np.random.default_rng(0), batch_mode="bitparallel"
            )

    def test_edgeless_graph_activates_only_seeds(self):
        isolated = InfluenceGraph(6, [], [], [])
        spread = simulate_spread(
            isolated, (0, 5), 80, np.random.default_rng(6), batch_mode="bitparallel"
        )
        assert spread == 2.0


# --------------------------------------------------------------------------- #
# statistical equivalence on probabilistic graphs
# --------------------------------------------------------------------------- #
class TestStatisticalEquivalence:
    def test_ic_monte_carlo_mean_within_scalar_ci(self, karate):
        scalar = monte_carlo_spread(
            karate, (0, 33), 4000, seed=7, batch_mode="scalar"
        )
        masks = monte_carlo_spread(
            karate, (0, 33), 4000, seed=7, batch_mode="bitparallel"
        )
        # Independent draws of the same distribution: the two means differ
        # by a mean-zero variable with stderr ~ sqrt(2) * sem.  z=4 keeps
        # the false-failure rate ~ 1e-4 while still catching biased kernels.
        tolerance = 4.0 * math.sqrt(2.0) * scalar.standard_error
        assert masks.mean == pytest.approx(scalar.mean, abs=tolerance)
        assert masks.num_simulations == scalar.num_simulations == 4000

    def test_lt_spread_mean_within_scalar_ci(self, karate_iwc):
        scalar = monte_carlo_spread(
            karate_iwc, (0,), 4000, seed=8, model="lt", batch_mode="scalar"
        )
        masks = monte_carlo_spread(
            karate_iwc, (0,), 4000, seed=8, model="lt", batch_mode="bitparallel"
        )
        tolerance = 4.0 * math.sqrt(2.0) * scalar.standard_error
        assert masks.mean == pytest.approx(scalar.mean, abs=tolerance)

    def test_ic_rr_size_mean_close_to_scalar(self, karate):
        scalar = INDEPENDENT_CASCADE.sample_rr_sets(
            karate, 4000, np.random.default_rng(9), batch_mode="scalar"
        )
        masks = INDEPENDENT_CASCADE.sample_rr_sets(
            karate, 4000, np.random.default_rng(9), batch_mode="bitparallel"
        )
        mean_scalar = sum(s.size for s in scalar) / len(scalar)
        mean_masks = sum(s.size for s in masks) / len(masks)
        assert mean_masks == pytest.approx(mean_scalar, rel=0.15)

    def test_lt_rr_size_mean_close_to_scalar(self, karate_iwc):
        scalar = LINEAR_THRESHOLD.sample_rr_sets(
            karate_iwc, 4000, np.random.default_rng(10), batch_mode="scalar"
        )
        masks = LINEAR_THRESHOLD.sample_rr_sets(
            karate_iwc, 4000, np.random.default_rng(10), batch_mode="bitparallel"
        )
        mean_scalar = sum(s.size for s in scalar) / len(scalar)
        mean_masks = sum(s.size for s in masks) / len(masks)
        assert mean_masks == pytest.approx(mean_scalar, rel=0.15)

    def test_lt_at_most_one_live_in_edge_per_world(self, karate_iwc):
        # The LT live-edge distribution keeps at most one in-edge per vertex
        # per world; check the invariant on both word alignments by grouping
        # edges by their target vertex.
        reverse_words = bp.lt_live_words(
            karate_iwc, 64, np.random.default_rng(11), reverse=True
        )
        in_indptr, _, _ = karate_iwc.in_csr
        in_groups = [
            reverse_words[in_indptr[v]:in_indptr[v + 1]]
            for v in range(karate_iwc.num_vertices)
        ]
        forward_words = bp.lt_live_words(
            karate_iwc, 64, np.random.default_rng(11), reverse=False
        )
        _, out_targets, _ = karate_iwc.out_csr
        forward_groups = [
            forward_words[out_targets == v]
            for v in range(karate_iwc.num_vertices)
        ]
        for segment in in_groups + forward_groups:
            for i in range(segment.size):
                for j in range(i + 1, segment.size):
                    assert int(segment[i] & segment[j]) == 0


# --------------------------------------------------------------------------- #
# draw-order contract: reproducibility and the jobs split-stream
# --------------------------------------------------------------------------- #
class TestDrawOrderContract:
    def test_same_seed_reproduces(self, karate):
        first = monte_carlo_spread(karate, (0,), 300, seed=12, batch_mode="bitparallel")
        second = monte_carlo_spread(karate, (0,), 300, seed=12, batch_mode="bitparallel")
        assert first == second

    def test_monte_carlo_jobs_invariance(self, karate):
        serial = monte_carlo_spread(
            karate, (0, 33), 300, seed=13, jobs=1, batch_mode="bitparallel"
        )
        parallel = monte_carlo_spread(
            karate, (0, 33), 300, seed=13, jobs=4, batch_mode="bitparallel"
        )
        assert serial == parallel

    def test_rr_pool_jobs_invariance(self, karate):
        pools = [
            INDEPENDENT_CASCADE.sample_rr_sets(
                karate, 200, 14, jobs=jobs, batch_mode="bitparallel"
            )
            for jobs in (1, 2, 4)
        ]
        reference = [(s.target, s.vertices, s.weight) for s in pools[0]]
        for pool in pools[1:]:
            assert [(s.target, s.vertices, s.weight) for s in pool] == reference

    def test_streams_rejected(self, karate):
        from repro.runtime.seeding import child_sources

        streams = child_sources(0, 4)
        with pytest.raises(InvalidParameterError, match="streams"):
            simulate_cascades(
                karate, (0,), 4, None, streams=streams, batch_mode="bitparallel"
            )

    def test_partial_last_word_lane_count(self, karate):
        # 70 simulations = one full word + one 6-lane word; the mean must
        # average exactly 70 worlds, not 128.
        estimate = monte_carlo_spread(
            karate, (0,), 70, seed=15, batch_mode="bitparallel"
        )
        assert estimate.num_simulations == 70
        total = estimate.mean * 70
        assert total == pytest.approx(round(total))
        assert 1.0 <= estimate.mean <= karate.num_vertices


# --------------------------------------------------------------------------- #
# seam validation: specs, context, factories
# --------------------------------------------------------------------------- #
class TestSeams:
    def test_run_context_validates_batch_mode(self):
        from repro.context import RunContext

        with pytest.raises(SpecValidationError):
            RunContext(batch_mode="simd")
        assert RunContext(batch_mode="bitparallel").batch_mode == "bitparallel"

    def test_run_context_round_trips_batch_mode(self):
        from repro.context import RunContext

        context = RunContext(seed=3, batch_mode="bitparallel")
        assert RunContext.from_dict(context.to_dict()) == context
        assert "batch_mode" not in RunContext(seed=3).to_dict()

    def test_estimator_spec_validates_batch_mode(self):
        from repro.api.specs import EstimatorSpec

        with pytest.raises(SpecValidationError):
            EstimatorSpec(approach="ris", num_samples=8, batch_mode="avx")
        spec = EstimatorSpec(approach="ris", num_samples=8, batch_mode="bitparallel")
        assert spec.batch_mode == "bitparallel"

    def test_factory_binds_batch_mode_for_batch_aware_approaches(self):
        from repro.experiments.factories import make_estimator

        ris = make_estimator("ris", 16, batch_mode="bitparallel")
        assert ris._batch_mode == "bitparallel"
        oneshot = make_estimator("oneshot", 16, batch_mode="bitparallel")
        assert oneshot._batch_mode == "bitparallel"
        # Structural heuristics and snapshots ignore the knob entirely.
        make_estimator("degree", 16, batch_mode="bitparallel")
        make_estimator("snapshot", 16, batch_mode="bitparallel")

    def test_maximize_runs_end_to_end_bitparallel(self, karate):
        import repro

        spec = repro.MaximizeSpec(
            graph=repro.GraphSpec(dataset="karate", probability="uc0.1"),
            estimator=repro.EstimatorSpec(approach="ris", num_samples=64),
            k=2,
            pool_size=300,
            context=repro.RunContext(seed=1, batch_mode="bitparallel"),
        )
        result = repro.run(spec)
        assert len(result.greedy.seed_set) == 2
        assert result.influence.value > 0
