"""Tests for the linear threshold (LT) model extension."""

from __future__ import annotations

import pytest

from repro.diffusion.costs import SampleSize, TraversalCost
from repro.diffusion.linear_threshold import (
    exact_lt_spread,
    lt_reachable_set,
    sample_lt_rr_set,
    sample_lt_snapshot,
    simulate_lt_cascade,
    simulate_lt_spread,
    validate_lt_weights,
)
from repro.diffusion.random_source import RandomSource
from repro.exceptions import InvalidParameterError
from repro.graphs.builder import GraphBuilder
from repro.graphs.datasets import load_dataset
from repro.graphs.generators import path, star
from repro.graphs.probability import in_degree_weighted_cascade, uniform_cascade


@pytest.fixture
def lt_chain():
    """0 -> 1 -> 2 with weight 0.5 on each edge (valid LT instance)."""
    builder = GraphBuilder(3, default_probability=0.5)
    builder.add_edge(0, 1)
    builder.add_edge(1, 2)
    return builder.build(name="lt_chain")


@pytest.fixture
def karate_lt():
    """Karate under iwc: incoming weights sum to exactly one (valid LT)."""
    return in_degree_weighted_cascade(load_dataset("karate"))


class TestValidation:
    def test_iwc_is_valid(self, karate_lt):
        validate_lt_weights(karate_lt)

    def test_deterministic_star_is_valid(self, star_graph):
        # Each leaf has exactly one incoming edge with weight 1.
        validate_lt_weights(star_graph)

    def test_overweight_vertex_rejected(self):
        builder = GraphBuilder(3, default_probability=0.8)
        builder.add_edge(0, 2)
        builder.add_edge(1, 2)
        with pytest.raises(InvalidParameterError):
            validate_lt_weights(builder.build())


class TestForwardSimulation:
    def test_deterministic_star(self, star_graph, rng):
        result = simulate_lt_cascade(star_graph, (0,), rng)
        assert result.num_activated == 6

    def test_leaf_seed(self, star_graph, rng):
        assert simulate_lt_cascade(star_graph, (3,), rng).activated == (3,)

    def test_deterministic_path(self, path_graph, rng):
        assert simulate_lt_cascade(path_graph, (0,), rng).num_activated == 4

    def test_cost_accounting(self, star_graph, rng):
        cost = TraversalCost()
        simulate_lt_cascade(star_graph, (0,), rng, cost=cost)
        assert cost.vertices == 6
        assert cost.edges == 5

    def test_unbiased_against_exact(self, lt_chain):
        exact = exact_lt_spread(lt_chain, (0,))
        estimate = simulate_lt_spread(lt_chain, (0,), 6000, RandomSource(4))
        assert estimate == pytest.approx(exact, rel=0.05)

    def test_spread_monotone_in_seed_set(self, karate_lt):
        small = simulate_lt_spread(karate_lt, (0,), 400, RandomSource(1))
        large = simulate_lt_spread(karate_lt, (0, 33), 400, RandomSource(1))
        assert large > small


class TestExactLTSpread:
    def test_chain_by_hand(self, lt_chain):
        # Inf(0) = 1 + 0.5 + 0.5 * 0.5 = 1.75 (same as IC on a path).
        assert exact_lt_spread(lt_chain, (0,)) == pytest.approx(1.75)

    def test_deterministic_star(self, star_graph):
        assert exact_lt_spread(star_graph, (0,)) == pytest.approx(6.0)

    def test_sink_seed(self, lt_chain):
        assert exact_lt_spread(lt_chain, (2,)) == pytest.approx(1.0)

    def test_too_large_rejected(self):
        graph = uniform_cascade(load_dataset("ba_d", scale=0.2), 0.01)
        with pytest.raises(InvalidParameterError):
            exact_lt_spread(graph, (0,))


class TestLTSnapshots:
    def test_at_most_one_parent(self, karate_lt):
        snapshot = sample_lt_snapshot(karate_lt, RandomSource(3))
        assert snapshot.parent.shape[0] == karate_lt.num_vertices
        assert snapshot.num_live_edges <= karate_lt.num_vertices

    def test_parent_is_an_in_neighbor(self, karate_lt):
        snapshot = sample_lt_snapshot(karate_lt, RandomSource(5))
        for vertex, parent in enumerate(snapshot.parent.tolist()):
            if parent >= 0:
                assert parent in set(karate_lt.in_neighbors(vertex).tolist())

    def test_iwc_always_selects_a_parent(self, karate_lt):
        # Under iwc the incoming weights sum to exactly 1, so every vertex
        # with at least one in-edge selects a parent.
        snapshot = sample_lt_snapshot(karate_lt, RandomSource(6))
        for vertex in karate_lt.vertices:
            if karate_lt.in_degree(vertex) > 0:
                assert snapshot.parent[vertex] >= 0

    def test_sample_size_accounting(self, karate_lt):
        size = SampleSize()
        snapshot = sample_lt_snapshot(karate_lt, RandomSource(7), sample_size=size)
        assert size.edges == snapshot.num_live_edges

    def test_reachability_on_deterministic_star(self, star_graph):
        snapshot = sample_lt_snapshot(star_graph, RandomSource(0))
        assert lt_reachable_set(snapshot, (0,)) == set(range(6))
        assert lt_reachable_set(snapshot, (2,)) == {2}

    def test_snapshot_estimator_unbiased(self, lt_chain):
        exact = exact_lt_spread(lt_chain, (0,))
        rng = RandomSource(8)
        total = 0
        trials = 4000
        for _ in range(trials):
            snapshot = sample_lt_snapshot(lt_chain, rng)
            total += len(lt_reachable_set(snapshot, (0,)))
        assert total / trials == pytest.approx(exact, rel=0.05)


class TestLTRRSets:
    def test_target_included(self, karate_lt):
        for seed in range(10):
            rr_set = sample_lt_rr_set(karate_lt, RandomSource(seed))
            assert rr_set.target in rr_set.vertices

    def test_rr_set_is_a_path_backwards(self, karate_lt):
        # LT RR sets are random walks, so their size is at most the walk
        # length, which is bounded by n.
        rr_set = sample_lt_rr_set(karate_lt, RandomSource(2), target=5)
        assert 1 <= rr_set.size <= karate_lt.num_vertices

    def test_identity_on_chain(self, lt_chain):
        # Pr[R intersects {0}] should equal Inf_LT({0}) / n.
        exact = exact_lt_spread(lt_chain, (0,))
        rng = RandomSource(9)
        hits = 0
        trials = 8000
        for _ in range(trials):
            if 0 in sample_lt_rr_set(lt_chain, rng).vertices:
                hits += 1
        estimate = lt_chain.num_vertices * hits / trials
        assert estimate == pytest.approx(exact, rel=0.08)

    def test_cost_accounting(self, karate_lt):
        cost = TraversalCost()
        size = SampleSize()
        rr_set = sample_lt_rr_set(karate_lt, RandomSource(1), cost=cost, sample_size=size)
        assert cost.vertices >= rr_set.size
        assert size.vertices == rr_set.size
