"""Tests for the traversal-cost and sample-size accumulators."""

from __future__ import annotations

from repro.diffusion.costs import CostReport, SampleSize, TraversalCost


class TestTraversalCost:
    def test_starts_at_zero(self):
        cost = TraversalCost()
        assert cost.vertices == 0
        assert cost.edges == 0
        assert cost.total == 0

    def test_add(self):
        cost = TraversalCost()
        cost.add_vertices(3)
        cost.add_edges(7)
        cost.add_vertices()
        assert cost.vertices == 4
        assert cost.edges == 7
        assert cost.total == 11

    def test_merge_and_iadd(self):
        a = TraversalCost(1, 2)
        b = TraversalCost(10, 20)
        a.merge(b)
        assert (a.vertices, a.edges) == (11, 22)
        a += TraversalCost(1, 1)
        assert (a.vertices, a.edges) == (12, 23)

    def test_addition_operator(self):
        total = TraversalCost(1, 2) + TraversalCost(3, 4)
        assert (total.vertices, total.edges) == (4, 6)

    def test_snapshot_is_independent(self):
        cost = TraversalCost(5, 5)
        frozen = cost.snapshot()
        cost.add_vertices(1)
        assert frozen.vertices == 5
        assert cost.vertices == 6

    def test_since_computes_delta(self):
        cost = TraversalCost(10, 20)
        earlier = TraversalCost(4, 5)
        delta = cost.since(earlier)
        assert (delta.vertices, delta.edges) == (6, 15)

    def test_scaled(self):
        scaled = TraversalCost(10, 21).scaled(0.5)
        assert (scaled.vertices, scaled.edges) == (5, 10)

    def test_reset(self):
        cost = TraversalCost(3, 4)
        cost.reset()
        assert cost.total == 0


class TestSampleSize:
    def test_accumulation(self):
        size = SampleSize()
        size.add_vertices(4)
        size.add_edges(9)
        assert size.total == 13

    def test_merge_and_add(self):
        a = SampleSize(1, 2)
        a.merge(SampleSize(3, 4))
        assert (a.vertices, a.edges) == (4, 6)
        combined = a + SampleSize(1, 1)
        assert (combined.vertices, combined.edges) == (5, 7)

    def test_reset(self):
        size = SampleSize(2, 2)
        size.reset()
        assert size.total == 0


class TestCostReport:
    def test_empty(self):
        report = CostReport.empty()
        assert report.as_dict() == {
            "traversal_vertices": 0,
            "traversal_edges": 0,
            "sample_vertices": 0,
            "sample_edges": 0,
        }

    def test_as_dict(self):
        report = CostReport(TraversalCost(1, 2), SampleSize(3, 4))
        assert report.as_dict() == {
            "traversal_vertices": 1,
            "traversal_edges": 2,
            "sample_vertices": 3,
            "sample_edges": 4,
        }
