"""Golden tests: CLI stdout is byte-identical to the pre-spec-API CLI.

The files in ``tests/api/golden/`` were captured from the CLI *before* the
declarative-API redesign (PR 5).  Every subcommand must keep printing exactly
those bytes in text mode — including ``--jobs`` and ``--diffusion lt`` runs —
and ``repro run`` on the equivalent spec JSON must print the same table and
report the same numbers in its JSON output.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: (golden file, CLI argv) pairs captured from the pre-redesign CLI.
GOLDEN_CASES = {
    "stats_karate.txt": ["stats", "--dataset", "karate"],
    "maximize_ris_karate.txt": [
        "maximize", "--dataset", "karate", "--model", "uc0.1",
        "--approach", "ris", "--samples", "256", "-k", "2",
        "--pool-size", "2000",
    ],
    "maximize_ris_karate_jobs2.txt": [
        "maximize", "--dataset", "karate", "--model", "uc0.1",
        "--approach", "ris", "--samples", "256", "-k", "2",
        "--pool-size", "2000", "--jobs", "2",
    ],
    "maximize_lt_karate.txt": [
        "maximize", "--dataset", "karate", "--model", "iwc",
        "--diffusion", "lt", "--approach", "ris", "--samples", "64",
        "-k", "2", "--pool-size", "500",
    ],
    "sweep_ris_karate.txt": [
        "sweep", "--dataset", "karate", "--model", "uc0.1",
        "--approach", "ris", "-k", "1", "--max-exponent", "4",
        "--trials", "5", "--pool-size", "2000",
    ],
    "sweep_ris_karate_jobs2.txt": [
        "sweep", "--dataset", "karate", "--model", "uc0.1",
        "--approach", "ris", "-k", "1", "--max-exponent", "4",
        "--trials", "5", "--pool-size", "2000", "--jobs", "2",
    ],
    "traversal_karate.txt": [
        "traversal", "--dataset", "karate", "--model", "uc0.1",
        "--repetitions", "2",
    ],
    "traversal_lt_karate.txt": [
        "traversal", "--dataset", "karate", "--model", "iwc",
        "--diffusion", "lt", "--repetitions", "2",
    ],
}

#: Spec documents equivalent to a subset of the golden argvs, exercising the
#: ``repro run`` path end to end (kind coverage: all four CLI workflows).
EQUIVALENT_SPECS = {
    "stats_karate.txt": {"kind": "stats", "dataset": "karate"},
    "maximize_ris_karate.txt": {
        "kind": "maximize",
        "graph": {"dataset": "karate", "probability": "uc0.1"},
        "estimator": {"approach": "ris", "num_samples": 256},
        "k": 2,
        "pool_size": 2000,
    },
    "maximize_lt_karate.txt": {
        "kind": "maximize",
        "graph": {"dataset": "karate", "probability": "iwc"},
        "estimator": {"approach": "ris", "num_samples": 64},
        "k": 2,
        "pool_size": 500,
        "context": {"model": "lt"},
    },
    "sweep_ris_karate.txt": {
        "kind": "sweep",
        "graph": {"dataset": "karate", "probability": "uc0.1"},
        "approach": "ris",
        "k": 1,
        "max_exponent": 4,
        "num_trials": 5,
        "pool_size": 2000,
    },
    "traversal_karate.txt": {
        "kind": "traversal",
        "graph": {"dataset": "karate", "probability": "uc0.1"},
        "repetitions": 2,
    },
}


def _golden(name: str) -> str:
    return (GOLDEN_DIR / name).read_text(encoding="utf-8")


@pytest.mark.parametrize("golden_name", sorted(GOLDEN_CASES))
def test_cli_stdout_is_byte_identical(golden_name, capsys):
    assert main(GOLDEN_CASES[golden_name]) == 0
    assert capsys.readouterr().out == _golden(golden_name)


@pytest.mark.parametrize("golden_name", sorted(EQUIVALENT_SPECS))
def test_run_subcommand_matches_golden_text(golden_name, capsys, tmp_path):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(EQUIVALENT_SPECS[golden_name]), encoding="utf-8")
    assert main(["run", str(spec_path)]) == 0
    assert capsys.readouterr().out == _golden(golden_name)


def test_run_subcommand_json_matches_text_numbers(capsys, tmp_path):
    """The JSON output of ``repro run`` carries the same numbers as the table."""
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(
        json.dumps(EQUIVALENT_SPECS["maximize_ris_karate.txt"]), encoding="utf-8"
    )
    out_path = tmp_path / "result.json"
    assert main(["run", str(spec_path), "--format", "json", "--out", str(out_path)]) == 0
    document = json.loads(capsys.readouterr().out)
    golden = _golden("maximize_ris_karate.txt")
    # The golden table shows influence 5.593 and seeds (0, 2); the JSON must
    # carry the identical (unrounded-to-3-digits) numbers.
    assert f"{round(document['influence'], 3):g}" in golden
    assert str(tuple(document["seed_set"])) in golden
    assert json.loads(out_path.read_text(encoding="utf-8")) == document


def test_json_format_on_classic_subcommand(capsys):
    assert main([
        "maximize", "--dataset", "karate", "--model", "uc0.1",
        "--approach", "ris", "--samples", "256", "-k", "2",
        "--pool-size", "2000", "--format", "json",
    ]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["kind"] == "maximize"
    assert document["spec"]["graph"] == {"dataset": "karate", "probability": "uc0.1"}
    golden = _golden("maximize_ris_karate.txt")
    assert str(tuple(document["seed_set"])) in golden


def test_out_writes_json_next_to_text(capsys, tmp_path):
    out_path = tmp_path / "stats.json"
    assert main(["stats", "--dataset", "karate", "--out", str(out_path)]) == 0
    assert capsys.readouterr().out == _golden("stats_karate.txt")
    document = json.loads(out_path.read_text(encoding="utf-8"))
    assert document["kind"] == "stats"
    assert document["rows"][0]["network"] == "karate"
