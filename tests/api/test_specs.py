"""Spec serialization: round-tripping, unknown-key rejection, eager validation."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.specs import (
    GRAPH_GENERATORS,
    SPEC_KINDS,
    EstimatorSpec,
    GraphSpec,
    MaximizeSpec,
    StatsSpec,
    SweepSpec,
    TraversalSpec,
    TrialsSpec,
    load_spec,
    spec_from_dict,
)
from repro.context import RunContext
from repro.exceptions import SpecValidationError
from repro.experiments.factories import available_approaches
from repro.graphs.datasets import list_datasets

# --------------------------------------------------------------------------- #
# strategies over valid spec fields
# --------------------------------------------------------------------------- #
approaches = st.sampled_from(available_approaches())
datasets = st.sampled_from(list_datasets())
probabilities = st.one_of(
    st.none(), st.sampled_from(["uc0.1", "uc0.01", "iwc", "owc", "trivalency", "uc0.05"])
)
positive_ints = st.integers(min_value=1, max_value=10_000)
seeds = st.integers(min_value=-(2**31), max_value=2**31)

contexts = st.builds(
    RunContext,
    seed=seeds,
    jobs=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
    model=st.one_of(st.none(), st.sampled_from(["ic", "lt"])),
)

graph_specs = st.one_of(
    st.builds(
        GraphSpec,
        dataset=datasets,
        probability=probabilities,
        scale=st.floats(min_value=0.05, max_value=4.0, allow_nan=False),
        seed=seeds,
        probability_seed=seeds,
    ),
    st.builds(
        GraphSpec,
        generator=st.sampled_from(sorted(GRAPH_GENERATORS)),
        generator_params=st.dictionaries(
            st.sampled_from(["n", "m", "p"]), st.integers(1, 100), max_size=2
        ),
        probability=probabilities,
        seed=seeds,
    ),
    st.builds(
        GraphSpec,
        edge_list=st.just("edges.txt"),
        directed=st.booleans(),
        on_duplicate=st.sampled_from(["error", "first", "last", "allow"]),
        probability=probabilities,
    ),
)

estimator_specs = st.builds(
    EstimatorSpec, approach=approaches, num_samples=positive_ints
)

stats_specs = st.builds(
    StatsSpec,
    dataset=st.one_of(st.just("all"), datasets),
    scale=st.floats(min_value=0.05, max_value=4.0, allow_nan=False),
    context=contexts,
)
maximize_specs = st.builds(
    MaximizeSpec,
    graph=graph_specs,
    estimator=estimator_specs,
    k=positive_ints,
    pool_size=positive_ints,
    context=contexts,
)
trials_specs = st.builds(
    TrialsSpec,
    graph=graph_specs,
    estimator=estimator_specs,
    k=positive_ints,
    num_trials=positive_ints,
    pool_size=positive_ints,
    context=contexts,
)
sweep_specs = st.one_of(
    st.builds(
        SweepSpec,
        graph=graph_specs,
        approach=approaches,
        k=positive_ints,
        max_exponent=st.integers(min_value=0, max_value=20),
        num_trials=positive_ints,
        pool_size=positive_ints,
        context=contexts,
    ),
    st.builds(
        SweepSpec,
        graph=graph_specs,
        approach=approaches,
        k=positive_ints,
        sample_numbers=st.lists(
            positive_ints, min_size=1, max_size=6, unique=True
        ).map(tuple),
        num_trials=positive_ints,
        pool_size=positive_ints,
        context=contexts,
    ),
)
traversal_specs = st.builds(
    TraversalSpec,
    graph=graph_specs,
    approaches=st.lists(approaches, min_size=1, max_size=4, unique=True).map(tuple),
    k=positive_ints,
    num_samples=positive_ints,
    repetitions=positive_ints,
    context=contexts,
)

all_experiment_specs = st.one_of(
    stats_specs, maximize_specs, trials_specs, sweep_specs, traversal_specs
)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(spec=graph_specs)
    def test_graph_spec(self, spec):
        assert GraphSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=30, deadline=None)
    @given(spec=estimator_specs)
    def test_estimator_spec(self, spec):
        assert EstimatorSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=30, deadline=None)
    @given(context=contexts)
    def test_run_context(self, context):
        assert RunContext.from_dict(context.to_dict()) == context

    @settings(max_examples=80, deadline=None)
    @given(spec=all_experiment_specs)
    def test_experiment_specs(self, spec):
        assert type(spec).from_dict(spec.to_dict()) == spec

    @settings(max_examples=80, deadline=None)
    @given(spec=all_experiment_specs)
    def test_kind_dispatch_and_json(self, spec):
        document = json.loads(json.dumps(spec.to_dict()))
        assert spec_from_dict(document) == spec

    def test_defaults_are_omitted(self):
        spec = MaximizeSpec(graph=GraphSpec(dataset="karate", probability="uc0.1"))
        document = spec.to_dict()
        assert document == {
            "kind": "maximize",
            "graph": {"dataset": "karate", "probability": "uc0.1"},
        }
        assert MaximizeSpec.from_dict(document) == spec


class TestUnknownKeys:
    @pytest.mark.parametrize("kind, spec_class", sorted(SPEC_KINDS.items()))
    def test_experiment_spec_unknown_key_is_named(self, kind, spec_class):
        with pytest.raises(SpecValidationError, match="'frobnicate'"):
            spec_class.from_dict({"kind": kind, "frobnicate": 1})

    def test_graph_spec_unknown_key_is_named(self):
        with pytest.raises(SpecValidationError, match="'colour'"):
            GraphSpec.from_dict({"dataset": "karate", "colour": "red"})

    def test_nested_unknown_key_is_named(self):
        with pytest.raises(SpecValidationError, match="'colour'"):
            MaximizeSpec.from_dict(
                {"kind": "maximize", "graph": {"dataset": "karate", "colour": "red"}}
            )

    def test_run_context_unknown_key_is_named(self):
        with pytest.raises(SpecValidationError, match="'threads'"):
            RunContext.from_dict({"threads": 4})

    def test_executor_is_not_a_spec_key(self):
        with pytest.raises(SpecValidationError, match="'executor'"):
            RunContext.from_dict({"executor": None})

    def test_kind_mismatch_rejected(self):
        with pytest.raises(SpecValidationError, match="kind='maximize'"):
            MaximizeSpec.from_dict({"kind": "sweep"})

    def test_missing_kind_rejected(self):
        with pytest.raises(SpecValidationError, match="'kind'"):
            spec_from_dict({"graph": {"dataset": "karate"}})

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecValidationError, match="'percolate'"):
            spec_from_dict({"kind": "percolate"})


class TestEagerValidation:
    def test_unknown_dataset(self):
        with pytest.raises(SpecValidationError, match="'not_a_graph'"):
            GraphSpec(dataset="not_a_graph")

    def test_unknown_generator(self):
        with pytest.raises(SpecValidationError, match="'maze'"):
            GraphSpec(generator="maze")

    def test_unknown_probability_model(self):
        with pytest.raises(SpecValidationError, match="'uc2'"):
            GraphSpec(dataset="karate", probability="uc2")

    def test_unknown_duplicate_policy(self):
        with pytest.raises(SpecValidationError, match="'maybe'"):
            GraphSpec(edge_list="edges.txt", on_duplicate="maybe")

    def test_two_sources_rejected(self):
        with pytest.raises(SpecValidationError, match="exactly one"):
            GraphSpec(dataset="karate", edge_list="edges.txt")

    def test_no_source_rejected(self):
        with pytest.raises(SpecValidationError, match="exactly one"):
            GraphSpec()

    def test_unknown_approach(self):
        with pytest.raises(SpecValidationError, match="'magic'"):
            EstimatorSpec(approach="magic")

    def test_unknown_diffusion_model(self):
        with pytest.raises(SpecValidationError):
            RunContext(model="percolation")

    def test_bad_jobs(self):
        with pytest.raises(SpecValidationError, match="jobs"):
            RunContext(jobs=0)

    def test_sweep_grid_forms_are_exclusive(self):
        graph = GraphSpec(dataset="karate", probability="uc0.1")
        with pytest.raises(SpecValidationError, match="not both"):
            SweepSpec(graph=graph, max_exponent=4, sample_numbers=(1, 2))
        with pytest.raises(SpecValidationError, match="max_exponent or sample_numbers"):
            SweepSpec(graph=graph)

    def test_sweep_grid(self):
        graph = GraphSpec(dataset="karate", probability="uc0.1")
        assert SweepSpec(graph=graph, max_exponent=3).grid() == (1, 2, 4, 8)
        assert SweepSpec(graph=graph, sample_numbers=(8, 2, 2)).grid() == (2, 8)

    def test_traversal_unknown_approach_is_named(self):
        graph = GraphSpec(dataset="karate", probability="uc0.1")
        with pytest.raises(SpecValidationError, match="'magic'"):
            TraversalSpec(graph=graph, approaches=("oneshot", "magic"))

    @pytest.mark.parametrize(
        "kwargs, field_name",
        [
            ({"dataset": "karate", "on_duplicate": "allow"}, "on_duplicate"),
            ({"dataset": "karate", "directed": False}, "directed"),
            ({"edge_list": "edges.txt", "scale": 0.5}, "scale"),
            ({"edge_list": "edges.txt", "seed": 3}, "seed"),
            ({"generator": "star", "scale": 0.5}, "scale"),
            ({"dataset": "karate", "generator_params": {"n": 3}}, "generator_params"),
        ],
    )
    def test_inapplicable_fields_rejected_not_ignored(self, kwargs, field_name):
        with pytest.raises(SpecValidationError, match=field_name):
            GraphSpec(**kwargs)


class TestHashability:
    """Frozen specs are usable as dict keys (e.g. spec -> result caches)."""

    @settings(max_examples=40, deadline=None)
    @given(spec=all_experiment_specs)
    def test_specs_hash_and_equal_specs_collide(self, spec):
        clone = type(spec).from_dict(spec.to_dict())
        assert hash(spec) == hash(clone)
        assert len({spec, clone}) == 1

    def test_generator_params_mapping_is_normalized(self):
        a = GraphSpec(generator="star", generator_params={"num_leaves": 5})
        b = GraphSpec(generator="star", generator_params=(("num_leaves", 5),))
        assert a == b
        assert hash(a) == hash(b)
        assert a.to_dict()["generator_params"] == {"num_leaves": 5}


class TestLoadSpec:
    def test_loads_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        spec = StatsSpec(dataset="karate")
        path.write_text(spec.to_json(), encoding="utf-8")
        assert load_spec(path) == spec

    def test_invalid_json_reports_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SpecValidationError, match="broken.json"):
            load_spec(path)
