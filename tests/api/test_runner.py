"""``repro.run()``: dispatch, spec/imperative equivalence, graph resolution."""

from __future__ import annotations

import json

import pytest

import repro
from repro import (
    EstimatorSpec,
    GraphSpec,
    MaximizeSpec,
    RunContext,
    StatsSpec,
    SweepSpec,
    TraversalSpec,
    TrialsSpec,
)
from repro.api.results import (
    MaximizeResult,
    StatsResult,
    SweepResult,
    TraversalResult,
    TrialsResult,
)
from repro.estimation.oracle import RRPoolOracle
from repro.exceptions import SpecValidationError
from repro.experiments.factories import estimator_factory
from repro.experiments.trials import run_trials

KARATE = GraphSpec(dataset="karate", probability="uc0.1")


class TestDispatch:
    def test_rejects_non_specs(self):
        with pytest.raises(SpecValidationError, match="experiment spec"):
            repro.run({"kind": "maximize"})

    def test_stats(self):
        result = repro.run(StatsSpec(dataset="karate"))
        assert isinstance(result, StatsResult)
        assert result.rows[0]["network"] == "karate"
        assert result.rows[0]["n"] == 34

    def test_maximize(self):
        spec = MaximizeSpec(
            graph=KARATE,
            estimator=EstimatorSpec(approach="ris", num_samples=128),
            k=2,
            pool_size=500,
        )
        result = repro.run(spec)
        assert isinstance(result, MaximizeResult)
        assert result.greedy.k == 2
        assert result.influence.value > 0

    def test_trials(self):
        spec = TrialsSpec(
            graph=KARATE,
            estimator=EstimatorSpec(approach="ris", num_samples=32),
            k=1,
            num_trials=4,
            pool_size=500,
        )
        result = repro.run(spec)
        assert isinstance(result, TrialsResult)
        assert result.trial_set.num_trials == 4
        document = json.loads(result.to_json())
        assert len(document["trials"]) == 4
        assert document["entropy"] >= 0.0

    def test_sweep(self):
        spec = SweepSpec(
            graph=KARATE, approach="ris", max_exponent=2, num_trials=3, pool_size=500
        )
        result = repro.run(spec)
        assert isinstance(result, SweepResult)
        assert result.sweep.sample_numbers == (1, 2, 4)

    def test_traversal(self):
        spec = TraversalSpec(graph=KARATE, repetitions=2)
        result = repro.run(spec)
        assert isinstance(result, TraversalResult)
        assert [row.approach for row in result.rows] == ["oneshot", "snapshot", "ris"]


class TestSpecImperativeEquivalence:
    """Same parameters through the spec path and the legacy recipe: equal numbers."""

    def test_trials_equivalence(self):
        graph = KARATE.resolve()
        oracle = RRPoolOracle(graph, pool_size=500, seed=8)
        legacy = run_trials(
            graph, 1, estimator_factory("ris"), 32, 4,
            oracle=oracle, experiment_seed=7,
        )
        spec = TrialsSpec(
            graph=KARATE,
            estimator=EstimatorSpec(approach="ris", num_samples=32),
            k=1,
            num_trials=4,
            pool_size=500,
            context=RunContext(seed=7),
        )
        via_spec = repro.run(spec).trial_set
        assert via_spec == legacy

    def test_same_spec_same_result(self):
        spec = MaximizeSpec(
            graph=KARATE,
            estimator=EstimatorSpec(approach="ris", num_samples=128),
            k=2,
            pool_size=500,
            context=RunContext(seed=5),
        )
        first = repro.run(spec)
        second = repro.run(repro.spec_from_dict(spec.to_dict()))
        assert first.greedy == second.greedy
        assert first.to_dict() == second.to_dict()

    def test_jobs_is_bit_identical(self):
        def result_for(jobs):
            spec = MaximizeSpec(
                graph=KARATE,
                estimator=EstimatorSpec(approach="ris", num_samples=64),
                k=2,
                pool_size=500,
                context=RunContext(seed=1, jobs=jobs),
            )
            document = repro.run(spec).to_dict()
            del document["spec"]  # the envelope records the differing jobs value
            return document

        assert result_for(1) == result_for(2)


class TestGraphSpecResolution:
    def test_generator_source(self):
        spec = GraphSpec(
            generator="star",
            generator_params={"num_leaves": 5},
            probability="uc0.1",
        )
        graph = spec.resolve()
        assert graph.num_vertices == 6
        assert graph.num_edges == 5

    def test_generator_seed_injection(self):
        params = {"num_vertices": 20, "edge_probability": 0.2}
        a = GraphSpec(generator="erdos_renyi", generator_params=params).resolve()
        b = GraphSpec(
            generator="erdos_renyi", generator_params=params, seed=1
        ).resolve()
        assert a.num_edges != b.num_edges or list(a.edges()) != list(b.edges())

    def test_edge_list_source(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 2\n", encoding="utf-8")
        graph = GraphSpec(edge_list=str(path), probability="uc0.5").resolve()
        assert graph.num_vertices == 3
        assert graph.num_edges == 2
        assert float(graph.edge_arrays()[2][0]) == 0.5

    def test_edge_list_duplicate_policy(self, tmp_path):
        path = tmp_path / "dupes.txt"
        path.write_text("0 1\n0 1\n", encoding="utf-8")
        from repro.exceptions import GraphConstructionError

        with pytest.raises(GraphConstructionError):
            GraphSpec(edge_list=str(path)).resolve()
        graph = GraphSpec(edge_list=str(path), on_duplicate="first").resolve()
        assert graph.num_edges == 1
