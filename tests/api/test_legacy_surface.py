"""Legacy-surface guard: the pre-redesign API keeps working, with equal outputs.

Two halves:

* every name exported from ``repro.__init__`` before the declarative-API
  redesign (pinned below) must remain importable, and
* the old keyword forms (``seed=``, ``jobs=``, ``model=``,
  ``experiment_seed=``) must produce results equal to passing the same
  values through a single :class:`repro.RunContext`.
"""

from __future__ import annotations

import pytest

import repro
from repro import RunContext
from repro.algorithms.framework import greedy_maximize
from repro.algorithms.ris import RISEstimator
from repro.estimation.monte_carlo import monte_carlo_spread
from repro.estimation.oracle import RRPoolOracle
from repro.experiments.factories import estimator_factory, make_estimator
from repro.experiments.traversal import traversal_cost_table
from repro.experiments.trials import run_trials

#: ``repro.__all__`` as of PR 4, i.e. before the declarative-API redesign.
PRE_REDESIGN_EXPORTS = (
    "__version__", "ReproError",
    # graphs
    "InfluenceGraph", "GraphBuilder", "graph_from_edge_list", "read_edge_list",
    "write_edge_list", "load_dataset", "list_datasets", "assign_probabilities",
    "network_statistics",
    # diffusion
    "DiffusionModel", "IndependentCascade", "LinearThreshold",
    "INDEPENDENT_CASCADE", "LINEAR_THRESHOLD", "available_models", "get_model",
    "register_model", "resolve_model", "RandomSource", "TraversalCost",
    "SampleSize", "simulate_cascade", "simulate_cascades", "simulate_spread",
    "sample_snapshot", "sample_snapshots", "RRSet", "RRSetCollection",
    "sample_rr_set", "sample_rr_sets", "exact_spread",
    # algorithms
    "InfluenceEstimator", "GreedyResult", "greedy_maximize", "celf_maximize",
    "CELFStatistics", "OneshotEstimator", "SnapshotEstimator", "RISEstimator",
    "ExactEstimator", "DegreeEstimator", "WeightedDegreeEstimator",
    "SingleDiscountEstimator", "RandomEstimator", "exhaustive_optimum",
    # estimation
    "RRPoolOracle", "MonteCarloEstimate", "monte_carlo_spread",
    # experiments
    "run_trials", "TrialSet", "SeedSetDistribution", "shannon_entropy",
    "InfluenceDistribution", "SweepResult", "sweep_sample_numbers",
    "powers_of_two", "least_sample_number", "comparable_ratio_curve",
    # runtime
    "Executor", "SerialExecutor", "ParallelExecutor", "executor_scope",
)


class TestExportsSurvive:
    @pytest.mark.parametrize("name", PRE_REDESIGN_EXPORTS)
    def test_pre_redesign_name_still_exported(self, name):
        assert hasattr(repro, name), name
        assert name in repro.__all__, name


@pytest.fixture(scope="module")
def graph():
    return repro.assign_probabilities(repro.load_dataset("karate"), "uc0.1")


class TestKwargContextEquivalence:
    def test_greedy_maximize(self, graph):
        legacy = greedy_maximize(graph, 2, RISEstimator(128), seed=7)
        via_context = greedy_maximize(
            graph, 2, RISEstimator(128), context=RunContext(seed=7)
        )
        assert legacy == via_context
        # Historical default: omitting both is seed=0.
        assert greedy_maximize(graph, 2, RISEstimator(128)) == greedy_maximize(
            graph, 2, RISEstimator(128), seed=0
        )

    def test_explicit_seed_wins_over_context(self, graph):
        explicit = greedy_maximize(
            graph, 2, RISEstimator(128), seed=3, context=RunContext(seed=9)
        )
        assert explicit == greedy_maximize(graph, 2, RISEstimator(128), seed=3)

    def test_oracle(self, graph):
        legacy = RRPoolOracle(graph, pool_size=500, seed=3, model="ic", jobs=1)
        via_context = RRPoolOracle(
            graph, pool_size=500, context=RunContext(seed=3, model="ic", jobs=1)
        )
        seed_set = (0, 33)
        assert legacy.spread(seed_set) == via_context.spread(seed_set)
        assert legacy.average_rr_size == via_context.average_rr_size

    def test_monte_carlo_spread(self, graph):
        legacy = monte_carlo_spread(graph, (0,), 200, seed=5, model="ic")
        via_context = monte_carlo_spread(
            graph, (0,), 200, context=RunContext(seed=5, model="ic")
        )
        assert legacy == via_context

    def test_estimator_factory_binding(self, graph):
        legacy = make_estimator("ris", 64, jobs=1, model="ic")
        via_context = make_estimator("ris", 64, context=RunContext(jobs=1, model="ic"))
        result_legacy = greedy_maximize(graph, 1, legacy, seed=2)
        result_context = greedy_maximize(graph, 1, via_context, seed=2)
        assert result_legacy == result_context

    def test_run_trials(self, graph):
        oracle = RRPoolOracle(graph, pool_size=500, seed=11)
        legacy = run_trials(
            graph, 1, estimator_factory("ris"), 32, 4,
            oracle=oracle, experiment_seed=6,
        )
        via_context = run_trials(
            graph, 1, estimator_factory("ris"), 32, 4,
            oracle=oracle, context=RunContext(seed=6),
        )
        assert legacy == via_context

    def test_traversal_cost_table(self, graph):
        factories = {"ris": estimator_factory("ris")}
        legacy = traversal_cost_table(
            graph, factories, num_repetitions=2, experiment_seed=4, model="ic"
        )
        via_context = traversal_cost_table(
            graph, factories, num_repetitions=2,
            context=RunContext(seed=4, model="ic"),
        )
        assert legacy == via_context
