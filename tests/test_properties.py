"""Property-based tests (hypothesis) on core data structures and invariants.

These tests exercise randomly generated graphs, probability assignments, and
seed sets, checking the structural invariants the rest of the library relies
on: CSR consistency, estimator unbiasedness ordering, entropy bounds,
submodularity of fixed-sample estimators, and the RR-set identity.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.diffusion.cascade import simulate_cascade
from repro.diffusion.exact import exact_spread
from repro.diffusion.random_source import RandomSource
from repro.diffusion.reverse import sample_rr_set
from repro.diffusion.snapshots import reachable_set, sample_snapshot
from repro.experiments.seed_distribution import SeedSetDistribution
from repro.graphs.influence_graph import InfluenceGraph

SUPPRESSED = (HealthCheck.too_slow,)


# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
@st.composite
def random_graphs(draw, max_vertices: int = 12, max_edges: int = 30) -> InfluenceGraph:
    """Small random influence graphs with arbitrary probabilities."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    edges = set()
    sources, targets = [], []
    for _ in range(num_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v and (u, v) not in edges:
            edges.add((u, v))
            sources.append(u)
            targets.append(v)
    probs = [
        draw(st.floats(min_value=0.01, max_value=1.0, allow_nan=False))
        for _ in sources
    ]
    return InfluenceGraph(n, sources, targets, probs)


@st.composite
def graphs_with_seed_sets(draw):
    graph = draw(random_graphs())
    k = draw(st.integers(min_value=1, max_value=min(3, graph.num_vertices)))
    seeds = draw(
        st.lists(
            st.integers(min_value=0, max_value=graph.num_vertices - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    return graph, tuple(sorted(seeds))


# --------------------------------------------------------------------------- #
# graph invariants
# --------------------------------------------------------------------------- #
class TestGraphInvariants:
    @given(random_graphs())
    @settings(max_examples=60, suppress_health_check=SUPPRESSED, deadline=None)
    def test_degree_sums_equal_edge_count(self, graph):
        assert int(graph.out_degrees().sum()) == graph.num_edges
        assert int(graph.in_degrees().sum()) == graph.num_edges

    @given(random_graphs())
    @settings(max_examples=60, suppress_health_check=SUPPRESSED, deadline=None)
    def test_transpose_swaps_degrees(self, graph):
        transposed = graph.transpose()
        assert graph.out_degrees().tolist() == transposed.in_degrees().tolist()
        assert graph.in_degrees().tolist() == transposed.out_degrees().tolist()

    @given(random_graphs())
    @settings(max_examples=60, suppress_health_check=SUPPRESSED, deadline=None)
    def test_expected_live_edges_bounds(self, graph):
        assert 0.0 <= graph.expected_live_edges <= graph.num_edges + 1e-9

    @given(random_graphs())
    @settings(max_examples=40, suppress_health_check=SUPPRESSED, deadline=None)
    def test_edge_iteration_consistent_with_adjacency(self, graph):
        from collections import Counter

        from_edges = Counter((e.source, e.target) for e in graph.edges())
        from_adjacency: Counter = Counter()
        for vertex in graph.vertices:
            for target in graph.out_neighbors(vertex):
                from_adjacency[(vertex, int(target))] += 1
        assert from_edges == from_adjacency


# --------------------------------------------------------------------------- #
# diffusion invariants
# --------------------------------------------------------------------------- #
class TestDiffusionInvariants:
    @given(graphs_with_seed_sets(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, suppress_health_check=SUPPRESSED, deadline=None)
    def test_cascade_contains_seeds_and_stays_in_range(self, graph_and_seeds, seed):
        graph, seeds = graph_and_seeds
        result = simulate_cascade(graph, seeds, RandomSource(seed))
        activated = set(result.activated)
        assert set(seeds) <= activated
        assert len(seeds) <= result.num_activated <= graph.num_vertices
        assert all(0 <= v < graph.num_vertices for v in activated)

    @given(graphs_with_seed_sets(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, suppress_health_check=SUPPRESSED, deadline=None)
    def test_snapshot_reachability_superset_of_seeds(self, graph_and_seeds, seed):
        graph, seeds = graph_and_seeds
        snapshot = sample_snapshot(graph, RandomSource(seed))
        reachable = reachable_set(snapshot, seeds)
        assert set(seeds) <= reachable
        assert len(reachable) <= graph.num_vertices

    @given(random_graphs(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, suppress_health_check=SUPPRESSED, deadline=None)
    def test_rr_set_contains_target_and_weight_consistent(self, graph, seed):
        rr_set = sample_rr_set(graph, RandomSource(seed))
        assert rr_set.target in rr_set.vertices
        assert rr_set.size >= 1
        # The weight counts in-edges of members, so it is at least the sum of
        # in-degrees of member vertices (exactly, by construction).
        expected_weight = sum(graph.in_degree(v) for v in rr_set.vertices)
        assert rr_set.weight == expected_weight

    @given(graphs_with_seed_sets())
    @settings(max_examples=25, suppress_health_check=SUPPRESSED, deadline=None)
    def test_exact_spread_bounds(self, graph_and_seeds):
        graph, seeds = graph_and_seeds
        if graph.num_edges > 16:
            pytest.skip("exact enumeration too large")
        value = exact_spread(graph, seeds)
        assert len(seeds) - 1e-9 <= value <= graph.num_vertices + 1e-9

    @given(graphs_with_seed_sets())
    @settings(max_examples=20, suppress_health_check=SUPPRESSED, deadline=None)
    def test_exact_spread_monotone(self, graph_and_seeds):
        graph, seeds = graph_and_seeds
        if graph.num_edges > 14:
            pytest.skip("exact enumeration too large")
        value = exact_spread(graph, seeds)
        extra = next(
            (v for v in range(graph.num_vertices) if v not in seeds), None
        )
        if extra is None:
            return
        larger = exact_spread(graph, tuple(sorted(seeds + (extra,))))
        assert larger >= value - 1e-9


# --------------------------------------------------------------------------- #
# estimator invariants
# --------------------------------------------------------------------------- #
class TestEstimatorInvariants:
    @given(random_graphs(max_vertices=8, max_edges=14), st.integers(0, 1000))
    @settings(max_examples=20, suppress_health_check=SUPPRESSED, deadline=None)
    def test_snapshot_estimator_submodular_and_monotone(self, graph, seed):
        from repro.algorithms.snapshot import SnapshotEstimator

        estimator = SnapshotEstimator(8)
        estimator.build(graph, RandomSource(seed))
        vertices = list(range(graph.num_vertices))
        small = (vertices[0],)
        large = tuple(vertices[: min(3, len(vertices))])
        candidate = vertices[-1]
        if candidate in large:
            return
        # Monotonicity of the fixed-snapshot spread.
        assert estimator.spread(large) >= estimator.spread(small) - 1e-9
        # Submodularity: marginal gain w.r.t. the smaller set is at least the
        # marginal gain w.r.t. the larger superset.
        gain_small = estimator.spread(small + (candidate,)) - estimator.spread(small)
        gain_large = estimator.spread(large + (candidate,)) - estimator.spread(large)
        assert gain_small >= gain_large - 1e-9

    @given(random_graphs(max_vertices=8, max_edges=14), st.integers(0, 1000))
    @settings(max_examples=20, suppress_health_check=SUPPRESSED, deadline=None)
    def test_ris_estimates_bounded_by_n(self, graph, seed):
        from repro.algorithms.ris import RISEstimator

        estimator = RISEstimator(32)
        estimator.build(graph, RandomSource(seed))
        for vertex in range(graph.num_vertices):
            estimate = estimator.estimate((), vertex)
            assert 0.0 <= estimate <= graph.num_vertices + 1e-9


# --------------------------------------------------------------------------- #
# distribution invariants
# --------------------------------------------------------------------------- #
class TestDistributionInvariants:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=6)),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_entropy_bounds(self, seed_sets):
        distribution = SeedSetDistribution.from_seed_sets(seed_sets)
        entropy = distribution.entropy()
        assert -1e-12 <= entropy <= math.log2(len(seed_sets)) + 1e-12
        assert entropy <= math.log2(max(distribution.support_size, 1)) + 1e-12

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=6)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_probabilities_sum_to_one(self, seed_sets):
        distribution = SeedSetDistribution.from_seed_sets(seed_sets)
        total = sum(distribution.probability(s) for s in distribution.counts)
        assert total == pytest.approx(1.0)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=200)
    )
    @settings(max_examples=80, deadline=None)
    def test_influence_distribution_percentiles_ordered(self, values):
        from repro.experiments.distributions import InfluenceDistribution

        dist = InfluenceDistribution.from_values(values)
        assert dist.minimum <= dist.percentile_1 + 1e-9
        assert dist.percentile_1 <= dist.percentile_25 + 1e-9
        assert dist.percentile_25 <= dist.median + 1e-9
        assert dist.median <= dist.percentile_75 + 1e-9
        assert dist.percentile_75 <= dist.percentile_99 + 1e-9
        assert dist.percentile_99 <= dist.maximum + 1e-9
        assert dist.minimum <= dist.mean <= dist.maximum


# --------------------------------------------------------------------------- #
# probability-model invariants
# --------------------------------------------------------------------------- #
class TestProbabilityModelInvariants:
    @given(random_graphs())
    @settings(max_examples=40, suppress_health_check=SUPPRESSED, deadline=None)
    def test_iwc_incoming_mass_at_most_one(self, graph):
        from repro.graphs.probability import in_degree_weighted_cascade

        weighted = in_degree_weighted_cascade(graph)
        for vertex in weighted.vertices:
            mass = float(weighted.in_probabilities(vertex).sum())
            assert mass <= 1.0 + 1e-9

    @given(random_graphs())
    @settings(max_examples=40, suppress_health_check=SUPPRESSED, deadline=None)
    def test_owc_outgoing_mass_at_most_one(self, graph):
        from repro.graphs.probability import out_degree_weighted_cascade

        weighted = out_degree_weighted_cascade(graph)
        for vertex in weighted.vertices:
            mass = float(weighted.out_probabilities(vertex).sum())
            assert mass <= 1.0 + 1e-9

    @given(random_graphs(), st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=40, suppress_health_check=SUPPRESSED, deadline=None)
    def test_uniform_cascade_preserves_structure(self, graph, probability):
        from repro.graphs.probability import uniform_cascade

        assigned = uniform_cascade(graph, probability)
        assert assigned.num_edges == graph.num_edges
        assert assigned.expected_live_edges == pytest.approx(
            probability * graph.num_edges
        )
