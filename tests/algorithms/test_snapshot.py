"""Tests for the Snapshot estimator, including the graph-reduction Update."""

from __future__ import annotations

import pytest

from repro.algorithms.framework import greedy_maximize
from repro.algorithms.snapshot import SnapshotEstimator
from repro.diffusion.exact import exact_spread
from repro.diffusion.random_source import RandomSource
from repro.exceptions import EstimatorStateError, InvalidParameterError


class TestProtocol:
    def test_estimate_before_build_raises(self):
        with pytest.raises(EstimatorStateError):
            SnapshotEstimator(2).estimate((), 0)

    def test_invalid_update_strategy(self):
        with pytest.raises(InvalidParameterError):
            SnapshotEstimator(2, update_strategy="lazy")

    def test_snapshot_count(self, karate_uc01, rng):
        estimator = SnapshotEstimator(7)
        estimator.build(karate_uc01, rng)
        assert len(estimator.snapshots) == 7

    def test_sample_size_counts_live_edges(self, karate_uc01, rng):
        estimator = SnapshotEstimator(10)
        estimator.build(karate_uc01, rng)
        live_total = sum(s.num_live_edges for s in estimator.snapshots)
        assert estimator.sample_size.edges == live_total
        assert estimator.sample_size.vertices == 0

    def test_build_does_not_count_traversal(self, karate_uc01, rng):
        estimator = SnapshotEstimator(10)
        estimator.build(karate_uc01, rng)
        assert estimator.build_cost.total == 0
        assert estimator.estimate_cost.total == 0

    def test_approach_metadata(self):
        estimator = SnapshotEstimator(2)
        assert estimator.approach == "snapshot"
        assert estimator.is_submodular is True


class TestEstimates:
    def test_deterministic_graph_exact(self, star_graph, rng):
        estimator = SnapshotEstimator(3)
        estimator.build(star_graph, rng)
        assert estimator.estimate((), 0) == pytest.approx(6.0)
        assert estimator.estimate((), 4) == pytest.approx(1.0)

    def test_unbiased_on_diamond(self, probabilistic_diamond):
        estimator = SnapshotEstimator(4000)
        estimator.build(probabilistic_diamond, RandomSource(5))
        assert estimator.estimate((), 0) == pytest.approx(
            exact_spread(probabilistic_diamond, (0,)), rel=0.05
        )

    def test_marginal_semantics_after_update(self, two_hubs_graph, rng):
        estimator = SnapshotEstimator(2)
        estimator.build(two_hubs_graph, rng)
        estimator.update(0)
        # Marginal gain of 4 on top of {0} is exactly 3 (its own component).
        assert estimator.estimate((0,), 4) == pytest.approx(3.0)
        # Marginal gain of a vertex already covered by 0 is zero.
        assert estimator.estimate((0,), 1) == pytest.approx(0.0)

    def test_spread_query(self, star_graph, rng):
        estimator = SnapshotEstimator(5)
        estimator.build(star_graph, rng)
        assert estimator.spread((0,)) == pytest.approx(6.0)
        assert estimator.spread((1, 2)) == pytest.approx(2.0)

    def test_spread_before_build_raises(self):
        with pytest.raises(EstimatorStateError):
            SnapshotEstimator(2).spread((0,))

    def test_monotone_in_seed_set(self, karate_uc01, rng):
        estimator = SnapshotEstimator(30)
        estimator.build(karate_uc01, rng)
        assert estimator.spread((0, 33)) >= estimator.spread((0,))

    def test_submodular_marginals(self, karate_uc01, rng):
        # For a fixed snapshot collection, reachability-based spread is
        # submodular: marginal gains shrink as the seed set grows.
        estimator = SnapshotEstimator(20)
        estimator.build(karate_uc01, rng)
        gain_small = estimator.spread((0, 5)) - estimator.spread((0,))
        gain_large = estimator.spread((0, 33, 5)) - estimator.spread((0, 33))
        assert gain_small >= gain_large - 1e-9


class TestUpdateStrategies:
    def test_reduce_matches_naive_estimates(self, karate_uc01):
        naive = SnapshotEstimator(15, update_strategy="naive")
        reduce_estimator = SnapshotEstimator(15, update_strategy="reduce")
        naive.build(karate_uc01, RandomSource(9))
        reduce_estimator.build(karate_uc01, RandomSource(9))
        # Same RNG seed -> identical snapshots -> identical marginal estimates.
        naive.update(0)
        reduce_estimator.update(0)
        for vertex in (1, 5, 33):
            assert naive.estimate((0,), vertex) == pytest.approx(
                reduce_estimator.estimate((0,), vertex)
            )

    def test_reduce_produces_same_greedy_solution(self, karate_uc01):
        naive_result = greedy_maximize(
            karate_uc01, 4, SnapshotEstimator(64, update_strategy="naive"), seed=3
        )
        reduce_result = greedy_maximize(
            karate_uc01, 4, SnapshotEstimator(64, update_strategy="reduce"), seed=3
        )
        assert naive_result.seed_set == reduce_result.seed_set

    def test_reduce_is_cheaper_after_first_iteration(self, karate_uc01):
        naive = greedy_maximize(
            karate_uc01, 4, SnapshotEstimator(32, update_strategy="naive"), seed=1
        )
        reduced = greedy_maximize(
            karate_uc01, 4, SnapshotEstimator(32, update_strategy="reduce"), seed=1
        )
        assert (
            reduced.cost.traversal.vertices < naive.cost.traversal.vertices
        )


class TestWithinGreedy:
    def test_finds_star_centre(self, star_graph):
        result = greedy_maximize(star_graph, 1, SnapshotEstimator(3), seed=0)
        assert result.seed_set == (0,)

    def test_two_hubs_pair(self, two_hubs_graph):
        result = greedy_maximize(two_hubs_graph, 2, SnapshotEstimator(3), seed=0)
        assert result.seed_set == (0, 4)

    def test_reasonable_karate_solution(self, karate_uc01, karate_oracle):
        result = greedy_maximize(karate_uc01, 1, SnapshotEstimator(128), seed=2)
        best = karate_oracle.top_vertices(1)[0][1]
        assert karate_oracle.spread(result.seed_set) >= 0.8 * best
