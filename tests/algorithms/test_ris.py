"""Tests for the RIS (reverse influence sampling) estimator."""

from __future__ import annotations

import pytest

from repro.algorithms.framework import greedy_maximize
from repro.algorithms.ris import RISEstimator
from repro.diffusion.exact import exact_spread
from repro.diffusion.random_source import RandomSource
from repro.exceptions import EstimatorStateError


class TestProtocol:
    def test_estimate_before_build_raises(self):
        with pytest.raises(EstimatorStateError):
            RISEstimator(4).estimate((), 0)

    def test_collection_before_build_raises(self):
        with pytest.raises(EstimatorStateError):
            _ = RISEstimator(4).collection

    def test_collection_size(self, karate_uc01, rng):
        estimator = RISEstimator(50)
        estimator.build(karate_uc01, rng)
        assert estimator.collection.num_total == 50

    def test_all_cost_is_in_build(self, karate_uc01, rng):
        estimator = RISEstimator(50)
        estimator.build(karate_uc01, rng)
        assert estimator.build_cost.total > 0
        estimator.estimate((), 0)
        estimator.update(0)
        estimator.estimate((0,), 33)
        assert estimator.estimate_cost.total == 0

    def test_sample_size_counts_vertices(self, karate_uc01, rng):
        estimator = RISEstimator(50)
        estimator.build(karate_uc01, rng)
        assert estimator.sample_size.vertices == estimator.collection.total_size
        assert estimator.sample_size.edges == 0

    def test_approach_metadata(self):
        estimator = RISEstimator(4)
        assert estimator.approach == "ris"
        assert estimator.is_submodular is True


class TestEstimates:
    def test_deterministic_star(self, star_graph, rng):
        estimator = RISEstimator(600)
        estimator.build(star_graph, rng)
        # Inf(centre) = 6: the centre is in every RR set.
        assert estimator.estimate((), 0) == pytest.approx(6.0)
        # Inf(leaf) = 1: a leaf appears only when it is the target (prob 1/6).
        assert estimator.estimate((), 3) == pytest.approx(1.0, rel=0.35)

    def test_unbiased_on_diamond(self, probabilistic_diamond):
        estimator = RISEstimator(20000)
        estimator.build(probabilistic_diamond, RandomSource(6))
        assert estimator.estimate((), 0) == pytest.approx(
            exact_spread(probabilistic_diamond, (0,)), rel=0.05
        )

    def test_spread_query_matches_fraction(self, karate_uc01, rng):
        estimator = RISEstimator(500)
        estimator.build(karate_uc01, rng)
        expected = karate_uc01.num_vertices * estimator.collection.fraction_covered({0, 33})
        assert estimator.spread((0, 33)) == pytest.approx(expected)

    def test_update_makes_coverage_marginal(self, star_graph, rng):
        estimator = RISEstimator(600)
        estimator.build(star_graph, rng)
        before = estimator.estimate((), 0)
        estimator.update(0)
        # Every RR set contains the centre, so all are removed.
        assert before > 0
        assert estimator.estimate((0,), 3) == pytest.approx(0.0)

    def test_expected_rr_size_close_to_ept(self, karate_uc01):
        estimator = RISEstimator(2000)
        estimator.build(karate_uc01, RandomSource(7))
        # EPT for karate uc0.1 is around 1.9-2.1 (Table 8 vertex cost 2.0).
        assert estimator.expected_rr_size == pytest.approx(2.0, rel=0.25)


class TestWithinGreedy:
    def test_finds_star_centre(self, star_graph):
        result = greedy_maximize(star_graph, 1, RISEstimator(200), seed=0)
        assert result.seed_set == (0,)

    def test_two_hubs_pair(self, two_hubs_graph):
        result = greedy_maximize(two_hubs_graph, 2, RISEstimator(500), seed=0)
        assert result.seed_set == (0, 4)

    def test_reasonable_karate_solution(self, karate_uc01, karate_oracle):
        result = greedy_maximize(karate_uc01, 1, RISEstimator(4096), seed=1)
        best = karate_oracle.top_vertices(1)[0][1]
        assert karate_oracle.spread(result.seed_set) >= 0.9 * best

    def test_greedy_matches_maximum_coverage(self, karate_uc01):
        # The first chosen seed must be (one of) the vertices with maximum
        # coverage in the built RR-set collection.
        estimator = RISEstimator(300)
        result = greedy_maximize(karate_uc01, 1, estimator, seed=11)
        coverages = estimator.collection.coverage_array()
        # After Update the covered sets were removed; rebuild coverage by
        # re-counting membership over all sets.
        max_coverage = max(
            sum(1 for rr_set in estimator.collection if vertex in rr_set.vertices)
            for vertex in range(karate_uc01.num_vertices)
        )
        chosen_coverage = sum(
            1 for rr_set in estimator.collection if result.seeds[0] in rr_set.vertices
        )
        assert chosen_coverage == max_coverage
        del coverages
