"""Tests for the exact estimator and exhaustive optimizer."""

from __future__ import annotations

import math

import pytest

from repro.algorithms.exact import ExactEstimator, exhaustive_optimum
from repro.algorithms.framework import greedy_maximize
from repro.diffusion.exact import exact_spread


class TestExhaustiveOptimum:
    def test_star(self, star_graph):
        seeds, value = exhaustive_optimum(star_graph, 1)
        assert seeds == (0,)
        assert value == pytest.approx(6.0)

    def test_diamond_pair(self, probabilistic_diamond):
        seeds, value = exhaustive_optimum(probabilistic_diamond, 2)
        # Best pair seeds the source plus one middle vertex: 2 + 0.5 + 0.625.
        assert seeds in {(0, 1), (0, 2)}
        assert value == pytest.approx(3.125)
        assert value == pytest.approx(exact_spread(probabilistic_diamond, seeds))


class TestExactEstimator:
    def test_estimates_are_exact(self, probabilistic_diamond, rng):
        estimator = ExactEstimator()
        estimator.build(probabilistic_diamond, rng)
        assert estimator.estimate((), 0) == pytest.approx(
            exact_spread(probabilistic_diamond, (0,))
        )
        assert estimator.estimate((0,), 3) == pytest.approx(
            exact_spread(probabilistic_diamond, (0, 3))
        )

    def test_greedy_achieves_approximation_guarantee(self, probabilistic_diamond, two_hubs_graph):
        for graph, k in ((probabilistic_diamond, 2), (two_hubs_graph, 2)):
            greedy = greedy_maximize(graph, k, ExactEstimator(), seed=0)
            greedy_value = exact_spread(graph, greedy.seed_set)
            _, optimal_value = exhaustive_optimum(graph, k)
            assert greedy_value >= (1 - 1 / math.e) * optimal_value - 1e-9

    def test_zero_cost_accounting(self, probabilistic_diamond, rng):
        estimator = ExactEstimator()
        estimator.build(probabilistic_diamond, rng)
        estimator.estimate((), 0)
        assert estimator.cost_report().as_dict() == {
            "traversal_vertices": 0,
            "traversal_edges": 0,
            "sample_vertices": 0,
            "sample_edges": 0,
        }
