"""Tests for the greedy framework (Algorithm 3.1) and GreedyResult."""

from __future__ import annotations

import pytest

from repro.algorithms.exact import ExactEstimator
from repro.algorithms.framework import GreedyResult, greedy_maximize
from repro.algorithms.ris import RISEstimator
from repro.algorithms.snapshot import SnapshotEstimator
from repro.diffusion.random_source import RandomSource
from repro.exceptions import InvalidParameterError


class TestGreedyMaximize:
    def test_picks_optimal_seed_on_star(self, star_graph):
        result = greedy_maximize(star_graph, 1, ExactEstimator(), seed=0)
        assert result.seed_set == (0,)
        assert result.estimates[0] == pytest.approx(6.0)

    def test_picks_both_hubs(self, two_hubs_graph):
        result = greedy_maximize(two_hubs_graph, 2, ExactEstimator(), seed=0)
        assert result.seed_set == (0, 4)

    def test_greedy_order_prefers_larger_hub_first(self, two_hubs_graph):
        result = greedy_maximize(two_hubs_graph, 2, ExactEstimator(), seed=0)
        assert result.seeds[0] == 0

    def test_k_larger_than_candidates_rejected(self, star_graph):
        with pytest.raises(InvalidParameterError):
            greedy_maximize(star_graph, 7, ExactEstimator(), seed=0)

    def test_k_must_be_positive(self, star_graph):
        with pytest.raises(InvalidParameterError):
            greedy_maximize(star_graph, 0, ExactEstimator(), seed=0)

    def test_no_duplicate_seeds(self, karate_uc01):
        result = greedy_maximize(karate_uc01, 8, RISEstimator(256), seed=0)
        assert len(set(result.seeds)) == 8

    def test_candidate_restriction(self, star_graph):
        result = greedy_maximize(
            star_graph, 1, ExactEstimator(), seed=0, candidate_vertices=(2, 3, 4)
        )
        assert result.seed_set[0] in {2, 3, 4}

    def test_candidate_out_of_range(self, star_graph):
        with pytest.raises(InvalidParameterError):
            greedy_maximize(
                star_graph, 1, ExactEstimator(), seed=0, candidate_vertices=(99,)
            )

    def test_deterministic_given_seed(self, karate_uc01):
        a = greedy_maximize(karate_uc01, 4, RISEstimator(128), seed=42)
        b = greedy_maximize(karate_uc01, 4, RISEstimator(128), seed=42)
        assert a.seeds == b.seeds
        assert a.estimates == b.estimates

    def test_different_seeds_can_differ(self, karate_uc01):
        results = {
            greedy_maximize(karate_uc01, 1, RISEstimator(2), seed=s).seed_set
            for s in range(15)
        }
        # With only 2 RR sets, ties abound, so random tie-breaking must show up.
        assert len(results) > 1

    def test_accepts_random_source(self, star_graph):
        result = greedy_maximize(star_graph, 1, ExactEstimator(), seed=RandomSource(3))
        assert result.seed_set == (0,)


class TestTieBreaking:
    def test_ties_broken_uniformly_at_random(self, star_graph):
        # All leaves of a star are exactly tied for the second seed.
        chosen = []
        for seed in range(60):
            result = greedy_maximize(star_graph, 2, ExactEstimator(), seed=seed)
            second = result.seeds[1]
            chosen.append(second)
        assert set(chosen) <= {1, 2, 3, 4, 5}
        # At least three distinct leaves should appear across 60 random orders.
        assert len(set(chosen)) >= 3


class TestGreedyResult:
    def test_seed_set_is_sorted(self, two_hubs_graph):
        result = greedy_maximize(two_hubs_graph, 2, ExactEstimator(), seed=0)
        assert result.seed_set == tuple(sorted(result.seeds))

    def test_k_property(self, two_hubs_graph):
        result = greedy_maximize(two_hubs_graph, 2, ExactEstimator(), seed=0)
        assert result.k == 2

    def test_as_dict_contains_costs(self, karate_uc01):
        result = greedy_maximize(karate_uc01, 1, SnapshotEstimator(4), seed=0)
        payload = result.as_dict()
        assert payload["approach"] == "snapshot"
        assert payload["k"] == 1
        assert "traversal_vertices" in payload
        assert "sample_edges" in payload

    def test_estimates_monotone_nonincreasing_for_submodular(self, karate_uc01):
        result = greedy_maximize(karate_uc01, 6, RISEstimator(2048), seed=1)
        gains = list(result.estimates)
        for earlier, later in zip(gains, gains[1:]):
            assert later <= earlier + 1e-9
