"""Tests for the worst-case sample-number bound formulas."""

from __future__ import annotations

import math

import pytest

from repro.algorithms.bounds import (
    greedy_approximation_factor,
    monte_carlo_spread_bound,
    oneshot_sample_bound,
    ris_sample_bound,
    ris_weight_bound,
    snapshot_sample_bound,
    theoretical_cost_ratios,
)
from repro.exceptions import InvalidParameterError


class TestOneshotBound:
    def test_reproduces_paper_magnitude_for_wiki_vote(self):
        # Section 5.2.1: on Wiki-Vote (uc0.01, k=4) the bound with
        # eps=0.05, delta=0.01 is about 1.0e8 (with OPT_k around 2.7).
        bound = oneshot_sample_bound(0.05, 0.01, 7115, 4, optimal_spread=2.7)
        assert bound == pytest.approx(1.0e8, rel=0.3)

    def test_decreases_with_larger_optimum(self):
        loose = oneshot_sample_bound(0.1, 0.05, 1000, 2, optimal_spread=5.0)
        tight = oneshot_sample_bound(0.1, 0.05, 1000, 2, optimal_spread=50.0)
        assert tight < loose

    def test_increases_with_k(self):
        small_k = oneshot_sample_bound(0.1, 0.05, 1000, 1, optimal_spread=5.0)
        large_k = oneshot_sample_bound(0.1, 0.05, 1000, 8, optimal_spread=5.0)
        assert large_k > small_k

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            oneshot_sample_bound(0.0, 0.01, 100, 1, 1.0)
        with pytest.raises(InvalidParameterError):
            oneshot_sample_bound(0.1, 1.5, 100, 1, 1.0)
        with pytest.raises(ValueError):
            oneshot_sample_bound(0.1, 0.1, 100, 1, 0.0)


class TestSnapshotBound:
    def test_scales_with_n_squared(self):
        small = snapshot_sample_bound(10.0, 0.01, 100, 1)
        large = snapshot_sample_bound(10.0, 0.01, 1000, 1)
        expected_ratio = (
            1000 ** 2 * (math.log(1000) + math.log(100))
        ) / (100 ** 2 * (math.log(100) + math.log(100)))
        assert large / small == pytest.approx(expected_ratio, rel=1e-9)

    def test_additive_epsilon_not_restricted_to_unit_interval(self):
        assert snapshot_sample_bound(25.0, 0.01, 1000, 4) > 0

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            snapshot_sample_bound(0.0, 0.01, 100, 1)


class TestRISBounds:
    def test_smaller_than_oneshot_bound(self):
        # The RIS bound drops the extra factor of k relative to Oneshot.
        oneshot = oneshot_sample_bound(0.05, 0.01, 7115, 4, optimal_spread=2.7)
        ris = ris_sample_bound(0.05, 0.01, 7115, 4, optimal_spread=2.7)
        assert ris < oneshot

    def test_weight_bound_scales_with_graph_size(self):
        small = ris_weight_bound(0.1, 100, 500, 2)
        large = ris_weight_bound(0.1, 1000, 5000, 2)
        assert large > small

    def test_invalid_optimal_spread(self):
        with pytest.raises(ValueError):
            ris_sample_bound(0.1, 0.1, 100, 1, -1.0)


class TestOtherBounds:
    def test_monte_carlo_spread_bound(self):
        assert monte_carlo_spread_bound(0.1, 100) == pytest.approx(100 * 100 ** 2)

    def test_greedy_factor_exact_oracle(self):
        assert greedy_approximation_factor(5) == pytest.approx(1 - 1 / math.e)

    def test_greedy_factor_degrades_with_oracle_error(self):
        assert greedy_approximation_factor(10, 0.01) < greedy_approximation_factor(10)

    def test_greedy_factor_never_negative(self):
        assert greedy_approximation_factor(100, 0.5) == 0.0


class TestTheoreticalCostRatios:
    def test_table1_ratios(self):
        ratios = theoretical_cost_ratios(1000, 10000, expected_live_edges=1000.0)
        assert ratios["oneshot_vertex"] == 1.0
        assert ratios["snapshot_vertex"] == 1.0
        assert ratios["ris_vertex"] == pytest.approx(1 / 1000)
        assert ratios["snapshot_edge"] == pytest.approx(0.1)
        assert ratios["ris_edge"] == pytest.approx(1 / 1000)

    def test_invalid_live_edges(self):
        with pytest.raises(ValueError):
            theoretical_cost_ratios(10, 10, 0.0)
