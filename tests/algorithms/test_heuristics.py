"""Tests for the heuristic baseline estimators."""

from __future__ import annotations

import pytest

from repro.algorithms.framework import greedy_maximize
from repro.algorithms.heuristics import (
    DegreeEstimator,
    RandomEstimator,
    SingleDiscountEstimator,
    WeightedDegreeEstimator,
)
from repro.diffusion.random_source import RandomSource
from repro.exceptions import EstimatorStateError
from repro.graphs.builder import GraphBuilder


class TestDegreeEstimator:
    def test_scores_are_out_degrees(self, karate_uc01, rng):
        estimator = DegreeEstimator()
        estimator.build(karate_uc01, rng)
        for vertex in (0, 11, 33):
            assert estimator.estimate((), vertex) == karate_uc01.out_degree(vertex)

    def test_greedy_picks_highest_degree(self, karate_uc01):
        result = greedy_maximize(karate_uc01, 1, DegreeEstimator(), seed=0)
        degrees = karate_uc01.out_degrees()
        assert degrees[result.seeds[0]] == degrees.max()

    def test_estimate_before_build_raises(self):
        with pytest.raises(EstimatorStateError):
            DegreeEstimator().estimate((), 0)


class TestWeightedDegreeEstimator:
    def test_scores_are_probability_mass(self, karate_uc01, rng):
        estimator = WeightedDegreeEstimator()
        estimator.build(karate_uc01, rng)
        assert estimator.estimate((), 0) == pytest.approx(
            float(karate_uc01.out_probabilities(0).sum())
        )

    def test_prefers_high_probability_edges(self, rng):
        builder = GraphBuilder(4)
        builder.add_edge(0, 1, 0.9)
        builder.add_edge(2, 1, 0.1)
        builder.add_edge(2, 3, 0.1)
        graph = builder.build()
        estimator = WeightedDegreeEstimator()
        estimator.build(graph, rng)
        # Vertex 2 has higher degree but lower total probability mass.
        assert estimator.estimate((), 0) > estimator.estimate((), 2)


class TestRandomEstimator:
    def test_scores_deterministic_given_rng(self, karate_uc01):
        a = RandomEstimator()
        a.build(karate_uc01, RandomSource(4))
        b = RandomEstimator()
        b.build(karate_uc01, RandomSource(4))
        assert a.estimate((), 7) == b.estimate((), 7)

    def test_varies_across_runs(self, karate_uc01):
        picks = {
            greedy_maximize(karate_uc01, 1, RandomEstimator(), seed=s).seed_set
            for s in range(10)
        }
        assert len(picks) > 1


class TestSingleDiscountEstimator:
    def test_discount_applied_to_neighbours(self, rng):
        builder = GraphBuilder(4)
        builder.add_edge(0, 1)
        builder.add_edge(1, 2)
        builder.add_edge(1, 3)
        graph = builder.build()
        estimator = SingleDiscountEstimator()
        estimator.build(graph, rng)
        assert estimator.estimate((), 1) == 2
        estimator.update(0)  # vertex 0 points at 1, so 1's score drops by one
        assert estimator.estimate((0,), 1) == 1

    def test_score_never_negative(self, star_graph, rng):
        estimator = SingleDiscountEstimator()
        estimator.build(star_graph, rng)
        estimator.update(0)
        estimator.update(0)
        for leaf in range(1, 6):
            assert estimator.estimate((), leaf) >= 0

    def test_estimate_before_build_raises(self):
        with pytest.raises(EstimatorStateError):
            SingleDiscountEstimator().estimate((), 0)
        with pytest.raises(EstimatorStateError):
            SingleDiscountEstimator().update(0)


class TestHeuristicsVersusSampling:
    def test_heuristics_not_better_than_ris_on_karate(self, karate_uc01, karate_oracle):
        from repro.algorithms.ris import RISEstimator

        ris_result = greedy_maximize(karate_uc01, 4, RISEstimator(4096), seed=0)
        random_result = greedy_maximize(karate_uc01, 4, RandomEstimator(), seed=0)
        assert karate_oracle.spread(ris_result.seed_set) >= karate_oracle.spread(
            random_result.seed_set
        )


class TestWeightedDegreeVectorization:
    """The reduceat scores match the historical per-vertex loop.

    ``np.add.reduceat`` associates additions in its own order, which can
    differ from the old loop's pairwise ``.sum()`` by 1 ULP on long rows
    (both are valid roundings of the same real sum), so the karate check uses
    a 1e-12 relative tolerance; rows whose partial sums are exactly
    representable in binary must match bit for bit.
    """

    def test_matches_per_vertex_loop_on_karate(self, karate_uc01, rng):
        import numpy as np

        estimator = WeightedDegreeEstimator()
        estimator.build(karate_uc01, rng)
        for vertex in range(karate_uc01.num_vertices):
            old_loop = float(karate_uc01.out_probabilities(vertex).sum())
            assert np.isclose(estimator.estimate((), vertex), old_loop, rtol=1e-12)

    def test_equals_per_vertex_loop_with_empty_rows(self, rng):
        # Vertex 2 has no out-edges and vertex 3 is fully isolated: the
        # reduceat segment masking must leave both at score 0.
        builder = GraphBuilder(4)
        builder.add_edge(0, 1, 0.5)
        builder.add_edge(0, 2, 0.25)
        builder.add_edge(1, 2, 0.125)
        graph = builder.build()
        estimator = WeightedDegreeEstimator()
        estimator.build(graph, rng)
        scores = [estimator.estimate((), v) for v in range(4)]
        assert scores == [0.75, 0.125, 0.0, 0.0]

    def test_edgeless_graph(self, rng):
        graph = GraphBuilder(3).build()
        estimator = WeightedDegreeEstimator()
        estimator.build(graph, rng)
        assert [estimator.estimate((), v) for v in range(3)] == [0.0, 0.0, 0.0]
