"""Tests for the CELF lazy-greedy driver."""

from __future__ import annotations

import pytest

from repro.algorithms.celf import celf_maximize
from repro.algorithms.exact import ExactEstimator
from repro.algorithms.framework import greedy_maximize
from repro.algorithms.oneshot import OneshotEstimator
from repro.algorithms.ris import RISEstimator
from repro.algorithms.snapshot import SnapshotEstimator
from repro.exceptions import InvalidParameterError


class TestCorrectness:
    def test_matches_full_greedy_with_exact_oracle(self, two_hubs_graph):
        full = greedy_maximize(two_hubs_graph, 2, ExactEstimator(), seed=0)
        lazy, _ = celf_maximize(two_hubs_graph, 2, ExactEstimator(), seed=0)
        assert lazy.seed_set == full.seed_set

    def test_matches_full_greedy_with_snapshot(self, karate_uc01):
        # Same estimator seed -> same snapshots -> identical selections up to
        # tie-breaking; on karate uc0.1 with 64 snapshots the top choices are
        # far enough apart that ties do not bite.
        full = greedy_maximize(karate_uc01, 3, SnapshotEstimator(64), seed=5)
        lazy, _ = celf_maximize(karate_uc01, 3, SnapshotEstimator(64), seed=5)
        assert lazy.seed_set == full.seed_set

    def test_matches_full_greedy_with_ris(self, karate_uc01):
        full = greedy_maximize(karate_uc01, 3, RISEstimator(2048), seed=5)
        lazy, _ = celf_maximize(karate_uc01, 3, RISEstimator(2048), seed=5)
        assert lazy.seed_set == full.seed_set

    def test_approach_label_suffix(self, karate_uc01):
        lazy, _ = celf_maximize(karate_uc01, 1, RISEstimator(64), seed=0)
        assert lazy.approach == "ris+celf"


class TestLaziness:
    def test_fewer_estimate_calls_than_full_greedy(self, karate_uc01):
        _, stats = celf_maximize(karate_uc01, 4, SnapshotEstimator(32), seed=1)
        assert stats.estimate_calls < stats.full_greedy_calls
        assert 0.0 < stats.savings_ratio < 1.0

    def test_k_equals_one_costs_n_evaluations(self, karate_uc01):
        _, stats = celf_maximize(karate_uc01, 1, SnapshotEstimator(8), seed=1)
        assert stats.estimate_calls == karate_uc01.num_vertices


class TestGuards:
    def test_non_submodular_estimator_rejected(self, karate_uc01):
        with pytest.raises(InvalidParameterError):
            celf_maximize(karate_uc01, 2, OneshotEstimator(4), seed=0)

    def test_force_allows_oneshot(self, star_graph):
        result, _ = celf_maximize(star_graph, 1, OneshotEstimator(4), seed=0, force=True)
        assert result.seed_set == (0,)

    def test_k_too_large(self, star_graph):
        with pytest.raises(InvalidParameterError):
            celf_maximize(star_graph, 10, ExactEstimator(), seed=0)

    def test_k_not_positive(self, star_graph):
        with pytest.raises(InvalidParameterError):
            celf_maximize(star_graph, 0, ExactEstimator(), seed=0)
