"""Tests for adaptive sample-number determination."""

from __future__ import annotations

import pytest

from repro.algorithms.stopping import (
    AdaptiveRIS,
    adaptive_sample_number,
    determine_theta,
    estimate_opt_lower_bound,
)
from repro.diffusion.exact import exact_optimal_seed_set
from repro.estimation.oracle import RRPoolOracle
from repro.exceptions import InvalidParameterError
from repro.experiments.factories import estimator_factory
from repro.graphs.generators import star


class TestOptLowerBound:
    def test_never_below_k(self, karate_uc01):
        assert estimate_opt_lower_bound(karate_uc01, 4, seed=0) >= 4.0

    def test_lower_bounds_true_optimum_on_star(self):
        graph = star(8)
        bound = estimate_opt_lower_bound(graph, 1, seed=1)
        _, optimum = exact_optimal_seed_set(graph, 1)
        assert bound <= optimum + 1e-9

    def test_lower_bounds_oracle_optimum_on_karate(self, karate_uc01, karate_oracle):
        bound = estimate_opt_lower_bound(karate_uc01, 1, seed=2)
        best_single = karate_oracle.top_vertices(1)[0][1]
        # OPT_1 is the best single-vertex spread; the KPT bound must not
        # exceed it by more than estimation noise.
        assert bound <= 1.5 * best_single

    def test_deterministic_given_seed(self, karate_uc01):
        assert estimate_opt_lower_bound(karate_uc01, 2, seed=5) == estimate_opt_lower_bound(
            karate_uc01, 2, seed=5
        )

    def test_invalid_k(self, karate_uc01):
        with pytest.raises(InvalidParameterError):
            estimate_opt_lower_bound(karate_uc01, 0)


class TestDetermineTheta:
    def test_positive_integer(self, karate_uc01):
        theta = determine_theta(karate_uc01, 1, epsilon=0.3, seed=0)
        assert isinstance(theta, int)
        assert theta >= 1

    def test_smaller_epsilon_needs_more_samples(self, karate_uc01):
        loose = determine_theta(karate_uc01, 1, epsilon=0.5, opt_lower_bound=3.0)
        tight = determine_theta(karate_uc01, 1, epsilon=0.1, opt_lower_bound=3.0)
        assert tight > loose

    def test_larger_opt_needs_fewer_samples(self, karate_uc01):
        small_opt = determine_theta(karate_uc01, 1, epsilon=0.2, opt_lower_bound=1.0)
        large_opt = determine_theta(karate_uc01, 1, epsilon=0.2, opt_lower_bound=10.0)
        assert large_opt < small_opt

    def test_invalid_opt(self, karate_uc01):
        with pytest.raises(InvalidParameterError):
            determine_theta(karate_uc01, 1, opt_lower_bound=0.0)

    def test_worst_case_theta_far_above_empirical(self, karate_uc01):
        # The paper's Table 5 gap: the guaranteed theta dwarfs the few
        # thousand RR sets that suffice empirically on Karate.
        theta = determine_theta(karate_uc01, 1, epsilon=0.05, opt_lower_bound=3.4)
        assert theta > 4096


class TestAdaptiveRIS:
    def test_finds_star_centre(self):
        graph = star(10)
        outcome = AdaptiveRIS(epsilon=0.2, initial_theta=32, max_theta=2048).maximize(
            graph, 1, seed=0
        )
        assert outcome.result.seed_set == (0,)
        assert outcome.theta >= 32
        assert outcome.rounds >= 1
        assert len(outcome.trace) == outcome.rounds

    def test_respects_max_theta(self, karate_uc01):
        outcome = AdaptiveRIS(epsilon=0.01, initial_theta=16, max_theta=64).maximize(
            karate_uc01, 2, seed=1
        )
        assert outcome.theta <= 64

    def test_guarantee_reported_in_unit_interval(self, karate_uc01):
        outcome = AdaptiveRIS(epsilon=0.3, initial_theta=64, max_theta=1024).maximize(
            karate_uc01, 1, seed=2
        )
        assert 0.0 <= outcome.approximation_guarantee <= 1.0 + 1e-9

    def test_solution_quality_on_karate(self, karate_uc01, karate_oracle):
        outcome = AdaptiveRIS(epsilon=0.2, initial_theta=128, max_theta=8192).maximize(
            karate_uc01, 1, seed=3
        )
        best = karate_oracle.top_vertices(1)[0][1]
        assert karate_oracle.spread(outcome.result.seed_set) >= 0.85 * best

    def test_invalid_configuration(self):
        with pytest.raises(InvalidParameterError):
            AdaptiveRIS(epsilon=0.1, initial_theta=100, max_theta=10)


class TestAdaptiveSampleNumber:
    def test_deterministic_graph_converges_immediately(self):
        graph = star(6)
        oracle = RRPoolOracle(graph, pool_size=2000, seed=0)
        outcome = adaptive_sample_number(
            graph, 1, estimator_factory("snapshot"), oracle, initial_samples=1, max_samples=64
        )
        assert outcome.converged
        assert outcome.sample_number <= 4
        assert outcome.result.seed_set == (0,)

    def test_trace_scores_non_decreasing_within_tolerance(self, karate_uc01, karate_oracle):
        outcome = adaptive_sample_number(
            karate_uc01, 1, estimator_factory("snapshot"), karate_oracle,
            initial_samples=1, max_samples=256, relative_tolerance=0.02, seed=4,
        )
        assert outcome.sample_number <= 256
        assert len(outcome.trace) >= 2

    def test_budget_respected_without_convergence(self, karate_uc01, karate_oracle):
        outcome = adaptive_sample_number(
            karate_uc01, 1, estimator_factory("oneshot"), karate_oracle,
            initial_samples=1, max_samples=4, relative_tolerance=1e-9, seed=5,
        )
        assert outcome.sample_number <= 4

    def test_oneshot_gains_a_stopping_rule(self, karate_uc01, karate_oracle):
        # The paper's open direction: Oneshot with an automatically chosen
        # sample number reaches near-best quality on Karate.
        outcome = adaptive_sample_number(
            karate_uc01, 1, estimator_factory("oneshot"), karate_oracle,
            initial_samples=4, max_samples=512, relative_tolerance=0.02, seed=6,
        )
        best = karate_oracle.top_vertices(1)[0][1]
        assert karate_oracle.spread(outcome.result.seed_set) >= 0.8 * best

    def test_invalid_parameters(self, karate_uc01, karate_oracle):
        with pytest.raises(InvalidParameterError):
            adaptive_sample_number(
                karate_uc01, 1, estimator_factory("ris"), karate_oracle,
                initial_samples=10, max_samples=5,
            )
        with pytest.raises(InvalidParameterError):
            adaptive_sample_number(
                karate_uc01, 1, estimator_factory("ris"), karate_oracle,
                relative_tolerance=0.0,
            )
