"""Tests for the Oneshot (Monte-Carlo on demand) estimator."""

from __future__ import annotations

import pytest

from repro.algorithms.framework import greedy_maximize
from repro.algorithms.oneshot import OneshotEstimator
from repro.diffusion.exact import exact_spread
from repro.diffusion.random_source import RandomSource
from repro.exceptions import EstimatorStateError, InvalidParameterError


class TestProtocol:
    def test_estimate_before_build_raises(self):
        estimator = OneshotEstimator(4)
        with pytest.raises(EstimatorStateError):
            estimator.estimate((), 0)

    def test_invalid_sample_number(self):
        with pytest.raises(InvalidParameterError):
            OneshotEstimator(0)
        with pytest.raises(InvalidParameterError):
            OneshotEstimator(-3)

    def test_build_resets_costs(self, karate_uc01, rng):
        estimator = OneshotEstimator(8)
        estimator.build(karate_uc01, rng)
        estimator.estimate((), 0)
        assert estimator.estimate_cost.total > 0
        estimator.build(karate_uc01, rng)
        assert estimator.estimate_cost.total == 0

    def test_no_sample_storage(self, karate_uc01, rng):
        estimator = OneshotEstimator(8)
        estimator.build(karate_uc01, rng)
        estimator.estimate((), 0)
        assert estimator.sample_size.total == 0

    def test_build_cost_is_zero(self, karate_uc01, rng):
        estimator = OneshotEstimator(8)
        estimator.build(karate_uc01, rng)
        assert estimator.build_cost.total == 0

    def test_approach_label(self):
        assert OneshotEstimator(1).approach == "oneshot"
        assert OneshotEstimator(1).is_submodular is False


class TestEstimates:
    def test_deterministic_graph_exact(self, star_graph, rng):
        estimator = OneshotEstimator(3)
        estimator.build(star_graph, rng)
        assert estimator.estimate((), 0) == pytest.approx(6.0)
        assert estimator.estimate((), 2) == pytest.approx(1.0)

    def test_unbiased_on_diamond(self, probabilistic_diamond):
        estimator = OneshotEstimator(5000)
        estimator.build(probabilistic_diamond, RandomSource(2))
        estimate = estimator.estimate((), 0)
        assert estimate == pytest.approx(exact_spread(probabilistic_diamond, (0,)), rel=0.05)

    def test_estimate_includes_current_seeds(self, two_hubs_graph, rng):
        estimator = OneshotEstimator(4)
        estimator.build(two_hubs_graph, rng)
        # Estimating vertex 4 with seed 0 already chosen simulates from {0, 4}.
        assert estimator.estimate((0,), 4) == pytest.approx(7.0)

    def test_marginal_mode(self, two_hubs_graph, rng):
        estimator = OneshotEstimator(16, marginal=True)
        estimator.build(two_hubs_graph, rng)
        base = estimator.estimate((), 0)
        assert base == pytest.approx(4.0)
        estimator.update(0)
        marginal = estimator.estimate((0,), 4)
        assert marginal == pytest.approx(3.0)

    def test_traversal_cost_scales_with_samples(self, karate_uc01):
        few = OneshotEstimator(2)
        few.build(karate_uc01, RandomSource(0))
        few.estimate((), 0)
        many = OneshotEstimator(32)
        many.build(karate_uc01, RandomSource(0))
        many.estimate((), 0)
        assert many.estimate_cost.total > few.estimate_cost.total


class TestWithinGreedy:
    def test_finds_star_centre(self, star_graph):
        result = greedy_maximize(star_graph, 1, OneshotEstimator(4), seed=0)
        assert result.seed_set == (0,)

    def test_reasonable_karate_solution(self, karate_uc01, karate_oracle):
        result = greedy_maximize(karate_uc01, 1, OneshotEstimator(256), seed=1)
        best = karate_oracle.top_vertices(1)[0][1]
        assert karate_oracle.spread(result.seed_set) >= 0.8 * best

    def test_cost_report_in_result(self, karate_uc01):
        result = greedy_maximize(karate_uc01, 1, OneshotEstimator(4), seed=0)
        report = result.cost.as_dict()
        assert report["traversal_vertices"] > 0
        assert report["sample_vertices"] == 0
