"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.exceptions import InvalidParameterError


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_maximize_defaults(self):
        args = build_parser().parse_args(["maximize"])
        assert args.dataset == "karate"
        assert args.approach == "ris"
        assert args.seeds == 4

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["maximize", "--dataset", "not_a_graph"])

    def test_unknown_approach_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["maximize", "--approach", "magic"])

    def test_diffusion_defaults_to_ic(self):
        for command in ("stats", "maximize", "sweep", "traversal"):
            assert build_parser().parse_args([command]).diffusion == "ic"

    def test_unknown_diffusion_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["maximize", "--diffusion", "percolation"])


class TestStatsCommand:
    def test_single_dataset(self, capsys):
        assert main(["stats", "--dataset", "karate"]) == 0
        output = capsys.readouterr().out
        assert "karate" in output
        assert "34" in output

    def test_all_datasets(self, capsys):
        assert main(["stats", "--dataset", "all", "--scale", "0.1"]) == 0
        output = capsys.readouterr().out
        assert "ba_s" in output
        assert "soc_pokec" in output


class TestMaximizeCommand:
    def test_ris_on_karate(self, capsys):
        code = main(
            [
                "maximize", "--dataset", "karate", "--model", "uc0.1",
                "--approach", "ris", "--samples", "512", "-k", "2",
                "--pool-size", "2000",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "influence" in output
        assert "ris" in output

    def test_snapshot_on_star_like_dataset(self, capsys):
        code = main(
            [
                "maximize", "--dataset", "ba_s", "--model", "iwc", "--scale", "0.1",
                "--approach", "snapshot", "--samples", "8", "-k", "1",
                "--pool-size", "1000",
            ]
        )
        assert code == 0
        assert "snapshot" in capsys.readouterr().out


class TestSweepCommand:
    def test_small_sweep(self, capsys):
        code = main(
            [
                "sweep", "--dataset", "karate", "--model", "uc0.1",
                "--approach", "ris", "-k", "1", "--max-exponent", "4",
                "--trials", "5", "--pool-size", "2000",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "entropy" in output
        assert "mean_influence" in output
        assert "2^4" in output


class TestTraversalCommand:
    def test_karate_rows(self, capsys):
        code = main(
            ["traversal", "--dataset", "karate", "--model", "uc0.1", "--repetitions", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        for approach in ("oneshot", "snapshot", "ris"):
            assert approach in output


class TestDiffusionFlag:
    """``--diffusion lt`` runs end-to-end on every subcommand (karate, iwc)."""

    def test_stats_accepts_lt(self, capsys):
        assert main(["stats", "--dataset", "karate", "--diffusion", "lt"]) == 0
        assert "karate" in capsys.readouterr().out

    def test_maximize_under_lt(self, capsys):
        code = main(
            [
                "maximize", "--dataset", "karate", "--model", "iwc",
                "--diffusion", "lt", "--approach", "ris", "--samples", "128",
                "-k", "2", "--pool-size", "1000",
            ]
        )
        assert code == 0
        assert "ris" in capsys.readouterr().out

    def test_sweep_under_lt(self, capsys):
        code = main(
            [
                "sweep", "--dataset", "karate", "--model", "iwc",
                "--diffusion", "lt", "--approach", "snapshot", "-k", "1",
                "--max-exponent", "2", "--trials", "3", "--pool-size", "1000",
            ]
        )
        assert code == 0
        assert "entropy" in capsys.readouterr().out

    def test_traversal_under_lt(self, capsys):
        code = main(
            [
                "traversal", "--dataset", "karate", "--model", "iwc",
                "--diffusion", "lt", "--repetitions", "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        for approach in ("oneshot", "snapshot", "ris"):
            assert approach in output

    def test_infeasible_lt_weights_rejected_up_front(self):
        # uc0.1 on karate sums incoming weights above one on every hub, so
        # validation must fail before any sampling starts.
        with pytest.raises(InvalidParameterError, match="incoming weights"):
            main(
                [
                    "maximize", "--dataset", "karate", "--model", "uc0.1",
                    "--diffusion", "lt", "--samples", "16", "--pool-size", "100",
                ]
            )

    def test_lt_jobs_bit_identical(self, capsys):
        outputs = []
        for jobs in ("1", "4"):
            code = main(
                [
                    "maximize", "--dataset", "karate", "--model", "iwc",
                    "--diffusion", "lt", "--approach", "ris", "--samples", "64",
                    "-k", "2", "--pool-size", "500", "--jobs", jobs,
                ]
            )
            assert code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
