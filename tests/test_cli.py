"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_maximize_defaults(self):
        args = build_parser().parse_args(["maximize"])
        assert args.dataset == "karate"
        assert args.approach == "ris"
        assert args.seeds == 4

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["maximize", "--dataset", "not_a_graph"])

    def test_unknown_approach_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["maximize", "--approach", "magic"])


class TestStatsCommand:
    def test_single_dataset(self, capsys):
        assert main(["stats", "--dataset", "karate"]) == 0
        output = capsys.readouterr().out
        assert "karate" in output
        assert "34" in output

    def test_all_datasets(self, capsys):
        assert main(["stats", "--dataset", "all", "--scale", "0.1"]) == 0
        output = capsys.readouterr().out
        assert "ba_s" in output
        assert "soc_pokec" in output


class TestMaximizeCommand:
    def test_ris_on_karate(self, capsys):
        code = main(
            [
                "maximize", "--dataset", "karate", "--model", "uc0.1",
                "--approach", "ris", "--samples", "512", "-k", "2",
                "--pool-size", "2000",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "influence" in output
        assert "ris" in output

    def test_snapshot_on_star_like_dataset(self, capsys):
        code = main(
            [
                "maximize", "--dataset", "ba_s", "--model", "iwc", "--scale", "0.1",
                "--approach", "snapshot", "--samples", "8", "-k", "1",
                "--pool-size", "1000",
            ]
        )
        assert code == 0
        assert "snapshot" in capsys.readouterr().out


class TestSweepCommand:
    def test_small_sweep(self, capsys):
        code = main(
            [
                "sweep", "--dataset", "karate", "--model", "uc0.1",
                "--approach", "ris", "-k", "1", "--max-exponent", "4",
                "--trials", "5", "--pool-size", "2000",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "entropy" in output
        assert "mean_influence" in output
        assert "2^4" in output


class TestTraversalCommand:
    def test_karate_rows(self, capsys):
        code = main(
            ["traversal", "--dataset", "karate", "--model", "uc0.1", "--repetitions", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        for approach in ("oneshot", "snapshot", "ris"):
            assert approach in output
