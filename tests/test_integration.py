"""End-to-end integration tests: the paper's methodology on small instances.

Each test exercises a full vertical slice — dataset, probability model,
repeated trials across sample numbers, and an analysis step — and asserts the
paper's *qualitative* findings at reduced scale:

1. The seed-set distribution becomes degenerate and all three approaches share
   the same limit solution (Section 5.1).
2. The mean influence increases with the sample number and reaches
   near-optimality (Section 5.2).
3. RIS needs more (but much smaller) samples than Snapshot, and Snapshot needs
   no more samples than Oneshot (Section 5.2.3).
4. Per-sample traversal cost orders RIS < Snapshot < Oneshot (Section 5.3).
"""

from __future__ import annotations

import pytest

from repro import (
    RRPoolOracle,
    assign_probabilities,
    load_dataset,
    powers_of_two,
    sweep_sample_numbers,
)
from repro.experiments.comparison import median_comparable_number_ratio
from repro.experiments.convergence import least_sample_number, reference_spread_from_sweep
from repro.experiments.factories import estimator_factory
from repro.experiments.traversal import traversal_cost_table


@pytest.fixture(scope="module")
def karate_instance():
    graph = assign_probabilities(load_dataset("karate"), "uc0.1")
    oracle = RRPoolOracle(graph, pool_size=20_000, seed=11)
    return graph, oracle


@pytest.fixture(scope="module")
def karate_sweeps(karate_instance):
    graph, oracle = karate_instance
    grids = {
        "oneshot": powers_of_two(8),                    # 1 .. 256
        "snapshot": powers_of_two(8),                   # 1 .. 256
        "ris": powers_of_two(12, min_exponent=2),       # 4 .. 4096
    }
    sweeps = {}
    for approach, grid in grids.items():
        sweeps[approach] = sweep_sample_numbers(
            graph,
            1,
            estimator_factory(approach),
            grid,
            num_trials=30,
            oracle=oracle,
            experiment_seed=7,
        )
    return sweeps


class TestSeedSetDistributionConvergence:
    def test_entropy_decays_for_every_approach(self, karate_sweeps):
        for approach, sweep in karate_sweeps.items():
            entropies = sweep.entropies()
            first = entropies[sweep.sample_numbers[0]]
            last = entropies[sweep.sample_numbers[-1]]
            assert last < first, approach

    def test_limit_solutions_concentrate_on_top_vertices(self, karate_sweeps, karate_instance):
        # Karate uc0.1 (k=1) has two nearly tied top vertices (0 and 33), so
        # full entropy collapse to a single shared solution needs sample
        # numbers beyond this reduced sweep (the paper uses up to 2^16 / 2^24).
        # What must already hold is that every approach's modal solution is
        # dominant and drawn from the same top-2 candidates.
        _, oracle = karate_instance
        top_two = {(vertex,) for vertex, _ in oracle.top_vertices(2)}
        for approach, sweep in karate_sweeps.items():
            distribution = sweep.final_trial_set().seed_set_distribution()
            mode, probability = distribution.mode()
            assert probability >= 0.5, approach
            assert mode in top_two, approach

    def test_limit_solution_is_a_top_vertex(self, karate_sweeps, karate_instance):
        _, oracle = karate_instance
        top_vertices = {vertex for vertex, _ in oracle.top_vertices(3)}
        for sweep in karate_sweeps.values():
            mode, _ = sweep.final_trial_set().seed_set_distribution().mode()
            assert mode[0] in top_vertices


class TestInfluenceDistributionConvergence:
    def test_mean_influence_non_decreasing_overall(self, karate_sweeps):
        for sweep in karate_sweeps.values():
            means = sweep.mean_influences()
            assert means[sweep.sample_numbers[-1]] >= means[sweep.sample_numbers[0]] - 1e-9

    def test_near_optimal_sample_number_exists(self, karate_sweeps):
        for approach, sweep in karate_sweeps.items():
            reference = reference_spread_from_sweep(sweep)
            result = least_sample_number(sweep, reference, quality=0.9, probability=0.85)
            assert result.found, approach

    def test_final_distribution_tight(self, karate_sweeps):
        for sweep in karate_sweeps.values():
            final = sweep.influence_distributions()[sweep.sample_numbers[-1]]
            assert final.std <= 0.25 * final.mean


class TestComparableRatios:
    def test_snapshot_not_worse_than_oneshot(self, karate_sweeps):
        ratio = median_comparable_number_ratio(
            karate_sweeps["snapshot"], karate_sweeps["oneshot"]
        )
        # Paper Table 6 (karate, k=1): comparable ratio of Oneshot to Snapshot
        # is around 1-2, never below ~1/2.
        assert ratio is not None
        assert ratio >= 0.5

    def test_ris_needs_many_more_samples_than_snapshot(self, karate_sweeps):
        ratio = median_comparable_number_ratio(
            karate_sweeps["snapshot"], karate_sweeps["ris"]
        )
        # Paper Table 7 (karate uc0.1, k=1): ratio about 32.
        assert ratio is not None
        assert ratio >= 4.0


class TestTraversalCostOrdering:
    def test_per_sample_cost_ordering(self, karate_instance):
        graph, _ = karate_instance
        rows = traversal_cost_table(
            graph,
            {name: estimator_factory(name) for name in ("oneshot", "snapshot", "ris")},
            k=1,
            num_samples=1,
            num_repetitions=5,
        )
        totals = {row.approach: row.total_cost for row in rows}
        assert totals["ris"] < totals["snapshot"] < totals["oneshot"]


class TestPublicApiSurface:
    def test_star_quickstart(self):
        from repro import RISEstimator, greedy_maximize
        from repro.graphs.generators import star

        graph = star(10)
        result = greedy_maximize(graph, 1, RISEstimator(256), seed=0)
        assert result.seed_set == (0,)

    def test_version_exported(self):
        import repro

        assert repro.__version__ == "1.0.0"
