"""Toolchain gates: ruff and mypy must pass with the committed config.

These run wherever the tools are installed (the CI lint job installs both);
on a bare box without them the tests skip rather than fail, keeping the
tier-1 suite dependency-light.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def _tool_missing(module: str) -> bool:
    return importlib.util.find_spec(module) is None


@pytest.mark.skipif(_tool_missing("ruff"), reason="ruff not installed")
def test_ruff_check_passes():
    result = subprocess.run(
        [sys.executable, "-m", "ruff", "check", "src", "tests", "benchmarks", "examples"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.skipif(_tool_missing("mypy"), reason="mypy not installed")
def test_mypy_contract_layers_pass():
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "src/repro/api", "src/repro/obs", "src/repro/lint"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr
