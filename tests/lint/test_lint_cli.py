"""CLI contract: exit codes 0/1/2, formats, rule selection, entry points."""

from __future__ import annotations

import io
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    parse_report,
)
from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def run_cli(*argv: str) -> tuple[int, str, str]:
    out, err = io.StringIO(), io.StringIO()
    code = main(list(argv), stdout=out, stderr=err)
    return code, out.getvalue(), err.getvalue()


class TestExitCodes:
    def test_clean_file_exits_zero(self):
        code, out, _ = run_cli(str(FIXTURES / "tme001_clean.py"))
        assert code == EXIT_CLEAN
        assert "no findings" in out

    def test_findings_exit_one(self):
        code, out, _ = run_cli(str(FIXTURES / "tme001_violation.py"))
        assert code == EXIT_FINDINGS
        assert "TME001" in out

    def test_missing_path_exits_two(self):
        code, _, err = run_cli("definitely/not/here.py")
        assert code == EXIT_USAGE
        assert "no such file" in err

    def test_unknown_rule_exits_two(self):
        code, _, err = run_cli("--rules", "NOPE999", str(FIXTURES))
        assert code == EXIT_USAGE
        assert "NOPE999" in err

    def test_bad_flag_exits_two(self, capsys):
        assert main(["--format", "xml", str(FIXTURES)]) == EXIT_USAGE
        capsys.readouterr()  # swallow argparse's stderr output


class TestSelectionAndFormats:
    def test_rules_selection_comma_and_repeat(self):
        target = str(FIXTURES / "tme001_violation.py")
        code, out, _ = run_cli("--rules", "RNG001,ORD001", target)
        assert (code, "TME001" in out) == (EXIT_CLEAN, False)
        code, out, _ = run_cli("--rules", "RNG001", "--rules", "TME001", target)
        assert code == EXIT_FINDINGS
        assert "TME001" in out

    def test_json_format_round_trips(self):
        code, out, _ = run_cli("--format", "json", str(FIXTURES / "tme001_violation.py"))
        assert code == EXIT_FINDINGS
        findings = parse_report(out)
        assert {finding.rule for finding in findings} == {"TME001"}
        assert len(findings) == 2

    def test_list_rules(self):
        code, out, _ = run_cli("--list-rules")
        assert code == EXIT_CLEAN
        for rule_id in ("RNG001", "RNG002", "ORD001", "PKL001", "TEL001", "SPEC001", "TME001"):
            assert rule_id in out
        assert "PAR001" in out  # framework findings documented too


class TestEntryPoints:
    def test_python_dash_m_runs_without_numpy(self):
        # ``python -m repro.lint`` must work in a bare interpreter: assert
        # the whole run never imports numpy.
        script = (
            "import sys, runpy\n"
            f"sys.argv = ['repro.lint', {str(FIXTURES / 'tme001_clean.py')!r}]\n"
            "try:\n"
            "    runpy.run_module('repro.lint', run_name='__main__')\n"
            "except SystemExit as exit_:\n"
            "    assert exit_.code == 0, exit_.code\n"
            "assert 'numpy' not in sys.modules, 'lint pulled in numpy'\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert result.returncode == 0, result.stderr

    def test_python_dash_m_exit_code_on_findings(self):
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.lint",
                str(FIXTURES / "tme001_violation.py"),
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert result.returncode == EXIT_FINDINGS
        assert "TME001" in result.stdout

    def test_repro_cli_lint_subcommand(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint", str(FIXTURES / "tme001_clean.py")]) == EXIT_CLEAN
        assert repro_main(["lint", str(FIXTURES / "tme001_violation.py")]) == EXIT_FINDINGS
        captured = capsys.readouterr()
        assert "TME001" in captured.out

    def test_repro_cli_help_mentions_lint(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        assert "lint" in capsys.readouterr().out


class TestGraphAndCache:
    def test_graph_imports_json(self):
        code, out, _ = run_cli(
            "--graph", "imports", str(REPO_ROOT / "src" / "repro" / "lint")
        )
        assert code == EXIT_CLEAN
        import json

        document = json.loads(out)
        assert document["version"] == 1
        assert "repro.lint.walker" in document["modules"]

    def test_graph_imports_dot(self):
        code, out, _ = run_cli(
            "--graph", "imports", "--format", "dot",
            str(REPO_ROOT / "src" / "repro" / "lint"),
        )
        assert code == EXIT_CLEAN
        assert out.startswith("digraph imports {")

    def test_graph_rejects_text_format(self):
        code, _, err = run_cli(
            "--graph", "imports", "--format", "text",
            str(FIXTURES / "tme001_clean.py"),
        )
        assert code == EXIT_USAGE
        assert "json or dot" in err

    def test_dot_without_graph_is_usage_error(self):
        code, _, err = run_cli(
            "--format", "dot", str(FIXTURES / "tme001_clean.py")
        )
        assert code == EXIT_USAGE
        assert "--graph" in err

    def test_cache_stats_in_json_report(self, tmp_path):
        cache_dir = tmp_path / "cache"
        target = str(FIXTURES / "tme001_clean.py")
        import json

        _, first, _ = run_cli(
            "--format", "json", "--cache-dir", str(cache_dir), target
        )
        _, second, _ = run_cli(
            "--format", "json", "--cache-dir", str(cache_dir), target
        )
        cold = json.loads(first)["stats"]
        warm = json.loads(second)["stats"]
        assert cold["cache_enabled"] and warm["cache_enabled"]
        assert cold["cache_misses"] == 1
        assert warm["cache_hits"] == 1

    def test_list_rules_marks_project_rules(self):
        code, out, _ = run_cli("--list-rules")
        assert code == EXIT_CLEAN
        for rule_id in ("IMP001", "CTX001", "EXP001"):
            line = next(l for l in out.splitlines() if l.startswith(rule_id))
            assert "[project]" in line
