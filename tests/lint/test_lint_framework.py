"""Framework-level behaviour: registry, suppressions, walker, parse errors."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import (
    BUILTIN_RULE_IDS,
    LintError,
    LintRule,
    available_rules,
    collect_files,
    collect_suppressions,
    get_rule,
    lint_paths,
    register_rule,
)
from repro.lint.registry import _REGISTRY

FIXTURES = Path(__file__).resolve().parent / "fixtures"


class _StubRule(LintRule):
    rule_id = "XTEST01"
    summary = "test stub"

    def check(self, module):
        yield self.finding(module, (1, 0), "stub finding")


class TestRegistry:
    def test_builtin_rules_all_registered(self):
        assert BUILTIN_RULE_IDS <= set(available_rules())

    def test_rejects_non_rule_instances(self):
        with pytest.raises(TypeError, match="LintRule or ProjectRule instance"):
            register_rule(object())  # type: ignore[arg-type]

    def test_rejects_empty_rule_id(self):
        class Nameless(_StubRule):
            rule_id = ""

        with pytest.raises(ValueError, match="non-empty rule_id"):
            register_rule(Nameless())

    def test_rejects_framework_ids(self):
        class Reserved(_StubRule):
            rule_id = "SUP001"

        with pytest.raises(ValueError, match="reserved"):
            register_rule(Reserved())

    def test_builtin_rules_cannot_be_replaced(self):
        class Impostor(_StubRule):
            rule_id = "RNG001"

        with pytest.raises(ValueError, match="cannot be replaced"):
            register_rule(Impostor(), overwrite=True)

    def test_rejects_unknown_severity(self):
        class Odd(_StubRule):
            severity = "fatal"

        with pytest.raises(ValueError, match="unknown severity"):
            register_rule(Odd())

    def test_unknown_rule_lookup_names_available(self):
        with pytest.raises(KeyError, match="RNG001"):
            get_rule("NOPE999")

    def test_third_party_registration_and_selection(self, tmp_path):
        target = tmp_path / "anything.py"
        target.write_text("x = 1\n", encoding="utf-8")
        try:
            register_rule(_StubRule())
            # Duplicate registration needs the explicit overwrite flag.
            with pytest.raises(ValueError, match="overwrite=True"):
                register_rule(_StubRule())
            register_rule(_StubRule(), overwrite=True)
            findings = lint_paths([target], rules=["XTEST01"])
            assert [finding.rule for finding in findings] == ["XTEST01"]
        finally:
            _REGISTRY.pop("XTEST01", None)


class TestSuppressions:
    def test_comment_parsing_finds_rule_ids(self):
        text = "x = 1  # repro-lint: allow[RNG001, ORD001] reason\n"
        parsed = collect_suppressions(text)
        assert [(s.line, s.rule_id) for s in parsed] == [
            (1, "RNG001"),
            (1, "ORD001"),
        ]

    def test_suppression_inside_string_is_not_parsed(self):
        text = 'x = "# repro-lint: allow[RNG001]"\n'
        assert collect_suppressions(text) == []

    def test_unused_suppression_reported(self, tmp_path):
        target = tmp_path / "unused.py"
        target.write_text(
            "value = 1  # repro-lint: allow[TME001] nothing to silence\n",
            encoding="utf-8",
        )
        findings = lint_paths([target])
        assert [finding.rule for finding in findings] == ["SUP001"]
        assert "unused suppression" in findings[0].message
        assert findings[0].severity == "warning"

    def test_unknown_rule_suppression_reported(self, tmp_path):
        target = tmp_path / "unknown.py"
        target.write_text(
            "value = 1  # repro-lint: allow[BOGUS42]\n", encoding="utf-8"
        )
        findings = lint_paths([target])
        assert [finding.rule for finding in findings] == ["SUP001"]
        assert "unknown rule" in findings[0].message

    def test_deselected_rule_suppression_left_alone(self, tmp_path):
        target = tmp_path / "deselected.py"
        target.write_text(
            "import time\n"
            "t = time.time()  # repro-lint: allow[TME001] legit elsewhere\n",
            encoding="utf-8",
        )
        # TME001 not selected: its suppression cannot be judged, no SUP001.
        assert lint_paths([target], rules=["RNG001"]) == []


class TestWalker:
    def test_missing_path_is_usage_error(self):
        with pytest.raises(LintError, match="no such file"):
            lint_paths(["definitely/not/here.py"])

    def test_unknown_rule_id_is_usage_error(self):
        with pytest.raises(LintError, match="NOPE999"):
            lint_paths([FIXTURES], rules=["NOPE999"])

    def test_empty_rule_selection_is_usage_error(self):
        with pytest.raises(LintError, match="no rules"):
            lint_paths([FIXTURES], rules=[])

    def test_collect_files_sorted_and_deduplicated(self, tmp_path):
        (tmp_path / "b.py").write_text("b = 1\n", encoding="utf-8")
        (tmp_path / "a.py").write_text("a = 1\n", encoding="utf-8")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "c.py").write_text("c = 1\n", encoding="utf-8")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("", encoding="utf-8")
        files = collect_files([tmp_path, tmp_path / "a.py"])
        assert [path.name for path in files] == ["a.py", "b.py", "c.py"]

    def test_syntax_error_becomes_par001(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n", encoding="utf-8")
        findings = lint_paths([target])
        assert [finding.rule for finding in findings] == ["PAR001"]
        assert "does not parse" in findings[0].message

    def test_findings_sorted_by_location(self):
        findings = lint_paths([FIXTURES / "rng001_violation.py"])
        assert findings == sorted(findings)


class TestFileAllow:
    def test_violation_fixture_fires_twice(self):
        findings = lint_paths([FIXTURES / "fileallow_violation.py"], rules=["TME001"])
        assert [finding.rule for finding in findings] == ["TME001", "TME001"]

    def test_docstring_block_file_allow_silences_whole_file(self):
        findings = lint_paths([FIXTURES / "fileallow_suppressed.py"], rules=["TME001"])
        assert findings == []

    def test_clean_fixture_stays_clean(self):
        findings = lint_paths([FIXTURES / "fileallow_clean.py"], rules=["TME001"])
        assert findings == []

    def test_misplaced_file_allow_is_flagged_and_ignored(self):
        findings = lint_paths([FIXTURES / "fileallow_misplaced.py"], rules=["TME001"])
        assert [finding.rule for finding in findings] == ["SUP001", "TME001"]
        assert "docstring block" in findings[0].message

    def test_unused_file_allow_is_flagged(self, tmp_path):
        target = tmp_path / "unused.py"
        target.write_text(
            '"""Docstring."""\n'
            "# repro-lint: file-allow[TME001] nothing here reads the clock\n"
            "value = 1\n",
            encoding="utf-8",
        )
        findings = lint_paths([target])
        assert [finding.rule for finding in findings] == ["SUP001"]
        assert "did not fire in this file" in findings[0].message


class TestStandaloneAllow:
    def test_standalone_comment_covers_next_code_line(self, tmp_path):
        target = tmp_path / "standalone.py"
        target.write_text(
            "import time\n"
            "# repro-lint: allow[TME001] the reason would not fit inline\n"
            "t = time.time()\n",
            encoding="utf-8",
        )
        assert lint_paths([target], rules=["TME001"]) == []

    def test_standalone_comment_block_covers_one_statement_only(self, tmp_path):
        target = tmp_path / "standalone.py"
        target.write_text(
            "import time\n"
            "# repro-lint: allow[TME001] covers only the next line\n"
            "t = time.time()\n"
            "u = time.time()\n",
            encoding="utf-8",
        )
        findings = lint_paths([target], rules=["TME001"])
        assert [finding.line for finding in findings] == [4]


class TestParseErrorOffsets:
    def test_par001_fixture_pins_line_and_column(self):
        findings = lint_paths([FIXTURES / "par001_offset.py"])
        assert len(findings) == 1
        finding = findings[0]
        assert (finding.rule, finding.line, finding.column) == ("PAR001", 4, 10)
        assert "line 4, column 10" in finding.message

    def test_par001_render_includes_column(self):
        finding = lint_paths([FIXTURES / "par001_offset.py"])[0]
        assert finding.render().split(" ")[0].endswith("par001_offset.py:4:10:")
