"""[tool.repro-lint] config loading: discovery, validation, precedence."""

from __future__ import annotations

import io
from pathlib import Path

import pytest

from repro.lint import (
    DEFAULT_SEAMS,
    EXIT_CLEAN,
    EXIT_USAGE,
    LintError,
    load_config,
    run_lint,
)
from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def _write_pyproject(tmp_path: Path, body: str) -> Path:
    target = tmp_path / "pyproject.toml"
    target.write_text(body, encoding="utf-8")
    return target


class TestLoadConfig:
    def test_defaults_without_pyproject(self, tmp_path):
        config = load_config(tmp_path)
        assert config.select is None
        assert config.exclude == ()
        assert config.layers == {}
        assert config.seams == DEFAULT_SEAMS
        assert config.source is None

    def test_parses_all_known_keys(self, tmp_path):
        _write_pyproject(
            tmp_path,
            '[tool.repro-lint]\n'
            'select = ["RNG001"]\n'
            'exclude = ["vendored"]\n'
            'seams = ["rng"]\n'
            '[tool.repro-lint.layers]\n'
            '"pkg.lint" = []\n'
            '"pkg.obs" = ["pkg.lint"]\n',
        )
        config = load_config(tmp_path)
        assert config.select == ("RNG001",)
        assert config.exclude == ("vendored",)
        assert config.seams == ("rng",)
        assert config.layers == {"pkg.lint": (), "pkg.obs": ("pkg.lint",)}
        assert config.source is not None

    def test_discovery_walks_upward(self, tmp_path):
        _write_pyproject(tmp_path, '[tool.repro-lint]\nseams = ["rng"]\n')
        nested = tmp_path / "deep" / "deeper"
        nested.mkdir(parents=True)
        assert load_config(nested).seams == ("rng",)

    def test_pyproject_without_table_gives_defaults(self, tmp_path):
        _write_pyproject(tmp_path, '[tool.other]\nx = 1\n')
        assert load_config(tmp_path).seams == DEFAULT_SEAMS

    def test_unknown_key_is_usage_error(self, tmp_path):
        _write_pyproject(tmp_path, '[tool.repro-lint]\nselct = ["RNG001"]\n')
        with pytest.raises(LintError, match="unknown .* selct"):
            load_config(tmp_path)

    def test_bad_value_shape_is_usage_error(self, tmp_path):
        _write_pyproject(tmp_path, '[tool.repro-lint]\nselect = "RNG001"\n')
        with pytest.raises(LintError, match="list of strings"):
            load_config(tmp_path)

    def test_bad_layers_shape_is_usage_error(self, tmp_path):
        _write_pyproject(
            tmp_path, '[tool.repro-lint]\nlayers = ["pkg.lint"]\n'
        )
        with pytest.raises(LintError, match="layers"):
            load_config(tmp_path)

    def test_explicit_missing_file_is_usage_error(self, tmp_path):
        with pytest.raises(LintError, match="not found"):
            load_config(explicit=tmp_path / "nope.toml")


class TestPrecedence:
    def test_config_select_narrows_default_rules(self, tmp_path):
        _write_pyproject(tmp_path, '[tool.repro-lint]\nselect = ["RNG001"]\n')
        target = tmp_path / "clocky.py"
        target.write_text("import time\nt = time.time()\n", encoding="utf-8")
        # TME001 deselected by config: the wall-clock read sails through.
        assert run_lint([target]).findings == []

    def test_cli_rules_flag_beats_config_select(self, tmp_path):
        _write_pyproject(tmp_path, '[tool.repro-lint]\nselect = ["RNG001"]\n')
        target = tmp_path / "clocky.py"
        target.write_text("import time\nt = time.time()\n", encoding="utf-8")
        findings = run_lint([target], rules=["TME001"]).findings
        assert [f.rule for f in findings] == ["TME001"]

    def test_config_exclude_skips_fragment(self, tmp_path):
        _write_pyproject(tmp_path, '[tool.repro-lint]\nexclude = ["vendored"]\n')
        vendored = tmp_path / "vendored"
        vendored.mkdir()
        (vendored / "clocky.py").write_text(
            "import time\nt = time.time()\n", encoding="utf-8"
        )
        (tmp_path / "own.py").write_text(
            "import time\nt = time.time()\n", encoding="utf-8"
        )
        findings = run_lint([tmp_path]).findings
        assert [Path(f.path).name for f in findings] == ["own.py"]


class TestCliConfigFlags:
    def _violation(self, tmp_path: Path) -> Path:
        target = tmp_path / "clocky.py"
        target.write_text("import time\nt = time.time()\n", encoding="utf-8")
        return target

    def test_no_config_ignores_pyproject(self, tmp_path):
        _write_pyproject(tmp_path, '[tool.repro-lint]\nselect = ["RNG001"]\n')
        target = self._violation(tmp_path)
        out = io.StringIO()
        assert main([str(target)], stdout=out) == EXIT_CLEAN
        assert main(["--no-config", str(target)], stdout=out) == 1

    def test_explicit_config_flag(self, tmp_path):
        pyproject = _write_pyproject(
            tmp_path, '[tool.repro-lint]\nselect = ["RNG001"]\n'
        )
        elsewhere = tmp_path / "elsewhere"
        elsewhere.mkdir()
        target = self._violation(elsewhere)
        out = io.StringIO()
        assert main(
            ["--config", str(pyproject), str(target)], stdout=out
        ) == EXIT_CLEAN

    def test_missing_explicit_config_exits_two(self, tmp_path):
        target = self._violation(tmp_path)
        err = io.StringIO()
        code = main(
            ["--config", str(tmp_path / "nope.toml"), str(target)],
            stdout=io.StringIO(),
            stderr=err,
        )
        assert code == EXIT_USAGE
        assert "not found" in err.getvalue()

    def test_unknown_config_key_exits_two(self, tmp_path):
        _write_pyproject(tmp_path, '[tool.repro-lint]\nbogus = 1\n')
        target = self._violation(tmp_path)
        err = io.StringIO()
        code = main([str(target)], stdout=io.StringIO(), stderr=err)
        assert code == EXIT_USAGE
        assert "bogus" in err.getvalue()
