"""Regression pins for the determinism bugs the linter's first self-run found.

Each fixed site is pinned twice: behaviourally here, and statically by the
self-clean gate (reverting a fix re-fires ORD001 in
``tests/lint/test_self_clean.py``).
"""

from __future__ import annotations

import math

from repro.experiments.seed_distribution import SeedSetDistribution
from repro.graphs.generators import barabasi_albert, directed_scale_free
from repro.graphs.sketches import exact_descendant_counts, pruned_bfs_counts
from repro.diffusion.random_source import RandomSource
from repro.diffusion.snapshots import sample_snapshot
from repro.graphs.probability import assign_probabilities


def _distribution(counts: dict[tuple[int, ...], int]) -> SeedSetDistribution:
    total = sum(counts.values())
    return SeedSetDistribution(counts=counts, num_trials=total)


class TestTotalVariationDistance:
    """TVD accumulates floats over the union support in sorted order."""

    def test_known_value(self):
        a = _distribution({(0,): 3, (1,): 1})
        b = _distribution({(0,): 1, (2,): 3})
        # |3/4 - 1/4| + |1/4 - 0| + |0 - 3/4| = 0.5 + 0.25 + 0.75 = 1.5
        assert a.total_variation_distance(b) == 0.75

    def test_symmetry_and_identity(self):
        a = _distribution({(0, 3): 2, (1, 2): 5, (4, 7): 3})
        b = _distribution({(1, 2): 4, (5, 6): 6})
        assert a.total_variation_distance(b) == b.total_variation_distance(a)
        assert a.total_variation_distance(a) == 0.0

    def test_matches_sorted_fsum(self):
        a = _distribution({(i,): i + 1 for i in range(37)})
        b = _distribution({(i,): 38 - i for i in range(5, 42)})
        support = sorted(set(a.counts) | set(b.counts))
        expected = math.fsum(
            abs(a.probability(s) - b.probability(s)) for s in support
        ) / 2.0
        assert abs(a.total_variation_distance(b) - expected) < 1e-15


#: Post-fix edge-list pins (length, position-weighted checksum mod 1e9+7).
BA_EDGES, BA_SUM = 174, 28397256
DSF_EDGES, DSF_SUM = 308, 204109180


class TestGeneratorEdgeOrder:
    """Generated edge lists are a deterministic function of the seed alone.

    The checksums pin the post-fix byte-exact edge sequence: they fail both
    on a revert to set-order emission and on any accidental cross-version
    drift in the generation path.
    """

    @staticmethod
    def _checksum(graph) -> tuple[int, int]:
        sources, targets, _ = graph.edge_arrays()
        n = graph.num_vertices
        total = sum(
            (i + 1) * (int(u) * n + int(v))
            for i, (u, v) in enumerate(zip(sources, targets))
        )
        return len(sources), total % 1_000_000_007

    def test_barabasi_albert_edge_list_pinned(self):
        assert self._checksum(barabasi_albert(60, 3, seed=11)) == (BA_EDGES, BA_SUM)

    def test_directed_scale_free_edge_list_pinned(self):
        graph = directed_scale_free(80, average_out_degree=4.0, seed=5)
        assert self._checksum(graph) == (DSF_EDGES, DSF_SUM)

    def test_generation_is_repeatable(self):
        first = barabasi_albert(40, 2, seed=3)
        second = barabasi_albert(40, 2, seed=3)
        assert [tuple(a.tolist()) for a in first.edge_arrays()] == [
            tuple(a.tolist()) for a in second.edge_arrays()
        ]


class TestSketchHubOrder:
    """Hub processing order is sorted; estimates stay hub-order independent."""

    def test_estimates_repeatable_and_bounded_by_exact(self):
        graph = assign_probabilities(directed_scale_free(60, 3.0, seed=2), "uc0.3")
        snapshot = sample_snapshot(graph, RandomSource(9))
        first = pruned_bfs_counts(snapshot, hub_count=6)
        second = pruned_bfs_counts(snapshot, hub_count=6)
        assert first.tolist() == second.tolist()
        exact = exact_descendant_counts(snapshot)
        assert exact.shape == first.shape
        # Pruned counts are upper bounds on the exact counts, capped at n.
        assert all(
            exact[v] <= first[v] <= snapshot.num_vertices for v in range(60)
        )
