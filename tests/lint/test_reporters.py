"""Reporter contract: text rendering and the JSON schema round-trip."""

from __future__ import annotations

import json

import pytest

from repro.lint import (
    Finding,
    JSON_REPORT_VERSION,
    parse_report,
    render_json,
    render_text,
)

SAMPLE = [
    Finding(
        path="src/repro/x.py",
        line=3,
        column=4,
        rule="RNG001",
        message="ambient randomness",
    ),
    Finding(
        path="src/repro/y.py",
        line=9,
        column=0,
        rule="SUP001",
        message="unused suppression",
        severity="warning",
    ),
]


class TestTextReporter:
    def test_no_findings(self):
        assert render_text([]) == "repro lint: no findings\n"

    def test_lines_and_summary(self):
        text = render_text(SAMPLE)
        assert "src/repro/x.py:3:4: RNG001 ambient randomness" in text
        assert text.endswith("repro lint: 1 error(s), 1 warning(s)\n")


class TestJsonReporter:
    def test_round_trip(self):
        assert parse_report(render_json(SAMPLE)) == SAMPLE

    def test_round_trip_preserves_severity(self):
        restored = parse_report(render_json(SAMPLE))
        assert [finding.severity for finding in restored] == ["error", "warning"]

    def test_document_shape(self):
        document = json.loads(render_json(SAMPLE))
        assert document["version"] == JSON_REPORT_VERSION
        assert document["counts"] == {"RNG001": 1, "SUP001": 1}
        assert {record["rule"] for record in document["findings"]} == {
            "RNG001",
            "SUP001",
        }

    def test_unsupported_version_rejected(self):
        document = json.loads(render_json(SAMPLE))
        document["version"] = 99
        with pytest.raises(ValueError, match="version"):
            parse_report(json.dumps(document))


class TestFindingRecord:
    def test_unknown_key_rejected(self):
        record = SAMPLE[0].to_dict()
        record["surprise"] = True
        with pytest.raises(ValueError, match="surprise"):
            Finding.from_dict(record)

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Finding(path="p", line=1, column=0, rule="R", message="m", severity="nope")

    def test_ordering_is_by_location_then_rule(self):
        shuffled = sorted(SAMPLE, reverse=True)
        assert sorted(shuffled) == SAMPLE


class TestParseErrorReporting:
    """PAR001 carries the syntax error's line and column in both formats."""

    def _par001_finding(self):
        from pathlib import Path

        from repro.lint import lint_paths

        fixture = Path(__file__).resolve().parent / "fixtures" / "par001_offset.py"
        return lint_paths([fixture])[0]

    def test_text_report_includes_column(self):
        finding = self._par001_finding()
        assert ":4:10: PAR001" in render_text([finding])

    def test_json_report_round_trips_column(self):
        finding = self._par001_finding()
        document = json.loads(render_json([finding]))
        (record,) = document["findings"]
        assert (record["line"], record["column"]) == (4, 10)
        assert parse_report(render_json([finding])) == [finding]


class TestStatsEmbedding:
    def test_stats_key_present_and_ignored_by_parse(self):
        stats = {"files": 2, "cache_enabled": False}
        text = render_json(SAMPLE, stats=stats)
        document = json.loads(text)
        assert document["stats"] == stats
        assert parse_report(text) == SAMPLE

    def test_stats_absent_by_default(self):
        assert "stats" not in json.loads(render_json(SAMPLE))
