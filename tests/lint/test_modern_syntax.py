"""Modern-syntax robustness: match statements and PEP 695 constructs.

The linter must parse current-Python syntax without spurious findings —
``match`` statements everywhere, and on 3.12+ the PEP 695 ``type`` alias
statement and inline generic parameters.
"""

from __future__ import annotations

import ast
import sys

import pytest

from repro.lint import LintConfig, run_lint, summarize_module

MATCH_SOURCE = '''\
"""Module using structural pattern matching."""


def dispatch(command, *, rng=None):
    match command:
        case {"kind": "roll", "sides": sides}:
            return int(rng.integers(sides)) if rng is not None else sides
        case [first, *rest]:
            return (first, len(rest))
        case str() as name:
            return name
        case _:
            return None
'''

PEP695_SOURCE = '''\
"""Module using PEP 695 type statements and inline generics."""

type Pair = tuple[int, int]


class Box[T]:
    def __init__(self, item: T) -> None:
        self.item = item


def first[T](items: list[T]) -> T:
    return items[0]
'''


def _lint_source(tmp_path, source):
    target = tmp_path / "modern.py"
    target.write_text(source, encoding="utf-8")
    return run_lint([target], config=LintConfig()).findings


def test_match_statement_lints_clean(tmp_path):
    assert _lint_source(tmp_path, MATCH_SOURCE) == []


def test_match_statement_summary_sees_the_function(tmp_path):
    summary = summarize_module(
        ast.parse(MATCH_SOURCE),
        module_name="modern",
        display_path="modern.py",
        is_package=False,
    )
    info = summary.functions["dispatch"]
    assert "rng" in info.parameters


@pytest.mark.skipif(
    sys.version_info < (3, 12), reason="PEP 695 syntax needs Python 3.12+"
)
def test_pep695_lints_clean(tmp_path):
    assert _lint_source(tmp_path, PEP695_SOURCE) == []


@pytest.mark.skipif(
    sys.version_info < (3, 12), reason="PEP 695 syntax needs Python 3.12+"
)
def test_pep695_summary_records_symbols(tmp_path):
    summary = summarize_module(
        ast.parse(PEP695_SOURCE),
        module_name="modern",
        display_path="modern.py",
        is_package=False,
    )
    assert "Box" in summary.symbols
    qualnames = set(summary.functions)
    assert {"Box.__init__", "first"} <= qualnames


@pytest.mark.skipif(
    sys.version_info >= (3, 12),
    reason="on 3.11 PEP 695 must fail as a clean PAR001, not crash",
)
def test_pep695_on_old_python_is_par001(tmp_path):
    target = tmp_path / "modern.py"
    target.write_text(PEP695_SOURCE, encoding="utf-8")
    findings = run_lint([target], config=LintConfig()).findings
    assert [f.rule for f in findings] == ["PAR001"]
