"""Whole-program analysis core: summaries, import graph, call graph, dumps."""

from __future__ import annotations

import ast
import json
import time
from pathlib import Path

from repro.lint import LintConfig, ModuleSummary, analyze_paths, run_lint, summarize_module
from repro.lint.project import (
    ProjectAnalysis,
    module_name_for_path,
    render_import_graph_dot,
    render_import_graph_json,
)

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _summary(name: str, source: str, *, is_package: bool = False) -> ModuleSummary:
    return summarize_module(
        ast.parse(source),
        module_name=name,
        display_path=name.replace(".", "/") + ".py",
        is_package=is_package,
    )


def _analysis(sources: dict[str, str], **packages) -> ProjectAnalysis:
    summaries = {
        name: _summary(name, source, is_package=packages.get(name, False))
        for name, source in sources.items()
    }
    return ProjectAnalysis(summaries)


class TestModuleNames:
    def test_source_file_inside_package(self):
        assert module_name_for_path(SRC / "lint" / "walker.py") == "repro.lint.walker"

    def test_package_init_maps_to_package(self):
        assert module_name_for_path(SRC / "lint" / "__init__.py") == "repro.lint"

    def test_bare_file_outside_package(self, tmp_path):
        target = tmp_path / "loose.py"
        target.write_text("x = 1\n", encoding="utf-8")
        assert module_name_for_path(target) == "loose"


class TestSummaries:
    def test_imports_and_aliases(self):
        summary = _summary(
            "pkg.mod",
            "import numpy as np\n"
            "from pkg import other\n"
            "from . import sibling\n",
        )
        targets = sorted(record.target for record in summary.imports)
        assert targets == ["numpy", "pkg", "pkg"]
        assert summary.aliases["np"] == "numpy"
        assert summary.aliases["other"] == "pkg.other"
        assert summary.aliases["sibling"] == "pkg.sibling"

    def test_function_local_imports_are_collected(self):
        summary = _summary(
            "pkg.mod",
            "def late():\n    import numpy\n    return numpy\n",
        )
        assert [record.target for record in summary.imports] == ["numpy"]

    def test_dunder_all_with_exports_star(self):
        summary = _summary(
            "pkg",
            '_EXPORTS = {"alpha": "impl", "beta": "impl"}\n'
            '__all__ = ["gamma", *_EXPORTS]\n'
            "gamma = 3\n",
            is_package=True,
        )
        assert summary.dunder_all is not None
        assert sorted(name for name, _ in summary.dunder_all) == [
            "alpha",
            "beta",
            "gamma",
        ]
        assert sorted(summary.exports) == ["alpha", "beta"]

    def test_functions_methods_and_calls(self):
        summary = _summary(
            "pkg.mod",
            "def helper(x, *, rng=None):\n"
            "    return x\n"
            "class Thing:\n"
            "    def method(self, *, rng=None):\n"
            "        return helper(1, rng=rng)\n",
        )
        names = sorted(summary.functions)
        assert names == ["Thing.method", "helper"]
        method = summary.functions["Thing.method"]
        assert method.is_method
        assert [call.callee for call in method.calls] == ["helper"]
        assert "rng" in method.calls[0].keywords

    def test_summary_round_trips_through_json(self):
        summary = _summary(
            "pkg.mod",
            "import os\n\n\ndef run(jobs=None):\n    return os.cpu_count()\n",
        )
        rebuilt = ModuleSummary.from_dict(json.loads(json.dumps(summary.to_dict())))
        assert rebuilt == summary


class TestImportGraph:
    def test_from_import_refined_to_project_submodule(self):
        analysis = _analysis(
            {
                "pkg": "",
                "pkg.a": "from pkg import b\n",
                "pkg.b": "",
            },
            **{"pkg": True},
        )
        assert analysis.first_party_edges()["pkg.a"] == ["pkg.b"]

    def test_external_imports_reported_at_top_level(self):
        analysis = _analysis({"pkg.a": "import numpy.random\nimport os\n"})
        summary = analysis.modules["pkg.a"]
        assert analysis.external_imports(summary) == ["numpy", "os"]

    def test_graph_json_shape(self):
        analysis = analyze_paths([SRC / "lint"], config=LintConfig())
        document = json.loads(render_import_graph_json(analysis))
        assert document["version"] == 1
        walker = document["modules"]["repro.lint.walker"]
        assert "repro.lint.project" in walker["imports"]
        assert all(not m.startswith("repro.") for m in walker["external"])

    def test_graph_dot_is_well_formed(self):
        analysis = analyze_paths([SRC / "lint"], config=LintConfig())
        dot = render_import_graph_dot(analysis)
        assert dot.startswith("digraph imports {")
        assert dot.rstrip().endswith("}")
        assert '"repro.lint.walker" -> "repro.lint.project"' in dot


class TestCallGraph:
    def test_resolves_cross_module_function(self):
        analysis = _analysis(
            {
                "pkg.core": "def emit(values, *, telemetry=None):\n    return values\n",
                "pkg.driver": "from pkg.core import emit\n",
            }
        )
        resolved = analysis.resolve_callable("pkg.driver", "emit")
        assert resolved is not None
        module, info = resolved
        assert (module.name, info.qualname) == ("pkg.core", "emit")

    def test_resolves_constructor_to_init(self):
        analysis = _analysis(
            {
                "pkg.core": (
                    "class Engine:\n"
                    "    def __init__(self, *, jobs=None):\n"
                    "        self.jobs = jobs\n"
                ),
                "pkg.driver": "from pkg.core import Engine\n",
            }
        )
        resolved = analysis.resolve_callable("pkg.driver", "Engine")
        assert resolved is not None
        assert resolved[1].qualname == "Engine.__init__"

    def test_resolves_through_package_reexport(self):
        analysis = _analysis(
            {
                "pkg": "from pkg.core import emit\n",
                "pkg.core": "def emit(values, *, rng=None):\n    return values\n",
                "pkg.driver": "import pkg\n",
            },
            **{"pkg": True},
        )
        resolved = analysis.resolve_callable("pkg.driver", "pkg.emit")
        assert resolved is not None
        assert resolved[0].name == "pkg.core"

    def test_unresolvable_external_call_is_none(self):
        analysis = _analysis({"pkg.driver": "import os\n"})
        assert analysis.resolve_callable("pkg.driver", "os.getcwd") is None


class TestPerformance:
    def test_whole_program_pass_budget(self, tmp_path):
        cache_dir = tmp_path / "cache"
        started = time.perf_counter()
        cold = run_lint([SRC], cache_dir=cache_dir)
        cold_elapsed = time.perf_counter() - started
        started = time.perf_counter()
        warm = run_lint([SRC], cache_dir=cache_dir)
        warm_elapsed = time.perf_counter() - started
        assert cold.findings == [] and warm.findings == []
        assert cold_elapsed < 5.0, f"cold pass took {cold_elapsed:.2f}s"
        assert warm_elapsed < 1.0, f"warm pass took {warm_elapsed:.2f}s"
        assert warm.stats["cache_hits"] == warm.stats["files"]
