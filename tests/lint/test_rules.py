"""Per-rule contract: each rule fires on its violation fixture, stays quiet
on its clean fixture, and is silenced by an inline suppression.

The fixtures live under ``tests/lint/fixtures/`` — a path the walker
explicitly refuses to treat as rule-exempt, so rules whose sanctioned homes
include ``tests/`` still fire there.  Deleting any single rule's
implementation fails the firing test for that rule (the rule id disappears
from the registry and selection becomes a usage error).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import BUILTIN_RULE_IDS, lint_paths

FIXTURES = Path(__file__).resolve().parent / "fixtures"

#: rule id -> number of findings its violation fixture must produce.
EXPECTED_VIOLATIONS = {
    "RNG001": 4,
    "RNG002": 1,
    "ORD001": 4,
    "PKL001": 3,
    "TEL001": 3,
    "SPEC001": 3,
    "TME001": 2,
}


def test_every_builtin_rule_has_fixture_expectations():
    assert set(EXPECTED_VIOLATIONS) == set(BUILTIN_RULE_IDS)


@pytest.mark.parametrize("rule_id", sorted(EXPECTED_VIOLATIONS))
def test_rule_fires_on_violation_fixture(rule_id):
    fixture = FIXTURES / f"{rule_id.lower()}_violation.py"
    findings = lint_paths([fixture], rules=[rule_id])
    hits = [finding for finding in findings if finding.rule == rule_id]
    assert len(hits) == EXPECTED_VIOLATIONS[rule_id], [
        finding.render() for finding in findings
    ]
    for finding in hits:
        assert finding.path.endswith(f"{rule_id.lower()}_violation.py")
        assert finding.line > 0
        assert finding.severity == "error"


@pytest.mark.parametrize("rule_id", sorted(EXPECTED_VIOLATIONS))
def test_rule_quiet_on_clean_fixture(rule_id):
    fixture = FIXTURES / f"{rule_id.lower()}_clean.py"
    findings = lint_paths([fixture], rules=[rule_id])
    assert findings == [], [finding.render() for finding in findings]


@pytest.mark.parametrize("rule_id", sorted(EXPECTED_VIOLATIONS))
def test_inline_suppression_silences_rule(rule_id):
    fixture = FIXTURES / f"{rule_id.lower()}_suppressed.py"
    findings = lint_paths([fixture], rules=[rule_id])
    # The violation is silenced AND the suppression counts as used (no
    # SUP001 hygiene warning).
    assert findings == [], [finding.render() for finding in findings]


def test_rules_fire_inside_fixture_dir_despite_tests_exemption():
    # Every built-in rule exempts tests/ paths; the fixture directory is the
    # carved-out exception that keeps these fixtures meaningful.
    findings = lint_paths([FIXTURES / "tme001_violation.py"])
    assert any(finding.rule == "TME001" for finding in findings)
