"""Content-hash result cache: hits, invalidation, robustness, parity."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import LintCache, LintConfig, run_lint

VIOLATION = "import time\nt = time.time()\n"


def _run(paths, cache_dir, **kwargs):
    kwargs.setdefault("config", LintConfig())
    return run_lint(paths, cache_dir=cache_dir, **kwargs)


class TestCacheRuns:
    def test_warm_run_hits_every_file_and_agrees(self, tmp_path):
        target = tmp_path / "clocky.py"
        target.write_text(VIOLATION, encoding="utf-8")
        cache_dir = tmp_path / "cache"
        cold = _run([target], cache_dir)
        warm = _run([target], cache_dir)
        assert cold.stats["cache_misses"] == 1
        assert warm.stats["cache_hits"] == 1
        assert warm.stats["parsed"] == 0
        assert [f.render() for f in warm.findings] == [
            f.render() for f in cold.findings
        ]

    def test_stats_disabled_without_cache_dir(self, tmp_path):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n", encoding="utf-8")
        run = run_lint([target], config=LintConfig())
        assert run.stats["cache_enabled"] is False

    def test_content_change_invalidates_only_that_file(self, tmp_path):
        a = tmp_path / "a.py"
        b = tmp_path / "b.py"
        a.write_text("x = 1\n", encoding="utf-8")
        b.write_text("y = 2\n", encoding="utf-8")
        cache_dir = tmp_path / "cache"
        _run([tmp_path], cache_dir)
        a.write_text("x = 3\n", encoding="utf-8")
        warm = _run([tmp_path], cache_dir)
        assert warm.stats["cache_hits"] == 1
        assert warm.stats["cache_misses"] == 1

    def test_ruleset_change_is_a_miss(self, tmp_path):
        target = tmp_path / "clocky.py"
        target.write_text(VIOLATION, encoding="utf-8")
        cache_dir = tmp_path / "cache"
        _run([target], cache_dir)
        narrowed = _run([target], cache_dir, rules=["RNG001"])
        assert narrowed.stats["cache_misses"] == 1
        # ...and both rulesets now coexist under the same content key.
        again = _run([target], cache_dir, rules=["RNG001"])
        assert again.stats["cache_hits"] == 1

    def test_suppressions_reapplied_from_cache(self, tmp_path):
        target = tmp_path / "clocky.py"
        target.write_text(
            "import time\n"
            "t = time.time()  # repro-lint: allow[TME001] fixture clock\n",
            encoding="utf-8",
        )
        cache_dir = tmp_path / "cache"
        assert _run([target], cache_dir).findings == []
        warm = _run([target], cache_dir)
        assert warm.stats["cache_hits"] == 1
        assert warm.findings == []

    def test_project_rules_still_fire_on_warm_cache(self, tmp_path):
        package = tmp_path / "miniwarm"
        package.mkdir()
        (package / "__init__.py").write_text(
            '"""Throwaway."""\n', encoding="utf-8"
        )
        (package / "core.py").write_text(
            "def emit(values, *, telemetry=None):\n    return values\n",
            encoding="utf-8",
        )
        (package / "driver.py").write_text(
            "from .core import emit\n"
            "\n"
            "\n"
            "def run(values, *, telemetry=None):\n"
            "    return emit(values)\n",
            encoding="utf-8",
        )
        cache_dir = tmp_path / "cache"
        cold = _run([package], cache_dir)
        warm = _run([package], cache_dir)
        assert [f.rule for f in cold.findings] == ["CTX001"]
        assert [f.rule for f in warm.findings] == ["CTX001"]
        assert warm.stats["cache_hits"] == warm.stats["files"]


class TestCacheRobustness:
    def test_corrupt_entry_is_a_miss_not_a_crash(self, tmp_path):
        target = tmp_path / "clocky.py"
        target.write_text(VIOLATION, encoding="utf-8")
        cache_dir = tmp_path / "cache"
        _run([target], cache_dir)
        for entry in Path(cache_dir).iterdir():
            entry.write_text("{not json", encoding="utf-8")
        rerun = _run([target], cache_dir)
        assert rerun.stats["cache_misses"] == 1
        assert [f.rule for f in rerun.findings] == ["TME001"]

    def test_key_depends_on_path_and_content(self, tmp_path):
        cache = LintCache(tmp_path / "cache")
        a = cache.key(tmp_path / "a.py", b"x = 1\n")
        b = cache.key(tmp_path / "b.py", b"x = 1\n")
        c = cache.key(tmp_path / "a.py", b"x = 2\n")
        assert len({a, b, c}) == 3

    def test_load_unknown_key_is_none(self, tmp_path):
        cache = LintCache(tmp_path / "cache")
        assert cache.load("0" * 64) is None

    def test_parse_failures_are_cached_too(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n", encoding="utf-8")
        cache_dir = tmp_path / "cache"
        cold = _run([target], cache_dir)
        warm = _run([target], cache_dir)
        assert [f.rule for f in cold.findings] == ["PAR001"]
        assert [f.render() for f in warm.findings] == [
            f.render() for f in cold.findings
        ]
        assert warm.stats["cache_hits"] == 1

    def test_cache_dir_contains_only_json_payloads(self, tmp_path):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n", encoding="utf-8")
        cache_dir = tmp_path / "cache"
        _run([target], cache_dir)
        entries = list(Path(cache_dir).iterdir())
        assert entries
        for entry in entries:
            json.loads(entry.read_text(encoding="utf-8"))
