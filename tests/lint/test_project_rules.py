"""The three whole-program rules, pinned against mini-project fixtures.

Each fixture under ``fixtures/projects/`` is a tiny package tree carrying
exactly the violations listed here; counts are exact so a rule that starts
over- or under-firing fails loudly.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint import (
    BUILTIN_PROJECT_RULE_IDS,
    LintConfig,
    ProjectRule,
    get_rule,
    run_lint,
    summarize_module,
)
from repro.lint.project import ProjectAnalysis

PROJECTS = Path(__file__).resolve().parent / "fixtures" / "projects"

#: project rule id -> (fixture tree, exact finding count)
EXPECTED = {
    "IMP001": ("layering_bad/minirepro", 1),
    "CTX001": ("seam_drop/miniseam", 1),
    "EXP001": ("exports_bad/miniexp", 3),
}


def _findings(tree: str, *, config: LintConfig | None = None):
    return run_lint([PROJECTS / tree], config=config).findings


def test_every_project_rule_has_fixture_expectations():
    assert set(EXPECTED) == set(BUILTIN_PROJECT_RULE_IDS)
    for rule_id in EXPECTED:
        assert isinstance(get_rule(rule_id), ProjectRule)


class TestLayering:
    def test_numpy_into_stdlib_only_layer_is_exactly_one_finding(self):
        # The fixture ships its own pyproject.toml; config auto-discovery
        # must find it above the linted tree.
        findings = _findings("layering_bad/minirepro")
        assert [f.rule for f in findings] == ["IMP001"]
        finding = findings[0]
        assert finding.path.endswith("minirepro/lint/core.py")
        assert "'minirepro.lint'" in finding.message
        assert "'numpy'" in finding.message

    def test_no_layers_declared_means_no_constraints(self):
        findings = _findings("layering_bad/minirepro", config=LintConfig())
        assert [f.rule for f in findings] == []

    def test_longest_prefix_wins_and_intra_layer_is_free(self):
        config = LintConfig(
            layers={
                "minirepro": [],
                "minirepro.lint": ["json", "numpy"],
                "minirepro.obs": ["minirepro.lint"],
            }
        )
        # With numpy allowed for the .lint sublayer, the tree is clean: the
        # root "minirepro" layer must not claim the sublayer's modules.
        assert _findings("layering_bad/minirepro", config=config) == []

    def test_repo_layer_dag_is_declared_and_enforced(self):
        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        run = run_lint([src])
        assert run.analysis is not None
        layers = run.analysis.config.layers
        assert layers.get("repro.lint") == ()
        assert run.findings == []


class TestSeamThreading:
    def test_dropped_telemetry_forward_is_exactly_one_finding(self):
        findings = _findings("seam_drop/miniseam", config=LintConfig())
        assert [f.rule for f in findings] == ["CTX001"]
        finding = findings[0]
        assert finding.path.endswith("miniseam/driver.py")
        assert "'telemetry'" in finding.message
        assert "miniseam.core.emit" in finding.message

    def test_seam_set_is_configurable(self):
        config = LintConfig(seams=("rng",))
        # telemetry is no longer a tracked seam: the drop is invisible.
        assert _findings("seam_drop/miniseam", config=config) == []

    def _one_file_findings(self, caller_body: str):
        sources = {
            "pkg.core": "def emit(values, *, telemetry=None):\n    return values\n",
            "pkg.driver": "from pkg.core import emit\n" + caller_body,
        }
        summaries = {
            name: summarize_module(
                ast.parse(source),
                module_name=name,
                display_path=name.replace(".", "/") + ".py",
                is_package=False,
            )
            for name, source in sources.items()
        }
        analysis = ProjectAnalysis(summaries)
        rule = get_rule("CTX001")
        return list(rule.check(analysis))

    def test_positional_forward_counts(self):
        findings = self._one_file_findings(
            "def run(values, telemetry=None):\n"
            "    return emit(values, telemetry=telemetry)\n"
        )
        assert findings == []

    def test_star_kwargs_silences_the_rule(self):
        findings = self._one_file_findings(
            "def run(values, *, telemetry=None, **kw):\n"
            "    return emit(values, **kw)\n"
        )
        assert findings == []

    def test_caller_without_seam_is_ignored(self):
        findings = self._one_file_findings(
            "def run(values):\n    return emit(values)\n"
        )
        assert findings == []


class TestExportIntegrity:
    def test_exports_bad_counts_are_exact(self):
        findings = _findings("exports_bad/miniexp", config=LintConfig())
        assert [f.rule for f in findings] == ["EXP001", "EXP001", "EXP001"]
        messages = "\n".join(f.message for f in findings)
        assert "'missing_symbol'" in messages
        assert "'miniexp.nowhere'" in messages
        assert "'undefined_name'" in messages

    def test_repo_init_exports_all_resolve(self):
        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        run = run_lint([src], rules=["EXP001"])
        assert run.findings == []


class TestSuppressionParity:
    def test_project_findings_honour_line_suppressions(self, tmp_path):
        package = tmp_path / "minisup"
        package.mkdir()
        (package / "__init__.py").write_text(
            '"""Throwaway package."""\n', encoding="utf-8"
        )
        (package / "core.py").write_text(
            "def emit(values, *, telemetry=None):\n    return values\n",
            encoding="utf-8",
        )
        (package / "driver.py").write_text(
            "from .core import emit\n"
            "\n"
            "\n"
            "def run(values, *, telemetry=None):\n"
            "    # repro-lint: allow[CTX001] seam consumed on purpose here\n"
            "    return emit(values)\n",
            encoding="utf-8",
        )
        findings = run_lint([package], config=LintConfig()).findings
        assert [f.rule for f in findings] == []
