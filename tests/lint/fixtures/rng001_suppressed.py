"""Fixture: an RNG001 violation silenced by an inline suppression."""

import random


def sanctioned_sample(items):
    return random.sample(items, len(items))  # repro-lint: allow[RNG001] fixture demonstrating suppression
