"""Fixture: file does not parse; tests pin the reported offset."""


def broken(value:
    return value
