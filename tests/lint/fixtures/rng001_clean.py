"""Fixture: sanctioned randomness — RNG001 must stay quiet."""

import numpy as np


def seeded(seed):
    rng = np.random.default_rng(seed)
    return rng.random()


def from_sequence(seed):
    sequence = np.random.SeedSequence(seed)
    return np.random.default_rng(sequence)
