"""Fixture: sanctioned generator threading — RNG002 must stay quiet."""

import numpy as np


def resample(values, rng=None, seed=0):
    if rng is None:
        rng = np.random.default_rng(seed)
    return rng.permutation(values)


def _private_helper(seed, rng):
    return np.random.default_rng(seed)
