"""Fixture: a TEL001 violation silenced by an inline suppression."""


def record(telemetry, items):
    telemetry.incr("runtime.tasks", items)  # repro-lint: allow[TEL001] historical name kept for trace compatibility
