"""Fixture: clock-free compute code — TME001 must stay quiet."""


def stamp_result(result, finished_at):
    result["finished_at"] = finished_at
    return result
