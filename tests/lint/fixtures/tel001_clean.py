"""Fixture: convention-abiding counter names — TEL001 must stay quiet."""


def record(telemetry, elapsed, items, phase):
    telemetry.incr("runtime.dispatch_seconds", elapsed)
    telemetry.incr("sampling.rr_sets", items)
    telemetry.incr(f"{phase}.kernel_seconds", elapsed)
