"""Fixture: file-allow below the docstring block is ignored and flagged."""

import time

# repro-lint: file-allow[TME001] too late: must sit in the docstring block
started = time.time()
