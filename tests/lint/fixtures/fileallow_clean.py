"""Fixture: no wall-clock reads, no suppressions; nothing to report."""

import math

answer = math.sqrt(49.0)
