"""Fixture package: lazy exports with three unresolvable entries."""

_EXPORTS = {
    "good_symbol": "impl",
    "missing_symbol": "impl",
    "ghost_module": "nowhere",
}

__all__ = ["ghost_module", "good_symbol", "missing_symbol", "undefined_name"]


def __getattr__(name):
    if name in _EXPORTS:
        import importlib

        module = importlib.import_module(f".{_EXPORTS[name]}", __name__)
        return getattr(module, name)
    raise AttributeError(name)
