"""Fixture module: defines only ``good_symbol``."""

good_symbol = 42
