"""Fixture package: a telemetry seam dropped across a module boundary."""
