"""Fixture caller: drops ``telemetry=`` on the way into ``core.emit``.

``run`` forgets to forward — the seeded CTX001.  ``run_forwarded`` threads
the seam through and must stay quiet.
"""

from .core import emit


def run(values, *, telemetry=None):
    return emit(values)


def run_forwarded(values, *, telemetry=None):
    return emit(values, telemetry=telemetry)
