"""Fixture callee: accepts the telemetry seam."""


def emit(values, *, telemetry=None):
    if telemetry is not None:
        telemetry.incr("emit.values", len(values))
    return list(values)
