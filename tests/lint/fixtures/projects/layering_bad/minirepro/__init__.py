"""Fixture package: a repro-shaped tree with one layering violation."""
