"""Fixture module: the numpy import below is the seeded IMP001 violation."""

import json

import numpy


def checksum(values):
    return json.dumps(list(numpy.asarray(values).tolist()))
