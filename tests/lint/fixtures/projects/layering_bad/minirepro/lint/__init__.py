"""Fixture subpackage: declared stdlib-only in the fixture pyproject."""

from . import core

__all__ = ["core"]
