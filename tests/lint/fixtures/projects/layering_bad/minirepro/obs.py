"""Fixture module: obs may import minirepro.lint — intentionally clean."""

from .lint import core

__all__ = ["core"]
