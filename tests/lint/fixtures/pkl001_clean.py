"""Fixture: picklable module-level workers — PKL001 must stay quiet."""

from repro.runtime.engine import run_tasks


def _double(task):
    return task * 2


def dispatch(tasks):
    return run_tasks(_double, tasks)


def builtin_map_is_fine(tasks):
    return list(map(lambda task: task * 2, tasks))
