"""Fixture: serialization-complete specs — SPEC001 must stay quiet."""

import dataclasses
from dataclasses import dataclass
from typing import ClassVar


class _SpecBase:
    def to_dict(self):
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}


@dataclass(frozen=True)
class ChildSpec(_SpecBase):
    depth: int = 0


@dataclass(frozen=True)
class WholeSpec(_SpecBase):
    child: ChildSpec = None
    retries: int = 0
    _nested: ClassVar[dict] = {"child": ChildSpec}


@dataclass(frozen=True)
class PlainRecord:
    weight: float = 1.0
