"""Fixture: same wall-clock reads, silenced by a docstring-block file-allow."""
# repro-lint: file-allow[TME001] fixture: timing is this module's whole job

import time

started = time.time()
elapsed = time.perf_counter()
