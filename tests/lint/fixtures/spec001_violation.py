"""Fixture: spec fields invisible to serialization — SPEC001 must fire."""

from dataclasses import dataclass
from typing import ClassVar


class _SpecBase:
    pass


@dataclass(frozen=True)
class LeafSpec:
    name: str = "leaf"

    def to_dict(self) -> dict:
        return {"name": self.name}

    @classmethod
    def from_dict(cls, data):
        return cls(name=data["name"])


@dataclass(frozen=True)
class BrokenSpec:
    graph: LeafSpec = None
    retries: int = 0
    _nested: ClassVar[dict] = {"graph": LeafSpec, "phantom": LeafSpec}

    def to_dict(self) -> dict:
        return {"graph": self.graph.to_dict()}

    @classmethod
    def from_dict(cls, data):
        return cls(graph=LeafSpec.from_dict(data["graph"]))


@dataclass(frozen=True)
class NestedMissingSpec(_SpecBase):
    child: LeafSpec = None
