"""Fixture: an RNG002 violation silenced by an inline suppression."""

import numpy as np


def reseed(values, seed, rng):
    fresh = np.random.default_rng(seed)  # repro-lint: allow[RNG002] fixture demonstrating suppression
    return fresh.permutation(values)
