"""Fixture: wall-clock reads in compute code — TME001 must fire."""

import time
from datetime import datetime


def stamp_result(result):
    result["finished_at"] = time.time()
    result["when"] = datetime.now().isoformat()
    return result
