"""Fixture: a SPEC001 violation silenced by an inline suppression."""

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheSpec:
    path: str = ""
    shards: int = 1

    def to_dict(self) -> dict:  # repro-lint: allow[SPEC001] shards is a local cache hint, never serialized
        return {"path": self.path}

    @classmethod
    def from_dict(cls, data):
        return cls(path=data["path"])
