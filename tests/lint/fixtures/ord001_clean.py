"""Fixture: sanctioned set consumption — ORD001 must stay quiet."""

import os


def sorted_iteration(vertices: set[int]) -> list[int]:
    return [vertex for vertex in sorted(vertices)]


def order_free(vertices: set[int]) -> int:
    if all(vertex >= 0 for vertex in vertices):
        return len(vertices)
    return max(vertices)


def sorted_listing(path):
    return sorted(os.listdir(path))


def rebound_name(vertices: set[int]) -> list[int]:
    vertices = sorted(vertices)
    return list(vertices)
