"""Fixture: an ORD001 violation silenced by an inline suppression."""


def integer_total(counts: set[int]) -> int:
    return sum(counts)  # repro-lint: allow[ORD001] integer addition is exact and order-free
