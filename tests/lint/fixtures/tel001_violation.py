"""Fixture: counter names off the convention — TEL001 must fire."""

import time


def record(telemetry, elapsed, items):
    telemetry.incr("sampling.kernel_seconds", elapsed)
    telemetry.incr("runtime.chunks", items)


def timed(telemetry, start):
    telemetry.incr("sampling.draws", time.perf_counter() - start)
