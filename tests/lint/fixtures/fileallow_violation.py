"""Fixture: wall-clock reads with no file-allow; TME001 fires twice."""

import time

started = time.time()
elapsed = time.perf_counter()
