"""Fixture: a PKL001 violation silenced by an inline suppression."""

from repro.runtime.engine import run_tasks


def dispatch(tasks):
    return run_tasks(lambda task: task, tasks)  # repro-lint: allow[PKL001] fixture: serial-only demo path
