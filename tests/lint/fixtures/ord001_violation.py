"""Fixture: order-dependent set/listing consumption — ORD001 must fire."""

import glob
import os


def order_leaks(vertices: set[int]) -> list[int]:
    out = []
    for vertex in vertices:
        out.append(vertex)
    return out


def float_sum(weights):
    support = set(weights)
    return sum(support)


def listing(path):
    return [os.path.join(path, name) for name in os.listdir(path)]


def untracked_glob(pattern):
    return glob.glob(pattern)
