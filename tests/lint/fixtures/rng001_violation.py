"""Fixture: ambient randomness — RNG001 must fire on every call below."""

import random

import numpy as np


def ambient_choice(items):
    return random.choice(items)


def ambient_normal():
    return np.random.normal()


def entropy_seeded():
    return np.random.default_rng()


def hardcoded_seed():
    return np.random.default_rng(42)
