"""Fixture: a TME001 violation silenced by an inline suppression."""

import time


def coarse_timeout_guard(deadline):
    return time.monotonic() > deadline  # repro-lint: allow[TME001] fixture: infrastructure timeout, never in results
