"""Fixture: fresh generator despite a threaded rng — RNG002 must fire."""

import numpy as np


def resample(values, seed, rng):
    fresh = np.random.default_rng(seed)
    return fresh.permutation(values)
