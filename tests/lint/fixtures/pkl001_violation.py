"""Fixture: unpicklable workers at the executor seam — PKL001 must fire."""

from repro.runtime.engine import run_tasks


def dispatch_lambda(tasks):
    return run_tasks(lambda task: task * 2, tasks)


def dispatch_nested(tasks):
    def worker(task):
        return task * 2

    return run_tasks(worker, tasks)


class Runner:
    def go(self, executor, tasks):
        return executor.map(self.work, tasks)

    def work(self, task):
        return task
