"""The gate: the linter must run clean on the package that ships it.

Every finding in ``src/repro`` is either fixed or carries an inline
suppression with a reason — this test is what turns the linter from a
suggestion into an invariant (and it doubles as the regression pin for the
determinism fixes the first self-run forced: any revert re-fires the rule).
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.lint import EXIT_CLEAN, lint_paths
from repro.lint.cli import main

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_source_tree_lints_clean():
    findings = lint_paths([SRC])
    assert findings == [], "\n" + "\n".join(
        finding.render() for finding in findings
    )


def test_cli_self_run_exits_clean():
    out = io.StringIO()
    assert main([str(SRC)], stdout=out) == EXIT_CLEAN
    assert "no findings" in out.getvalue()


def test_no_unused_suppressions_in_tree():
    # Suppression hygiene is part of the gate: SUP001 findings (warnings)
    # would show up above, but make the intent explicit.
    assert [f for f in lint_paths([SRC]) if f.rule == "SUP001"] == []
