"""Tests for the CSR InfluenceGraph core data structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphConstructionError, InvalidProbabilityError, InvalidSeedSetError
from repro.graphs.influence_graph import InfluenceGraph


def make_triangle() -> InfluenceGraph:
    return InfluenceGraph(3, [0, 1, 2], [1, 2, 0], [0.5, 0.25, 1.0], name="triangle")


class TestConstruction:
    def test_basic_counts(self):
        graph = make_triangle()
        assert graph.num_vertices == 3
        assert graph.num_edges == 3
        assert graph.name == "triangle"

    def test_empty_graph(self):
        graph = InfluenceGraph(0, [], [], [])
        assert graph.num_vertices == 0
        assert graph.num_edges == 0

    def test_isolated_vertices_allowed(self):
        graph = InfluenceGraph(5, [0], [1], [1.0])
        assert graph.num_vertices == 5
        assert graph.out_degree(4) == 0
        assert graph.in_degree(4) == 0

    def test_default_probabilities_are_one(self):
        graph = InfluenceGraph(2, [0], [1])
        assert graph.out_probabilities(0).tolist() == [1.0]

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphConstructionError):
            InfluenceGraph(-1, [], [])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphConstructionError):
            InfluenceGraph(2, [0], [0])

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphConstructionError):
            InfluenceGraph(2, [0], [2])

    def test_negative_endpoint_rejected(self):
        with pytest.raises(GraphConstructionError):
            InfluenceGraph(2, [-1], [1])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(GraphConstructionError):
            InfluenceGraph(3, [0, 1], [1])

    def test_zero_probability_rejected(self):
        with pytest.raises(InvalidProbabilityError):
            InfluenceGraph(2, [0], [1], [0.0])

    def test_probability_above_one_rejected(self):
        with pytest.raises(InvalidProbabilityError):
            InfluenceGraph(2, [0], [1], [1.5])

    def test_parallel_edges_allowed(self):
        graph = InfluenceGraph(2, [0, 0], [1, 1], [0.5, 0.25])
        assert graph.num_edges == 2
        assert graph.out_degree(0) == 2


class TestAdjacency:
    def test_out_neighbors(self):
        graph = make_triangle()
        assert graph.out_neighbors(0).tolist() == [1]
        assert graph.out_neighbors(1).tolist() == [2]
        assert graph.out_neighbors(2).tolist() == [0]

    def test_in_neighbors(self):
        graph = make_triangle()
        assert graph.in_neighbors(1).tolist() == [0]
        assert graph.in_neighbors(2).tolist() == [1]
        assert graph.in_neighbors(0).tolist() == [2]

    def test_out_probabilities_aligned(self):
        graph = make_triangle()
        assert graph.out_probabilities(0).tolist() == [0.5]
        assert graph.out_probabilities(1).tolist() == [0.25]

    def test_in_probabilities_aligned(self):
        graph = make_triangle()
        assert graph.in_probabilities(1).tolist() == [0.5]
        assert graph.in_probabilities(0).tolist() == [1.0]

    def test_degrees(self):
        graph = InfluenceGraph(4, [0, 0, 0, 1], [1, 2, 3, 2])
        assert graph.out_degree(0) == 3
        assert graph.in_degree(2) == 2
        assert graph.out_degrees().tolist() == [3, 1, 0, 0]
        assert graph.in_degrees().tolist() == [0, 1, 2, 1]

    def test_vertex_out_of_range_raises(self):
        graph = make_triangle()
        with pytest.raises(InvalidSeedSetError):
            graph.out_neighbors(3)
        with pytest.raises(InvalidSeedSetError):
            graph.in_degree(-1)

    def test_csr_views_are_read_only(self):
        graph = make_triangle()
        indptr, targets, probs = graph.out_csr
        with pytest.raises(ValueError):
            targets[0] = 2
        with pytest.raises(ValueError):
            probs[0] = 0.9
        with pytest.raises(ValueError):
            indptr[0] = 1


class TestDerivedGraphs:
    def test_expected_live_edges(self):
        graph = make_triangle()
        assert graph.expected_live_edges == pytest.approx(1.75)

    def test_edges_iteration_matches_arrays(self):
        graph = make_triangle()
        edges = list(graph.edges())
        sources, targets, probs = graph.edge_arrays()
        assert [e.source for e in edges] == sources.tolist()
        assert [e.target for e in edges] == targets.tolist()
        assert [e.probability for e in edges] == pytest.approx(probs.tolist())

    def test_transpose_reverses_edges(self):
        graph = make_triangle()
        transposed = graph.transpose()
        original = sorted((e.source, e.target, e.probability) for e in graph.edges())
        reversed_edges = sorted((e.target, e.source, e.probability) for e in transposed.edges())
        assert original == reversed_edges

    def test_double_transpose_is_identity(self):
        graph = make_triangle()
        assert graph.transpose().transpose() == graph

    def test_with_probabilities_replaces_all(self):
        graph = make_triangle()
        updated = graph.with_probabilities([0.1, 0.1, 0.1])
        assert updated.expected_live_edges == pytest.approx(0.3)
        # original untouched
        assert graph.expected_live_edges == pytest.approx(1.75)

    def test_with_probabilities_wrong_length_rejected(self):
        graph = make_triangle()
        with pytest.raises(GraphConstructionError):
            graph.with_probabilities([0.1, 0.2])

    def test_with_name(self):
        graph = make_triangle().with_name("renamed")
        assert graph.name == "renamed"
        assert graph.num_edges == 3

    def test_subgraph_relabels_vertices(self):
        graph = InfluenceGraph(5, [0, 1, 3, 3], [1, 2, 4, 2], [0.5] * 4)
        sub = graph.subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        # kept edges: 1->2 and 3->2, relabelled to 0->1 and 2->1.
        kept = sorted((e.source, e.target) for e in sub.edges())
        assert kept == [(0, 1), (2, 1)]

    def test_equality_ignores_name(self):
        a = make_triangle()
        b = InfluenceGraph(3, [0, 1, 2], [1, 2, 0], [0.5, 0.25, 1.0], name="other")
        assert a == b

    def test_inequality_on_probability(self):
        a = make_triangle()
        b = InfluenceGraph(3, [0, 1, 2], [1, 2, 0], [0.5, 0.25, 0.5])
        assert a != b


class TestEdgeOrderInvariance:
    def test_construction_is_order_invariant(self):
        a = InfluenceGraph(4, [0, 1, 2], [1, 2, 3], [0.1, 0.2, 0.3])
        b = InfluenceGraph(4, [2, 0, 1], [3, 1, 2], [0.3, 0.1, 0.2])
        assert a == b

    def test_degrees_with_shuffled_input(self):
        rng = np.random.default_rng(0)
        sources = rng.integers(0, 50, size=300)
        targets = (sources + 1 + rng.integers(0, 48, size=300)) % 50
        order = rng.permutation(300)
        a = InfluenceGraph(50, sources, targets)
        b = InfluenceGraph(50, sources[order], targets[order])
        assert a.out_degrees().tolist() == b.out_degrees().tolist()
        assert a.in_degrees().tolist() == b.in_degrees().tolist()
