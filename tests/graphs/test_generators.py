"""Tests for the random-graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.graphs import generators


class TestBarabasiAlbert:
    def test_edge_count_sparse(self):
        graph = generators.barabasi_albert(100, 1, seed=0)
        # clique on 2 vertices contributes 1 edge, then 98 attachments of 1 each.
        assert graph.num_edges == 1 + 98

    def test_edge_count_dense(self):
        graph = generators.barabasi_albert(200, 5, seed=0)
        initial = 5 * 6 // 2
        assert graph.num_edges == initial + (200 - 6) * 5

    def test_deterministic_given_seed(self):
        a = generators.barabasi_albert(50, 2, seed=3)
        b = generators.barabasi_albert(50, 2, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = generators.barabasi_albert(50, 2, seed=3)
        b = generators.barabasi_albert(50, 2, seed=4)
        assert a != b

    def test_orient_both_doubles_edges(self):
        random_oriented = generators.barabasi_albert(50, 2, seed=0, orient="random")
        both = generators.barabasi_albert(50, 2, seed=0, orient="both")
        assert both.num_edges == 2 * random_oriented.num_edges

    def test_scale_free_skew(self):
        graph = generators.barabasi_albert(500, 1, seed=0, orient="both")
        degrees = graph.out_degrees() + graph.in_degrees()
        # preferential attachment should create hubs far above the mean degree
        assert degrees.max() > 5 * degrees.mean()

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            generators.barabasi_albert(5, 5)
        with pytest.raises(InvalidParameterError):
            generators.barabasi_albert(10, 0)
        with pytest.raises(InvalidParameterError):
            generators.barabasi_albert(10, 2, orient="sideways")


class TestErdosRenyi:
    def test_edge_probability_controls_density(self):
        sparse = generators.erdos_renyi(100, 0.01, seed=0)
        dense = generators.erdos_renyi(100, 0.1, seed=0)
        assert dense.num_edges > sparse.num_edges

    def test_zero_probability_gives_empty_graph(self):
        graph = generators.erdos_renyi(50, 0.0, seed=0)
        assert graph.num_edges == 0

    def test_undirected_symmetrised(self):
        graph = generators.erdos_renyi(30, 0.2, seed=1, directed=False)
        pairs = {(e.source, e.target) for e in graph.edges()}
        assert all((target, source) in pairs for source, target in pairs)

    def test_deterministic(self):
        assert generators.erdos_renyi(40, 0.1, seed=9) == generators.erdos_renyi(40, 0.1, seed=9)


class TestWattsStrogatz:
    def test_no_rewiring_keeps_ring_degree(self):
        graph = generators.watts_strogatz(30, 4, 0.0, seed=0)
        # symmetrised ring lattice: every vertex has out-degree k.
        assert set(graph.out_degrees().tolist()) == {4}

    def test_edge_count_preserved_under_rewiring(self):
        before = generators.watts_strogatz(40, 4, 0.0, seed=0)
        after = generators.watts_strogatz(40, 4, 0.5, seed=0)
        assert before.num_edges == after.num_edges

    def test_invalid_neighbor_count(self):
        with pytest.raises(InvalidParameterError):
            generators.watts_strogatz(10, 3, 0.1)
        with pytest.raises(InvalidParameterError):
            generators.watts_strogatz(10, 12, 0.1)


class TestPowerlawCluster:
    def test_edge_count(self):
        graph = generators.powerlaw_cluster(100, 3, 0.5, seed=0)
        initial = 4 * 3 // 2
        expected_undirected = initial + (100 - 4) * 3
        assert graph.num_edges == 2 * expected_undirected

    def test_high_triangle_probability_increases_clustering(self):
        from repro.graphs.statistics import clustering_coefficient

        low = generators.powerlaw_cluster(200, 3, 0.0, seed=5)
        high = generators.powerlaw_cluster(200, 3, 0.9, seed=5)
        assert clustering_coefficient(high) > clustering_coefficient(low)

    def test_deterministic(self):
        a = generators.powerlaw_cluster(80, 2, 0.4, seed=2)
        b = generators.powerlaw_cluster(80, 2, 0.4, seed=2)
        assert a == b


class TestDirectedScaleFree:
    def test_size_and_heavy_tail(self):
        graph = generators.directed_scale_free(400, 5.0, seed=0, hub_bias=0.8)
        assert graph.num_vertices == 400
        in_degrees = graph.in_degrees()
        assert in_degrees.max() > 4 * in_degrees.mean()

    def test_average_out_degree_close_to_requested(self):
        graph = generators.directed_scale_free(500, 6.0, seed=1)
        assert graph.num_edges / graph.num_vertices == pytest.approx(6.0, rel=0.25)

    def test_invalid_out_degree(self):
        with pytest.raises(InvalidParameterError):
            generators.directed_scale_free(50, 0.0)

    def test_no_self_loops(self):
        graph = generators.directed_scale_free(100, 3.0, seed=2)
        assert all(edge.source != edge.target for edge in graph.edges())


class TestCoreWhisker:
    def test_vertex_count(self):
        graph = generators.core_whisker(50, 10, 3, seed=0)
        assert graph.num_vertices == 50 + 10 * 3

    def test_whisker_vertices_have_low_degree(self):
        graph = generators.core_whisker(50, 10, 3, core_degree=8, seed=0)
        undirected_degree = (graph.out_degrees() + graph.in_degrees()) / 2
        whisker_degrees = undirected_degree[50:]
        core_degrees = undirected_degree[:50]
        assert whisker_degrees.max() <= 2
        assert core_degrees.mean() > 4

    def test_no_whiskers(self):
        graph = generators.core_whisker(30, 0, 1, seed=0)
        assert graph.num_vertices == 30


class TestFixtures:
    def test_star_outward(self):
        graph = generators.star(4)
        assert graph.num_vertices == 5
        assert graph.out_degree(0) == 4
        assert graph.in_degree(0) == 0

    def test_star_inward(self):
        graph = generators.star(4, outward=False)
        assert graph.in_degree(0) == 4
        assert graph.out_degree(0) == 0

    def test_path(self):
        graph = generators.path(5)
        assert graph.num_edges == 4
        assert graph.out_degree(4) == 0

    def test_complete(self):
        graph = generators.complete(4)
        assert graph.num_edges == 12
        assert set(graph.out_degrees().tolist()) == {3}
