"""Tests for the Table 3 network statistics."""

from __future__ import annotations

import pytest

from repro.graphs.builder import GraphBuilder
from repro.graphs.datasets import load_dataset
from repro.graphs.generators import complete, path, star
from repro.graphs.statistics import (
    average_distance,
    clustering_coefficient,
    degree_percentiles,
    network_statistics,
    weak_components,
)


def triangle_graph():
    builder = GraphBuilder(3)
    for u, v in [(0, 1), (1, 2), (2, 0)]:
        builder.add_undirected_edge(u, v)
    return builder.build(name="triangle")


class TestClusteringCoefficient:
    def test_triangle_is_one(self):
        assert clustering_coefficient(triangle_graph()) == pytest.approx(1.0)

    def test_star_is_zero(self):
        assert clustering_coefficient(star(5)) == 0.0

    def test_path_is_zero(self):
        assert clustering_coefficient(path(5)) == 0.0

    def test_complete_graph_is_one(self):
        assert clustering_coefficient(complete(5)) == pytest.approx(1.0)

    def test_karate_close_to_paper_value(self):
        # The paper's Table 3 reports 0.26 for Karate (global clustering).
        value = clustering_coefficient(load_dataset("karate"))
        assert value == pytest.approx(0.26, abs=0.03)

    def test_empty_graph(self):
        builder = GraphBuilder(3)
        assert clustering_coefficient(builder.build()) == 0.0


class TestAverageDistance:
    def test_single_vertex(self):
        assert average_distance(GraphBuilder(1).build()) == 0.0

    def test_two_connected_vertices(self):
        builder = GraphBuilder(2)
        builder.add_undirected_edge(0, 1)
        assert average_distance(builder.build()) == pytest.approx(1.0)

    def test_path_graph(self):
        # Undirected projection of the directed path 0-1-2: distances 1,1,2 each way.
        assert average_distance(path(3)) == pytest.approx((1 + 1 + 2 + 1 + 1 + 2) / 6)

    def test_karate_close_to_paper_value(self):
        # The paper's Table 3 reports average distance 2.41 for Karate.
        assert average_distance(load_dataset("karate")) == pytest.approx(2.41, abs=0.05)

    def test_sampled_estimate_close_to_exact(self):
        graph = load_dataset("ba_d", scale=0.3)
        exact = average_distance(graph, max_sources=graph.num_vertices)
        sampled = average_distance(graph, max_sources=60, seed=0)
        assert sampled == pytest.approx(exact, rel=0.2)


class TestWeakComponents:
    def test_connected_graph_single_component(self):
        assert len(weak_components(triangle_graph())) == 1

    def test_isolated_vertices_are_components(self):
        builder = GraphBuilder(4)
        builder.add_edge(0, 1)
        components = weak_components(builder.build())
        assert len(components) == 3
        assert sorted(len(c) for c in components) == [1, 1, 2]

    def test_components_sorted_by_size(self):
        builder = GraphBuilder(6)
        builder.add_edge(0, 1)
        builder.add_edge(2, 3)
        builder.add_edge(3, 4)
        components = weak_components(builder.build())
        assert [len(c) for c in components] == [3, 2, 1]


class TestNetworkStatistics:
    def test_karate_row_matches_paper(self):
        stats = network_statistics(load_dataset("karate"))
        assert stats.num_vertices == 34
        assert stats.num_edges == 156
        assert stats.max_out_degree == 17
        assert stats.max_in_degree == 17
        assert stats.clustering_coefficient == pytest.approx(0.26, abs=0.03)
        assert stats.average_distance == pytest.approx(2.41, abs=0.05)
        assert stats.num_weak_components == 1
        assert stats.largest_weak_component == 34

    def test_as_row_keys(self):
        row = network_statistics(star(3)).as_row()
        assert {"network", "n", "m", "max_out_degree", "max_in_degree"} <= set(row)

    def test_expected_live_edges_tracks_probability(self):
        from repro.graphs.probability import assign_probabilities

        graph = assign_probabilities(load_dataset("karate"), "uc0.1")
        stats = network_statistics(graph)
        assert stats.expected_live_edges == pytest.approx(15.6)


class TestDegreePercentiles:
    def test_star_percentiles(self):
        result = degree_percentiles(star(9), percentiles=(50.0, 100.0))
        assert result["out"][100.0] == 9
        assert result["in"][100.0] == 1

    def test_keys_present(self):
        result = degree_percentiles(load_dataset("karate"))
        assert set(result) == {"out", "in"}
        assert set(result["out"]) == {50.0, 90.0, 99.0}
