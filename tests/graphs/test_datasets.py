"""Tests for the dataset registry and its synthetic proxies."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError, UnknownDatasetError
from repro.graphs.datasets import (
    PAPER_DATASETS,
    SMALL_DATASETS,
    DatasetSpec,
    dataset_spec,
    list_datasets,
    load_dataset,
    register_dataset,
)
from repro.graphs.karate_data import KARATE_NUM_DIRECTED_EDGES, KARATE_NUM_VERTICES


class TestRegistry:
    def test_all_paper_datasets_registered(self):
        registered = set(list_datasets())
        assert set(PAPER_DATASETS) <= registered

    def test_small_datasets_subset_of_paper(self):
        assert set(SMALL_DATASETS) <= set(PAPER_DATASETS)

    def test_unknown_dataset_raises(self):
        with pytest.raises(UnknownDatasetError):
            dataset_spec("not_a_dataset")
        with pytest.raises(UnknownDatasetError):
            load_dataset("not_a_dataset")

    def test_spec_metadata_present(self):
        for name in PAPER_DATASETS:
            spec = dataset_spec(name)
            assert spec.description
            assert spec.substitution

    def test_register_custom_dataset(self):
        spec = DatasetSpec(
            name="custom_test_only",
            kind="synthetic",
            paper_num_vertices=0,
            paper_num_edges=0,
            description="registered by a test",
            substitution="n/a",
            builder=lambda scale, seed: load_dataset("karate"),
        )
        register_dataset(spec)
        assert "custom_test_only" in list_datasets()
        with pytest.raises(InvalidParameterError):
            register_dataset(spec)
        register_dataset(spec, overwrite=True)


class TestKarate:
    def test_exact_paper_size(self):
        graph = load_dataset("karate")
        assert graph.num_vertices == KARATE_NUM_VERTICES == 34
        assert graph.num_edges == KARATE_NUM_DIRECTED_EDGES == 156

    def test_symmetric(self):
        graph = load_dataset("karate")
        pairs = {(e.source, e.target) for e in graph.edges()}
        assert all((target, source) in pairs for source, target in pairs)

    def test_scale_ignored_for_real_data(self):
        assert load_dataset("karate", scale=0.1).num_vertices == 34

    def test_hubs_are_instructor_and_president(self):
        # Vertices 0 and 33 are the two factions' centres in Zachary's data.
        graph = load_dataset("karate")
        degrees = graph.out_degrees()
        top_two = set(int(v) for v in degrees.argsort()[-2:])
        assert top_two == {0, 33}


class TestSyntheticProxies:
    @pytest.mark.parametrize("name", ["ba_s", "ba_d"])
    def test_ba_sizes_match_paper(self, name):
        graph = load_dataset(name)
        spec = dataset_spec(name)
        assert graph.num_vertices == spec.paper_num_vertices
        # Edge counts match the BA construction (999 and 10,879 +- the clique).
        assert graph.num_edges == pytest.approx(spec.paper_num_edges, rel=0.05)

    @pytest.mark.parametrize("name", ["physicians", "ca_grqc", "wiki_vote"])
    def test_proxies_build_and_are_nontrivial(self, name):
        graph = load_dataset(name, scale=0.2)
        assert graph.num_vertices > 10
        assert graph.num_edges > graph.num_vertices / 2

    @pytest.mark.parametrize("name", ["com_youtube", "soc_pokec"])
    def test_large_proxies_scaled_down(self, name):
        graph = load_dataset(name, scale=0.1)
        spec = dataset_spec(name)
        assert graph.num_vertices < spec.paper_num_vertices

    def test_scale_changes_size(self):
        small = load_dataset("physicians", scale=0.5)
        large = load_dataset("physicians", scale=1.0)
        assert small.num_vertices < large.num_vertices

    def test_seed_changes_topology_but_not_size(self):
        a = load_dataset("ba_s", seed=1)
        b = load_dataset("ba_s", seed=2)
        assert a.num_vertices == b.num_vertices
        assert a != b

    def test_deterministic_given_seed(self):
        assert load_dataset("ba_d", seed=5) == load_dataset("ba_d", seed=5)

    def test_invalid_scale(self):
        with pytest.raises(InvalidParameterError):
            load_dataset("ba_s", scale=0.0)

    def test_graph_named_after_dataset(self):
        assert load_dataset("wiki_vote", scale=0.2).name == "wiki_vote"

    def test_pokec_denser_than_youtube(self):
        youtube = load_dataset("com_youtube", scale=0.2)
        pokec = load_dataset("soc_pokec", scale=0.2)
        assert (pokec.num_edges / pokec.num_vertices) > (
            youtube.num_edges / youtube.num_vertices
        )
