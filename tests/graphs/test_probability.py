"""Tests for the edge-probability models (uc / iwc / owc / trivalency)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, UnknownProbabilityModelError
from repro.graphs.builder import GraphBuilder
from repro.graphs.datasets import load_dataset
from repro.graphs.probability import (
    PROBABILITY_MODELS,
    TRIVALENCY_VALUES,
    assign_probabilities,
    in_degree_weighted_cascade,
    out_degree_weighted_cascade,
    probability_model_factory,
    trivalency,
    uniform_cascade,
)


@pytest.fixture
def small_graph():
    builder = GraphBuilder(4)
    builder.add_edge(0, 1)
    builder.add_edge(0, 2)
    builder.add_edge(1, 2)
    builder.add_edge(3, 2)
    builder.add_edge(2, 0)
    return builder.build(name="small")


class TestUniformCascade:
    def test_constant_value(self, small_graph):
        graph = uniform_cascade(small_graph, 0.1)
        _, _, probs = graph.edge_arrays()
        assert np.allclose(probs, 0.1)

    def test_invalid_probability(self, small_graph):
        with pytest.raises(InvalidParameterError):
            uniform_cascade(small_graph, 0.0)
        with pytest.raises(InvalidParameterError):
            uniform_cascade(small_graph, 1.5)

    def test_topology_preserved(self, small_graph):
        graph = uniform_cascade(small_graph, 0.1)
        assert graph.num_edges == small_graph.num_edges
        assert graph.out_degrees().tolist() == small_graph.out_degrees().tolist()


class TestInDegreeWeightedCascade:
    def test_probabilities_are_reciprocal_in_degree(self, small_graph):
        graph = in_degree_weighted_cascade(small_graph)
        for edge in graph.edges():
            assert edge.probability == pytest.approx(1.0 / graph.in_degree(edge.target))

    def test_incoming_mass_is_one(self, small_graph):
        graph = in_degree_weighted_cascade(small_graph)
        for vertex in graph.vertices:
            if graph.in_degree(vertex) > 0:
                assert float(graph.in_probabilities(vertex).sum()) == pytest.approx(1.0)

    def test_on_karate(self):
        graph = in_degree_weighted_cascade(load_dataset("karate"))
        incoming = [float(graph.in_probabilities(v).sum()) for v in graph.vertices]
        assert all(total == pytest.approx(1.0) for total in incoming)


class TestOutDegreeWeightedCascade:
    def test_probabilities_are_reciprocal_out_degree(self, small_graph):
        graph = out_degree_weighted_cascade(small_graph)
        for edge in graph.edges():
            assert edge.probability == pytest.approx(1.0 / graph.out_degree(edge.source))

    def test_outgoing_mass_is_one(self, small_graph):
        graph = out_degree_weighted_cascade(small_graph)
        for vertex in graph.vertices:
            if graph.out_degree(vertex) > 0:
                assert float(graph.out_probabilities(vertex).sum()) == pytest.approx(1.0)

    def test_expected_live_edges_equals_non_sink_vertices(self, small_graph):
        graph = out_degree_weighted_cascade(small_graph)
        non_sinks = sum(1 for v in graph.vertices if graph.out_degree(v) > 0)
        assert graph.expected_live_edges == pytest.approx(non_sinks)


class TestTrivalency:
    def test_values_from_allowed_set(self, small_graph):
        graph = trivalency(small_graph, seed=3)
        _, _, probs = graph.edge_arrays()
        assert set(np.round(probs, 6)) <= {round(v, 6) for v in TRIVALENCY_VALUES}

    def test_deterministic_given_seed(self, small_graph):
        a = trivalency(small_graph, seed=3)
        b = trivalency(small_graph, seed=3)
        assert a == b

    def test_different_seed_differs_on_larger_graph(self):
        graph = load_dataset("karate")
        a = trivalency(graph, seed=1)
        b = trivalency(graph, seed=2)
        assert a != b


class TestAssignProbabilities:
    @pytest.mark.parametrize("model", PROBABILITY_MODELS)
    def test_all_named_models_run(self, small_graph, model):
        graph = assign_probabilities(small_graph, model)
        assert graph.num_edges == small_graph.num_edges
        assert model in graph.name

    def test_uc_custom_value(self, small_graph):
        graph = assign_probabilities(small_graph, "uc0.05")
        _, _, probs = graph.edge_arrays()
        assert np.allclose(probs, 0.05)

    def test_unknown_model_raises(self, small_graph):
        with pytest.raises(UnknownProbabilityModelError):
            assign_probabilities(small_graph, "nope")

    def test_uc_with_garbage_suffix_raises(self, small_graph):
        with pytest.raises(UnknownProbabilityModelError):
            assign_probabilities(small_graph, "ucx")

    def test_name_suffix(self, small_graph):
        graph = assign_probabilities(small_graph, "iwc")
        assert graph.name == "small (iwc)"

    def test_factory_matches_direct_call(self, small_graph):
        factory = probability_model_factory("uc0.1")
        assert factory(small_graph) == assign_probabilities(small_graph, "uc0.1")
