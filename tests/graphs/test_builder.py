"""Tests for GraphBuilder and graph_from_edge_list."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphConstructionError, InvalidParameterError
from repro.graphs.builder import GraphBuilder, graph_from_edge_list


class TestGraphBuilder:
    def test_build_infers_vertex_count(self):
        builder = GraphBuilder()
        builder.add_edge(0, 5)
        graph = builder.build()
        assert graph.num_vertices == 6
        assert graph.num_edges == 1

    def test_build_with_fixed_vertex_count(self):
        builder = GraphBuilder(10)
        builder.add_edge(0, 1)
        assert builder.build().num_vertices == 10

    def test_empty_builder(self):
        assert GraphBuilder().build().num_vertices == 0
        assert GraphBuilder(3).build().num_vertices == 3

    def test_num_edges_added(self):
        builder = GraphBuilder()
        assert builder.num_edges_added == 0
        builder.add_edge(0, 1)
        builder.add_edge(1, 2)
        assert builder.num_edges_added == 2

    def test_default_probability_applied(self):
        builder = GraphBuilder(default_probability=0.25)
        builder.add_edge(0, 1)
        graph = builder.build()
        assert graph.out_probabilities(0).tolist() == [0.25]

    def test_explicit_probability_overrides_default(self):
        builder = GraphBuilder(default_probability=0.25)
        builder.add_edge(0, 1, 0.75)
        assert builder.build().out_probabilities(0).tolist() == [0.75]

    def test_invalid_default_probability(self):
        with pytest.raises(InvalidParameterError):
            GraphBuilder(default_probability=0.0)

    def test_self_loop_rejected(self):
        builder = GraphBuilder()
        with pytest.raises(GraphConstructionError):
            builder.add_edge(2, 2)

    def test_negative_vertex_rejected(self):
        builder = GraphBuilder()
        with pytest.raises(GraphConstructionError):
            builder.add_edge(-1, 0)

    def test_edge_beyond_fixed_count_rejected(self):
        builder = GraphBuilder(3)
        with pytest.raises(GraphConstructionError):
            builder.add_edge(0, 3)

    def test_duplicate_edge_rejected_by_default(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1)
        with pytest.raises(GraphConstructionError):
            builder.add_edge(0, 1)

    def test_duplicate_edge_allowed_when_enabled(self):
        builder = GraphBuilder(allow_duplicate_edges=True)
        builder.add_edge(0, 1)
        builder.add_edge(0, 1)
        assert builder.build().num_edges == 2

    def test_has_edge(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1)
        assert builder.has_edge(0, 1)
        assert not builder.has_edge(1, 0)

    def test_has_edge_unavailable_with_duplicates(self):
        builder = GraphBuilder(allow_duplicate_edges=True)
        with pytest.raises(GraphConstructionError):
            builder.has_edge(0, 1)

    def test_add_edges_bulk_with_and_without_probabilities(self):
        builder = GraphBuilder()
        builder.add_edges([(0, 1), (1, 2, 0.5)])
        graph = builder.build()
        assert graph.num_edges == 2
        assert graph.out_probabilities(1).tolist() == [0.5]

    def test_add_edges_bad_tuple_length(self):
        builder = GraphBuilder()
        with pytest.raises(GraphConstructionError):
            builder.add_edges([(0, 1, 0.5, 7)])

    def test_add_undirected_edge_adds_both_directions(self):
        builder = GraphBuilder()
        builder.add_undirected_edge(0, 1, 0.3)
        graph = builder.build()
        assert graph.num_edges == 2
        assert graph.out_neighbors(0).tolist() == [1]
        assert graph.out_neighbors(1).tolist() == [0]


class TestGraphFromEdgeList:
    def test_directed(self):
        graph = graph_from_edge_list([(0, 1), (1, 2)], name="chain")
        assert graph.num_edges == 2
        assert graph.name == "chain"

    def test_undirected_doubles_edges(self):
        graph = graph_from_edge_list([(0, 1), (1, 2)], directed=False)
        assert graph.num_edges == 4

    def test_constant_probability(self):
        graph = graph_from_edge_list([(0, 1)], probability=0.2)
        assert graph.out_probabilities(0).tolist() == [0.2]

    def test_fixed_vertex_count(self):
        graph = graph_from_edge_list([(0, 1)], num_vertices=7)
        assert graph.num_vertices == 7


class TestDuplicatePolicies:
    """on_duplicate={"error","first","last","allow"} on the builder."""

    def test_error_policy_is_the_default(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1, 0.5)
        with pytest.raises(GraphConstructionError, match=r"duplicate edge \(0, 1\)"):
            builder.add_edge(0, 1, 0.25)

    def test_error_message_names_the_context(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1, 0.5, context="line 3")
        with pytest.raises(GraphConstructionError, match="line 7.*first listed at line 3"):
            builder.add_edge(0, 1, 0.25, context="line 7")

    def test_first_policy_keeps_first_probability(self):
        builder = GraphBuilder(on_duplicate="first")
        builder.add_edge(0, 1, 0.5)
        builder.add_edge(0, 1, 0.25)
        graph = builder.build()
        assert graph.num_edges == 1
        assert graph.out_probabilities(0)[0] == 0.5

    def test_last_policy_keeps_last_probability(self):
        builder = GraphBuilder(on_duplicate="last")
        builder.add_edge(0, 1, 0.5)
        builder.add_edge(2, 1, 0.75)
        builder.add_edge(0, 1, 0.25)
        graph = builder.build()
        assert graph.num_edges == 2
        # position of the first occurrence, probability of the last
        assert graph.out_probabilities(0)[0] == 0.25
        assert graph.out_probabilities(2)[0] == 0.75

    def test_allow_policy_keeps_parallel_edges(self):
        builder = GraphBuilder(on_duplicate="allow")
        builder.add_edge(0, 1, 0.5)
        builder.add_edge(0, 1, 0.25)
        assert builder.build().num_edges == 2

    def test_legacy_boolean_maps_to_allow(self):
        builder = GraphBuilder(allow_duplicate_edges=True)
        builder.add_edge(0, 1)
        builder.add_edge(0, 1)
        assert builder.build().num_edges == 2

    def test_conflicting_legacy_flag_and_policy_rejected(self):
        with pytest.raises(GraphConstructionError, match="conflicts"):
            GraphBuilder(allow_duplicate_edges=True, on_duplicate="error")

    def test_unknown_policy_rejected(self):
        with pytest.raises(GraphConstructionError, match="on_duplicate"):
            GraphBuilder(on_duplicate="merge")

    def test_reversed_pair_is_not_a_duplicate(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1)
        builder.add_edge(1, 0)
        assert builder.build().num_edges == 2

    def test_has_edge_works_under_first_and_last(self):
        for policy in ("first", "last"):
            builder = GraphBuilder(on_duplicate=policy)
            builder.add_edge(0, 1)
            assert builder.has_edge(0, 1)
            assert not builder.has_edge(1, 0)
