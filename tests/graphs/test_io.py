"""Tests for edge-list read/write round trips."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphConstructionError
from repro.graphs.builder import GraphBuilder
from repro.graphs.io import read_edge_list, round_trip_equal, write_edge_list
from repro.graphs.probability import assign_probabilities
from repro.graphs.datasets import load_dataset


@pytest.fixture
def sample_graph():
    builder = GraphBuilder(5)
    builder.add_edge(0, 1, 0.5)
    builder.add_edge(1, 2, 0.25)
    builder.add_edge(3, 4, 1.0)
    return builder.build(name="sample")


class TestWriteRead:
    def test_round_trip_with_probabilities(self, sample_graph, tmp_path):
        path = tmp_path / "graph.txt"
        write_edge_list(sample_graph, path)
        loaded = read_edge_list(path, num_vertices=5)
        assert round_trip_equal(sample_graph, loaded)

    def test_round_trip_without_probabilities(self, sample_graph, tmp_path):
        path = tmp_path / "graph.txt"
        write_edge_list(sample_graph, path, include_probabilities=False)
        loaded = read_edge_list(path, num_vertices=5)
        assert loaded.num_edges == sample_graph.num_edges
        # probabilities default to 1.0 when the column is absent
        assert all(edge.probability == 1.0 for edge in loaded.edges())

    def test_round_trip_karate_iwc(self, tmp_path):
        graph = assign_probabilities(load_dataset("karate"), "iwc")
        path = tmp_path / "karate.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path, num_vertices=graph.num_vertices)
        assert round_trip_equal(graph, loaded)

    def test_header_and_comments_ignored(self, sample_graph, tmp_path):
        path = tmp_path / "graph.txt"
        write_edge_list(sample_graph, path, header="first line\nsecond line")
        text = path.read_text()
        assert text.startswith("# first line")
        loaded = read_edge_list(path, num_vertices=5)
        assert round_trip_equal(sample_graph, loaded)

    def test_name_defaults_to_stem(self, sample_graph, tmp_path):
        path = tmp_path / "mynetwork.txt"
        write_edge_list(sample_graph, path)
        assert read_edge_list(path).name == "mynetwork"

    def test_undirected_read_doubles_edges(self, tmp_path):
        path = tmp_path / "undirected.txt"
        path.write_text("0 1\n1 2\n")
        graph = read_edge_list(path, directed=False)
        assert graph.num_edges == 4


class TestMalformedInput:
    def test_wrong_column_count(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 0.5 extra\n")
        with pytest.raises(GraphConstructionError):
            read_edge_list(path)

    def test_non_integer_endpoint(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphConstructionError):
            read_edge_list(path)

    def test_non_numeric_probability(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 high\n")
        with pytest.raises(GraphConstructionError):
            read_edge_list(path)

    def test_percent_comments_skipped(self, tmp_path):
        path = tmp_path / "konect.txt"
        path.write_text("% KONECT header\n0 1\n")
        assert read_edge_list(path).num_edges == 1

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.txt"
        path.write_text("\n0 1\n\n1 2\n")
        assert read_edge_list(path).num_edges == 2
