"""Tests for edge-list read/write round trips."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphConstructionError
from repro.graphs.builder import GraphBuilder
from repro.graphs.io import read_edge_list, round_trip_equal, write_edge_list
from repro.graphs.probability import assign_probabilities
from repro.graphs.datasets import load_dataset


@pytest.fixture
def sample_graph():
    builder = GraphBuilder(5)
    builder.add_edge(0, 1, 0.5)
    builder.add_edge(1, 2, 0.25)
    builder.add_edge(3, 4, 1.0)
    return builder.build(name="sample")


class TestWriteRead:
    def test_round_trip_with_probabilities(self, sample_graph, tmp_path):
        path = tmp_path / "graph.txt"
        write_edge_list(sample_graph, path)
        loaded = read_edge_list(path, num_vertices=5)
        assert round_trip_equal(sample_graph, loaded)

    def test_round_trip_without_probabilities(self, sample_graph, tmp_path):
        path = tmp_path / "graph.txt"
        write_edge_list(sample_graph, path, include_probabilities=False)
        loaded = read_edge_list(path, num_vertices=5)
        assert loaded.num_edges == sample_graph.num_edges
        # probabilities default to 1.0 when the column is absent
        assert all(edge.probability == 1.0 for edge in loaded.edges())

    def test_round_trip_karate_iwc(self, tmp_path):
        graph = assign_probabilities(load_dataset("karate"), "iwc")
        path = tmp_path / "karate.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path, num_vertices=graph.num_vertices)
        assert round_trip_equal(graph, loaded)

    def test_header_and_comments_ignored(self, sample_graph, tmp_path):
        path = tmp_path / "graph.txt"
        write_edge_list(sample_graph, path, header="first line\nsecond line")
        text = path.read_text()
        assert text.startswith("# first line")
        loaded = read_edge_list(path, num_vertices=5)
        assert round_trip_equal(sample_graph, loaded)

    def test_name_defaults_to_stem(self, sample_graph, tmp_path):
        path = tmp_path / "mynetwork.txt"
        write_edge_list(sample_graph, path)
        assert read_edge_list(path).name == "mynetwork"

    def test_undirected_read_doubles_edges(self, tmp_path):
        path = tmp_path / "undirected.txt"
        path.write_text("0 1\n1 2\n")
        graph = read_edge_list(path, directed=False)
        assert graph.num_edges == 4


class TestMalformedInput:
    def test_wrong_column_count(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 0.5 extra\n")
        with pytest.raises(GraphConstructionError):
            read_edge_list(path)

    def test_non_integer_endpoint(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphConstructionError):
            read_edge_list(path)

    def test_non_numeric_probability(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 high\n")
        with pytest.raises(GraphConstructionError):
            read_edge_list(path)

    def test_percent_comments_skipped(self, tmp_path):
        path = tmp_path / "konect.txt"
        path.write_text("% KONECT header\n0 1\n")
        assert read_edge_list(path).num_edges == 1

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.txt"
        path.write_text("\n0 1\n\n1 2\n")
        assert read_edge_list(path).num_edges == 2


class TestDuplicateRecords:
    """read_edge_list rejects silent duplicate arcs by default."""

    def test_duplicate_arc_raises_with_line_numbers(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("0 1\n1 2\n0 1\n")
        with pytest.raises(
            GraphConstructionError, match=r"line 3.*duplicate edge \(0, 1\).*line 1"
        ):
            read_edge_list(path)

    def test_comment_lines_count_toward_line_numbers(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("# header\n0 1\n\n0 1 0.5\n")
        with pytest.raises(GraphConstructionError, match="line 4"):
            read_edge_list(path)

    def test_undirected_double_listing_raises(self, tmp_path):
        # One undirected tie listed in both orientations: under
        # directed=False each line expands to both arcs, so line 2 would
        # double-flip the tie.
        path = tmp_path / "undirected_dup.txt"
        path.write_text("0 1\n1 0\n")
        with pytest.raises(GraphConstructionError, match=r"line 2.*duplicate"):
            read_edge_list(path, directed=False)

    def test_undirected_double_listing_first_policy(self, tmp_path):
        path = tmp_path / "undirected_dup.txt"
        path.write_text("0 1 0.5\n1 0 0.25\n1 2 0.75\n")
        graph = read_edge_list(path, directed=False, on_duplicate="first")
        assert graph.num_edges == 4  # {0,1} once in each direction + {1,2}
        assert graph.out_probabilities(0)[0] == 0.5
        assert graph.out_probabilities(1).tolist() == [0.5, 0.75]

    def test_duplicate_first_keeps_first_probability(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("0 1 0.5\n0 1 0.25\n")
        graph = read_edge_list(path, on_duplicate="first")
        assert graph.num_edges == 1
        assert graph.out_probabilities(0)[0] == 0.5

    def test_duplicate_last_keeps_last_probability(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("0 1 0.5\n0 1 0.25\n")
        graph = read_edge_list(path, on_duplicate="last")
        assert graph.num_edges == 1
        assert graph.out_probabilities(0)[0] == 0.25

    def test_duplicate_allow_restores_parallel_edges(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("0 1\n0 1\n")
        graph = read_edge_list(path, on_duplicate="allow")
        assert graph.num_edges == 2

    def test_unknown_policy_rejected(self, tmp_path):
        path = tmp_path / "ok.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphConstructionError, match="on_duplicate"):
            read_edge_list(path, on_duplicate="merge")

    def test_distinct_arcs_unaffected_by_default(self, tmp_path):
        path = tmp_path / "ok.txt"
        path.write_text("0 1\n1 0\n1 2\n")
        assert read_edge_list(path).num_edges == 3
