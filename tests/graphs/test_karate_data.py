"""Sanity checks on the embedded Zachary karate club edge list."""

from __future__ import annotations

from collections import Counter

from repro.graphs.karate_data import (
    KARATE_EDGES,
    KARATE_NUM_DIRECTED_EDGES,
    KARATE_NUM_VERTICES,
)


class TestKarateData:
    def test_edge_count_is_78_undirected(self):
        assert len(KARATE_EDGES) == 78
        assert KARATE_NUM_DIRECTED_EDGES == 156

    def test_vertex_ids_in_range(self):
        for u, v in KARATE_EDGES:
            assert 0 <= u < KARATE_NUM_VERTICES
            assert 0 <= v < KARATE_NUM_VERTICES

    def test_no_self_loops(self):
        assert all(u != v for u, v in KARATE_EDGES)

    def test_no_duplicate_undirected_edges(self):
        canonical = [(min(u, v), max(u, v)) for u, v in KARATE_EDGES]
        assert len(set(canonical)) == len(canonical)

    def test_every_vertex_appears(self):
        seen = {u for u, _ in KARATE_EDGES} | {v for _, v in KARATE_EDGES}
        assert seen == set(range(KARATE_NUM_VERTICES))

    def test_known_degrees(self):
        degree = Counter()
        for u, v in KARATE_EDGES:
            degree[u] += 1
            degree[v] += 1
        # Classical values: instructor (0) has degree 16, president (33) has 17.
        assert degree[0] == 16
        assert degree[33] == 17
        assert degree[32] == 12
