"""Tests for reachability sketches (bottom-k and pruned BFS)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.random_source import RandomSource
from repro.diffusion.snapshots import sample_snapshot
from repro.exceptions import InvalidParameterError
from repro.graphs.datasets import load_dataset
from repro.graphs.generators import path, star
from repro.graphs.probability import assign_probabilities
from repro.graphs.sketches import (
    bottom_k_reachability,
    exact_descendant_counts,
    pruned_bfs_counts,
)


@pytest.fixture(scope="module")
def karate_snapshot():
    graph = assign_probabilities(load_dataset("karate"), "uc0.1")
    return sample_snapshot(graph, RandomSource(17))


@pytest.fixture(scope="module")
def dense_snapshot():
    graph = assign_probabilities(load_dataset("ba_d", scale=0.3), "uc0.1")
    return sample_snapshot(graph, RandomSource(3))


class TestExactDescendantCounts:
    def test_deterministic_path(self, rng):
        snapshot = sample_snapshot(path(5), rng)
        assert exact_descendant_counts(snapshot).tolist() == [5, 4, 3, 2, 1]

    def test_deterministic_star(self, rng):
        snapshot = sample_snapshot(star(4), rng)
        counts = exact_descendant_counts(snapshot)
        assert counts[0] == 5
        assert all(counts[leaf] == 1 for leaf in range(1, 5))


class TestBottomKReachability:
    def test_exact_when_sketch_larger_than_reach(self, rng):
        snapshot = sample_snapshot(path(6), rng)
        estimates = bottom_k_reachability(snapshot, sketch_size=16, seed=0)
        assert estimates.tolist() == exact_descendant_counts(snapshot).tolist()

    def test_estimates_within_graph_bounds(self, karate_snapshot):
        estimates = bottom_k_reachability(karate_snapshot, sketch_size=8, seed=1)
        assert estimates.min() >= 1.0
        assert estimates.max() <= karate_snapshot.num_vertices

    def test_correlated_with_exact_counts(self, dense_snapshot):
        exact = exact_descendant_counts(dense_snapshot)
        estimates = bottom_k_reachability(dense_snapshot, sketch_size=32, seed=2)
        # Rank correlation: the estimated top vertex must be near the true top.
        top_estimated = int(np.argmax(estimates))
        assert exact[top_estimated] >= 0.6 * exact.max()

    def test_average_relative_error_reasonable(self, dense_snapshot):
        exact = exact_descendant_counts(dense_snapshot)
        estimates = bottom_k_reachability(dense_snapshot, sketch_size=64, seed=3)
        mask = exact > 0
        relative_error = np.abs(estimates[mask] - exact[mask]) / exact[mask]
        assert float(relative_error.mean()) < 0.5

    def test_invalid_sketch_size(self, karate_snapshot):
        with pytest.raises(InvalidParameterError):
            bottom_k_reachability(karate_snapshot, sketch_size=0)

    def test_empty_snapshot(self):
        from repro.graphs.builder import GraphBuilder

        snapshot = sample_snapshot(GraphBuilder(0).build(), RandomSource(0))
        assert bottom_k_reachability(snapshot).shape == (0,)


class TestPrunedBFS:
    def test_exact_on_deterministic_path(self, rng):
        snapshot = sample_snapshot(path(5), rng)
        counts = pruned_bfs_counts(snapshot, hub_count=1)
        exact = exact_descendant_counts(snapshot)
        # Pruned counts are upper bounds and exact for hubs.
        assert np.all(counts >= exact - 1e-9)
        assert counts.max() <= snapshot.num_vertices

    def test_upper_bound_property(self, karate_snapshot):
        exact = exact_descendant_counts(karate_snapshot)
        counts = pruned_bfs_counts(karate_snapshot)
        assert np.all(counts >= exact - 1e-9)

    def test_top_vertex_preserved(self, dense_snapshot):
        exact = exact_descendant_counts(dense_snapshot)
        counts = pruned_bfs_counts(dense_snapshot)
        top_pruned = int(np.argmax(counts))
        assert exact[top_pruned] >= 0.6 * exact.max()

    def test_invalid_hub_count(self, karate_snapshot):
        with pytest.raises(InvalidParameterError):
            pruned_bfs_counts(karate_snapshot, hub_count=-1)


class TestSketchRegression:
    """Pin sketch output on a fixed seed (guards the offer() fast path).

    The O(k) ``-rank in heap`` membership scan was removed from ``offer``
    (ranks are distinct almost surely and the per-wave stamp prevents
    re-offers within a wave); these pins guarantee the optimisation did not
    change a single estimate.
    """

    def test_karate_pinned_values(self):
        graph = assign_probabilities(load_dataset("karate"), "iwc")
        snapshot = sample_snapshot(graph, RandomSource(44))
        estimates = bottom_k_reachability(snapshot, 8, seed=3)
        expected_head = [
            7.8500763667, 5.0, 3.0, 2.0, 1.0, 1.0, 3.0, 1.0, 2.0, 1.0, 2.0, 1.0
        ]
        assert np.allclose(estimates[:12], expected_head, atol=1e-9)

    def test_matches_exact_when_sketch_exhaustive(self, dense_snapshot):
        # With sketch_size >= n the sketch enumerates every reachable vertex,
        # so the estimate is exact regardless of the offer() implementation.
        n = dense_snapshot.num_vertices
        estimates = bottom_k_reachability(dense_snapshot, n + 1, seed=5)
        exact = np.maximum(exact_descendant_counts(dense_snapshot), 1.0)
        assert np.array_equal(estimates, exact)

    def test_reverse_csr_cached_and_consistent(self, karate_snapshot):
        indptr, sources = karate_snapshot.reverse_csr
        assert indptr[-1] == karate_snapshot.num_live_edges
        # Cached: the same arrays come back on repeated access.
        again_indptr, again_sources = karate_snapshot.reverse_csr
        assert again_indptr is indptr and again_sources is sources
        # Consistent with the forward CSR: every live edge appears reversed.
        forward = sorted(
            (int(source), int(target))
            for source in range(karate_snapshot.num_vertices)
            for target in karate_snapshot.out_neighbors(source)
        )
        reverse = sorted(
            (int(source), int(target))
            for target in range(karate_snapshot.num_vertices)
            for source in sources[indptr[target] : indptr[target + 1]]
        )
        assert forward == reverse
