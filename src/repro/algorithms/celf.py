"""CELF lazy-greedy driver (Leskovec et al. 2007), Section 3.3.3.

CELF exploits submodularity: a candidate's marginal gain can only shrink as
the seed set grows, so a stale (previously computed) gain is a valid upper
bound.  The driver keeps candidates in a max-heap keyed by their most recent
gain and only re-evaluates the top entry; when the freshly evaluated top entry
remains on top, it is selected without touching the rest.

For Snapshot and RIS (submodular estimators) CELF provably returns the same
solution as the full greedy loop while issuing far fewer Estimate calls.  For
Oneshot the estimator is not submodular, so CELF is only a heuristic; the
driver refuses to run on non-submodular estimators unless ``force=True``,
mirroring the caveat in Section 3.3.1.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from .._validation import require_positive_int
from ..context import RunContext, resolve_context
from ..diffusion.random_source import RandomSource
from ..exceptions import InvalidParameterError
from ..graphs.influence_graph import InfluenceGraph
from .framework import GreedyResult, InfluenceEstimator


@dataclass(frozen=True)
class CELFStatistics:
    """Diagnostics of one CELF run."""

    estimate_calls: int
    full_greedy_calls: int

    @property
    def savings_ratio(self) -> float:
        """Fraction of Estimate calls avoided relative to full greedy."""
        if self.full_greedy_calls == 0:
            return 0.0
        return 1.0 - self.estimate_calls / self.full_greedy_calls


def celf_maximize(
    graph: InfluenceGraph,
    k: int,
    estimator: InfluenceEstimator,
    *,
    seed: int | RandomSource | None = None,
    force: bool = False,
    context: RunContext | None = None,
) -> tuple[GreedyResult, CELFStatistics]:
    """Lazy-greedy seed selection equivalent to :func:`greedy_maximize`.

    ``seed`` of ``None`` falls back to ``context.seed`` (historical default
    ``0``); an explicit ``seed`` always wins over the context.

    Returns the greedy result plus :class:`CELFStatistics` reporting how many
    Estimate calls were issued versus what the plain framework would need.

    Raises
    ------
    InvalidParameterError
        If the estimator is not submodular and ``force`` is ``False``.
    """
    require_positive_int(k, "k")
    if not estimator.is_submodular and not force:
        raise InvalidParameterError(
            f"{type(estimator).__name__} is not submodular; lazy evaluation is unsound "
            "(pass force=True to run it as a heuristic anyway)"
        )
    if k > graph.num_vertices:
        raise InvalidParameterError(
            f"k ({k}) exceeds the number of vertices ({graph.num_vertices})"
        )
    resolved = resolve_context(context, seed=seed)
    seed = resolved.seed
    from ..obs import as_telemetry

    tel = as_telemetry(resolved.telemetry)
    source = seed if isinstance(seed, RandomSource) else RandomSource(seed)
    estimator_rng, shuffle_rng = source.spawn(2)
    with tel.span("celf.build"):
        estimator.build(graph, estimator_rng)

    # Tie-breaking parity with Algorithm 3.1: perturb heap ordering by a
    # random per-vertex priority so equal gains are popped in shuffled order.
    priority = shuffle_rng.permutation(graph.num_vertices)

    estimate_calls = 0
    chosen: list[int] = []
    estimates: list[float] = []

    with tel.span("celf.select"):
        # Heap entries: (-gain, staleness marker, -priority, vertex).
        heap: list[tuple[float, int, int, int]] = []
        for vertex in range(graph.num_vertices):
            gain = estimator.estimate((), vertex)
            estimate_calls += 1
            heapq.heappush(heap, (-gain, 0, -int(priority[vertex]), vertex))

        for iteration in range(k):
            while True:
                neg_gain, last_updated, neg_priority, vertex = heapq.heappop(heap)
                if last_updated == iteration:
                    chosen.append(vertex)
                    estimates.append(-neg_gain)
                    estimator.update(vertex)
                    break
                fresh_gain = estimator.estimate(tuple(chosen), vertex)
                estimate_calls += 1
                heapq.heappush(heap, (-fresh_gain, iteration, neg_priority, vertex))
            if not heap and iteration + 1 < k:
                raise InvalidParameterError(
                    "candidate pool exhausted before selecting k seeds"
                )
    tel.incr("celf.estimate_calls", estimate_calls)

    result = GreedyResult(
        seeds=tuple(chosen),
        estimates=tuple(estimates),
        approach=f"{estimator.approach}+celf",
        num_samples=estimator.num_samples,
        cost=estimator.cost_report(),
        graph_name=graph.name,
    )
    stats = CELFStatistics(
        estimate_calls=estimate_calls,
        full_greedy_calls=int(np.sum(graph.num_vertices - np.arange(k))),
    )
    return result, stats
