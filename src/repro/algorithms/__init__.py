"""Algorithms: the greedy framework and the three approaches plus baselines."""

from .bounds import (
    greedy_approximation_factor,
    monte_carlo_spread_bound,
    oneshot_sample_bound,
    ris_sample_bound,
    ris_weight_bound,
    snapshot_sample_bound,
    theoretical_cost_ratios,
)
from .celf import CELFStatistics, celf_maximize
from .exact import ExactEstimator, exhaustive_optimum
from .framework import GreedyResult, InfluenceEstimator, greedy_maximize
from .heuristics import (
    DegreeEstimator,
    RandomEstimator,
    SingleDiscountEstimator,
    WeightedDegreeEstimator,
)
from .oneshot import OneshotEstimator
from .ris import RISEstimator
from .snapshot import UPDATE_STRATEGIES, SnapshotEstimator
from .stopping import (
    AdaptiveRIS,
    AdaptiveRISResult,
    AdaptiveSampleNumber,
    adaptive_sample_number,
    determine_theta,
    estimate_opt_lower_bound,
)

__all__ = [
    "InfluenceEstimator",
    "GreedyResult",
    "greedy_maximize",
    "OneshotEstimator",
    "SnapshotEstimator",
    "UPDATE_STRATEGIES",
    "RISEstimator",
    "celf_maximize",
    "CELFStatistics",
    "DegreeEstimator",
    "WeightedDegreeEstimator",
    "RandomEstimator",
    "SingleDiscountEstimator",
    "ExactEstimator",
    "exhaustive_optimum",
    "AdaptiveRIS",
    "AdaptiveRISResult",
    "AdaptiveSampleNumber",
    "adaptive_sample_number",
    "determine_theta",
    "estimate_opt_lower_bound",
    "oneshot_sample_bound",
    "snapshot_sample_bound",
    "ris_sample_bound",
    "ris_weight_bound",
    "monte_carlo_spread_bound",
    "greedy_approximation_factor",
    "theoretical_cost_ratios",
]
