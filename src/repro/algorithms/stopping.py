"""Adaptive sample-number determination (Sections 3.5.3 and 7).

RIS research concentrates on choosing the sample number ``theta`` to meet a
``(1 - 1/e - eps)``-approximation guarantee with as few RR sets as possible;
Oneshot- and Snapshot-type algorithms have no such mechanism, which the
paper's concluding remarks call out as an open direction.  This module
implements both sides:

* :func:`estimate_opt_lower_bound` — the TIM+-style KPT estimation: probe RR
  sets of geometrically growing batches to lower-bound ``OPT_k`` without
  solving the problem first.
* :func:`determine_theta` — plug the lower bound into the RIS sample-number
  formula to obtain a concrete ``theta`` for a requested ``(eps, delta)``.
* :class:`AdaptiveRIS` — an OPIM/SSA-flavoured doubling scheme: keep doubling
  the RR-set collection until the greedy solution's estimated approximation
  ratio (lower confidence bound of its coverage over an upper confidence
  bound of the greedy ceiling) exceeds ``1 - 1/e - eps``.
* :func:`adaptive_sample_number` — the paper's "future work" applied to
  Oneshot and Snapshot: double the sample number until the greedy solution's
  mean influence estimate stabilises within a relative tolerance across two
  consecutive rounds, returning the chosen sample number and the trace.

These utilities are exercised by the ablation bench
``benchmarks/bench_ablation_stopping.py`` and unit-tested in
``tests/algorithms/test_stopping.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from .._validation import require_fraction, require_positive_int
from ..diffusion.models import DiffusionModel, resolve_model
from ..diffusion.random_source import RandomSource
from ..diffusion.reverse import RRSetCollection
from ..estimation.oracle import RRPoolOracle
from ..exceptions import InvalidParameterError
from ..graphs.influence_graph import InfluenceGraph
from .framework import GreedyResult, InfluenceEstimator, greedy_maximize
from .ris import RISEstimator


# --------------------------------------------------------------------------- #
# TIM+-style OPT lower bound and theta determination
# --------------------------------------------------------------------------- #
def estimate_opt_lower_bound(
    graph: InfluenceGraph,
    k: int,
    *,
    seed: int = 0,
    max_rounds: int | None = None,
    model: "str | DiffusionModel | None" = None,
) -> float:
    """Lower-bound ``OPT_k`` with the TIM+ KPT estimation procedure.

    Round ``i`` draws ``c_i = ceil(n / 2^i * log n)``-ish batches (bounded for
    pure Python) of RR sets and checks whether the average "width fraction"
    ``kappa`` of a batch exceeds ``1 / 2^i``; the first crossing yields the
    estimate ``KPT = n * kappa / (1 + eps')``, which lower-bounds ``OPT_k``
    with high probability.  The procedure never returns less than ``k`` (any
    k-seed set reaches at least its own k vertices).
    """
    require_positive_int(k, "k")
    diffusion = resolve_model(model)
    diffusion.validate(graph)
    n = graph.num_vertices
    if n == 0:
        raise InvalidParameterError("cannot estimate OPT on an empty graph")
    m = max(graph.num_edges, 1)
    rng = RandomSource(seed)
    rounds = max_rounds if max_rounds is not None else max(1, int(math.log2(n)))
    log_n = max(math.log(n), 1.0)
    for i in range(1, rounds + 1):
        batch = min(int((6 * log_n + 6) * (2 ** i)), 10_000)
        rr_sets = diffusion.sample_rr_sets(graph, batch, rng)
        # kappa(R) = 1 - (1 - w(R)/m)^k measures how likely a random k-set is
        # to intersect R through its edges (Tang et al. 2014, Algorithm 2).
        total_kappa = 0.0
        for rr_set in rr_sets:
            width_fraction = min(1.0, rr_set.weight / m)
            total_kappa += 1.0 - (1.0 - width_fraction) ** k
        mean_kappa = total_kappa / batch
        if mean_kappa > 1.0 / (2 ** i):
            return max(float(k), n * mean_kappa / 2.0)
    return float(k)


def determine_theta(
    graph: InfluenceGraph,
    k: int,
    *,
    epsilon: float = 0.1,
    delta: float | None = None,
    opt_lower_bound: float | None = None,
    seed: int = 0,
    model: "str | DiffusionModel | None" = None,
) -> int:
    """Concrete RR-set count for a ``(1 - 1/e - eps)`` guarantee.

    ``theta = eps^-2 * n * (k ln n + ln(1/delta)) / OPT_lb`` — the standard
    RIS bound with the hidden constant taken as 1 (consistent with
    :func:`repro.algorithms.bounds.ris_sample_bound`).  ``delta`` defaults to
    ``1/n``.
    """
    require_positive_int(k, "k")
    require_fraction(epsilon, "epsilon")
    n = graph.num_vertices
    if delta is None:
        delta = 1.0 / max(n, 2)
    require_fraction(delta, "delta")
    if opt_lower_bound is None:
        opt_lower_bound = estimate_opt_lower_bound(graph, k, seed=seed, model=model)
    if opt_lower_bound <= 0:
        raise InvalidParameterError("opt_lower_bound must be positive")
    theta = epsilon ** -2 * n * (k * math.log(n) + math.log(1.0 / delta)) / opt_lower_bound
    return max(1, int(math.ceil(theta)))


# --------------------------------------------------------------------------- #
# OPIM-style adaptive RIS (doubling with a stopping condition)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class AdaptiveRISResult:
    """Outcome of an adaptive RIS run."""

    result: GreedyResult
    theta: int
    approximation_guarantee: float
    rounds: int
    trace: tuple[tuple[int, float], ...]


class AdaptiveRIS:
    """Doubling RIS with an empirical stopping condition.

    Starting from ``initial_theta`` RR sets, the scheme runs greedy maximum
    coverage, computes a pessimistic estimate of the achieved approximation
    ratio from an independent validation collection of equal size, and doubles
    ``theta`` until the estimate exceeds ``1 - 1/e - epsilon`` or the budget
    ``max_theta`` is exhausted (the search-and-verify idea of SSA/OPIM in a
    deliberately simple form).
    """

    def __init__(
        self,
        epsilon: float = 0.1,
        *,
        initial_theta: int = 64,
        max_theta: int = 1 << 16,
        model: "str | DiffusionModel | None" = None,
    ) -> None:
        self._epsilon = require_fraction(epsilon, "epsilon")
        self._initial_theta = require_positive_int(initial_theta, "initial_theta")
        self._max_theta = require_positive_int(max_theta, "max_theta")
        self._model = resolve_model(model)
        if self._max_theta < self._initial_theta:
            raise InvalidParameterError("max_theta must be >= initial_theta")

    def maximize(
        self, graph: InfluenceGraph, k: int, *, seed: int = 0
    ) -> AdaptiveRISResult:
        """Run the doubling scheme and return the final greedy result."""
        require_positive_int(k, "k")
        self._model.validate(graph)
        target = 1.0 - 1.0 / math.e - self._epsilon
        source = RandomSource(seed)
        theta = self._initial_theta
        rounds = 0
        trace: list[tuple[int, float]] = []
        best: GreedyResult | None = None
        guarantee = 0.0
        while True:
            rounds += 1
            greedy_rng, validation_rng = source.spawn(2)
            estimator = RISEstimator(theta, model=self._model)
            result = greedy_maximize(graph, k, estimator, seed=greedy_rng)
            # Validate on an independent collection of the same size: the
            # coverage of the chosen seed set there is an unbiased estimate of
            # Inf(S)/n, while the greedy ceiling on the selection collection
            # (sum of the k largest coverages) upper-bounds what any k-set
            # could have achieved on that collection.
            validation_sets = self._model.sample_rr_sets(graph, theta, validation_rng)
            validation = RRSetCollection(validation_sets, graph.num_vertices)
            achieved = validation.fraction_covered(set(result.seed_set))
            selection_coverage = self._greedy_ceiling(estimator, k)
            # Greedy covers at least (1 - 1/e) of the best possible coverage
            # on the selection collection, so selection_coverage / (1 - 1/e)
            # upper-bounds OPT's coverage there; the achieved validation
            # coverage is an unbiased estimate of Inf(S)/n.  Their ratio is a
            # (concentration-free) approximation-ratio estimate.
            if selection_coverage > 0:
                guarantee = (1.0 - 1.0 / math.e) * achieved / selection_coverage
            else:
                guarantee = 0.0
            trace.append((theta, guarantee))
            best = result
            if guarantee >= target or theta >= self._max_theta:
                break
            theta *= 2
        assert best is not None
        return AdaptiveRISResult(
            result=best,
            theta=theta,
            approximation_guarantee=guarantee,
            rounds=rounds,
            trace=tuple(trace),
        )

    @staticmethod
    def _greedy_ceiling(estimator: RISEstimator, k: int) -> float:
        """Fraction of selection RR sets covered by the greedy solution itself.

        Greedy's own coverage on the selection collection upper-bounds the
        validation coverage in expectation (selection bias), so the ratio
        validation/selection is a pessimistic approximation-ratio estimate.
        """
        collection = estimator.collection
        covered = collection.num_total - collection.num_alive
        del k
        if collection.num_total == 0:
            return 0.0
        return covered / collection.num_total


# --------------------------------------------------------------------------- #
# Doubling scheme for Oneshot and Snapshot (the paper's open direction)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class AdaptiveSampleNumber:
    """Outcome of the doubling scheme for an arbitrary estimator family."""

    sample_number: int
    result: GreedyResult
    trace: tuple[tuple[int, float], ...]
    converged: bool


def adaptive_sample_number(
    graph: InfluenceGraph,
    k: int,
    estimator_factory: Callable[[int], InfluenceEstimator],
    oracle: RRPoolOracle,
    *,
    relative_tolerance: float = 0.02,
    initial_samples: int = 1,
    max_samples: int = 1 << 14,
    trials_per_round: int = 3,
    stable_rounds: int = 2,
    seed: int = 0,
    model: "str | DiffusionModel | None" = None,
) -> AdaptiveSampleNumber:
    """Double the sample number until the solution quality stabilises.

    Each candidate sample number is evaluated by ``trials_per_round``
    independent greedy runs whose seed sets are scored with the shared oracle;
    the round score is their mean.  The search stops once the best score seen
    so far has failed to improve by more than ``relative_tolerance`` for
    ``stable_rounds`` consecutive doublings (or the budget is reached).  It
    gives Oneshot and Snapshot the "sample number selection" facility the
    paper notes they lack; for RIS it reproduces the usual doubling behaviour.

    ``model`` only validates feasibility up front; the estimators produced by
    ``estimator_factory`` and the scoring ``oracle`` carry their own model
    bindings (see :func:`repro.experiments.factories.estimator_factory`).
    """
    require_positive_int(k, "k")
    resolve_model(model).validate(graph)
    require_positive_int(initial_samples, "initial_samples")
    require_positive_int(max_samples, "max_samples")
    require_positive_int(trials_per_round, "trials_per_round")
    require_positive_int(stable_rounds, "stable_rounds")
    if max_samples < initial_samples:
        raise InvalidParameterError("max_samples must be >= initial_samples")
    if relative_tolerance <= 0:
        raise InvalidParameterError("relative_tolerance must be positive")

    source = RandomSource(seed)
    samples = initial_samples
    best_score = 0.0
    stable = 0
    trace: list[tuple[int, float]] = []
    best_result: GreedyResult | None = None
    converged = False
    while True:
        round_results: list[tuple[float, GreedyResult]] = []
        for run_rng in source.spawn(trials_per_round):
            estimator = estimator_factory(samples)
            result = greedy_maximize(graph, k, estimator, seed=run_rng)
            round_results.append((oracle.spread(result.seed_set), result))
        round_score = sum(score for score, _ in round_results) / trials_per_round
        trace.append((samples, round_score))
        best_result = max(round_results, key=lambda item: item[0])[1]
        if best_score > 0 and round_score <= best_score * (1.0 + relative_tolerance):
            stable += 1
            if stable >= stable_rounds:
                converged = True
                break
        else:
            stable = 0
        best_score = max(best_score, round_score)
        if samples >= max_samples:
            break
        samples = min(samples * 2, max_samples)
    assert best_result is not None
    return AdaptiveSampleNumber(
        sample_number=samples,
        result=best_result,
        trace=tuple(trace),
        converged=converged,
    )
