"""Snapshot estimator — Algorithm 3.3, with the graph-reduction Update.

Snapshot-type algorithms (NewGreedy, MixedGreedy, StaticGreedy, PMC, SKIM)
draw ``tau`` live-edge random graphs up front and share them across all
greedy iterations.  The estimate of ``Inf(S)`` is the average over snapshots
of the number of vertices reachable from ``S``.  Because the snapshots are
fixed, the estimator is monotone and submodular, which the paper identifies
as one reason Snapshot needs far fewer samples than Oneshot in practice.

Two Update strategies are provided:

``"naive"``
    Update does nothing; every Estimate call re-runs reachability from
    ``S + v``.  This matches Algorithm 3.3 verbatim and the traversal-cost
    accounting of Table 8.
``"reduce"``
    The graph-reduction technique of Section 3.4.3: after choosing seed
    ``v_l``, vertices already reachable from the chosen seeds are marked as
    removed in each snapshot, so later Estimate calls traverse the smaller
    residual graph.  Estimates are unchanged; traversal cost drops.
"""

from __future__ import annotations

import numpy as np

from .._validation import require_choice
from ..diffusion.models import DiffusionModel, resolve_model
from ..diffusion.random_source import RandomSource
from ..diffusion.snapshots import (
    Snapshot,
    reachability_scratch,
    reachable_count,
    reachable_vertices,
)
from ..exceptions import EstimatorStateError
from ..graphs.influence_graph import InfluenceGraph
from .framework import InfluenceEstimator

#: Valid Update strategies.
UPDATE_STRATEGIES: tuple[str, ...] = ("naive", "reduce")


class SnapshotEstimator(InfluenceEstimator):
    """Pre-sampled live-edge graph estimator (sample number ``tau``).

    Parameters
    ----------
    num_samples:
        ``tau``: the number of random graphs sampled in Build.
    update_strategy:
        ``"naive"`` (Algorithm 3.3) or ``"reduce"`` (Section 3.4.3).
    model:
        Diffusion model whose live-edge snapshots are sampled (name,
        instance, or ``None`` for the paper's independent cascade).  Every
        model yields snapshots in the shared CSR representation, so the
        reachability estimates and both Update strategies are model-agnostic.
    """

    approach = "snapshot"
    is_submodular = True

    def __init__(
        self,
        num_samples: int,
        *,
        update_strategy: str = "naive",
        model: "str | DiffusionModel | None" = None,
        jobs: int | None = None,
        executor: "Executor | None" = None,
    ) -> None:
        super().__init__(num_samples)
        self._update_strategy = require_choice(
            update_strategy, UPDATE_STRATEGIES, "update_strategy"
        )
        self._model = resolve_model(model)
        # Optional parallel Build (see repro.runtime): snapshots are sampled
        # under the split-stream contract, bit-identical for any worker count.
        self._jobs = jobs
        self._executor = executor
        self._snapshots: list[Snapshot] = []
        self._current_seeds: tuple[int, ...] = ()
        # Per-snapshot cached reachability of the current seed set:
        # value r(S) for the naive strategy, blocked-vertex masks for "reduce".
        self._base_counts: list[int] = []
        self._blocked: list[np.ndarray] = []

    @property
    def update_strategy(self) -> str:
        """The configured Update strategy ("naive" or "reduce")."""
        return self._update_strategy

    @property
    def model(self) -> DiffusionModel:
        """The diffusion model whose snapshots this estimator samples."""
        return self._model

    @property
    def snapshots(self) -> tuple[Snapshot, ...]:
        """The sampled snapshots (read-only view)."""
        return tuple(self._snapshots)

    def build(self, graph: InfluenceGraph, rng: RandomSource) -> None:
        """Sample ``tau`` snapshots and reset per-run caches.

        Sampling streams the edge list (one coin flip per edge per snapshot)
        without traversing the graph, so it adds to sample size but not to
        traversal cost, matching the paper's accounting.
        """
        self._model.validate(graph)
        self._reset_accounting(graph)
        self._snapshots = self._model.sample_snapshots(
            graph,
            self.num_samples,
            rng,
            sample_size=self._sample_size,
            jobs=self._jobs,
            executor=self._executor,
        )
        self._current_seeds = ()
        self._base_counts = [0] * len(self._snapshots)
        self._blocked = [
            np.zeros(graph.num_vertices, dtype=bool) for _ in self._snapshots
        ]
        # One reusable (visited, slot) pair for every reachability query this
        # estimator issues, so per-candidate estimates cost time proportional
        # to the reached set rather than O(num_vertices) per call.
        self._reach_scratch = reachability_scratch(graph.num_vertices)

    def estimate(self, current_seeds: tuple[int, ...], vertex: int) -> float:
        """Average marginal reachability of ``vertex`` w.r.t. ``current_seeds``."""
        if not self.is_built:
            raise EstimatorStateError(
                "estimator.build(graph, rng) must be called before estimate()"
            )
        vertex = int(vertex)
        if self._update_strategy == "reduce":
            total = 0
            for index, snapshot in enumerate(self._snapshots):
                total += reachable_count(
                    snapshot,
                    (vertex,),
                    cost=self._estimate_cost,
                    blocked=self._blocked[index],
                    scratch=self._reach_scratch,
                )
            return total / len(self._snapshots)

        seeds = tuple(current_seeds) + (vertex,)
        total_marginal = 0
        for index, snapshot in enumerate(self._snapshots):
            count = reachable_count(
                snapshot, seeds, cost=self._estimate_cost, scratch=self._reach_scratch
            )
            total_marginal += count - self._base_counts[index]
        return total_marginal / len(self._snapshots)

    def update(self, chosen_vertex: int) -> None:
        """Fold the chosen seed into the per-snapshot caches."""
        chosen_vertex = int(chosen_vertex)
        self._current_seeds = tuple(self._current_seeds) + (chosen_vertex,)
        if self._update_strategy == "reduce":
            for index, snapshot in enumerate(self._snapshots):
                # The discovery-order list feeds the blocked update with one
                # fancy-index store instead of a per-vertex Python loop.
                newly_reachable = reachable_vertices(
                    snapshot,
                    (chosen_vertex,),
                    cost=self._estimate_cost,
                    blocked=self._blocked[index],
                    scratch=self._reach_scratch,
                )
                self._blocked[index][newly_reachable] = True
        else:
            for index, snapshot in enumerate(self._snapshots):
                self._base_counts[index] = reachable_count(
                    snapshot,
                    self._current_seeds,
                    cost=self._estimate_cost,
                    scratch=self._reach_scratch,
                )

    # ------------------------------------------------------------------ #
    # direct spread queries (outside the greedy protocol)
    # ------------------------------------------------------------------ #
    def spread(self, seed_set: tuple[int, ...] | list[int] | set[int]) -> float:
        """Estimate ``Inf(seed_set)`` directly from the stored snapshots."""
        if not self.is_built:
            raise EstimatorStateError(
                "estimator.build(graph, rng) must be called before spread()"
            )
        total = 0
        for snapshot in self._snapshots:
            total += reachable_count(
                snapshot, seed_set, cost=self._estimate_cost, scratch=self._reach_scratch
            )
        return total / len(self._snapshots)
