"""The simple greedy framework of Algorithm 3.1 and the estimator protocol.

Every algorithm studied by the paper is an instance of the same greedy loop
that differs only in three procedures:

* ``Build(G, sample_number)`` — construct the influence estimator.
* ``Estimate(S, v)`` — estimate the marginal influence of ``v`` w.r.t. ``S``
  (or the influence of ``S + v``; the greedy choice is the same either way).
* ``Update(v)`` — incorporate the newly chosen seed into the estimator.

:class:`InfluenceEstimator` is the abstract base class expressing that
protocol, and :func:`greedy_maximize` is the framework itself, including the
paper's tie-breaking rule: the vertex order is shuffled once up front and the
*last* vertex attaining the maximum estimate is selected, so ties are broken
uniformly at random rather than by vertex id.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from .._validation import require_positive_int
from ..context import RunContext, resolve_context
from ..diffusion.costs import CostReport, SampleSize, TraversalCost
from ..diffusion.random_source import RandomSource
from ..exceptions import EstimatorStateError, InvalidParameterError
from ..graphs.influence_graph import InfluenceGraph


class InfluenceEstimator(abc.ABC):
    """Abstract influence estimator plugged into the greedy framework.

    Concrete subclasses (Oneshot, Snapshot, RIS, and the heuristics) are
    parameterised by a single *sample number* and keep their own traversal
    cost and sample size accounting.  An estimator instance is reusable:
    :meth:`build` resets all internal state, so the same object can drive many
    independent greedy runs with different random sources.
    """

    #: Short approach name used in reports ("oneshot", "snapshot", "ris", ...).
    approach: str = "abstract"

    #: Whether the estimator's value oracle is monotone and submodular, so
    #: that lazy (CELF-style) evaluation is sound.
    is_submodular: bool = False

    def __init__(self, num_samples: int) -> None:
        self._num_samples = require_positive_int(num_samples, "num_samples")
        self._graph: InfluenceGraph | None = None
        self._estimate_cost = TraversalCost()
        self._build_cost = TraversalCost()
        self._sample_size = SampleSize()

    # ------------------------------------------------------------------ #
    # protocol
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def build(self, graph: InfluenceGraph, rng: RandomSource) -> None:
        """Construct the estimator for ``graph`` (resets all state)."""

    @abc.abstractmethod
    def estimate(self, current_seeds: tuple[int, ...], vertex: int) -> float:
        """Estimate the marginal influence of ``vertex`` given ``current_seeds``."""

    @abc.abstractmethod
    def update(self, chosen_vertex: int) -> None:
        """Incorporate the newly selected seed ``chosen_vertex``."""

    # ------------------------------------------------------------------ #
    # shared bookkeeping
    # ------------------------------------------------------------------ #
    def _reset_accounting(self, graph: InfluenceGraph) -> None:
        """Reset graph binding and all cost counters (call from ``build``)."""
        self._graph = graph
        self._estimate_cost = TraversalCost()
        self._build_cost = TraversalCost()
        self._sample_size = SampleSize()

    @property
    def num_samples(self) -> int:
        """The approach-specific sample number (beta, tau, or theta)."""
        return self._num_samples

    @property
    def graph(self) -> InfluenceGraph:
        """The graph bound by the last :meth:`build` call."""
        if self._graph is None:
            raise EstimatorStateError("estimator has not been built yet")
        return self._graph

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has been called."""
        return self._graph is not None

    @property
    def estimate_cost(self) -> TraversalCost:
        """Traversal cost incurred by Estimate/Update graph traversals."""
        return self._estimate_cost

    @property
    def build_cost(self) -> TraversalCost:
        """Traversal cost incurred by graph traversals inside Build."""
        return self._build_cost

    @property
    def total_cost(self) -> TraversalCost:
        """Build plus Estimate/Update traversal cost."""
        return self._build_cost + self._estimate_cost

    @property
    def sample_size(self) -> SampleSize:
        """Vertices/edges stored in memory as samples."""
        return self._sample_size

    def cost_report(self) -> CostReport:
        """Immutable snapshot of total traversal cost and sample size."""
        return CostReport(self.total_cost.snapshot(), SampleSize(
            self._sample_size.vertices, self._sample_size.edges
        ))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(num_samples={self._num_samples})"


@dataclass(frozen=True)
class GreedyResult:
    """Outcome of one greedy run (one trial of one algorithm)."""

    seeds: tuple[int, ...]
    estimates: tuple[float, ...]
    approach: str
    num_samples: int
    cost: CostReport
    graph_name: str

    @property
    def seed_set(self) -> tuple[int, ...]:
        """The selected seeds as a canonical sorted tuple (distribution key)."""
        return tuple(sorted(self.seeds))

    @property
    def k(self) -> int:
        """The seed-set size."""
        return len(self.seeds)

    def as_dict(self) -> dict[str, object]:
        """Flatten to a dictionary for logging and reports."""
        result: dict[str, object] = {
            "approach": self.approach,
            "num_samples": self.num_samples,
            "graph": self.graph_name,
            "k": self.k,
            "seeds": list(self.seeds),
            "estimates": list(self.estimates),
        }
        result.update(self.cost.as_dict())
        return result


def _argmax_last(values: np.ndarray) -> int:
    """Index of the last occurrence of the maximum value."""
    reversed_index = int(np.argmax(values[::-1]))
    return values.shape[0] - 1 - reversed_index


def greedy_maximize(
    graph: InfluenceGraph,
    k: int,
    estimator: InfluenceEstimator,
    *,
    seed: int | RandomSource | None = None,
    candidate_vertices: tuple[int, ...] | None = None,
    context: RunContext | None = None,
) -> GreedyResult:
    """Run Algorithm 3.1: greedy seed selection over an influence estimator.

    Parameters
    ----------
    graph:
        The influence graph.
    k:
        Seed-set size; must not exceed the number of candidate vertices.
    estimator:
        An :class:`InfluenceEstimator`; its ``build`` is called here, so a
        fresh random state is used for every invocation.
    seed:
        Integer seed or a :class:`RandomSource`.  Two independent child
        streams are derived: one for the estimator's randomness and one for
        the tie-breaking shuffle, matching the paper's protocol of seeding
        each run differently.  ``None`` (the default) falls back to
        ``context.seed``, or to the historical default ``0``.
    candidate_vertices:
        Optional restriction of the candidate pool (defaults to all vertices).
    context:
        Optional :class:`~repro.context.RunContext`; supplies the seed when
        ``seed`` is omitted.  An explicit ``seed`` always wins.

    Returns
    -------
    GreedyResult
        Chosen seeds in selection order plus estimator cost accounting.
    """
    require_positive_int(k, "k")
    resolved = resolve_context(context, seed=seed)
    seed = resolved.seed
    from ..obs import as_telemetry

    tel = as_telemetry(resolved.telemetry)
    source = seed if isinstance(seed, RandomSource) else RandomSource(seed)
    estimator_rng, shuffle_rng = source.spawn(2)

    if candidate_vertices is None:
        candidates = np.arange(graph.num_vertices)
    else:
        candidates = np.array(sorted(set(int(v) for v in candidate_vertices)), dtype=np.int64)
        if candidates.size and (candidates.min() < 0 or candidates.max() >= graph.num_vertices):
            raise InvalidParameterError("candidate_vertices contains out-of-range vertex ids")
    if k > candidates.size:
        raise InvalidParameterError(
            f"k ({k}) exceeds the number of candidate vertices ({candidates.size})"
        )

    with tel.span("greedy.build"):
        estimator.build(graph, estimator_rng)
    # Random tie-breaking: shuffle once, then always take the *last* argmax in
    # the shuffled order (Algorithm 3.1, lines 2 and 5).
    order = candidates[shuffle_rng.permutation(candidates.size)]

    chosen: list[int] = []
    estimates: list[float] = []
    selected_mask = np.zeros(graph.num_vertices, dtype=bool)
    estimate_calls = 0
    with tel.span("greedy.select"):
        for _ in range(k):
            current = tuple(chosen)
            values = np.full(order.shape[0], -np.inf, dtype=np.float64)
            for index, vertex in enumerate(order):
                vertex = int(vertex)
                if selected_mask[vertex]:
                    continue
                values[index] = estimator.estimate(current, vertex)
                estimate_calls += 1
            best_index = _argmax_last(values)
            best_vertex = int(order[best_index])
            chosen.append(best_vertex)
            estimates.append(float(values[best_index]))
            selected_mask[best_vertex] = True
            estimator.update(best_vertex)
    tel.incr("greedy.estimate_calls", estimate_calls)

    return GreedyResult(
        seeds=tuple(chosen),
        estimates=tuple(estimates),
        approach=estimator.approach,
        num_samples=estimator.num_samples,
        cost=estimator.cost_report(),
        graph_name=graph.name,
    )
