"""Exact and exact-oracle optimizers for tiny instances.

Two tools for validating the randomized algorithms:

* :func:`exhaustive_optimum` — enumerate all ``C(n, k)`` seed sets and return
  the one with the largest *exact* spread (live-edge enumeration), feasible
  only for tiny graphs.
* :class:`ExactEstimator` — an :class:`InfluenceEstimator` whose Estimate
  returns the exact spread, so running the greedy framework on it yields the
  paper's "Exact Greedy" reference solution on tiny fixtures.
"""

from __future__ import annotations

from ..diffusion.exact import exact_optimal_seed_set, exact_spread
from ..diffusion.random_source import RandomSource
from ..graphs.influence_graph import InfluenceGraph
from .framework import InfluenceEstimator


def exhaustive_optimum(graph: InfluenceGraph, k: int) -> tuple[tuple[int, ...], float]:
    """Spread-optimal seed set of size ``k`` by brute force (tiny graphs only)."""
    return exact_optimal_seed_set(graph, k)


class ExactEstimator(InfluenceEstimator):
    """Influence estimator backed by exact live-edge enumeration.

    The exact influence function is monotone and submodular (Kempe et al.),
    so greedy over this estimator realises the classical ``1 - 1/e``
    guarantee; tests use it as the reference "Exact Greedy".
    """

    approach = "exact"
    is_submodular = True

    def __init__(self) -> None:
        super().__init__(1)

    def build(self, graph: InfluenceGraph, rng: RandomSource) -> None:
        del rng
        self._reset_accounting(graph)

    def estimate(self, current_seeds: tuple[int, ...], vertex: int) -> float:
        return exact_spread(self.graph, tuple(current_seeds) + (int(vertex),))

    def update(self, chosen_vertex: int) -> None:
        del chosen_vertex
