"""Worst-case sample-number bounds (Sections 3.3.3, 3.4.3, 3.5.3, 5.2.1).

The paper contrasts *empirical* least sample numbers (Table 5) with the
*worst-case* bounds from the literature and finds gaps of several orders of
magnitude.  This module implements the bound formulas so that the Table 5
bench can reproduce that comparison:

* Oneshot (Tang et al. 2014, Lemma 10): achieving a ``(1 - 1/e - eps)``
  approximation with probability ``1 - delta`` needs
  ``beta = eps^-2 k^2 n (ln(1/delta) + ln k) / OPT_k`` simulations per
  Estimate call (stated up to a hidden constant, which we take as 1 — the
  same convention that reproduces the paper's quoted 1.0e8 for Wiki-Vote
  uc0.01, k = 4, eps = 0.05, delta = 0.01).
* Snapshot (Karimi et al. 2017, Prop. 3): an additive ``eps``-error guarantee
  needs ``tau = n^2 / (2 eps^2) * (k ln n + ln(1/delta))`` random graphs.
* RIS (Borgs et al. 2014 / Tang et al. 2014): ``theta`` on the order of
  ``eps^-2 k n ln n / OPT_k`` RR sets; Borgs et al.'s stopping rule caps the
  total *weight* at ``eps^-2 k (m + n) ln n`` coin flips instead.

All functions return ``float`` (the bounds routinely exceed 2^63 on larger
instances) and validate their inputs.
"""

from __future__ import annotations

import math

from .._validation import require_fraction, require_positive_int


def _validate_common(epsilon: float, delta: float, num_vertices: int, k: int) -> None:
    require_fraction(epsilon, "epsilon")
    require_fraction(delta, "delta")
    require_positive_int(num_vertices, "num_vertices")
    require_positive_int(k, "k")


def oneshot_sample_bound(
    epsilon: float, delta: float, num_vertices: int, k: int, optimal_spread: float
) -> float:
    """Worst-case simulation count ``beta`` for Oneshot (Tang et al. 2014)."""
    _validate_common(epsilon, delta, num_vertices, k)
    if optimal_spread <= 0:
        raise ValueError(f"optimal_spread must be positive, got {optimal_spread}")
    return (
        epsilon ** -2
        * k ** 2
        * num_vertices
        * (math.log(1.0 / delta) + math.log(k) if k > 1 else math.log(1.0 / delta))
        / optimal_spread
    )


def snapshot_sample_bound(
    epsilon_additive: float, delta: float, num_vertices: int, k: int
) -> float:
    """Worst-case random-graph count ``tau`` for Snapshot (Karimi et al. 2017).

    ``epsilon_additive`` is an *additive* error in influence units (the
    guarantee is ``Inf(S) >= (1 - 1/e) OPT_k - epsilon_additive``), so unlike
    the other two bounds it is not restricted to (0, 1).
    """
    require_fraction(delta, "delta")
    require_positive_int(num_vertices, "num_vertices")
    require_positive_int(k, "k")
    if epsilon_additive <= 0:
        raise ValueError(f"epsilon_additive must be positive, got {epsilon_additive}")
    return (
        num_vertices ** 2
        / (2.0 * epsilon_additive ** 2)
        * (k * math.log(num_vertices) + math.log(1.0 / delta))
    )


def ris_sample_bound(
    epsilon: float, delta: float, num_vertices: int, k: int, optimal_spread: float
) -> float:
    """Worst-case RR-set count ``theta`` (Borgs et al. / Tang et al., up to constants)."""
    _validate_common(epsilon, delta, num_vertices, k)
    if optimal_spread <= 0:
        raise ValueError(f"optimal_spread must be positive, got {optimal_spread}")
    log_term = k * math.log(num_vertices) + math.log(1.0 / delta)
    return epsilon ** -2 * num_vertices * log_term / optimal_spread


def ris_weight_bound(
    epsilon: float, num_vertices: int, num_edges: int, k: int
) -> float:
    """Borgs et al.'s stopping threshold on total RR-set *weight* (coin flips)."""
    require_fraction(epsilon, "epsilon")
    require_positive_int(num_vertices, "num_vertices")
    require_positive_int(num_edges, "num_edges")
    require_positive_int(k, "k")
    return epsilon ** -2 * k * (num_edges + num_vertices) * math.log(num_vertices)


def monte_carlo_spread_bound(epsilon: float, num_vertices: int) -> float:
    """Simulations needed to approximate one spread value within ``1 +- eps``
    (the classical ``Omega(eps^-2 n^2)`` bound quoted in Section 2.3)."""
    require_fraction(epsilon, "epsilon")
    require_positive_int(num_vertices, "num_vertices")
    return epsilon ** -2 * num_vertices ** 2


def greedy_approximation_factor(k: int, oracle_epsilon: float = 0.0) -> float:
    """The ``(1 - 1/e - O(k * eps))`` factor for greedy over an approximate oracle.

    With an exact oracle (``oracle_epsilon = 0``) this is the classical
    ``1 - 1/e ~ 0.632`` guarantee (Nemhauser et al. 1978).
    """
    require_positive_int(k, "k")
    if oracle_epsilon < 0:
        raise ValueError(f"oracle_epsilon must be non-negative, got {oracle_epsilon}")
    return max(0.0, 1.0 - 1.0 / math.e - k * oracle_epsilon)


def theoretical_cost_ratios(
    num_vertices: int, num_edges: int, expected_live_edges: float
) -> dict[str, float]:
    """Table 1 / Section 5.3 per-sample cost ratios among the three approaches.

    Returns the predicted vertex-traversal ratio (Oneshot : Snapshot : RIS =
    1 : 1 : 1/n) and edge-traversal ratio (1 : m~/m : 1/n), keyed by approach,
    normalised so Oneshot = 1.
    """
    require_positive_int(num_vertices, "num_vertices")
    require_positive_int(num_edges, "num_edges")
    if expected_live_edges <= 0:
        raise ValueError(
            f"expected_live_edges must be positive, got {expected_live_edges}"
        )
    return {
        "oneshot_vertex": 1.0,
        "snapshot_vertex": 1.0,
        "ris_vertex": 1.0 / num_vertices,
        "oneshot_edge": 1.0,
        "snapshot_edge": expected_live_edges / num_edges,
        "ris_edge": 1.0 / num_vertices,
    }
