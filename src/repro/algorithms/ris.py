"""Reverse Influence Sampling (RIS) estimator — Algorithm 3.4.

RIS (Borgs et al., TIM+, IMM, SSA, OPIM, ...) reduces influence maximization
to maximum coverage over a collection of reverse-reachable (RR) sets.  The
sample number ``theta`` is the number of RR sets generated in Build;
``n * F_R(S)`` — ``n`` times the fraction of RR sets intersecting ``S`` — is
an unbiased estimate of ``Inf(S)``.

Estimate returns the *marginal coverage* of a candidate vertex with respect
to the already chosen seeds; Update removes every RR set containing the new
seed so that subsequent coverage counts are automatically marginal
(Algorithm 3.4).  The estimator is monotone and submodular because coverage
functions are.

Cost accounting (Tables 1 and 8): RR-set generation is a reverse BFS, so all
traversal cost is in Build; Estimate and Update only touch the stored sets.
The sample size is the total number of vertices stored over all RR sets,
``theta * EPT`` in expectation.
"""

from __future__ import annotations

from ..diffusion.models import DiffusionModel, resolve_model
from ..diffusion.random_source import RandomSource
from ..diffusion.reverse import RRSetCollection
from ..exceptions import EstimatorStateError
from ..graphs.influence_graph import InfluenceGraph
from .framework import InfluenceEstimator


class RISEstimator(InfluenceEstimator):
    """RR-set coverage estimator (sample number ``theta``).

    ``model`` selects the diffusion model whose RR sets are generated (name,
    instance, or ``None`` for the paper's independent cascade); the coverage
    machinery is model-agnostic because every model returns the shared
    :class:`~repro.diffusion.reverse.RRSet` type.
    """

    approach = "ris"
    is_submodular = True

    def __init__(
        self,
        num_samples: int,
        *,
        model: "str | DiffusionModel | None" = None,
        jobs: int | None = None,
        executor: "Executor | None" = None,
        batch_mode: str | None = None,
    ) -> None:
        super().__init__(num_samples)
        self._model = resolve_model(model)
        self._collection: RRSetCollection | None = None
        # Optional parallel Build (see repro.runtime): RR sets are generated
        # under the split-stream contract, bit-identical for any worker count.
        self._jobs = jobs
        self._executor = executor
        from ..diffusion.bitparallel import resolve_batch_mode

        # Resolved eagerly so a REPRO_BITPARALLEL change between construction
        # and build cannot split one estimator across two draw contracts.
        self._batch_mode = resolve_batch_mode(batch_mode)

    @property
    def model(self) -> DiffusionModel:
        """The diffusion model whose RR sets this estimator generates."""
        return self._model

    @property
    def collection(self) -> RRSetCollection:
        """The RR-set collection built by the last Build call."""
        if self._collection is None:
            raise EstimatorStateError(
                "estimator.build(graph, rng) must be called before accessing the collection"
            )
        return self._collection

    def build(self, graph: InfluenceGraph, rng: RandomSource) -> None:
        """Generate ``theta`` RR sets by reverse simulation.

        Sampling feeds the indexed collection directly through the batched
        entry point (:meth:`RRSetCollection.from_sampling`), amortizing
        per-set overhead while keeping the draws byte-identical to ``theta``
        single :meth:`DiffusionModel.sample_rr_set` calls.
        """
        self._model.validate(graph)
        self._reset_accounting(graph)
        self._collection = RRSetCollection.from_sampling(
            graph,
            self.num_samples,
            rng,
            model=self._model,
            cost=self._build_cost,
            sample_size=self._sample_size,
            jobs=self._jobs,
            executor=self._executor,
            batch_mode=self._batch_mode,
        )

    def estimate(self, current_seeds: tuple[int, ...], vertex: int) -> float:
        """Marginal influence estimate ``n * (marginal coverage of vertex) / theta``.

        ``current_seeds`` is accepted for protocol compatibility but is not
        needed: Update already removed every RR set covered by chosen seeds,
        so the alive-coverage count of ``vertex`` *is* its marginal coverage.
        """
        del current_seeds
        collection = self.collection
        return self.graph.num_vertices * collection.coverage(int(vertex)) / self.num_samples

    def update(self, chosen_vertex: int) -> None:
        """Remove RR sets containing the chosen seed (Algorithm 3.4, Update)."""
        self.collection.remove_covered_by(int(chosen_vertex))

    # ------------------------------------------------------------------ #
    # direct spread queries (outside the greedy protocol)
    # ------------------------------------------------------------------ #
    def spread(self, seed_set: tuple[int, ...] | list[int] | set[int]) -> float:
        """Estimate ``Inf(seed_set)`` as ``n * F_R(seed_set)`` over all RR sets."""
        collection = self.collection
        return self.graph.num_vertices * collection.fraction_covered(set(seed_set))

    @property
    def expected_rr_size(self) -> float:
        """Empirical mean RR-set size (an estimate of the paper's EPT)."""
        collection = self.collection
        if collection.num_total == 0:
            return 0.0
        return collection.total_size / collection.num_total
