"""Oneshot (simulation-based) estimator — Algorithm 3.2.

Oneshot-type algorithms (CELF, CELF++, UBLF, SIEA, ...) run Monte-Carlo
simulations of the diffusion process *on the spot* whenever an estimate is
needed.  The sample number ``beta`` is the number of simulations per
Estimate call.

Properties relevant to the paper's findings:

* ``Build`` and ``Update`` do nothing; all cost is in ``Estimate``.
* The sample size is zero — nothing is stored between calls — which is why
  the paper concludes Oneshot is the right choice only when memory is the
  binding constraint.
* Because every Estimate call uses fresh, independent simulations, the value
  oracle is neither monotone nor submodular, so lazy evaluation (CELF) is a
  heuristic rather than an exact optimisation for this estimator.
"""

from __future__ import annotations

from ..diffusion.models import DiffusionModel, resolve_model
from ..diffusion.random_source import RandomSource
from ..graphs.influence_graph import InfluenceGraph
from .framework import InfluenceEstimator


class OneshotEstimator(InfluenceEstimator):
    """Monte-Carlo on-demand influence estimator (sample number ``beta``).

    Parameters
    ----------
    num_samples:
        ``beta``: the number of cascade simulations per Estimate call.
    marginal:
        When ``True`` (default) Estimate returns the estimated influence of
        ``S + v``; the greedy argmax is identical to using the marginal gain,
        because the ``Inf(S)`` term is constant across candidates within one
        iteration (the paper notes "the results will be the same regardless").
    model:
        Diffusion model whose forward cascades are simulated (name, instance,
        or ``None`` for the paper's independent cascade).
    batch_mode:
        ``"bitparallel"`` runs each Estimate's simulations 64 worlds per
        machine word (opt-in fast path with its own draw-order contract —
        see :mod:`repro.diffusion.bitparallel`); the default ``None`` defers
        to the ``REPRO_BITPARALLEL`` environment variable, then ``"scalar"``.
    """

    approach = "oneshot"
    is_submodular = False

    def __init__(
        self,
        num_samples: int,
        *,
        marginal: bool = False,
        model: "str | DiffusionModel | None" = None,
        batch_mode: str | None = None,
    ) -> None:
        super().__init__(num_samples)
        self._marginal = bool(marginal)
        self._model = resolve_model(model)
        from ..diffusion.bitparallel import resolve_batch_mode

        self._batch_mode = resolve_batch_mode(batch_mode)
        self._rng: RandomSource | None = None
        self._current_seeds: tuple[int, ...] = ()
        self._baseline_estimate = 0.0

    @property
    def model(self) -> DiffusionModel:
        """The diffusion model this estimator simulates."""
        return self._model

    def build(self, graph: InfluenceGraph, rng: RandomSource) -> None:
        """Bind the graph and random source; Oneshot precomputes nothing."""
        self._model.validate(graph)
        self._reset_accounting(graph)
        self._rng = rng
        self._current_seeds = ()
        self._baseline_estimate = 0.0

    def _simulate_total(self, seeds: tuple[int, ...]) -> float:
        assert self._rng is not None
        return self._model.simulate_spread(
            self.graph,
            seeds,
            self.num_samples,
            self._rng,
            cost=self._estimate_cost,
            batch_mode=self._batch_mode,
        )

    def estimate(self, current_seeds: tuple[int, ...], vertex: int) -> float:
        """Simulate ``beta`` cascades from ``current_seeds + (vertex,)``."""
        if self._rng is None:
            raise_not_built()
        value = self._simulate_total(tuple(current_seeds) + (int(vertex),))
        if self._marginal:
            return value - self._baseline_estimate
        return value

    def update(self, chosen_vertex: int) -> None:
        """Record the chosen seed (only needed for marginal-mode baselines)."""
        self._current_seeds = tuple(self._current_seeds) + (int(chosen_vertex),)
        if self._marginal:
            self._baseline_estimate = self._simulate_total(self._current_seeds)


def raise_not_built() -> None:
    """Raise the canonical estimator-not-built error."""
    from ..exceptions import EstimatorStateError

    raise EstimatorStateError("estimator.build(graph, rng) must be called before estimate()")
