"""Cheap seed-selection heuristics (Section 3.6 baselines).

The paper notes that heuristics provide influence estimates quickly but often
yield poorly influential seed sets.  These baselines let the examples and the
ablation benches quantify that gap on the same instances:

* :class:`DegreeEstimator` — rank vertices by out-degree.
* :class:`WeightedDegreeEstimator` — rank by total outgoing probability mass
  (the sum of out-edge probabilities), a probability-aware refinement.
* :class:`SingleDiscountEstimator` — degree discount: once a vertex is chosen,
  each of its out-neighbours' scores drops by one shared edge (Chen et al.).
* :class:`RandomEstimator` — uniformly random scores (the weakest baseline).

They implement the same :class:`InfluenceEstimator` protocol, so the same
greedy driver, trial harness, and distribution analyses apply unchanged.
"""

from __future__ import annotations

import numpy as np

from ..diffusion.random_source import RandomSource
from ..exceptions import EstimatorStateError
from ..graphs.influence_graph import InfluenceGraph
from .framework import InfluenceEstimator


class _ScoreEstimator(InfluenceEstimator):
    """Shared plumbing for estimators defined by a static per-vertex score array."""

    def __init__(self) -> None:
        # Heuristics have no sample number; 1 keeps the protocol uniform.
        super().__init__(1)
        self._scores: np.ndarray | None = None

    def _compute_scores(self, graph: InfluenceGraph, rng: RandomSource) -> np.ndarray:
        raise NotImplementedError

    def build(self, graph: InfluenceGraph, rng: RandomSource) -> None:
        self._reset_accounting(graph)
        self._scores = self._compute_scores(graph, rng).astype(np.float64)

    def estimate(self, current_seeds: tuple[int, ...], vertex: int) -> float:
        del current_seeds
        if self._scores is None:
            raise EstimatorStateError("build() must be called before estimate()")
        return float(self._scores[int(vertex)])

    def update(self, chosen_vertex: int) -> None:
        del chosen_vertex


class DegreeEstimator(_ScoreEstimator):
    """Rank candidates by out-degree."""

    approach = "degree"
    is_submodular = False

    def _compute_scores(self, graph: InfluenceGraph, rng: RandomSource) -> np.ndarray:
        del rng
        return graph.out_degrees().astype(np.float64)


class WeightedDegreeEstimator(_ScoreEstimator):
    """Rank candidates by the sum of their out-edge probabilities."""

    approach = "weighted_degree"
    is_submodular = False

    def _compute_scores(self, graph: InfluenceGraph, rng: RandomSource) -> np.ndarray:
        del rng
        # One reduceat pass over the forward CSR (same pattern as
        # validate_lt_weights) instead of a per-vertex Python loop; reduceat
        # needs non-empty segments, so empty rows are masked out and stay 0.
        indptr, _, probs = graph.out_csr
        scores = np.zeros(graph.num_vertices, dtype=np.float64)
        if probs.size == 0:
            return scores
        nonempty = np.diff(indptr) > 0
        scores[nonempty] = np.add.reduceat(probs, indptr[:-1][nonempty])
        return scores


class RandomEstimator(_ScoreEstimator):
    """Assign uniformly random scores (selects a random seed set)."""

    approach = "random"
    is_submodular = False

    def _compute_scores(self, graph: InfluenceGraph, rng: RandomSource) -> np.ndarray:
        return rng.generator.random(graph.num_vertices)


class SingleDiscountEstimator(InfluenceEstimator):
    """Degree heuristic with single-edge discounting on Update.

    When a vertex is chosen as a seed, each of its out-neighbours loses one
    unit of score: the edge toward an already chosen seed can no longer
    contribute new activations.
    """

    approach = "single_discount"
    is_submodular = False

    def __init__(self) -> None:
        super().__init__(1)
        self._scores: np.ndarray | None = None

    def build(self, graph: InfluenceGraph, rng: RandomSource) -> None:
        del rng
        self._reset_accounting(graph)
        self._scores = graph.out_degrees().astype(np.float64)

    def estimate(self, current_seeds: tuple[int, ...], vertex: int) -> float:
        del current_seeds
        if self._scores is None:
            raise EstimatorStateError("build() must be called before estimate()")
        return float(self._scores[int(vertex)])

    def update(self, chosen_vertex: int) -> None:
        if self._scores is None:
            raise EstimatorStateError("build() must be called before update()")
        for neighbour in self.graph.out_neighbors(int(chosen_vertex)):
            self._scores[int(neighbour)] = max(0.0, self._scores[int(neighbour)] - 1.0)
