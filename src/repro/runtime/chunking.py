"""Deterministic index-span chunking for task batching.

One RR set or one cascade is far too little work to justify shipping a task
to another process, so the engine batches contiguous index spans into
chunks.  Because every index carries its own random stream (see
:mod:`repro.runtime.seeding`), the chunk layout is free to change without
changing results; these helpers only have to be deterministic and balanced.
"""

from __future__ import annotations

from ..exceptions import InvalidParameterError

#: Chunks handed to each worker by default; >1 smooths per-chunk variance
#: (RR-set sizes are heavy-tailed) at a small fixed dispatch cost.
DEFAULT_CHUNKS_PER_JOB = 4


def chunk_spans(count: int, num_chunks: int) -> list[tuple[int, int]]:
    """Partition ``range(count)`` into ``num_chunks`` contiguous spans.

    Spans are returned in index order as ``(start, stop)`` pairs, cover every
    index exactly once, and differ in length by at most one (the first
    ``count % num_chunks`` spans are one longer).  ``count == 0`` yields an
    empty list.
    """
    count = int(count)
    num_chunks = int(num_chunks)
    if count < 0:
        raise InvalidParameterError(f"count must be >= 0, got {count}")
    if count == 0:
        return []
    if num_chunks < 1:
        raise InvalidParameterError(f"num_chunks must be >= 1, got {num_chunks}")
    num_chunks = min(num_chunks, count)
    base, extra = divmod(count, num_chunks)
    spans: list[tuple[int, int]] = []
    start = 0
    for chunk_index in range(num_chunks):
        stop = start + base + (1 if chunk_index < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans


def default_num_chunks(
    count: int, jobs: int, *, chunks_per_job: int = DEFAULT_CHUNKS_PER_JOB
) -> int:
    """Chunk count balancing dispatch overhead against load balance.

    Serial execution uses a single chunk (no dispatch to amortise); parallel
    execution uses ``jobs * chunks_per_job`` chunks, capped at ``count``.
    """
    count = int(count)
    if count <= 0:
        return 0
    if jobs <= 1:
        return 1
    return max(1, min(count, int(jobs) * int(chunks_per_job)))
