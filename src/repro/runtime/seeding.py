"""Stateless, index-addressable random-stream splitting.

The parallel runtime must hand every logical task (one RR set, one cascade,
one snapshot) its own independent random stream in a way that does not
depend on scheduling.  :class:`numpy.random.SeedSequence` spawning is almost
that — children are independent and reproducible — but ``spawn`` is
*stateful* (each call advances ``n_children_spawned``), so two workers
spawning from copies of the same root would collide, and the set of streams
would depend on call order.

This module instead derives the child for task ``i`` directly as
``SeedSequence(entropy, spawn_key=parent_spawn_key + (i,))``, which is
exactly the child a fresh parent's ``spawn`` would produce for its ``i``-th
call, but computed statelessly from ``(root, i)``.  Any process can derive
any task's stream, so chunk boundaries and worker assignment cannot affect
results.

Contract: a root passed to the runtime is *owned* by it for the duration of
the call — do not also call ``.spawn()`` on the same underlying sequence,
or the spawned children may coincide with task streams.
"""

from __future__ import annotations

import numpy as np

from ..diffusion.random_source import RandomSource
from ..exceptions import InvalidParameterError

#: A picklable description of a seed-sequence root: ``(entropy, spawn_key)``.
SeedKey = tuple

def seed_key(root: int | np.random.SeedSequence | RandomSource) -> SeedKey:
    """Normalise a seed root into a picklable ``(entropy, spawn_key)`` pair.

    Accepts an integer seed, a :class:`numpy.random.SeedSequence`, or a
    :class:`~repro.diffusion.random_source.RandomSource`.  Raw
    :class:`numpy.random.Generator` objects are rejected: a generator's
    current position cannot be captured by its seed sequence, so accepting
    one would silently ignore how far it had already been consumed.
    """
    if isinstance(root, RandomSource):
        sequence = root.sequence
    elif isinstance(root, np.random.SeedSequence):
        sequence = root
    elif isinstance(root, (int, np.integer)):
        sequence = np.random.SeedSequence(int(root))
    else:
        raise InvalidParameterError(
            "parallel execution needs a reproducible seed root: pass an int, "
            f"a numpy SeedSequence, or a RandomSource, not {type(root).__name__}"
        )
    if sequence.entropy is None:  # pragma: no cover - numpy always sets entropy
        raise InvalidParameterError(
            "seed root has no recorded entropy and cannot be split reproducibly"
        )
    return (sequence.entropy, tuple(int(k) for k in sequence.spawn_key))


def child_sequence(key: SeedKey, index: int) -> np.random.SeedSequence:
    """The :class:`SeedSequence` for task ``index`` under root ``key``."""
    entropy, spawn_key = key
    return np.random.SeedSequence(
        entropy=entropy, spawn_key=tuple(spawn_key) + (int(index),)
    )


def child_generator(key: SeedKey, index: int) -> np.random.Generator:
    """A fresh PCG64 generator for task ``index`` under root ``key``."""
    return np.random.default_rng(child_sequence(key, index))


def child_sources(
    root: int | np.random.SeedSequence | RandomSource, count: int
) -> list[RandomSource]:
    """``count`` independent :class:`RandomSource` children of ``root``.

    Convenience wrapper over :func:`seed_key`/:func:`child_sequence` for
    callers that batch at a coarser granularity than the engine.
    """
    key = seed_key(root)
    return [RandomSource(child_sequence(key, index)) for index in range(int(count))]
