"""The chunked-dispatch engine tying seeding, chunking, and executors together.

:func:`run_seeded_tasks` is the one entry point the hot paths use: it splits
``count`` seeded tasks into deterministic chunks, ships each chunk (with the
root seed key and its index span) to an executor, and returns the per-chunk
results in chunk order.  Workers derive each task's generator from
``(root_key, task_index)`` via :func:`repro.runtime.seeding.child_generator`,
so the outcome is independent of ``jobs`` and of the chunk layout.
"""

from __future__ import annotations

import contextlib
import pickle
import time
from typing import Any, Callable, Iterator, Sequence

from .._validation import require_positive_int
from .chunking import chunk_spans, default_num_chunks
from .executor import Executor, ParallelExecutor, SerialExecutor
from .seeding import SeedKey, seed_key

#: Signature of a seeded chunk worker: ``(payload, root_key, start, stop)``.
SeededWorker = Callable[[Any, SeedKey, int, int], Any]


@contextlib.contextmanager
def executor_scope(
    jobs: int | None = None, executor: Executor | None = None
) -> Iterator[Executor]:
    """Yield an executor for ``jobs``/``executor``, owning it when created here.

    * an explicit ``executor`` is yielded as-is and left open (caller-owned);
    * ``jobs`` of ``None`` or ``1`` yields a :class:`SerialExecutor`;
    * ``jobs > 1`` yields a :class:`ParallelExecutor` that is closed when the
      scope exits, so no worker processes outlive the call.
    """
    if executor is not None:
        yield executor
        return
    if jobs is None or require_positive_int(jobs, "jobs") == 1:
        yield SerialExecutor()
        return
    pool = ParallelExecutor(jobs)
    try:
        yield pool
    finally:
        pool.close()


def _invoke_seeded_chunk(task: tuple) -> Any:
    """Unpack one chunk task; module-level so it pickles for process pools."""
    worker, payload, key, start, stop = task
    return worker(payload, key, start, stop)


def _timed_invoke(task: tuple) -> tuple[Any, float]:
    """Apply ``fn`` to its task and measure the worker-side kernel seconds.

    Module-level so it pickles; the measured time excludes pickling and
    dispatch, which the parent accounts separately.  Returning the elapsed
    time alongside the result is the worker-side half of the deterministic
    metric merge: the parent sums the times in task order.
    """
    fn, inner = task
    start = time.perf_counter()  # repro-lint: allow[TME001] worker-side kernel timing feeds runtime.* metrics only, never results
    result = fn(inner)
    return result, time.perf_counter() - start  # repro-lint: allow[TME001] see above; parent merges in task order


def instrumented_map(
    executor: Executor,
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    *,
    telemetry: Any = None,
    phase: str = "runtime",
) -> list[Any]:
    """An ordered ``executor.map`` that records where the wall-time goes.

    With no (or disabled) telemetry this is exactly ``executor.map(fn,
    tasks)`` — the byte-identical fast path.  With telemetry enabled, each
    chunk is wrapped in :func:`_timed_invoke` and the call records, under
    the environmental ``runtime.*``-style namespace ``{phase}.*``:

    * ``{phase}.chunks`` — number of chunk tasks dispatched;
    * ``{phase}.pickle_bytes`` — total serialized size of the (fn, task)
      pairs crossing the process boundary, measured inside the
      ``{phase}.serialize`` span (only when ``executor.jobs > 1``; the
      serial executor never pickles);
    * ``{phase}.dispatch`` span — the blocking map over the executor;
    * ``{phase}.kernel_seconds`` — worker-side per-chunk execution time,
      summed in chunk order inside the ``{phase}.merge`` span.

    Dispatch seconds minus kernel seconds is the scheduling + IPC overhead —
    the number that decides the ROADMAP's pickling-dominates hypothesis.
    """
    tasks = list(tasks)
    if telemetry is None or not telemetry.enabled:
        return executor.map(fn, tasks)
    telemetry.check_jobs(executor.jobs)
    telemetry.incr(f"{phase}.chunks", len(tasks))
    wrapped = [(fn, task) for task in tasks]
    if executor.jobs > 1:
        with telemetry.span(f"{phase}.serialize"):
            telemetry.incr(
                f"{phase}.pickle_bytes",
                sum(len(pickle.dumps(pair)) for pair in wrapped),
            )
    with telemetry.span(f"{phase}.dispatch"):
        timed = executor.map(_timed_invoke, wrapped)
    with telemetry.span(f"{phase}.merge"):
        results = []
        for result, seconds in timed:
            telemetry.incr(f"{phase}.kernel_seconds", seconds)
            results.append(result)
    return results


def run_seeded_tasks(
    worker: SeededWorker,
    count: int,
    root: Any,
    *,
    jobs: int | None = None,
    executor: Executor | None = None,
    payload: Any = None,
    num_chunks: int | None = None,
    telemetry: Any = None,
) -> list[Any]:
    """Run ``count`` seeded tasks through ``worker`` in deterministic chunks.

    Parameters
    ----------
    worker:
        A picklable module-level function ``worker(payload, root_key, start,
        stop)`` that processes task indices ``start..stop-1``, deriving task
        ``i``'s generator as ``child_generator(root_key, i)``, and returns
        one chunk result.
    count:
        Total number of logical tasks.
    root:
        Seed root (int, ``SeedSequence``, or ``RandomSource``); normalised
        with :func:`repro.runtime.seeding.seed_key`.
    jobs, executor:
        Worker-count shorthand or an explicit (caller-owned) executor.
    payload:
        Picklable shared context (typically the graph) handed to every chunk.
    num_chunks:
        Override the chunk count; results are identical for any value.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry`; when enabled the
        dispatch is routed through :func:`instrumented_map` and a
        ``runtime.tasks`` counter records the logical task count.

    Returns
    -------
    list
        Per-chunk results in chunk (i.e. index) order.
    """
    key = seed_key(root)
    if telemetry is not None and telemetry.enabled:
        telemetry.incr("runtime.tasks", count)  # repro-lint: allow[TEL001] logical task count; lives with the other runtime.* dispatch metrics (trace-format compat)
    with executor_scope(jobs, executor) as resolved:
        chunks = (
            default_num_chunks(count, resolved.jobs)
            if num_chunks is None
            else require_positive_int(num_chunks, "num_chunks")
        )
        spans = chunk_spans(count, chunks) if count else []
        tasks = [(worker, payload, key, start, stop) for start, stop in spans]
        return instrumented_map(
            resolved, _invoke_seeded_chunk, tasks, telemetry=telemetry
        )


def run_tasks(
    worker: Callable[[Any], Any],
    tasks: Sequence[Any],
    *,
    jobs: int | None = None,
    executor: Executor | None = None,
    telemetry: Any = None,
) -> list[Any]:
    """Map ``worker`` over explicit task descriptions (no seed splitting).

    For workloads whose per-task randomness is already fixed by the task
    itself (e.g. greedy trials carrying their own trial seed), this is a thin
    ordered map over the resolved executor, instrumented when ``telemetry``
    is enabled (see :func:`instrumented_map`).
    """
    tasks = list(tasks)
    if telemetry is not None and telemetry.enabled:
        telemetry.incr("runtime.tasks", len(tasks))  # repro-lint: allow[TEL001] logical task count; lives with the other runtime.* dispatch metrics (trace-format compat)
    with executor_scope(jobs, executor) as resolved:
        return instrumented_map(resolved, worker, tasks, telemetry=telemetry)
