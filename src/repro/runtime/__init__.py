"""Deterministic multi-worker execution runtime.

This subsystem is the architectural seam between the repo's embarrassingly
parallel hot paths (forward cascades, live-edge snapshots, RR-set sampling,
independent greedy trials) and how they are scheduled onto CPUs.  It has
three layers:

``repro.runtime.seeding``
    A stateless :class:`numpy.random.SeedSequence` stream-splitter.  Every
    parallel task ``i`` of a run derives its generator from
    ``SeedSequence(entropy, spawn_key=root_key + (i,))``, so the random
    stream of a task depends only on the root seed and the task index —
    never on which worker ran it, how tasks were chunked, or in what order
    chunks completed.

``repro.runtime.chunking``
    Deterministic index-span partitioning used to batch fine-grained tasks
    (one RR set, one cascade) into coarse chunks worth shipping to a worker
    process.

``repro.runtime.executor`` / ``repro.runtime.engine``
    The :class:`Executor` protocol with two implementations —
    :class:`SerialExecutor` (in-process, zero dependencies) and
    :class:`ParallelExecutor` (a ``concurrent.futures.ProcessPoolExecutor``
    pool) — plus the :func:`run_seeded_tasks` engine that combines all three
    layers.

The determinism contract
------------------------

For any entry point accepting ``jobs=``/``executor=``, the output is a pure
function of the root seed and the task count: ``jobs=1`` and ``jobs=8``
produce bit-identical results, as do different chunk sizes.  This is
achieved by seeding *per task index*, not per worker or per chunk, and by
merging chunk results (lists, integer cost counters) in chunk order, which
makes every reduction exact.

Passing ``jobs=None`` (the default everywhere) keeps the historical
single-stream sequential behaviour, which draws all randomness from one
generator and therefore differs from the split-stream ``jobs>=1`` path.
Opting into the runtime (any non-``None`` ``jobs`` or an explicit executor)
opts into the split-stream seeding contract.
"""

from .chunking import chunk_spans, default_num_chunks
from .engine import executor_scope, run_seeded_tasks, run_tasks
from .executor import Executor, ParallelExecutor, SerialExecutor
from .seeding import (
    child_generator,
    child_sequence,
    child_sources,
    seed_key,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "executor_scope",
    "run_seeded_tasks",
    "run_tasks",
    "chunk_spans",
    "default_num_chunks",
    "seed_key",
    "child_sequence",
    "child_generator",
    "child_sources",
]
