"""The ``Executor`` protocol and its serial / process-pool implementations.

An executor maps a picklable callable over a list of task descriptions and
returns the results *in task order*.  That ordering guarantee, together with
per-task seeding (:mod:`repro.runtime.seeding`), is what makes parallel runs
bit-identical to serial ones: reductions downstream see chunk results in the
same order regardless of which worker finished first.
"""

from __future__ import annotations

import abc
import concurrent.futures
from typing import Any, Callable, Sequence

from .._validation import require_positive_int


class Executor(abc.ABC):
    """Minimal executor protocol used by the runtime engine.

    Implementations must be context managers and must return results in the
    order of the submitted tasks.
    """

    @property
    @abc.abstractmethod
    def jobs(self) -> int:
        """Number of worker slots (1 for serial execution)."""

    @abc.abstractmethod
    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to every task and return results in task order."""

    def close(self) -> None:
        """Release worker resources (no-op for in-process executors)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """Zero-dependency in-process executor: plain sequential evaluation.

    This is the default execution mode; it involves no pickling, no worker
    processes, and no scheduling, so it is also the reference implementation
    the parallel path must match bit-for-bit.
    """

    @property
    def jobs(self) -> int:
        return 1

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> list[Any]:
        return [fn(task) for task in tasks]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ParallelExecutor(Executor):
    """Process-pool executor with lazy pool creation.

    The underlying :class:`concurrent.futures.ProcessPoolExecutor` is created
    on first use and reused across ``map`` calls, so one executor instance
    amortises worker start-up over e.g. an oracle build plus a whole sweep.
    Tasks and the mapped callable must be picklable (module-level functions
    and plain-data payloads).

    Use as a context manager, or call :meth:`close` explicitly, to reap the
    worker processes.
    """

    def __init__(self, jobs: int) -> None:
        self._jobs = require_positive_int(jobs, "jobs")
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None

    @property
    def jobs(self) -> int:
        return self._jobs

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(max_workers=self._jobs)
        return self._pool

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> list[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        # Chunks are already coarse; chunksize=1 keeps dispatch order simple
        # and lets slow chunks overlap fast ones.
        return list(self._ensure_pool().map(fn, tasks, chunksize=1))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelExecutor(jobs={self._jobs})"
