"""Small, shared argument-validation helpers.

These helpers keep validation logic and error messages uniform across the
library.  They are deliberately tiny: each checks exactly one property and
raises an exception from :mod:`repro.exceptions` with a descriptive message.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .exceptions import InvalidParameterError, InvalidSeedSetError


def require_positive_int(value: int, name: str) -> int:
    """Return ``value`` if it is a positive integer, otherwise raise.

    Booleans are rejected even though they are ``int`` subclasses, because a
    ``True`` sample number is almost certainly a bug at the call site.
    """
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise InvalidParameterError(f"{name} must be a positive integer, got {value!r}")
    if value <= 0:
        raise InvalidParameterError(f"{name} must be positive, got {value}")
    return value


def require_rng_or_streams(count: int, rng: object, streams: object) -> None:
    """Validate the batch-sampling contract shared by every batched sampler.

    ``count`` must be a positive integer, and exactly one of ``rng`` (a
    single shared stream) or ``streams`` (one source per task, of length
    ``count``) must be provided.  One definition for the model layer and the
    kernels alike, so the contract cannot drift between them.
    """
    require_positive_int(count, "count")
    if (rng is None) == (streams is None):
        raise InvalidParameterError("provide exactly one of rng or streams")
    if streams is not None and len(streams) != count:
        raise InvalidParameterError(f"streams must have length {count}, got {len(streams)}")


def require_non_negative_int(value: int, name: str) -> int:
    """Return ``value`` if it is a non-negative integer, otherwise raise."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise InvalidParameterError(f"{name} must be a non-negative integer, got {value!r}")
    if value < 0:
        raise InvalidParameterError(f"{name} must be non-negative, got {value}")
    return value


def require_probability(value: float, name: str, *, allow_zero: bool = False) -> float:
    """Return ``value`` if it is a valid probability, otherwise raise.

    By default the accepted range is the half-open interval ``(0, 1]`` used
    for influence probabilities; ``allow_zero`` widens it to ``[0, 1]``.
    """
    try:
        as_float = float(value)
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(f"{name} must be a real number, got {value!r}") from exc
    lower_ok = as_float >= 0.0 if allow_zero else as_float > 0.0
    if not lower_ok or as_float > 1.0:
        interval = "[0, 1]" if allow_zero else "(0, 1]"
        raise InvalidParameterError(f"{name} must lie in {interval}, got {as_float}")
    return as_float


def require_fraction(value: float, name: str) -> float:
    """Return ``value`` if it lies strictly between 0 and 1, otherwise raise."""
    try:
        as_float = float(value)
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(f"{name} must be a real number, got {value!r}") from exc
    if not 0.0 < as_float < 1.0:
        raise InvalidParameterError(f"{name} must lie strictly in (0, 1), got {as_float}")
    return as_float


def require_vertex(vertex: int, num_vertices: int, name: str = "vertex") -> int:
    """Return ``vertex`` if it indexes a vertex of a graph with ``num_vertices``."""
    if isinstance(vertex, bool) or not isinstance(vertex, (int,)):
        raise InvalidSeedSetError(f"{name} must be an integer vertex id, got {vertex!r}")
    if not 0 <= vertex < num_vertices:
        raise InvalidSeedSetError(
            f"{name} {vertex} is out of range for a graph with {num_vertices} vertices"
        )
    return int(vertex)


def normalize_seed_set(seeds: Iterable[int], num_vertices: int) -> tuple[int, ...]:
    """Validate and canonicalise a seed set.

    The result is a sorted tuple of distinct vertex ids, which is hashable and
    therefore usable as a key in seed-set distributions.
    """
    seed_list = [require_vertex(int(v), num_vertices, name="seed vertex") for v in seeds]
    unique = sorted(set(seed_list))
    if len(unique) != len(seed_list):
        raise InvalidSeedSetError(f"seed set contains duplicate vertices: {sorted(seed_list)}")
    return tuple(unique)


def require_choice(value: str, choices: Sequence[str], name: str) -> str:
    """Return ``value`` if it is one of ``choices``, otherwise raise."""
    if value not in choices:
        raise InvalidParameterError(
            f"{name} must be one of {sorted(choices)}, got {value!r}"
        )
    return value
