"""Run-scoped observability: telemetry, trace export, and atomic output IO.

See :mod:`repro.obs.telemetry` for the core objects and the determinism
conventions, :mod:`repro.obs.trace` for the JSONL trace schema, and the
"Telemetry contract" section of ``docs/DESIGN.md`` for the full contract.
"""

from .io import atomic_write_json, atomic_write_text
from .telemetry import (
    NULL_TELEMETRY,
    CounterCost,
    NullTelemetry,
    Telemetry,
    TelemetrySnapshot,
    as_telemetry,
    is_deterministic_counter,
)
from .trace import (
    TRACE_SCHEMA_VERSION,
    TraceSchemaError,
    host_info,
    read_trace,
    render_trace,
    validate_trace,
    write_trace,
)

__all__ = [
    "CounterCost",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "TRACE_SCHEMA_VERSION",
    "Telemetry",
    "TelemetrySnapshot",
    "TraceSchemaError",
    "as_telemetry",
    "atomic_write_json",
    "atomic_write_text",
    "host_info",
    "is_deterministic_counter",
    "read_trace",
    "render_trace",
    "validate_trace",
    "write_trace",
]
