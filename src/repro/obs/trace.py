"""Structured JSONL trace export for telemetry (`--trace FILE` / ``REPRO_TRACE``).

The trace is a post-run dump of a :class:`~repro.obs.telemetry.Telemetry`
object as one JSON object per line.  Schema **v1** (validated by
:func:`validate_trace` and documented in ``docs/DESIGN.md``):

* the first record is ``{"type": "meta", "schema": 1, "host": {...}}``;
* every later record has a ``type`` drawn from ``{"counter", "gauge",
  "span", "event", "warning"}``:

  - ``counter``: ``{"type", "name", "value"}``
  - ``gauge``: ``{"type", "name", "value"}``
  - ``span``: ``{"type", "path": [..], "count", "seconds"}`` — ``path`` is a
    list because span names themselves contain dots (``"oracle.build"``);
  - ``event``: ``{"type", "name", "fields": {..}}``
  - ``warning``: ``{"type", "name", "message"}``

Counters are emitted in sorted-name order and spans in first-entry order, so
two runs with the same deterministic counters produce traces whose counter
records diff cleanly.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Any, Iterable

from ..exceptions import ReproError
from .io import atomic_write_text

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "TraceSchemaError",
    "host_info",
    "read_trace",
    "render_trace",
    "validate_trace",
    "write_trace",
]

#: Version stamped into every trace's leading ``meta`` record.
TRACE_SCHEMA_VERSION = 1

#: Record types allowed after the ``meta`` header, with their required keys.
_RECORD_FIELDS: dict[str, set[str]] = {
    "counter": {"type", "name", "value"},
    "gauge": {"type", "name", "value"},
    "span": {"type", "path", "count", "seconds"},
    "event": {"type", "name", "fields"},
    "warning": {"type", "name", "message"},
}


class TraceSchemaError(ReproError):
    """Raised when a trace file does not conform to the documented schema."""


def host_info() -> dict[str, Any]:
    """Execution-environment description embedded in the ``meta`` record.

    Wall-clock numbers are meaningless without knowing what produced them;
    this is the minimal context needed to compare two traces.
    """
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def trace_records(telemetry: Any) -> list[dict[str, Any]]:
    """Flatten a telemetry object into schema-v1 records (meta first)."""
    records: list[dict[str, Any]] = [
        {"type": "meta", "schema": TRACE_SCHEMA_VERSION, "host": host_info()}
    ]
    counters = telemetry.counters
    for name in sorted(counters):
        records.append({"type": "counter", "name": name, "value": counters[name]})
    gauges = telemetry.gauges
    for name in sorted(gauges):
        records.append({"type": "gauge", "name": name, "value": gauges[name]})
    for path, count, seconds in telemetry.span_table():
        records.append(
            {"type": "span", "path": list(path), "count": count, "seconds": seconds}
        )
    for event in telemetry.events:
        records.append(dict(event))
    return records


def render_trace(telemetry: Any) -> str:
    """Serialize a telemetry object to JSONL text (trailing newline included)."""
    lines = [
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in trace_records(telemetry)
    ]
    return "\n".join(lines) + "\n"


def write_trace(telemetry: Any, path: str | Path) -> Path:
    """Atomically write a telemetry object's JSONL trace to ``path``."""
    path = Path(path)
    atomic_write_text(path, render_trace(telemetry))
    return path


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL trace file into its records (no schema validation)."""
    records: list[dict[str, Any]] = []
    text = Path(path).read_text()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise TraceSchemaError(
                f"trace line {lineno} is not valid JSON: {error}"
            ) from None
        records.append(record)
    return records


def validate_trace(records: Iterable[dict[str, Any]]) -> int:
    """Validate schema-v1 records; return the record count (meta included).

    Raises :class:`TraceSchemaError` naming the first offending record.
    """
    records = list(records)
    if not records:
        raise TraceSchemaError("trace is empty; expected a leading meta record")
    head = records[0]
    if not isinstance(head, dict) or head.get("type") != "meta":
        raise TraceSchemaError("first trace record must have type 'meta'")
    if head.get("schema") != TRACE_SCHEMA_VERSION:
        raise TraceSchemaError(
            f"unsupported trace schema {head.get('schema')!r}; "
            f"this reader understands version {TRACE_SCHEMA_VERSION}"
        )
    if not isinstance(head.get("host"), dict):
        raise TraceSchemaError("meta record must carry a 'host' object")
    for index, record in enumerate(records[1:], start=2):
        if not isinstance(record, dict):
            raise TraceSchemaError(f"trace record {index} is not an object")
        kind = record.get("type")
        required = _RECORD_FIELDS.get(kind)
        if required is None:
            raise TraceSchemaError(
                f"trace record {index} has unknown type {kind!r}; expected one "
                f"of: {', '.join(sorted(_RECORD_FIELDS))}"
            )
        missing = required - set(record)
        if missing:
            raise TraceSchemaError(
                f"trace record {index} ({kind}) is missing required "
                f"key(s): {', '.join(sorted(missing))}"
            )
        if kind == "span" and not isinstance(record["path"], list):
            raise TraceSchemaError(
                f"trace record {index} (span) 'path' must be a list of names"
            )
    return len(records)
