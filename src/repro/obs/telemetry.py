"""Run-scoped telemetry: named counters, gauges, and hierarchical timed spans.

The paper's methodology is cost *accounting* — traversal cost and sample
size instead of wall-clock time — but understanding the implementation
(where does the time go? how many bytes cross the process-pool boundary?)
needs wall-clock observability too.  :class:`Telemetry` is the one object
that carries both kinds of signal through a run:

* **counters** — monotonically accumulated ``name -> number`` totals.  By
  convention, counters outside the ``runtime.`` namespace and not ending in
  ``_seconds``/``_bytes`` are *deterministic*: they are functions of the
  spec and seed alone and are identical for every ``jobs`` value (the
  traversal-cost counters are the canonical example).  ``runtime.*`` and
  ``*_seconds``/``*_bytes`` counters describe the execution environment and
  may differ between machines or worker counts.
* **gauges** — last-write-wins observations (``name -> value``).
* **spans** — hierarchical timed sections (``with tel.span("oracle.build")``)
  aggregated by path: entering the same name under the same parent twice
  accumulates ``count`` and ``seconds`` on one node, so the span tree's
  *shape* is deterministic even though its times are not.
* **events / warnings** — an append-only structured event stream, exported
  as JSONL by :mod:`repro.obs.trace`; :meth:`Telemetry.warn_once` emits a
  warning event (and one stderr line) at most once per key.

A run that does not opt in pays almost nothing: every entry point defaults
to :data:`NULL_TELEMETRY`, a strict no-op whose methods do nothing and whose
``span`` returns a shared reusable context manager — the disabled-mode cost
is one attribute check, and all outputs stay byte-identical (pinned by the
CLI golden tests and ``tests/obs``).

Worker processes do not share the parent's object.  Instead the runtime
measures per-chunk metrics worker-side and the parent merges them **in chunk
(task) order** (see :func:`repro.runtime.engine.instrumented_map`), so the
merged counters are independent of which worker finished first.
:meth:`Telemetry.snapshot` / :meth:`Telemetry.merge` implement the same
deterministic merge for callers that aggregate whole telemetry objects.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass
from typing import Any, Mapping

from ..diffusion.costs import CostReport, TraversalCost

__all__ = [
    "CounterCost",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "TelemetrySnapshot",
    "as_telemetry",
    "is_deterministic_counter",
]


def is_deterministic_counter(name: str) -> bool:
    """Whether a counter name is draw-deterministic by the naming convention.

    Deterministic counters depend only on the spec and the seed: equal for
    every ``jobs`` value, every chunk layout, and every machine.  The
    convention (documented in ``docs/DESIGN.md``): everything outside the
    ``runtime.`` namespace whose name does not end in ``_seconds`` or
    ``_bytes``.
    """
    if name.startswith("runtime."):
        return False
    return not (name.endswith("_seconds") or name.endswith("_bytes"))


@dataclass
class _SpanNode:
    """Aggregated state of one span path: entry count and total seconds."""

    count: int = 0
    seconds: float = 0.0


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Immutable, picklable capture of a telemetry object's state.

    The exchange format between processes: a worker snapshots its local
    telemetry, the parent merges the snapshots back in task order
    (:meth:`Telemetry.merge`), and the result is independent of worker
    scheduling.
    """

    counters: tuple[tuple[str, int | float], ...] = ()
    gauges: tuple[tuple[str, float], ...] = ()
    spans: tuple[tuple[tuple[str, ...], int, float], ...] = ()
    events: tuple[dict[str, Any], ...] = ()


class _Span:
    """Reusable span guard: measures one enter/exit and reports to the owner."""

    __slots__ = ("_telemetry", "_path", "_start")

    def __init__(self, telemetry: "Telemetry", path: tuple[str, ...]) -> None:
        self._telemetry = telemetry
        self._path = path
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._telemetry._enter_span(self._path)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._start
        self._telemetry._exit_span(self._path, elapsed)


class Telemetry:
    """Mutable telemetry accumulator carried on :class:`~repro.context.RunContext`.

    Not thread-safe (one per run, like the run's RNG); picklable state is
    exported via :meth:`snapshot`, never by pickling the object itself.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, int | float] = {}
        self._gauges: dict[str, float] = {}
        self._spans: dict[tuple[str, ...], _SpanNode] = {}
        self._stack: tuple[str, ...] = ()
        self._events: list[dict[str, Any]] = []
        self._warned: set[str] = set()

    # ------------------------------------------------------------------ #
    # counters and gauges
    # ------------------------------------------------------------------ #
    def incr(self, name: str, value: int | float = 1) -> None:
        """Accumulate ``value`` onto the counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record a last-write-wins observation."""
        self._gauges[name] = value

    @property
    def counters(self) -> Mapping[str, int | float]:
        """Read-only view of the counter totals."""
        return dict(self._counters)

    @property
    def gauges(self) -> Mapping[str, float]:
        """Read-only view of the gauges."""
        return dict(self._gauges)

    def deterministic_counters(self) -> dict[str, int | float]:
        """The draw-deterministic counters (see :func:`is_deterministic_counter`).

        These must be identical for ``jobs=1`` and ``jobs=N`` runs of the
        same spec — the property the determinism tests pin.
        """
        return {
            name: value
            for name, value in self._counters.items()
            if is_deterministic_counter(name)
        }

    # ------------------------------------------------------------------ #
    # spans
    # ------------------------------------------------------------------ #
    def span(self, name: str) -> _Span:
        """A context manager timing one named section under the current span.

        Re-entering the same name under the same parent aggregates into one
        node (count and total seconds), keeping the tree's shape independent
        of how often a phase runs.
        """
        return _Span(self, self._stack + (name,))

    def _enter_span(self, path: tuple[str, ...]) -> None:
        self._stack = path
        if path not in self._spans:
            self._spans[path] = _SpanNode()

    def _exit_span(self, path: tuple[str, ...], elapsed: float) -> None:
        node = self._spans[path]
        node.count += 1
        node.seconds += elapsed
        self._stack = path[:-1]

    def span_table(self) -> list[tuple[tuple[str, ...], int, float]]:
        """All span nodes as ``(path, count, seconds)`` rows in first-entry order."""
        return [
            (path, node.count, node.seconds) for path, node in self._spans.items()
        ]

    def span_seconds(self, *path: str) -> float:
        """Total seconds of the span node at ``path`` (0.0 when never entered)."""
        node = self._spans.get(tuple(path))
        return node.seconds if node is not None else 0.0

    def span_count(self, *path: str) -> int:
        """Entry count of the span node at ``path`` (0 when never entered)."""
        node = self._spans.get(tuple(path))
        return node.count if node is not None else 0

    # ------------------------------------------------------------------ #
    # events and warnings
    # ------------------------------------------------------------------ #
    def event(self, name: str, **fields: Any) -> None:
        """Append a structured event to the run's event stream."""
        self._events.append({"type": "event", "name": name, "fields": fields})

    def warn_once(self, key: str, message: str) -> bool:
        """Emit a warning event (and one stderr line) at most once per ``key``.

        Returns whether the warning was emitted by this call.
        """
        if key in self._warned:
            return False
        self._warned.add(key)
        self._events.append({"type": "warning", "name": key, "message": message})
        print(f"repro: warning: {message}", file=sys.stderr)
        return True

    @property
    def events(self) -> tuple[dict[str, Any], ...]:
        """The event stream so far (events and warnings, in emission order)."""
        return tuple(self._events)

    def check_jobs(self, jobs: int | None) -> None:
        """Warn once when a requested worker count oversubscribes the host.

        ``jobs`` above ``os.cpu_count()`` silently degrades to time-sharing
        (the PR 2 container benchmarks recorded speedup < 1 exactly this
        way), so the condition is surfaced through the event stream.
        """
        if jobs is None:
            return
        cpu = os.cpu_count()
        if cpu is not None and jobs > cpu:
            self.warn_once(
                "jobs.oversubscribed",
                f"jobs={jobs} exceeds os.cpu_count()={cpu}; worker processes "
                "will time-share cores and parallel speedup will degrade",
            )

    # ------------------------------------------------------------------ #
    # cost accounting as counters
    # ------------------------------------------------------------------ #
    def record_cost(
        self,
        report: CostReport,
        *,
        traversal_key: str = "traversal",
        sample_key: str = "sample",
    ) -> None:
        """Re-express a :class:`~repro.diffusion.costs.CostReport` as counters.

        The counter totals reproduce the legacy ``TraversalCost`` /
        ``SampleSize`` totals exactly — same integers, just accumulated on
        the telemetry layer.
        """
        self.incr(f"{traversal_key}.vertices", report.traversal.vertices)
        self.incr(f"{traversal_key}.edges", report.traversal.edges)
        self.incr(f"{sample_key}.vertices", report.sample_size.vertices)
        self.incr(f"{sample_key}.edges", report.sample_size.edges)

    def cost(self, prefix: str = "traversal") -> "CounterCost":
        """A ``TraversalCost``-compatible accumulator writing these counters."""
        return CounterCost(self, prefix)

    def traversal_view(self, prefix: str = "traversal") -> TraversalCost:
        """The legacy :class:`TraversalCost` type as a view over the counters."""
        return TraversalCost(
            int(self._counters.get(f"{prefix}.vertices", 0)),
            int(self._counters.get(f"{prefix}.edges", 0)),
        )

    # ------------------------------------------------------------------ #
    # snapshot / merge (the worker exchange format)
    # ------------------------------------------------------------------ #
    def snapshot(self) -> TelemetrySnapshot:
        """Capture the current state as an immutable picklable snapshot."""
        return TelemetrySnapshot(
            counters=tuple(self._counters.items()),
            gauges=tuple(self._gauges.items()),
            spans=tuple(
                (path, node.count, node.seconds)
                for path, node in self._spans.items()
            ),
            events=tuple(dict(event) for event in self._events),
        )

    def merge(self, other: "TelemetrySnapshot | Telemetry") -> None:
        """Merge a snapshot (or another telemetry) into this one in place.

        Counters and span times/counts are summed, gauges are last-write-
        wins, events are appended.  Merging the same snapshots in the same
        order always yields the same state — callers (the runtime engine)
        merge in task order to keep the result scheduling-independent.
        """
        snap = other.snapshot() if isinstance(other, Telemetry) else other
        for name, value in snap.counters:
            self.incr(name, value)
        for name, value in snap.gauges:
            self.gauge(name, value)
        for path, count, seconds in snap.spans:
            path = tuple(path)
            node = self._spans.get(path)
            if node is None:
                node = self._spans[path] = _SpanNode()
            node.count += count
            node.seconds += seconds
        self._events.extend(dict(event) for event in snap.events)

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible export: sorted counters/gauges, nested span tree."""
        return {
            "counters": {name: self._counters[name] for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name] for name in sorted(self._gauges)},
            "spans": self._span_tree(),
            "events": [dict(event) for event in self._events],
        }

    def _span_tree(self) -> list[dict[str, Any]]:
        """Nest the span table into a tree (children under their parent path)."""
        nodes: dict[tuple[str, ...], dict[str, Any]] = {}
        roots: list[dict[str, Any]] = []
        for path, node in self._spans.items():
            entry = {
                "name": path[-1],
                "count": node.count,
                "seconds": node.seconds,
                "children": [],
            }
            nodes[path] = entry
            parent = nodes.get(path[:-1])
            (parent["children"] if parent is not None else roots).append(entry)
        return roots

    def render_profile(self) -> str:
        """Human-readable profile: the span tree plus the counter totals."""
        lines = ["telemetry profile"]
        if self._spans:
            lines.append("  spans:")
            for path, node in self._spans.items():
                indent = "    " + "  " * (len(path) - 1)
                label = f"{indent}{path[-1]}"
                lines.append(f"{label:<44s} {node.count:>5d}x {node.seconds:>9.3f}s")
        if self._counters:
            lines.append("  counters:")
            for name in sorted(self._counters):
                value = self._counters[name]
                rendered = f"{value:.6f}" if isinstance(value, float) else str(value)
                lines.append(f"    {name:<40s} {rendered}")
        if self._gauges:
            lines.append("  gauges:")
            for name in sorted(self._gauges):
                lines.append(f"    {name:<40s} {self._gauges[name]}")
        warnings = [event for event in self._events if event["type"] == "warning"]
        if warnings:
            lines.append("  warnings:")
            for event in warnings:
                lines.append(f"    {event['name']}: {event['message']}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Telemetry(counters={len(self._counters)}, "
            f"spans={len(self._spans)}, events={len(self._events)})"
        )


class CounterCost:
    """A :class:`~repro.diffusion.costs.TraversalCost`-compatible accumulator
    whose writes land on telemetry counters.

    This is the "TraversalCost as counters" bridge: any kernel accepting a
    ``cost=`` accumulator (``sample_rr_set``, ``simulate_cascade``,
    ``reachable_set``, ...) can be driven by a ``CounterCost`` instead of a
    plain ``TraversalCost`` and produces byte-identical results while the
    totals accumulate as ``<prefix>.vertices`` / ``<prefix>.edges`` counters
    (read back as the legacy type via :meth:`Telemetry.traversal_view`).
    """

    __slots__ = ("_telemetry", "_vertices_key", "_edges_key")

    def __init__(self, telemetry: Telemetry, prefix: str = "traversal") -> None:
        self._telemetry = telemetry
        self._vertices_key = f"{prefix}.vertices"
        self._edges_key = f"{prefix}.edges"

    def add_vertices(self, count: int = 1) -> None:
        """Record that ``count`` vertices were examined."""
        self._telemetry.incr(self._vertices_key, int(count))

    def add_edges(self, count: int = 1) -> None:
        """Record that ``count`` edges were examined."""
        self._telemetry.incr(self._edges_key, int(count))

    def merge(self, other: TraversalCost) -> None:
        """Accumulate a plain counter pair (duck-typed like ``TraversalCost``)."""
        self.add_vertices(other.vertices)
        self.add_edges(other.edges)

    @property
    def vertices(self) -> int:
        """Vertices examined so far (read back from the counter)."""
        return int(self._telemetry.counters.get(self._vertices_key, 0))

    @property
    def edges(self) -> int:
        """Edges examined so far (read back from the counter)."""
        return int(self._telemetry.counters.get(self._edges_key, 0))

    @property
    def total(self) -> int:
        """Vertices plus edges (the paper's combined cost)."""
        return self.vertices + self.edges

    def snapshot(self) -> TraversalCost:
        """An independent legacy-typed copy of the current counts."""
        return TraversalCost(self.vertices, self.edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CounterCost(vertices={self.vertices}, edges={self.edges})"


class _NullSpan:
    """Shared no-op span guard (one instance for the whole process)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Strict no-op telemetry: the default when nobody asked to observe.

    Every method does nothing and allocates nothing (``span`` returns one
    shared guard), so threading telemetry through the hot paths costs a
    single attribute check when disabled.  All outputs are byte-identical
    with and without it — pinned by the golden tests.
    """

    enabled = False

    __slots__ = ()

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def incr(self, name: str, value: int | float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    def warn_once(self, key: str, message: str) -> bool:
        return False

    def check_jobs(self, jobs: int | None) -> None:
        pass

    def record_cost(self, report: CostReport, **kwargs: Any) -> None:
        pass

    def cost(self, prefix: str = "traversal") -> TraversalCost:
        # A throwaway accumulator: writes are absorbed, nothing is recorded.
        return TraversalCost()

    def traversal_view(self, prefix: str = "traversal") -> TraversalCost:
        return TraversalCost()

    @property
    def counters(self) -> Mapping[str, int | float]:
        return {}

    @property
    def gauges(self) -> Mapping[str, float]:
        return {}

    @property
    def events(self) -> tuple[dict[str, Any], ...]:
        return ()

    def deterministic_counters(self) -> dict[str, int | float]:
        return {}

    def span_table(self) -> list[tuple[tuple[str, ...], int, float]]:
        return []

    def span_seconds(self, *path: str) -> float:
        return 0.0

    def span_count(self, *path: str) -> int:
        return 0

    def snapshot(self) -> TelemetrySnapshot:
        return TelemetrySnapshot()

    def merge(self, other: "TelemetrySnapshot | Telemetry") -> None:
        pass

    def to_dict(self) -> dict[str, Any]:
        return {}

    def render_profile(self) -> str:
        return "telemetry profile (disabled)"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTelemetry()"


#: The process-wide no-op singleton every entry point defaults to.
NULL_TELEMETRY = NullTelemetry()


def as_telemetry(value: Any) -> "Telemetry | NullTelemetry":
    """Normalise a ``telemetry=`` argument: an instance or ``None`` (= no-op).

    Mirrors :func:`repro.diffusion.models.resolve_model`: ``None`` resolves
    to the strict no-op singleton so call sites can write
    ``tel = as_telemetry(resolved.telemetry)`` and use ``tel`` unconditionally.
    """
    if value is None:
        return NULL_TELEMETRY
    if isinstance(value, (Telemetry, NullTelemetry)):
        return value
    raise TypeError(
        f"telemetry must be a Telemetry, NullTelemetry, or None, "
        f"got {type(value).__name__}"
    )
