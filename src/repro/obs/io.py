"""Atomic file output for results, traces, and benchmark artifacts.

Writes go to a temporary file in the destination's directory and are moved
into place with :func:`os.replace`, so an interrupted run (Ctrl-C mid-write,
OOM kill) can never leave a truncated JSON/JSONL file behind — readers see
either the old content or the complete new content.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

__all__ = ["atomic_write_json", "atomic_write_text"]


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + rename)."""
    path = Path(path)
    # Same directory as the target: os.replace is only atomic within a
    # filesystem, and tempdirs are routinely on a different mount.
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent if str(path.parent) else ".",
        prefix=f".{path.name}.",
        suffix=".tmp",
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path: str | Path, payload: Any, *, indent: int = 2) -> Path:
    """Serialize ``payload`` as JSON and write it atomically to ``path``."""
    return atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")
