"""Plain-text edge-list input/output for influence graphs.

The format is the whitespace-separated edge list used by SNAP and KONECT
exports::

    # optional comment lines
    <source> <target> [probability]

Lines may optionally carry a third column with the influence probability;
when absent the probability defaults to 1.0 (assign a model afterwards with
:func:`repro.graphs.probability.assign_probabilities`).

Duplicate records — the same arc listed twice, or an undirected tie listed in
both orientations when reading with ``directed=False`` — are rejected by
default because each kept arc receives its own IC coin flip; see the
``on_duplicate`` parameter of :func:`read_edge_list` for the recovery
policies.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, TextIO

from ..exceptions import GraphConstructionError
from .builder import GraphBuilder
from .influence_graph import InfluenceGraph


def _iter_records(lines: Iterable[str]) -> Iterable[tuple[int, int, int, float | None]]:
    """Yield ``(line_number, source, target, probability-or-None)`` from raw lines."""
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("%"):
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            raise GraphConstructionError(
                f"line {line_number}: expected 2 or 3 columns, got {len(parts)}"
            )
        try:
            source = int(parts[0])
            target = int(parts[1])
        except ValueError as exc:
            raise GraphConstructionError(
                f"line {line_number}: endpoints must be integers: {line!r}"
            ) from exc
        probability: float | None = None
        if len(parts) == 3:
            try:
                probability = float(parts[2])
            except ValueError as exc:
                raise GraphConstructionError(
                    f"line {line_number}: probability must be a real number: {line!r}"
                ) from exc
        yield line_number, source, target, probability


def read_edge_list(
    path: str | Path,
    *,
    directed: bool = True,
    num_vertices: int | None = None,
    name: str | None = None,
    on_duplicate: str = "error",
) -> InfluenceGraph:
    """Read an influence graph from a text edge list at ``path``.

    Parameters
    ----------
    directed:
        When ``False``, every record also adds the reversed edge.
    num_vertices:
        Optional fixed vertex count (useful when isolated vertices exist
        beyond the largest endpoint id).
    name:
        Graph display name; defaults to the file stem.
    on_duplicate:
        Policy for repeated ``(source, target)`` pairs — real SNAP/KONECT
        exports do contain them (repeated interactions, or an undirected tie
        listed both as ``u v`` and ``v u``, which under ``directed=False``
        would produce each arc twice).  Silently keeping the duplicates gives
        one social tie two independent IC coin flips and inflates every
        influence estimate, so the default is ``"error"``: a
        :class:`GraphConstructionError` naming the offending line (and the
        line of the first occurrence).  ``"first"`` keeps the first
        occurrence, ``"last"`` keeps the last occurrence's probability, and
        ``"allow"`` restores the historical keep-everything behaviour for
        inputs that genuinely encode multi-edges.
    """
    file_path = Path(path)
    builder = GraphBuilder(num_vertices, on_duplicate=on_duplicate)
    with file_path.open("r", encoding="utf-8") as handle:
        for line_number, source, target, probability in _iter_records(handle):
            context = f"line {line_number}"
            builder.add_edge(source, target, probability, context=context)
            if not directed:
                builder.add_edge(target, source, probability, context=context)
    return builder.build(name=name if name is not None else file_path.stem)


def write_edge_list(
    graph: InfluenceGraph,
    path: str | Path,
    *,
    include_probabilities: bool = True,
    header: str | None = None,
) -> None:
    """Write ``graph`` to ``path`` in the plain-text edge-list format."""
    file_path = Path(path)
    with file_path.open("w", encoding="utf-8") as handle:
        _write(graph, handle, include_probabilities=include_probabilities, header=header)


def _write(
    graph: InfluenceGraph,
    handle: TextIO,
    *,
    include_probabilities: bool,
    header: str | None,
) -> None:
    if header:
        for line in header.splitlines():
            handle.write(f"# {line}\n")
    handle.write(f"# name={graph.name} n={graph.num_vertices} m={graph.num_edges}\n")
    for edge in graph.edges():
        if include_probabilities:
            handle.write(f"{edge.source} {edge.target} {edge.probability:.17g}\n")
        else:
            handle.write(f"{edge.source} {edge.target}\n")


def round_trip_equal(graph: InfluenceGraph, other: InfluenceGraph) -> bool:
    """Return whether two graphs contain the same edge multiset with equal probabilities.

    Unlike ``graph == other`` this ignores the display name, which changes on
    write/read round trips.
    """
    if graph.num_vertices != other.num_vertices or graph.num_edges != other.num_edges:
        return False
    first = sorted(
        (e.source, e.target, round(e.probability, 12)) for e in graph.edges()
    )
    second = sorted(
        (e.source, e.target, round(e.probability, 12)) for e in other.edges()
    )
    return first == second
