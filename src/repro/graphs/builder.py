"""Incremental construction of :class:`~repro.graphs.influence_graph.InfluenceGraph`.

The builder accumulates edges one at a time (or in bulk) and produces an
immutable CSR graph at the end.  It is the single entry point used by the
edge-list reader, the random-graph generators, and the dataset registry, so
validation (self-loops, probability range, duplicate handling) lives in one
place.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..exceptions import GraphConstructionError
from .._validation import require_probability
from .influence_graph import InfluenceGraph


class GraphBuilder:
    """Accumulates directed edges and builds an :class:`InfluenceGraph`.

    Parameters
    ----------
    num_vertices:
        Optional fixed vertex count.  If omitted, the vertex count is inferred
        as ``max(endpoint) + 1`` when :meth:`build` is called.
    default_probability:
        Probability assigned to edges added without an explicit probability.
    allow_duplicate_edges:
        If ``False`` (default), adding the same ``(source, target)`` pair twice
        raises; if ``True``, parallel edges are kept.
    """

    def __init__(
        self,
        num_vertices: int | None = None,
        *,
        default_probability: float = 1.0,
        allow_duplicate_edges: bool = False,
    ) -> None:
        if num_vertices is not None and num_vertices < 0:
            raise GraphConstructionError(f"num_vertices must be >= 0, got {num_vertices}")
        self._num_vertices = num_vertices
        self._default_probability = require_probability(
            default_probability, "default_probability"
        )
        self._allow_duplicates = bool(allow_duplicate_edges)
        self._sources: list[int] = []
        self._targets: list[int] = []
        self._probabilities: list[float] = []
        self._seen: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------ #
    @property
    def num_edges_added(self) -> int:
        """Number of edges accumulated so far."""
        return len(self._sources)

    def add_edge(self, source: int, target: int, probability: float | None = None) -> None:
        """Add one directed edge ``source -> target``.

        Raises
        ------
        GraphConstructionError
            If the edge is a self-loop, repeats an existing edge while
            duplicates are disallowed, or has endpoints outside a fixed
            vertex count.
        """
        src = int(source)
        dst = int(target)
        if src < 0 or dst < 0:
            raise GraphConstructionError(f"vertex ids must be non-negative, got ({src}, {dst})")
        if src == dst:
            raise GraphConstructionError(f"self-loop ({src}, {dst}) is not supported")
        if self._num_vertices is not None and (
            src >= self._num_vertices or dst >= self._num_vertices
        ):
            raise GraphConstructionError(
                f"edge ({src}, {dst}) exceeds fixed vertex count {self._num_vertices}"
            )
        if not self._allow_duplicates:
            key = (src, dst)
            if key in self._seen:
                raise GraphConstructionError(f"duplicate edge ({src}, {dst})")
            self._seen.add(key)
        prob = (
            self._default_probability
            if probability is None
            else require_probability(probability, "probability")
        )
        self._sources.append(src)
        self._targets.append(dst)
        self._probabilities.append(prob)

    def add_edges(
        self, edges: Iterable[tuple[int, int] | tuple[int, int, float]]
    ) -> None:
        """Add many edges; each item is ``(source, target)`` or ``(source, target, p)``."""
        for edge in edges:
            if len(edge) == 2:
                self.add_edge(edge[0], edge[1])
            elif len(edge) == 3:
                self.add_edge(edge[0], edge[1], edge[2])
            else:
                raise GraphConstructionError(
                    f"edge tuples must have 2 or 3 elements, got {edge!r}"
                )

    def add_undirected_edge(
        self, u: int, v: int, probability: float | None = None
    ) -> None:
        """Add both directions of an undirected edge ``{u, v}``."""
        self.add_edge(u, v, probability)
        self.add_edge(v, u, probability)

    def has_edge(self, source: int, target: int) -> bool:
        """Return whether ``source -> target`` was already added (tracked only
        when duplicate edges are disallowed)."""
        if self._allow_duplicates:
            raise GraphConstructionError(
                "has_edge is only tracked when allow_duplicate_edges=False"
            )
        return (int(source), int(target)) in self._seen

    def build(self, *, name: str = "graph") -> InfluenceGraph:
        """Construct the immutable CSR influence graph."""
        if self._num_vertices is not None:
            n = self._num_vertices
        elif self._sources:
            n = int(max(max(self._sources), max(self._targets)) + 1)
        else:
            n = 0
        return InfluenceGraph(
            n,
            np.asarray(self._sources, dtype=np.int64),
            np.asarray(self._targets, dtype=np.int64),
            np.asarray(self._probabilities, dtype=np.float64),
            name=name,
        )


def graph_from_edge_list(
    edges: Sequence[tuple[int, int]] | np.ndarray,
    *,
    num_vertices: int | None = None,
    probability: float = 1.0,
    directed: bool = True,
    name: str = "graph",
) -> InfluenceGraph:
    """Build a graph directly from a sequence of ``(source, target)`` pairs.

    When ``directed`` is ``False``, each pair contributes both directions,
    matching how the paper turns undirected network data into influence
    graphs (e.g. Karate: 78 undirected edges become ``m = 156``).
    """
    builder = GraphBuilder(
        num_vertices, default_probability=probability, allow_duplicate_edges=True
    )
    for u, v in edges:
        if directed:
            builder.add_edge(int(u), int(v))
        else:
            builder.add_undirected_edge(int(u), int(v))
    return builder.build(name=name)
