"""Incremental construction of :class:`~repro.graphs.influence_graph.InfluenceGraph`.

The builder accumulates edges one at a time (or in bulk) and produces an
immutable CSR graph at the end.  It is the single entry point used by the
edge-list reader, the random-graph generators, and the dataset registry, so
validation (self-loops, probability range, duplicate handling) lives in one
place.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..exceptions import GraphConstructionError
from .._validation import require_probability
from .influence_graph import InfluenceGraph


#: Valid duplicate-edge policies for :class:`GraphBuilder` and the edge-list
#: reader: reject with an error, keep only the first or the last occurrence's
#: probability, or keep genuine parallel edges.
DUPLICATE_POLICIES: tuple[str, ...] = ("error", "first", "last", "allow")


class GraphBuilder:
    """Accumulates directed edges and builds an :class:`InfluenceGraph`.

    Parameters
    ----------
    num_vertices:
        Optional fixed vertex count.  If omitted, the vertex count is inferred
        as ``max(endpoint) + 1`` when :meth:`build` is called.
    default_probability:
        Probability assigned to edges added without an explicit probability.
    allow_duplicate_edges:
        Legacy boolean shorthand: ``True`` is ``on_duplicate="allow"``,
        ``False`` (default) is ``on_duplicate="error"``.
    on_duplicate:
        What to do when the same ``(source, target)`` pair is added twice:
        ``"error"`` (default) raises a :class:`GraphConstructionError`
        naming the edge (and the reader's line, when provided via
        ``add_edge(context=...)``); ``"first"`` silently keeps the first
        occurrence; ``"last"`` keeps the edge at its first position but takes
        the probability of the last occurrence; ``"allow"`` keeps genuine
        parallel edges (one coin flip each — only correct when the input
        really contains multi-edges, e.g. interaction multigraphs).
    """

    def __init__(
        self,
        num_vertices: int | None = None,
        *,
        default_probability: float = 1.0,
        allow_duplicate_edges: bool = False,
        on_duplicate: str | None = None,
    ) -> None:
        if num_vertices is not None and num_vertices < 0:
            raise GraphConstructionError(f"num_vertices must be >= 0, got {num_vertices}")
        self._num_vertices = num_vertices
        self._default_probability = require_probability(
            default_probability, "default_probability"
        )
        if on_duplicate is None:
            on_duplicate = "allow" if allow_duplicate_edges else "error"
        elif on_duplicate not in DUPLICATE_POLICIES:
            raise GraphConstructionError(
                f"on_duplicate must be one of {DUPLICATE_POLICIES}, got {on_duplicate!r}"
            )
        elif allow_duplicate_edges and on_duplicate != "allow":
            raise GraphConstructionError(
                "allow_duplicate_edges=True conflicts with "
                f"on_duplicate={on_duplicate!r}; pass only one of the two"
            )
        self._on_duplicate = on_duplicate
        self._sources: list[int] = []
        self._targets: list[int] = []
        self._probabilities: list[float] = []
        #: ``(source, target) -> (edge index, context of the first add)``.
        self._seen: dict[tuple[int, int], tuple[int, str | None]] = {}

    @property
    def _allow_duplicates(self) -> bool:
        return self._on_duplicate == "allow"

    # ------------------------------------------------------------------ #
    @property
    def num_edges_added(self) -> int:
        """Number of edges accumulated so far."""
        return len(self._sources)

    def add_edge(
        self,
        source: int,
        target: int,
        probability: float | None = None,
        *,
        context: str | None = None,
    ) -> None:
        """Add one directed edge ``source -> target``.

        ``context`` is an optional provenance string (e.g. ``"line 7"`` from
        the edge-list reader) woven into duplicate-edge errors so the
        offending input location is named.

        Raises
        ------
        GraphConstructionError
            If the edge is a self-loop, repeats an existing edge under the
            ``"error"`` duplicate policy, or has endpoints outside a fixed
            vertex count.
        """
        src = int(source)
        dst = int(target)
        if src < 0 or dst < 0:
            raise GraphConstructionError(f"vertex ids must be non-negative, got ({src}, {dst})")
        if src == dst:
            raise GraphConstructionError(f"self-loop ({src}, {dst}) is not supported")
        if self._num_vertices is not None and (
            src >= self._num_vertices or dst >= self._num_vertices
        ):
            raise GraphConstructionError(
                f"edge ({src}, {dst}) exceeds fixed vertex count {self._num_vertices}"
            )
        prob = (
            self._default_probability
            if probability is None
            else require_probability(probability, "probability")
        )
        if self._on_duplicate != "allow":
            key = (src, dst)
            earlier = self._seen.get(key)
            if earlier is not None:
                earlier_index, earlier_context = earlier
                if self._on_duplicate == "error":
                    where = f"{context}: " if context else ""
                    first_seen = (
                        f" (first listed at {earlier_context})" if earlier_context else ""
                    )
                    raise GraphConstructionError(
                        f"{where}duplicate edge ({src}, {dst}){first_seen}; one social "
                        "tie must receive one coin flip — pass on_duplicate="
                        '"first"/"last" to deduplicate or "allow" to keep parallel edges'
                    )
                if self._on_duplicate == "last":
                    self._probabilities[earlier_index] = prob
                return
            self._seen[key] = (len(self._sources), context)
        self._sources.append(src)
        self._targets.append(dst)
        self._probabilities.append(prob)

    def add_edges(
        self, edges: Iterable[tuple[int, int] | tuple[int, int, float]]
    ) -> None:
        """Add many edges; each item is ``(source, target)`` or ``(source, target, p)``."""
        for edge in edges:
            if len(edge) == 2:
                self.add_edge(edge[0], edge[1])
            elif len(edge) == 3:
                self.add_edge(edge[0], edge[1], edge[2])
            else:
                raise GraphConstructionError(
                    f"edge tuples must have 2 or 3 elements, got {edge!r}"
                )

    def add_undirected_edge(
        self,
        u: int,
        v: int,
        probability: float | None = None,
        *,
        context: str | None = None,
    ) -> None:
        """Add both directions of an undirected edge ``{u, v}``."""
        self.add_edge(u, v, probability, context=context)
        self.add_edge(v, u, probability, context=context)

    def has_edge(self, source: int, target: int) -> bool:
        """Return whether ``source -> target`` was already added (tracked only
        when duplicate edges are disallowed)."""
        if self._allow_duplicates:
            raise GraphConstructionError(
                'has_edge is only tracked when the duplicate policy is not "allow"'
            )
        return (int(source), int(target)) in self._seen

    def build(self, *, name: str = "graph") -> InfluenceGraph:
        """Construct the immutable CSR influence graph."""
        if self._num_vertices is not None:
            n = self._num_vertices
        elif self._sources:
            n = int(max(max(self._sources), max(self._targets)) + 1)
        else:
            n = 0
        return InfluenceGraph(
            n,
            np.asarray(self._sources, dtype=np.int64),
            np.asarray(self._targets, dtype=np.int64),
            np.asarray(self._probabilities, dtype=np.float64),
            name=name,
        )


def graph_from_edge_list(
    edges: Sequence[tuple[int, int]] | np.ndarray,
    *,
    num_vertices: int | None = None,
    probability: float = 1.0,
    directed: bool = True,
    name: str = "graph",
) -> InfluenceGraph:
    """Build a graph directly from a sequence of ``(source, target)`` pairs.

    When ``directed`` is ``False``, each pair contributes both directions,
    matching how the paper turns undirected network data into influence
    graphs (e.g. Karate: 78 undirected edges become ``m = 156``).
    """
    builder = GraphBuilder(
        num_vertices, default_probability=probability, allow_duplicate_edges=True
    )
    for u, v in edges:
        if directed:
            builder.add_edge(int(u), int(v))
        else:
            builder.add_undirected_edge(int(u), int(v))
    return builder.build(name=name)
