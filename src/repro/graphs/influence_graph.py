"""Compressed sparse row (CSR) representation of an influence graph.

An *influence graph* ``G = (V, E, p)`` is a directed graph whose edges carry
influence probabilities ``p : E -> (0, 1]`` (Section 2.1 of the paper).  The
class below stores both the forward adjacency (out-edges, used by forward
cascade simulation and snapshot reachability) and the reverse adjacency
(in-edges, used by reverse-reachable-set generation) as CSR arrays, so that
the neighbourhood of a vertex is a contiguous ``numpy`` slice.

Vertices are integers ``0 .. n-1``.  Parallel edges are permitted (the paper's
Karate network counts each undirected edge as two directed edges, and some
KONECT exports contain multi-edges); self-loops are rejected because they can
never change reachability and would only distort traversal-cost accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import GraphConstructionError, InvalidProbabilityError
from .._validation import require_vertex


@dataclass(frozen=True)
class EdgeView:
    """A single directed edge with its influence probability."""

    source: int
    target: int
    probability: float


class InfluenceGraph:
    """Directed influence graph stored in CSR form.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``; vertex ids are ``0 .. n-1``.
    sources, targets:
        Parallel integer arrays of length ``m`` giving edge endpoints.
    probabilities:
        Array of length ``m`` of influence probabilities in ``(0, 1]``.  If
        omitted, every edge receives probability ``1.0`` (a deterministic
        graph), which is convenient for plain reachability computations.
    name:
        Optional human-readable name used in reports.

    Notes
    -----
    Construction sorts edges by source (forward CSR) and by target (reverse
    CSR); the original edge order is not preserved.  The instance is
    immutable: probability re-assignment returns a new graph
    (see :meth:`with_probabilities`).
    """

    def __init__(
        self,
        num_vertices: int,
        sources: Sequence[int] | np.ndarray,
        targets: Sequence[int] | np.ndarray,
        probabilities: Sequence[float] | np.ndarray | None = None,
        *,
        name: str = "graph",
    ) -> None:
        if num_vertices < 0:
            raise GraphConstructionError(f"num_vertices must be >= 0, got {num_vertices}")
        src = np.asarray(sources, dtype=np.int64)
        dst = np.asarray(targets, dtype=np.int64)
        if src.ndim != 1 or dst.ndim != 1 or src.shape != dst.shape:
            raise GraphConstructionError(
                "sources and targets must be one-dimensional arrays of equal length"
            )
        if probabilities is None:
            prob = np.ones(src.shape[0], dtype=np.float64)
        else:
            prob = np.asarray(probabilities, dtype=np.float64)
            if prob.shape != src.shape:
                raise GraphConstructionError(
                    "probabilities must have the same length as sources/targets"
                )
        if src.size:
            if src.min(initial=0) < 0 or dst.min(initial=0) < 0:
                raise GraphConstructionError("vertex ids must be non-negative")
            if src.max(initial=-1) >= num_vertices or dst.max(initial=-1) >= num_vertices:
                raise GraphConstructionError(
                    "edge endpoint exceeds num_vertices - 1"
                )
            if np.any(src == dst):
                raise GraphConstructionError("self-loops are not supported")
            if np.any(prob <= 0.0) or np.any(prob > 1.0):
                raise InvalidProbabilityError(
                    "edge probabilities must lie in the half-open interval (0, 1]"
                )

        self._name = str(name)
        self._num_vertices = int(num_vertices)
        self._num_edges = int(src.shape[0])

        forward_order = np.argsort(src, kind="stable")
        self._out_indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(self._out_indptr, src + 1, 1)
        np.cumsum(self._out_indptr, out=self._out_indptr)
        self._out_targets = dst[forward_order].astype(np.int64, copy=True)
        self._out_probs = prob[forward_order].astype(np.float64, copy=True)

        reverse_order = np.argsort(dst, kind="stable")
        self._in_indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(self._in_indptr, dst + 1, 1)
        np.cumsum(self._in_indptr, out=self._in_indptr)
        self._in_sources = src[reverse_order].astype(np.int64, copy=True)
        self._in_probs = prob[reverse_order].astype(np.float64, copy=True)

        # Retain the source column of the forward ordering so that edges()
        # and transpose() can be reconstructed cheaply.
        self._edge_sources = src[forward_order].astype(np.int64, copy=True)
        self._transpose_cache: "InfluenceGraph | None" = None

        for array in (
            self._out_indptr,
            self._out_targets,
            self._out_probs,
            self._in_indptr,
            self._in_sources,
            self._in_probs,
            self._edge_sources,
        ):
            array.setflags(write=False)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Human-readable graph name."""
        return self._name

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m`` (parallel edges counted separately)."""
        return self._num_edges

    @property
    def vertices(self) -> range:
        """Range over all vertex ids."""
        return range(self._num_vertices)

    @property
    def expected_live_edges(self) -> float:
        """``m~ = sum_e p(e)``: the expected number of live edges in a snapshot."""
        return float(self._out_probs.sum())

    # ------------------------------------------------------------------ #
    # adjacency access
    # ------------------------------------------------------------------ #
    def out_neighbors(self, vertex: int) -> np.ndarray:
        """Targets of all out-edges of ``vertex`` (read-only array view)."""
        v = require_vertex(vertex, self._num_vertices)
        return self._out_targets[self._out_indptr[v] : self._out_indptr[v + 1]]

    def out_probabilities(self, vertex: int) -> np.ndarray:
        """Probabilities of all out-edges of ``vertex``, aligned with out_neighbors."""
        v = require_vertex(vertex, self._num_vertices)
        return self._out_probs[self._out_indptr[v] : self._out_indptr[v + 1]]

    def in_neighbors(self, vertex: int) -> np.ndarray:
        """Sources of all in-edges of ``vertex`` (read-only array view)."""
        v = require_vertex(vertex, self._num_vertices)
        return self._in_sources[self._in_indptr[v] : self._in_indptr[v + 1]]

    def in_probabilities(self, vertex: int) -> np.ndarray:
        """Probabilities of all in-edges of ``vertex``, aligned with in_neighbors."""
        v = require_vertex(vertex, self._num_vertices)
        return self._in_probs[self._in_indptr[v] : self._in_indptr[v + 1]]

    def out_degree(self, vertex: int) -> int:
        """Out-degree ``d+(vertex)``."""
        v = require_vertex(vertex, self._num_vertices)
        return int(self._out_indptr[v + 1] - self._out_indptr[v])

    def in_degree(self, vertex: int) -> int:
        """In-degree ``d-(vertex)``."""
        v = require_vertex(vertex, self._num_vertices)
        return int(self._in_indptr[v + 1] - self._in_indptr[v])

    def out_degrees(self) -> np.ndarray:
        """Array of all out-degrees."""
        return np.diff(self._out_indptr)

    def in_degrees(self) -> np.ndarray:
        """Array of all in-degrees."""
        return np.diff(self._in_indptr)

    # raw CSR views used by the diffusion kernels -------------------------------
    @property
    def out_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Forward CSR triple ``(indptr, targets, probabilities)``."""
        return self._out_indptr, self._out_targets, self._out_probs

    @property
    def in_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Reverse CSR triple ``(indptr, sources, probabilities)``."""
        return self._in_indptr, self._in_sources, self._in_probs

    # ------------------------------------------------------------------ #
    # iteration and derived graphs
    # ------------------------------------------------------------------ #
    def edges(self) -> Iterator[EdgeView]:
        """Iterate over all edges in forward-CSR order."""
        for index in range(self._num_edges):
            yield EdgeView(
                source=int(self._edge_sources[index]),
                target=int(self._out_targets[index]),
                probability=float(self._out_probs[index]),
            )

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return copies of (sources, targets, probabilities) in forward-CSR order."""
        return (
            self._edge_sources.copy(),
            self._out_targets.copy(),
            self._out_probs.copy(),
        )

    def transpose(self) -> "InfluenceGraph":
        """Return the transposed influence graph ``G^T`` (all edges reversed).

        The transpose is built once and cached: both graphs are immutable, so
        repeated callers (reverse sampling over a shared graph, sketch
        construction) share one CSR instead of re-sorting the edge arrays.
        """
        if self._transpose_cache is None:
            self._transpose_cache = InfluenceGraph(
                self._num_vertices,
                self._out_targets,
                self._edge_sources,
                self._out_probs,
                name=f"{self._name}^T",
            )
        return self._transpose_cache

    def with_probabilities(
        self, probabilities: Sequence[float] | np.ndarray, *, name: str | None = None
    ) -> "InfluenceGraph":
        """Return a copy of this graph with per-edge probabilities replaced.

        ``probabilities`` must be aligned with forward-CSR edge order (the
        order produced by :meth:`edges` and :meth:`edge_arrays`).
        """
        return InfluenceGraph(
            self._num_vertices,
            self._edge_sources,
            self._out_targets,
            probabilities,
            name=self._name if name is None else name,
        )

    def with_name(self, name: str) -> "InfluenceGraph":
        """Return the same graph under a different display name."""
        return InfluenceGraph(
            self._num_vertices,
            self._edge_sources,
            self._out_targets,
            self._out_probs,
            name=name,
        )

    def subgraph(self, keep: Iterable[int], *, name: str | None = None) -> "InfluenceGraph":
        """Return the induced subgraph on the vertex subset ``keep``.

        Vertices are relabelled ``0 .. len(keep)-1`` in sorted order of their
        original ids.
        """
        kept = sorted({require_vertex(int(v), self._num_vertices) for v in keep})
        relabel = {old: new for new, old in enumerate(kept)}
        mask = np.zeros(self._num_vertices, dtype=bool)
        mask[kept] = True
        edge_mask = mask[self._edge_sources] & mask[self._out_targets]
        new_sources = np.array(
            [relabel[int(v)] for v in self._edge_sources[edge_mask]], dtype=np.int64
        )
        new_targets = np.array(
            [relabel[int(v)] for v in self._out_targets[edge_mask]], dtype=np.int64
        )
        return InfluenceGraph(
            len(kept),
            new_sources,
            new_targets,
            self._out_probs[edge_mask],
            name=f"{self._name}[{len(kept)}]" if name is None else name,
        )

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        # Drop the cached transpose so pickling a graph (e.g. shipping it to
        # parallel-runtime workers) never doubles the payload.
        state = self.__dict__.copy()
        state["_transpose_cache"] = None
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InfluenceGraph(name={self._name!r}, n={self._num_vertices}, "
            f"m={self._num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InfluenceGraph):
            return NotImplemented
        return (
            self._num_vertices == other._num_vertices
            and self._num_edges == other._num_edges
            and np.array_equal(self._edge_sources, other._edge_sources)
            and np.array_equal(self._out_targets, other._out_targets)
            and np.allclose(self._out_probs, other._out_probs)
        )

    def __hash__(self) -> int:
        return hash((self._num_vertices, self._num_edges, self._name))
