"""Dataset registry mirroring the paper's Table 3 networks.

The paper evaluates eight networks.  Only Zachary's karate club is small and
public-domain enough to embed verbatim; the remaining networks are
SNAP/KONECT downloads that are unavailable offline, so the registry
substitutes structurally matched synthetic proxies (documented per dataset
below and in DESIGN.md §4).  Each entry records the paper's original ``n``
and ``m`` so that reports can show "paper vs. proxy" side by side.

Every dataset is produced by a deterministic builder function of a ``scale``
argument: ``scale=1.0`` builds the default proxy size, smaller values shrink
the proxy proportionally (useful for fast tests and benchmarks), and for the
two huge networks the default size is already far below the paper's because a
pure-Python substrate cannot traverse multi-million-edge graphs within the
session budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..exceptions import InvalidParameterError, UnknownDatasetError
from . import generators
from .builder import graph_from_edge_list
from .influence_graph import InfluenceGraph
from .karate_data import KARATE_EDGES, KARATE_NUM_VERTICES


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata and builder for one registry dataset."""

    name: str
    kind: str
    paper_num_vertices: int
    paper_num_edges: int
    description: str
    substitution: str
    builder: Callable[[float, int], InfluenceGraph]

    def build(self, *, scale: float = 1.0, seed: int = 0) -> InfluenceGraph:
        """Build the dataset graph at the given ``scale`` with the given ``seed``."""
        if scale <= 0:
            raise InvalidParameterError(f"scale must be positive, got {scale}")
        graph = self.builder(scale, seed)
        return graph.with_name(self.name)


def _scaled(value: int, scale: float, minimum: int = 8) -> int:
    """Scale an integer size, never dropping below ``minimum``."""
    return max(minimum, int(round(value * scale)))


# --------------------------------------------------------------------------- #
# builder functions
# --------------------------------------------------------------------------- #
def _build_karate(scale: float, seed: int) -> InfluenceGraph:
    del scale, seed  # real data: fixed size, no randomness
    return graph_from_edge_list(
        KARATE_EDGES,
        num_vertices=KARATE_NUM_VERTICES,
        directed=False,
        name="karate",
    )


def _build_physicians(scale: float, seed: int) -> InfluenceGraph:
    # Paper: 241 vertices, 1,098 directed edges, clustering 0.25, max in-degree 26.
    # Proxy: directed scale-free graph with matched average out-degree (~4.6).
    n = _scaled(241, scale, minimum=40)
    return generators.directed_scale_free(
        n, average_out_degree=4.6, seed=seed, hub_bias=0.4, name="physicians"
    )


def _build_ca_grqc(scale: float, seed: int) -> InfluenceGraph:
    # Paper: 5,242 vertices, 28,968 directed edges, clustering 0.63 (collaboration
    # network with pronounced core-whisker structure).  Proxy: Holme-Kim power-law
    # cluster graph (scale-free + high clustering), default size reduced to keep
    # pure-Python sweeps tractable.
    n = _scaled(2000, scale, minimum=100)
    attachment = 3
    return generators.powerlaw_cluster(
        n, attachment, triangle_probability=0.7, seed=seed, name="ca_grqc"
    )


def _build_wiki_vote(scale: float, seed: int) -> InfluenceGraph:
    # Paper: 7,115 vertices, 103,689 directed edges, very large max in-degree (457)
    # and out-degree (893).  Proxy: directed scale-free with strong hub bias.
    n = _scaled(2500, scale, minimum=100)
    return generators.directed_scale_free(
        n, average_out_degree=14.0, seed=seed, hub_bias=0.85, name="wiki_vote"
    )


def _build_com_youtube(scale: float, seed: int) -> InfluenceGraph:
    # Paper: 1,134,889 vertices, 5,975,248 edges.  A million-vertex graph is far
    # beyond a pure-Python traversal budget, so the proxy keeps the defining
    # ratio m/n ~ 5.3 and the hub-dominated degree profile at a few thousand
    # vertices.  Results on this proxy reproduce the paper's *relative* claims
    # (RIS much cheaper than Snapshot per comparable accuracy on large sparse
    # low-probability graphs), not the absolute numbers.
    n = _scaled(4000, scale, minimum=200)
    return generators.directed_scale_free(
        n, average_out_degree=5.3, seed=seed, hub_bias=0.8, name="com_youtube"
    )


def _build_soc_pokec(scale: float, seed: int) -> InfluenceGraph:
    # Paper: 1,632,802 vertices, 30,622,564 edges (m/n ~ 18.8).  Same substitution
    # rationale as com-Youtube.
    n = _scaled(3000, scale, minimum=200)
    return generators.directed_scale_free(
        n, average_out_degree=18.8, seed=seed, hub_bias=0.7, name="soc_pokec"
    )


def _build_ba_s(scale: float, seed: int) -> InfluenceGraph:
    # Paper: Barabási-Albert, n=1,000, M=1, random edge directions.
    n = _scaled(1000, scale, minimum=20)
    return generators.barabasi_albert(n, 1, seed=seed, orient="random", name="ba_s")


def _build_ba_d(scale: float, seed: int) -> InfluenceGraph:
    # Paper: Barabási-Albert, n=1,000, M=11, random edge directions.
    n = _scaled(1000, scale, minimum=40)
    return generators.barabasi_albert(n, 11, seed=seed, orient="random", name="ba_d")


def _build_core_whisker_demo(scale: float, seed: int) -> InfluenceGraph:
    # Extra dataset (not in the paper's table): an explicit core-whisker graph
    # used by the Figure 5 convergence-contrast bench and the examples.
    core = _scaled(200, scale, minimum=20)
    whiskers = _scaled(60, scale, minimum=5)
    return generators.core_whisker(
        core, whiskers, whisker_length=5, core_degree=8, seed=seed, name="core_whisker_demo"
    )


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
_REGISTRY: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _REGISTRY[spec.name] = spec


_register(
    DatasetSpec(
        name="karate",
        kind="social",
        paper_num_vertices=34,
        paper_num_edges=156,
        description="Zachary's karate club friendships (symmetrised).",
        substitution="none (real data embedded)",
        builder=_build_karate,
    )
)
_register(
    DatasetSpec(
        name="physicians",
        kind="social",
        paper_num_vertices=241,
        paper_num_edges=1098,
        description="Physician innovation-adoption network (KONECT).",
        substitution="directed scale-free proxy with matched n and average degree",
        builder=_build_physicians,
    )
)
_register(
    DatasetSpec(
        name="ca_grqc",
        kind="collaboration",
        paper_num_vertices=5242,
        paper_num_edges=28968,
        description="arXiv GR-QC co-authorship network (SNAP).",
        substitution="Holme-Kim power-law cluster proxy (scale-free + high clustering)",
        builder=_build_ca_grqc,
    )
)
_register(
    DatasetSpec(
        name="wiki_vote",
        kind="voting",
        paper_num_vertices=7115,
        paper_num_edges=103689,
        description="Wikipedia adminship election votes (SNAP).",
        substitution="hub-biased directed scale-free proxy",
        builder=_build_wiki_vote,
    )
)
_register(
    DatasetSpec(
        name="com_youtube",
        kind="social",
        paper_num_vertices=1134889,
        paper_num_edges=5975248,
        description="YouTube friendship network (SNAP).",
        substitution="scaled-down directed scale-free proxy (m/n preserved)",
        builder=_build_com_youtube,
    )
)
_register(
    DatasetSpec(
        name="soc_pokec",
        kind="social",
        paper_num_vertices=1632802,
        paper_num_edges=30622564,
        description="Pokec friendship network (SNAP).",
        substitution="scaled-down directed scale-free proxy (m/n preserved)",
        builder=_build_soc_pokec,
    )
)
_register(
    DatasetSpec(
        name="ba_s",
        kind="synthetic",
        paper_num_vertices=1000,
        paper_num_edges=999,
        description="Sparse Barabási-Albert graph (M=1), random edge directions.",
        substitution="same generative model, different PRNG",
        builder=_build_ba_s,
    )
)
_register(
    DatasetSpec(
        name="ba_d",
        kind="synthetic",
        paper_num_vertices=1000,
        paper_num_edges=10879,
        description="Dense Barabási-Albert graph (M=11), random edge directions.",
        substitution="same generative model, different PRNG",
        builder=_build_ba_d,
    )
)
_register(
    DatasetSpec(
        name="core_whisker_demo",
        kind="synthetic",
        paper_num_vertices=0,
        paper_num_edges=0,
        description="Explicit core + whisker construction (not in the paper's table).",
        substitution="repository extension for ablation of the core-whisker explanation",
        builder=_build_core_whisker_demo,
    )
)

#: Names of the paper's eight networks (in Table 3 order).
PAPER_DATASETS: tuple[str, ...] = (
    "karate",
    "physicians",
    "ca_grqc",
    "wiki_vote",
    "com_youtube",
    "soc_pokec",
    "ba_s",
    "ba_d",
)

#: The small instances for which the paper runs T=1,000 trials.
SMALL_DATASETS: tuple[str, ...] = (
    "karate",
    "physicians",
    "ca_grqc",
    "wiki_vote",
    "ba_s",
    "ba_d",
)


def list_datasets() -> tuple[str, ...]:
    """Names of all registered datasets."""
    return tuple(sorted(_REGISTRY))


def dataset_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` for ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownDatasetError(
            f"unknown dataset {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def load_dataset(name: str, *, scale: float = 1.0, seed: int = 0) -> InfluenceGraph:
    """Build and return the dataset graph called ``name``.

    Parameters
    ----------
    scale:
        Proxy-size multiplier; ``1.0`` is the default documented size.  Real
        embedded datasets (karate) ignore it.
    seed:
        PRNG seed for synthetic proxies; ignored for real data.
    """
    return dataset_spec(name).build(scale=scale, seed=seed)


def register_dataset(spec: DatasetSpec, *, overwrite: bool = False) -> None:
    """Add a user-defined dataset to the registry.

    Raises
    ------
    InvalidParameterError
        If a dataset with the same name exists and ``overwrite`` is ``False``.
    """
    if not overwrite and spec.name in _REGISTRY:
        raise InvalidParameterError(f"dataset {spec.name!r} is already registered")
    _register(spec)
