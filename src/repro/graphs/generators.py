"""Random-graph generators used to build synthetic and proxy networks.

The paper evaluates two Barabási–Albert graphs (``BA_s`` with ``M = 1`` and
``BA_d`` with ``M = 11``, random edge directions) and six real networks.  The
real networks beyond Zachary's karate club are not bundled here, so the
dataset registry (:mod:`repro.graphs.datasets`) substitutes structurally
similar synthetic proxies built from the generators in this module:

* :func:`barabasi_albert` — preferential attachment, scale-free degrees.
* :func:`erdos_renyi` — the G(n, p) baseline with no structure.
* :func:`watts_strogatz` — small-world rewired ring lattice.
* :func:`powerlaw_cluster` — Holme–Kim preferential attachment with triad
  formation, giving both scale-free degrees and high clustering (used for the
  ca-GrQc collaboration-network proxy).
* :func:`directed_scale_free` — directed preferential attachment with
  separate in/out exponents (used for the Wiki-Vote / com-Youtube /
  soc-Pokec proxies).
* :func:`core_whisker` — an explicit core + whiskers construction that
  realises the "core-whisker" decomposition the paper uses to explain
  Figure 5 and Table 8.

All generators are deterministic functions of their ``seed`` argument and
return deterministic-topology :class:`InfluenceGraph` instances whose edge
probabilities are all 1.0; apply a probability model afterwards.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError
from .._validation import (
    require_non_negative_int,
    require_positive_int,
    require_probability,
)
from .builder import GraphBuilder
from .influence_graph import InfluenceGraph


def _orient_randomly(
    undirected_edges: list[tuple[int, int]],
    rng: np.random.Generator,
    *,
    both_directions: bool = False,
) -> list[tuple[int, int]]:
    """Assign a random direction to each undirected edge.

    When ``both_directions`` is ``True`` every edge is emitted in both
    directions instead (symmetrised social networks such as Karate).
    """
    directed: list[tuple[int, int]] = []
    for u, v in undirected_edges:
        if both_directions:
            directed.append((u, v))
            directed.append((v, u))
        elif rng.random() < 0.5:
            directed.append((u, v))
        else:
            directed.append((v, u))
    return directed


def _build(
    edges: list[tuple[int, int]], num_vertices: int, name: str
) -> InfluenceGraph:
    builder = GraphBuilder(num_vertices, allow_duplicate_edges=True)
    for u, v in edges:
        if u != v:
            builder.add_edge(u, v)
    return builder.build(name=name)


# --------------------------------------------------------------------------- #
# classic models
# --------------------------------------------------------------------------- #
def erdos_renyi(
    num_vertices: int,
    edge_probability: float,
    *,
    seed: int = 0,
    directed: bool = True,
    name: str | None = None,
) -> InfluenceGraph:
    """Erdős–Rényi ``G(n, p)`` random graph.

    Each ordered pair (directed) or unordered pair (undirected, then randomly
    oriented) is an edge independently with probability ``edge_probability``.
    """
    n = require_positive_int(num_vertices, "num_vertices")
    p = require_probability(edge_probability, "edge_probability", allow_zero=True)
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    if directed:
        for u in range(n):
            targets = np.nonzero(rng.random(n) < p)[0]
            edges.extend((u, int(v)) for v in targets if int(v) != u)
    else:
        undirected: list[tuple[int, int]] = []
        for u in range(n):
            draws = rng.random(n - u - 1)
            for offset, x in enumerate(draws):
                if x < p:
                    undirected.append((u, u + 1 + offset))
        edges = _orient_randomly(undirected, rng, both_directions=True)
    return _build(edges, n, name or f"er_{n}_{p:g}")


def barabasi_albert(
    num_vertices: int,
    attachment: int,
    *,
    seed: int = 0,
    orient: str = "random",
    name: str | None = None,
) -> InfluenceGraph:
    """Barabási–Albert preferential-attachment graph (Section 4.2.2).

    Starting from a clique on ``attachment + 1`` vertices, each new vertex
    attaches to ``attachment`` existing vertices chosen with probability
    proportional to their current degree.  Following the paper, the resulting
    undirected edges are given random directions (``orient="random"``);
    ``orient="both"`` symmetrises instead.
    """
    n = require_positive_int(num_vertices, "num_vertices")
    m_attach = require_positive_int(attachment, "attachment")
    if m_attach >= n:
        raise InvalidParameterError(
            f"attachment ({m_attach}) must be smaller than num_vertices ({n})"
        )
    if orient not in ("random", "both"):
        raise InvalidParameterError(f"orient must be 'random' or 'both', got {orient!r}")
    rng = np.random.default_rng(seed)

    undirected: list[tuple[int, int]] = []
    # Repeated-endpoint list: drawing uniformly from it realises degree-
    # proportional (preferential) attachment.
    repeated_endpoints: list[int] = []
    initial = m_attach + 1
    for u in range(initial):
        for v in range(u + 1, initial):
            undirected.append((u, v))
            repeated_endpoints.extend((u, v))
    for new_vertex in range(initial, n):
        chosen: set[int] = set()
        while len(chosen) < m_attach:
            pick = repeated_endpoints[int(rng.integers(len(repeated_endpoints)))]
            chosen.add(pick)
        # Sorted: the append order feeds repeated_endpoints and therefore
        # every later draw — set order would make the graph depend on the
        # interpreter's hashing.
        for existing in sorted(chosen):
            undirected.append((new_vertex, existing))
            repeated_endpoints.extend((new_vertex, existing))
    edges = _orient_randomly(undirected, rng, both_directions=(orient == "both"))
    return _build(edges, n, name or f"ba_{n}_{m_attach}")


def watts_strogatz(
    num_vertices: int,
    nearest_neighbors: int,
    rewiring_probability: float,
    *,
    seed: int = 0,
    name: str | None = None,
) -> InfluenceGraph:
    """Watts–Strogatz small-world graph, randomly oriented.

    A ring lattice where each vertex connects to its ``nearest_neighbors``
    nearest neighbours (must be even), with each edge rewired to a uniformly
    random endpoint with probability ``rewiring_probability``.
    """
    n = require_positive_int(num_vertices, "num_vertices")
    k = require_positive_int(nearest_neighbors, "nearest_neighbors")
    beta = require_probability(rewiring_probability, "rewiring_probability", allow_zero=True)
    if k % 2 != 0 or k >= n:
        raise InvalidParameterError(
            f"nearest_neighbors must be even and < num_vertices, got {k} (n={n})"
        )
    rng = np.random.default_rng(seed)
    existing: set[tuple[int, int]] = set()
    undirected: list[tuple[int, int]] = []
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            key = (min(u, v), max(u, v))
            if key not in existing:
                existing.add(key)
                undirected.append(key)
    rewired: list[tuple[int, int]] = []
    edge_set = set(undirected)
    for u, v in undirected:
        if rng.random() < beta:
            for _ in range(10 * n):
                w = int(rng.integers(n))
                candidate = (min(u, w), max(u, w))
                if w != u and candidate not in edge_set:
                    edge_set.discard((u, v))
                    edge_set.add(candidate)
                    rewired.append(candidate)
                    break
            else:  # give up rewiring this edge after many collisions
                rewired.append((u, v))
        else:
            rewired.append((u, v))
    edges = _orient_randomly(rewired, rng, both_directions=True)
    return _build(edges, n, name or f"ws_{n}_{k}_{beta:g}")


def powerlaw_cluster(
    num_vertices: int,
    attachment: int,
    triangle_probability: float,
    *,
    seed: int = 0,
    name: str | None = None,
) -> InfluenceGraph:
    """Holme–Kim power-law cluster graph, symmetrised to a directed graph.

    Preferential attachment where, after each attachment step, a triad is
    closed with probability ``triangle_probability``.  Produces scale-free
    degree distributions with high clustering, which is the combination of
    properties the paper attributes to collaboration networks (ca-GrQc).
    """
    n = require_positive_int(num_vertices, "num_vertices")
    m_attach = require_positive_int(attachment, "attachment")
    p_triangle = require_probability(triangle_probability, "triangle_probability", allow_zero=True)
    if m_attach >= n:
        raise InvalidParameterError(
            f"attachment ({m_attach}) must be smaller than num_vertices ({n})"
        )
    rng = np.random.default_rng(seed)
    adjacency: list[set[int]] = [set() for _ in range(n)]
    repeated_endpoints: list[int] = []
    undirected: list[tuple[int, int]] = []

    def connect(u: int, v: int) -> None:
        adjacency[u].add(v)
        adjacency[v].add(u)
        undirected.append((u, v))
        repeated_endpoints.extend((u, v))

    initial = m_attach + 1
    for u in range(initial):
        for v in range(u + 1, initial):
            connect(u, v)
    for new_vertex in range(initial, n):
        added = 0
        last_target: int | None = None
        while added < m_attach:
            close_triangle = (
                last_target is not None
                and adjacency[last_target]
                and rng.random() < p_triangle
            )
            if close_triangle:
                neighbour_pool = [
                    w for w in adjacency[last_target] if w not in adjacency[new_vertex] and w != new_vertex
                ]
                if neighbour_pool:
                    target = neighbour_pool[int(rng.integers(len(neighbour_pool)))]
                else:
                    target = repeated_endpoints[int(rng.integers(len(repeated_endpoints)))]
            else:
                target = repeated_endpoints[int(rng.integers(len(repeated_endpoints)))]
            if target != new_vertex and target not in adjacency[new_vertex]:
                connect(new_vertex, target)
                last_target = target
                added += 1
    edges = _orient_randomly(undirected, rng, both_directions=True)
    return _build(edges, n, name or f"plc_{n}_{m_attach}_{p_triangle:g}")


def directed_scale_free(
    num_vertices: int,
    average_out_degree: float,
    *,
    seed: int = 0,
    hub_bias: float = 0.75,
    name: str | None = None,
) -> InfluenceGraph:
    """Directed graph with heavy-tailed in-degree distribution.

    Each vertex emits a Poisson-distributed number of out-edges (mean
    ``average_out_degree``); each edge's target is chosen preferentially with
    probability ``hub_bias`` (proportional to current in-degree plus one) and
    uniformly otherwise.  This produces the hub-dominated in-degree profile of
    voting and follower networks (Wiki-Vote, soc-Pokec) at configurable size.
    """
    n = require_positive_int(num_vertices, "num_vertices")
    if average_out_degree <= 0:
        raise InvalidParameterError(
            f"average_out_degree must be positive, got {average_out_degree}"
        )
    bias = require_probability(hub_bias, "hub_bias", allow_zero=True)
    rng = np.random.default_rng(seed)
    # in_degree_plus_one acts as the preferential-attachment weight.
    weights = np.ones(n, dtype=np.float64)
    edges: list[tuple[int, int]] = []
    for source in range(n):
        out_degree = int(rng.poisson(average_out_degree))
        if out_degree == 0:
            continue
        chosen: set[int] = set()
        attempts = 0
        while len(chosen) < min(out_degree, n - 1) and attempts < 20 * out_degree + 50:
            attempts += 1
            if rng.random() < bias:
                target = int(rng.choice(n, p=weights / weights.sum()))
            else:
                target = int(rng.integers(n))
            if target != source and target not in chosen:
                chosen.add(target)
        # Sorted so the edge list (a result) is independent of set order.
        for target in sorted(chosen):
            edges.append((source, target))
            weights[target] += 1.0
    return _build(edges, n, name or f"dsf_{n}_{average_out_degree:g}")


def core_whisker(
    core_size: int,
    num_whiskers: int,
    whisker_length: int,
    *,
    core_degree: int = 8,
    seed: int = 0,
    name: str | None = None,
) -> InfluenceGraph:
    """Graph with an expander-like core and tree-like whiskers (Section 4.2.1).

    The core is a random ``core_degree``-regular-ish graph on ``core_size``
    vertices (each core vertex draws ``core_degree`` partners).  Each of the
    ``num_whiskers`` whiskers is a path of ``whisker_length`` vertices hanging
    off a random core vertex.  Under high uniform probabilities a giant
    component forms inside the core while the whiskers shatter, which is the
    structure the paper uses to explain fast convergence on ca-GrQc (uc0.1).
    """
    core_n = require_positive_int(core_size, "core_size")
    whiskers = require_non_negative_int(num_whiskers, "num_whiskers")
    length = require_positive_int(whisker_length, "whisker_length") if whiskers else 0
    degree = require_positive_int(core_degree, "core_degree")
    rng = np.random.default_rng(seed)
    undirected: set[tuple[int, int]] = set()
    for u in range(core_n):
        partners = rng.choice(core_n, size=min(degree, core_n - 1), replace=False)
        for v in partners:
            v = int(v)
            if v != u:
                undirected.add((min(u, v), max(u, v)))
    total = core_n + whiskers * length
    next_vertex = core_n
    for _ in range(whiskers):
        anchor = int(rng.integers(core_n))
        previous = anchor
        for _ in range(length):
            undirected.add((min(previous, next_vertex), max(previous, next_vertex)))
            previous = next_vertex
            next_vertex += 1
    rng_orient = np.random.default_rng(seed + 1)
    edges = _orient_randomly(sorted(undirected), rng_orient, both_directions=True)
    return _build(edges, total, name or f"core_whisker_{core_n}_{whiskers}x{length}")


def star(num_leaves: int, *, outward: bool = True, name: str | None = None) -> InfluenceGraph:
    """Star graph: vertex 0 connected to ``num_leaves`` leaves.

    A minimal fixture where the optimal single seed is unambiguous; used
    heavily in tests and the quickstart example.
    """
    leaves = require_positive_int(num_leaves, "num_leaves")
    builder = GraphBuilder(leaves + 1)
    for leaf in range(1, leaves + 1):
        if outward:
            builder.add_edge(0, leaf)
        else:
            builder.add_edge(leaf, 0)
    return builder.build(name=name or f"star_{leaves}")


def path(num_vertices: int, *, name: str | None = None) -> InfluenceGraph:
    """Directed path ``0 -> 1 -> ... -> n-1``."""
    n = require_positive_int(num_vertices, "num_vertices")
    builder = GraphBuilder(n)
    for u in range(n - 1):
        builder.add_edge(u, u + 1)
    return builder.build(name=name or f"path_{n}")


def complete(num_vertices: int, *, name: str | None = None) -> InfluenceGraph:
    """Complete directed graph (every ordered pair is an edge)."""
    n = require_positive_int(num_vertices, "num_vertices")
    builder = GraphBuilder(n)
    for u in range(n):
        for v in range(n):
            if u != v:
                builder.add_edge(u, v)
    return builder.build(name=name or f"complete_{n}")
