"""Reachability sketches for Snapshot's first greedy iteration (Section 3.4.3).

The expensive part of Snapshot-type algorithms is the first iteration, which
needs the number of vertices reachable from *every* vertex in every sampled
live-edge graph (descendant counting) — not solvable in truly sub-quadratic
time in the worst case.  Practical implementations therefore approximate it.
This module implements two of the techniques the paper surveys:

* :func:`bottom_k_reachability` — Cohen's bottom-k min-hash sketches: assign
  each vertex a random rank, propagate the k smallest ranks backwards through
  the graph, and estimate the reachable-set size of ``v`` as
  ``(k - 1) / (k-th smallest rank reaching v)``.
* :func:`pruned_bfs_counts` — pruned breadth-first search in the style of
  PMC: process vertices in a (descending out-degree) order, and when a BFS
  from ``v`` immediately hits a previously processed vertex ``h`` whose count
  is already known and whose reachable set is a superset marker, reuse the
  cached bound instead of a full traversal.  The result is exact for the
  vertices processed first and an upper bound for pruned ones, which suffices
  for identifying the top candidates in the first iteration.

Both operate on :class:`~repro.diffusion.snapshots.Snapshot` live-edge graphs
and are benchmarked against exact descendant counting in
``tests/graphs/test_sketches.py``.
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from .._validation import require_positive_int
from ..diffusion.snapshots import Snapshot, reachability_scratch, reachable_count
from ..exceptions import InvalidParameterError


def bottom_k_reachability(
    snapshot: Snapshot,
    sketch_size: int = 16,
    *,
    seed: int = 0,
) -> np.ndarray:
    """Estimate every vertex's reachable-set size with bottom-k sketches.

    Each vertex receives an independent uniform rank in ``(0, 1)``.  The
    sketch of ``v`` is the ``sketch_size`` smallest ranks among vertices
    reachable *from* ``v``; propagating sketches along reversed edges in rank
    order fills all sketches in near-linear total time.  The estimator is the
    classical ``(k - 1) / r_k`` with ``r_k`` the k-th smallest rank, clamped
    to ``[1, n]``; when a vertex reaches fewer than ``sketch_size`` vertices
    the sketch is exhaustive and the count is exact.
    """
    require_positive_int(sketch_size, "sketch_size")
    n = snapshot.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    rng = np.random.default_rng(seed)
    ranks = rng.random(n)
    # The no-duplicate-offer argument below needs all ranks distinct.  float64
    # uniforms collide with probability ~n^2/2^54 — astronomically unlikely
    # but not zero — so re-draw until distinct (one O(n log n) check).
    while np.unique(ranks).size != n:  # pragma: no cover - probability ~n^2/2^54
        ranks = rng.random(n)
    reverse_indptr, reverse_sources = snapshot.reverse_csr

    # sketches[v] is a max-heap (negated ranks) of the smallest ranks seen.
    sketches: list[list[float]] = [[] for _ in range(n)]

    def offer(vertex: int, rank: float) -> bool:
        """Insert ``rank`` into ``vertex``'s sketch; return True if it changed.

        No duplicate-membership scan is needed: each propagation wave carries
        one rank, the per-wave ``offered`` stamp below guarantees a vertex is
        offered that rank at most once, and the re-draw loop above guarantees
        distinct waves carry distinct ranks, so a rank can never be offered
        to the same sketch twice.
        """
        heap = sketches[vertex]
        if len(heap) < sketch_size:
            heapq.heappush(heap, -rank)
            return True
        if rank < -heap[0]:
            heapq.heapreplace(heap, -rank)
            return True
        return False

    # Process vertices in increasing rank order; propagate each rank backwards
    # through the reversed live-edge graph with a pruned BFS (stop where the
    # rank no longer improves the sketch).  ``offered`` stamps the vertices
    # already offered the current wave's rank, replacing the historical O(k)
    # linear membership scan inside offer() with an O(1) check.
    offered = np.full(n, -1, dtype=np.int64)
    for wave, vertex in enumerate(np.argsort(ranks)):
        vertex = int(vertex)
        rank = float(ranks[vertex])
        offered[vertex] = wave
        if not offer(vertex, rank):
            continue
        queue: deque[int] = deque([vertex])
        while queue:
            current = queue.popleft()
            for predecessor in reverse_sources[
                reverse_indptr[current] : reverse_indptr[current + 1]
            ]:
                predecessor = int(predecessor)
                if offered[predecessor] == wave:
                    continue
                offered[predecessor] = wave
                if offer(predecessor, rank):
                    queue.append(predecessor)

    estimates = np.zeros(n, dtype=np.float64)
    for vertex in range(n):
        heap = sketches[vertex]
        size = len(heap)
        if size < sketch_size:
            estimates[vertex] = size
        else:
            kth_rank = -heap[0]
            estimates[vertex] = min(float(n), (sketch_size - 1) / kth_rank)
        estimates[vertex] = max(1.0, estimates[vertex])
    return estimates


def pruned_bfs_counts(
    snapshot: Snapshot,
    *,
    hub_count: int | None = None,
) -> np.ndarray:
    """Descendant counts with hub-based pruning (PMC-style upper bounds).

    The ``hub_count`` highest-out-degree vertices are processed with exact
    BFS and marked as hubs.  For every other vertex a BFS runs normally but
    stops expanding through a hub, adding the hub's exact count instead; the
    result is exact when the reached hubs' reachable sets are disjoint from
    the rest and an upper bound otherwise, which preserves the ranking of the
    strongest candidates (what the first greedy iteration needs).
    """
    n = snapshot.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    degrees = np.array(
        [snapshot.out_neighbors(v).shape[0] for v in range(n)], dtype=np.int64
    )
    if hub_count is None:
        hub_count = max(1, int(np.sqrt(n)))
    if hub_count < 0:
        raise InvalidParameterError(f"hub_count must be >= 0, got {hub_count}")
    hubs = set(int(v) for v in np.argsort(-degrees)[:hub_count])

    counts = np.zeros(n, dtype=np.float64)
    hub_exact: dict[int, int] = {}
    scratch = reachability_scratch(n)
    for hub in sorted(hubs):
        hub_exact[hub] = reachable_count(snapshot, (hub,), scratch=scratch)
        counts[hub] = hub_exact[hub]

    for vertex in range(n):
        if vertex in hubs:
            continue
        visited = {vertex}
        queue: deque[int] = deque([vertex])
        total = 0.0
        reached_hubs: set[int] = set()
        while queue:
            current = queue.popleft()
            total += 1
            for target in snapshot.out_neighbors(current):
                target = int(target)
                if target in visited:
                    continue
                visited.add(target)
                if target in hubs:
                    reached_hubs.add(target)
                    continue
                queue.append(target)
        total += sum(hub_exact[hub] for hub in reached_hubs)  # repro-lint: allow[ORD001] integer counts; addition is exact and order-free
        counts[vertex] = min(float(n), total)
    return counts


def exact_descendant_counts(snapshot: Snapshot) -> np.ndarray:
    """Exact reachable-set size from every vertex (quadratic; baseline)."""
    scratch = reachability_scratch(snapshot.num_vertices)
    return np.array(
        [
            reachable_count(snapshot, (vertex,), scratch=scratch)
            for vertex in range(snapshot.num_vertices)
        ],
        dtype=np.float64,
    )
