"""Network statistics used in Table 3 of the paper.

Table 3 reports, per network: ``n``, ``m``, maximum out-degree, maximum
in-degree, (global) clustering coefficient, and average distance.  This
module computes all of them on :class:`InfluenceGraph` instances without any
external graph library, plus a few extra summaries (degree percentiles,
weak-connectivity) that the experiment reports use for context.

Clustering coefficient follows the paper's definition: three times the number
of triangles divided by the number of connected triplets, computed on the
undirected simple projection of the graph.  Average distance is the mean
shortest-path length over reachable ordered pairs of the undirected
projection; for large graphs it is estimated from a random sample of source
vertices.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from .._validation import require_positive_int
from .influence_graph import InfluenceGraph


@dataclass(frozen=True)
class NetworkStatistics:
    """Summary statistics of one influence graph (one row of Table 3)."""

    name: str
    num_vertices: int
    num_edges: int
    max_out_degree: int
    max_in_degree: int
    clustering_coefficient: float
    average_distance: float
    expected_live_edges: float
    num_weak_components: int
    largest_weak_component: int

    def as_row(self) -> dict[str, object]:
        """Return the statistics as a flat dictionary for table rendering."""
        return {
            "network": self.name,
            "n": self.num_vertices,
            "m": self.num_edges,
            "max_out_degree": self.max_out_degree,
            "max_in_degree": self.max_in_degree,
            "clustering_coefficient": round(self.clustering_coefficient, 4),
            "average_distance": round(self.average_distance, 4),
            "expected_live_edges": round(self.expected_live_edges, 4),
            "num_weak_components": self.num_weak_components,
            "largest_weak_component": self.largest_weak_component,
        }


def _undirected_adjacency(graph: InfluenceGraph) -> list[set[int]]:
    """Simple undirected adjacency sets (parallel edges and directions collapsed)."""
    adjacency: list[set[int]] = [set() for _ in range(graph.num_vertices)]
    sources, targets, _ = graph.edge_arrays()
    for u, v in zip(sources.tolist(), targets.tolist()):
        adjacency[u].add(v)
        adjacency[v].add(u)
    return adjacency


def clustering_coefficient(graph: InfluenceGraph) -> float:
    """Global clustering coefficient: 3 * triangles / connected triplets."""
    adjacency = _undirected_adjacency(graph)
    triangles = 0
    triplets = 0
    for u in range(graph.num_vertices):
        neighbours = adjacency[u]
        degree = len(neighbours)
        triplets += degree * (degree - 1) // 2
        for v in neighbours:
            if v > u:
                # Count triangles once per closing vertex pair above u.
                common = neighbours & adjacency[v]
                triangles += sum(1 for w in common if w > v)
    if triplets == 0:
        return 0.0
    return 3.0 * triangles / triplets


def _bfs_distances(adjacency: list[set[int]], source: int) -> dict[int, int]:
    """Hop distances from ``source`` over the undirected adjacency."""
    distances = {source: 0}
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        for v in adjacency[u]:
            if v not in distances:
                distances[v] = distances[u] + 1
                queue.append(v)
    return distances


def average_distance(
    graph: InfluenceGraph, *, max_sources: int = 200, seed: int = 0
) -> float:
    """Mean shortest-path distance over reachable ordered pairs.

    Exact when ``n <= max_sources``; otherwise estimated from BFS trees rooted
    at ``max_sources`` uniformly sampled vertices.
    """
    require_positive_int(max_sources, "max_sources")
    if graph.num_vertices <= 1:
        return 0.0
    adjacency = _undirected_adjacency(graph)
    if graph.num_vertices <= max_sources:
        sources = list(range(graph.num_vertices))
    else:
        rng = np.random.default_rng(seed)
        sources = rng.choice(graph.num_vertices, size=max_sources, replace=False).tolist()
    total = 0
    count = 0
    for source in sources:
        for target, distance in _bfs_distances(adjacency, int(source)).items():
            if target != source:
                total += distance
                count += 1
    if count == 0:
        return 0.0
    return total / count


def weak_components(graph: InfluenceGraph) -> list[list[int]]:
    """Weakly connected components as lists of vertex ids (largest first)."""
    adjacency = _undirected_adjacency(graph)
    seen = np.zeros(graph.num_vertices, dtype=bool)
    components: list[list[int]] = []
    for start in range(graph.num_vertices):
        if seen[start]:
            continue
        component = [start]
        seen[start] = True
        queue: deque[int] = deque([start])
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                if not seen[v]:
                    seen[v] = True
                    component.append(v)
                    queue.append(v)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def degree_percentiles(
    graph: InfluenceGraph, percentiles: tuple[float, ...] = (50.0, 90.0, 99.0)
) -> dict[str, dict[float, float]]:
    """Percentiles of the out- and in-degree distributions."""
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    return {
        "out": {p: float(np.percentile(out_deg, p)) for p in percentiles},
        "in": {p: float(np.percentile(in_deg, p)) for p in percentiles},
    }


def network_statistics(
    graph: InfluenceGraph, *, max_distance_sources: int = 200, seed: int = 0
) -> NetworkStatistics:
    """Compute the full Table 3 row (plus extras) for ``graph``."""
    components = weak_components(graph)
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    return NetworkStatistics(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        max_out_degree=int(out_deg.max(initial=0)),
        max_in_degree=int(in_deg.max(initial=0)),
        clustering_coefficient=clustering_coefficient(graph),
        average_distance=average_distance(
            graph, max_sources=max_distance_sources, seed=seed
        ),
        expected_live_edges=graph.expected_live_edges,
        num_weak_components=len(components),
        largest_weak_component=len(components[0]) if components else 0,
    )
