"""Edge-probability models (Section 4.3 of the paper).

Publicly available network data rarely ships with influence probabilities, so
the paper assigns them artificially using four well-established strategies:

``uc0.1`` / ``uc0.01``
    *Uniform cascade*: every edge has the same constant probability.
``iwc``
    *In-degree weighted cascade*: ``p(u, v) = 1 / d-(v)``, so the expected
    number of live in-edges of every vertex is exactly one.
``owc``
    *Out-degree weighted cascade*: ``p(u, v) = 1 / d+(u)``, so every vertex
    spends exactly one unit of expected outgoing influence.
``trivalency``
    The classical TRIVALENCY model (not evaluated in the paper's main tables
    but common in the IM literature): each edge draws uniformly from
    ``{0.1, 0.01, 0.001}``.  Included as an extension.

All functions return a **new** graph; the input graph is never modified.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..exceptions import UnknownProbabilityModelError
from .._validation import require_probability
from .influence_graph import InfluenceGraph

#: Names accepted by :func:`assign_probabilities`.
PROBABILITY_MODELS: tuple[str, ...] = ("uc0.1", "uc0.01", "iwc", "owc", "trivalency")

#: Probability values used by the trivalency model.
TRIVALENCY_VALUES: tuple[float, ...] = (0.1, 0.01, 0.001)


def uniform_cascade(graph: InfluenceGraph, probability: float) -> InfluenceGraph:
    """Assign the same ``probability`` to every edge."""
    p = require_probability(probability, "probability")
    probs = np.full(graph.num_edges, p, dtype=np.float64)
    return graph.with_probabilities(probs)


def in_degree_weighted_cascade(graph: InfluenceGraph) -> InfluenceGraph:
    """Assign ``p(u, v) = 1 / d-(v)`` (the paper's ``iwc`` model)."""
    sources, targets, _ = graph.edge_arrays()
    in_degrees = graph.in_degrees().astype(np.float64)
    # Every edge's target has in-degree >= 1 by construction, so no division
    # by zero can occur; the assertion documents the invariant.
    target_degrees = in_degrees[targets]
    assert np.all(target_degrees >= 1.0)
    probs = 1.0 / target_degrees
    del sources
    return graph.with_probabilities(probs)


def out_degree_weighted_cascade(graph: InfluenceGraph) -> InfluenceGraph:
    """Assign ``p(u, v) = 1 / d+(u)`` (the paper's ``owc`` model)."""
    sources, _, _ = graph.edge_arrays()
    out_degrees = graph.out_degrees().astype(np.float64)
    source_degrees = out_degrees[sources]
    assert np.all(source_degrees >= 1.0)
    probs = 1.0 / source_degrees
    return graph.with_probabilities(probs)


def trivalency(graph: InfluenceGraph, *, seed: int = 0) -> InfluenceGraph:
    """Assign each edge a probability drawn uniformly from ``{0.1, 0.01, 0.001}``."""
    rng = np.random.default_rng(seed)
    values = np.asarray(TRIVALENCY_VALUES, dtype=np.float64)
    probs = rng.choice(values, size=graph.num_edges)
    return graph.with_probabilities(probs)


def _parse_uniform(model: str) -> float | None:
    """Return the constant probability for names of the form ``uc<value>``."""
    if not model.startswith("uc"):
        return None
    try:
        return float(model[2:])
    except ValueError:
        return None


def is_valid_probability_model(model: str) -> bool:
    """Whether ``model`` names a scheme :func:`assign_probabilities` accepts.

    Used for eager validation in declarative specs: any registered name, or
    ``uc<value>`` with a constant in the half-open interval (0, 1].
    """
    constant = _parse_uniform(model)
    if constant is not None:
        return 0.0 < constant <= 1.0
    return model in PROBABILITY_MODELS


def assign_probabilities(
    graph: InfluenceGraph, model: str, *, seed: int = 0
) -> InfluenceGraph:
    """Assign influence probabilities to ``graph`` according to ``model``.

    ``model`` is one of :data:`PROBABILITY_MODELS`; additionally any name of
    the form ``uc<value>`` (e.g. ``uc0.05``) selects a uniform cascade with
    that constant.  The returned graph's name is suffixed with the model name
    so that experiment reports identify the instance unambiguously.
    """
    constant = _parse_uniform(model)
    if constant is not None:
        result = uniform_cascade(graph, constant)
    elif model == "iwc":
        result = in_degree_weighted_cascade(graph)
    elif model == "owc":
        result = out_degree_weighted_cascade(graph)
    elif model == "trivalency":
        result = trivalency(graph, seed=seed)
    else:
        raise UnknownProbabilityModelError(
            f"unknown probability model {model!r}; expected one of {PROBABILITY_MODELS}"
        )
    return result.with_name(f"{graph.name} ({model})")


def probability_model_factory(model: str) -> Callable[[InfluenceGraph], InfluenceGraph]:
    """Return a single-argument callable applying ``model`` to a graph.

    Useful for sweeping models in experiment configurations.
    """
    def apply(graph: InfluenceGraph) -> InfluenceGraph:
        return assign_probabilities(graph, model)

    apply.__name__ = f"assign_{model.replace('.', '_')}"
    return apply
