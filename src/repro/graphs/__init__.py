"""Graph substrate: influence graphs, generators, datasets, probabilities, statistics."""

from .builder import GraphBuilder, graph_from_edge_list
from .datasets import (
    PAPER_DATASETS,
    SMALL_DATASETS,
    DatasetSpec,
    dataset_spec,
    list_datasets,
    load_dataset,
    register_dataset,
)
from .influence_graph import EdgeView, InfluenceGraph
from .io import read_edge_list, round_trip_equal, write_edge_list
from .probability import (
    PROBABILITY_MODELS,
    assign_probabilities,
    in_degree_weighted_cascade,
    out_degree_weighted_cascade,
    probability_model_factory,
    trivalency,
    uniform_cascade,
)
from .statistics import (
    NetworkStatistics,
    average_distance,
    clustering_coefficient,
    degree_percentiles,
    network_statistics,
    weak_components,
)
from .sketches import (
    bottom_k_reachability,
    exact_descendant_counts,
    pruned_bfs_counts,
)
from . import generators

__all__ = [
    "EdgeView",
    "InfluenceGraph",
    "GraphBuilder",
    "graph_from_edge_list",
    "read_edge_list",
    "write_edge_list",
    "round_trip_equal",
    "DatasetSpec",
    "PAPER_DATASETS",
    "SMALL_DATASETS",
    "dataset_spec",
    "list_datasets",
    "load_dataset",
    "register_dataset",
    "PROBABILITY_MODELS",
    "assign_probabilities",
    "uniform_cascade",
    "in_degree_weighted_cascade",
    "out_degree_weighted_cascade",
    "trivalency",
    "probability_model_factory",
    "NetworkStatistics",
    "network_statistics",
    "clustering_coefficient",
    "average_distance",
    "degree_percentiles",
    "weak_components",
    "bottom_k_reachability",
    "pruned_bfs_counts",
    "exact_descendant_counts",
    "generators",
]
