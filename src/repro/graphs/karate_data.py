"""Zachary's karate club network, embedded as data.

The paper's smallest real-world network (Table 3: ``n = 34``, ``m = 156``) is
Zachary's karate club, a public-domain social network of friendships between
34 members of a university karate club (W. W. Zachary, 1977).  The 78
undirected edges below are the standard edge list; the dataset registry turns
them into 156 directed edges by adding both directions, matching the paper's
edge count.

Vertex ids are zero-based (the classical listing is one-based).
"""

from __future__ import annotations

#: Undirected friendship edges of Zachary's karate club (zero-based ids).
KARATE_EDGES: tuple[tuple[int, int], ...] = (
    (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8),
    (0, 10), (0, 11), (0, 12), (0, 13), (0, 17), (0, 19), (0, 21), (0, 31),
    (1, 2), (1, 3), (1, 7), (1, 13), (1, 17), (1, 19), (1, 21), (1, 30),
    (2, 3), (2, 7), (2, 8), (2, 9), (2, 13), (2, 27), (2, 28), (2, 32),
    (3, 7), (3, 12), (3, 13),
    (4, 6), (4, 10),
    (5, 6), (5, 10), (5, 16),
    (6, 16),
    (8, 30), (8, 32), (8, 33),
    (9, 33),
    (13, 33),
    (14, 32), (14, 33),
    (15, 32), (15, 33),
    (18, 32), (18, 33),
    (19, 33),
    (20, 32), (20, 33),
    (22, 32), (22, 33),
    (23, 25), (23, 27), (23, 29), (23, 32), (23, 33),
    (24, 25), (24, 27), (24, 31),
    (25, 31),
    (26, 29), (26, 33),
    (27, 33),
    (28, 31), (28, 33),
    (29, 32), (29, 33),
    (30, 32), (30, 33),
    (31, 32), (31, 33),
    (32, 33),
)

#: Number of vertices in the karate club network.
KARATE_NUM_VERTICES: int = 34

#: Number of directed edges after symmetrisation (as counted in the paper).
KARATE_NUM_DIRECTED_EDGES: int = 2 * len(KARATE_EDGES)
