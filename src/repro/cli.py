"""Command-line interface: ``python -m repro <command> ...``.

Four subcommands cover the workflows a user needs without writing Python:

``stats``
    Print Table-3-style statistics for one or all registry datasets.
``maximize``
    Select a seed set on a dataset with a chosen approach and sample number,
    and report its oracle influence and traversal cost.
``sweep``
    Sweep the sample number for one approach and print the entropy and mean
    influence per grid point (the Figure 1 / Figure 4 methodology).
``traversal``
    Print the per-sample traversal-cost rows (Table 8 methodology) for one
    dataset and probability model.

Every subcommand accepts ``--jobs N`` to fan the trial-heavy work out over
``N`` worker processes through :mod:`repro.runtime`.  Passing the flag (any
``N``, including 1) opts into the runtime's split-stream seeding, whose
output is bit-identical for every ``N`` — so ``--jobs`` is a pure speed
knob.  Omitting the flag preserves the historical serial single-stream
output exactly.

Every subcommand also accepts ``--diffusion {ic,lt,...}`` to choose the
diffusion model from :mod:`repro.diffusion.models` (default ``ic``, the
paper's independent cascade).  Instance feasibility — e.g. the LT
incoming-weight condition — is validated up front, before any sampling.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .algorithms.framework import greedy_maximize
from .diffusion.models import available_models, get_model
from .estimation.oracle import RRPoolOracle
from .experiments.factories import available_approaches, estimator_factory
from .experiments.reporting import format_multi_series, format_table
from .experiments.sweeps import powers_of_two, sweep_sample_numbers
from .experiments.traversal import traversal_cost_table
from .graphs.datasets import PAPER_DATASETS, list_datasets, load_dataset
from .graphs.probability import PROBABILITY_MODELS, assign_probabilities
from .graphs.statistics import network_statistics
from .runtime.engine import run_tasks


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help=(
            "worker processes; any explicit N (including 1) uses the runtime's "
            "split-stream seeding and gives bit-identical results for every N, "
            "while omitting the flag keeps the historical serial stream"
        ),
    )


def _add_diffusion_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--diffusion", default="ic", choices=sorted(available_models()),
        help=(
            "diffusion model (ic = independent cascade, lt = linear "
            "threshold); feasibility is validated before sampling"
        ),
    )


def _add_instance_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="karate", choices=sorted(list_datasets()),
        help="registry dataset name",
    )
    parser.add_argument(
        "--model", default="uc0.1",
        help=f"edge-probability model ({', '.join(PROBABILITY_MODELS)} or uc<value>)",
    )
    parser.add_argument("--scale", type=float, default=1.0, help="proxy size multiplier")
    parser.add_argument("--graph-seed", type=int, default=0, help="proxy generation seed")
    _add_diffusion_argument(parser)
    _add_jobs_argument(parser)


def _load_instance(args: argparse.Namespace):
    """Load the (graph, diffusion model) instance and validate feasibility."""
    graph = load_dataset(args.dataset, scale=args.scale, seed=args.graph_seed)
    graph = assign_probabilities(graph, args.model)
    diffusion = get_model(args.diffusion)
    # Fail fast with a clear error (e.g. LT incoming weights exceeding one)
    # before spending time on pools, snapshots, or trials.
    diffusion.validate(graph)
    return graph, diffusion


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the repro CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'The Solution Distribution of Influence Maximization'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    stats = subparsers.add_parser("stats", help="network statistics (Table 3)")
    stats.add_argument(
        "--dataset", default="all",
        help="dataset name or 'all' for every paper dataset",
    )
    stats.add_argument("--scale", type=float, default=1.0)
    # Accepted for interface uniformity; Table 3 statistics are structural
    # and identical under every diffusion model.
    _add_diffusion_argument(stats)
    _add_jobs_argument(stats)

    maximize = subparsers.add_parser("maximize", help="run greedy seed selection")
    _add_instance_arguments(maximize)
    maximize.add_argument("--approach", default="ris", choices=sorted(available_approaches()))
    maximize.add_argument("--samples", type=int, default=1024, help="sample number")
    maximize.add_argument("-k", "--seeds", type=int, default=4, help="seed-set size")
    maximize.add_argument("--run-seed", type=int, default=0)
    maximize.add_argument("--pool-size", type=int, default=20_000, help="oracle RR pool size")

    sweep = subparsers.add_parser("sweep", help="sample-number sweep (Figures 1/4)")
    _add_instance_arguments(sweep)
    sweep.add_argument("--approach", default="ris", choices=sorted(available_approaches()))
    sweep.add_argument("-k", "--seeds", type=int, default=1)
    sweep.add_argument("--max-exponent", type=int, default=10)
    sweep.add_argument("--min-exponent", type=int, default=0)
    sweep.add_argument("--trials", type=int, default=20)
    sweep.add_argument("--pool-size", type=int, default=20_000)
    sweep.add_argument("--run-seed", type=int, default=0)

    traversal = subparsers.add_parser("traversal", help="per-sample traversal cost (Table 8)")
    _add_instance_arguments(traversal)
    traversal.add_argument("--repetitions", type=int, default=3)

    return parser


def _stats_row_worker(task: tuple[str, float]) -> dict[str, object]:
    """Compute one dataset's statistics row (picklable worker)."""
    name, scale = task
    graph = load_dataset(name, scale=scale)
    return network_statistics(graph, max_distance_sources=100).as_row()


def _command_stats(args: argparse.Namespace) -> int:
    names = PAPER_DATASETS if args.dataset == "all" else (args.dataset,)
    rows = run_tasks(
        _stats_row_worker, [(name, args.scale) for name in names], jobs=args.jobs
    )
    print(format_table(rows, title="Network statistics"))
    return 0


def _command_maximize(args: argparse.Namespace) -> int:
    graph, diffusion = _load_instance(args)
    estimator = estimator_factory(args.approach, jobs=args.jobs, model=diffusion)(
        args.samples
    )
    result = greedy_maximize(graph, args.seeds, estimator, seed=args.run_seed)
    oracle = RRPoolOracle(
        graph,
        pool_size=args.pool_size,
        seed=args.run_seed + 1,
        model=diffusion,
        jobs=args.jobs,
    )
    estimate = oracle.spread_with_confidence(result.seed_set)
    rows = [
        {
            "approach": result.approach,
            "samples": result.num_samples,
            "k": result.k,
            "seeds": result.seed_set,
            "influence": round(estimate.value, 3),
            "influence_99ci": f"+-{estimate.confidence_radius:.3f}",
            "traversal_vertices": result.cost.traversal.vertices,
            "traversal_edges": result.cost.traversal.edges,
            "stored_vertices": result.cost.sample_size.vertices,
            "stored_edges": result.cost.sample_size.edges,
        }
    ]
    print(format_table(rows, title=f"Greedy result on {graph.name}"))
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    graph, diffusion = _load_instance(args)
    oracle = RRPoolOracle(
        graph,
        pool_size=args.pool_size,
        seed=args.run_seed + 1,
        model=diffusion,
        jobs=args.jobs,
    )
    grid = powers_of_two(args.max_exponent, min_exponent=args.min_exponent)
    # Parallelism is applied at the trial level (the coarsest grain); the
    # estimator factory stays serial so worker processes do not nest pools.
    sweep = sweep_sample_numbers(
        graph,
        args.seeds,
        estimator_factory(args.approach, model=diffusion),
        grid,
        num_trials=args.trials,
        oracle=oracle,
        experiment_seed=args.run_seed,
        model=diffusion,
        jobs=args.jobs,
    )
    print(
        format_multi_series(
            {"entropy": sweep.entropies(), "mean_influence": sweep.mean_influences()},
            title=f"{args.approach} sweep on {graph.name} (k={args.seeds}, T={args.trials})",
        )
    )
    return 0


def _command_traversal(args: argparse.Namespace) -> int:
    graph, diffusion = _load_instance(args)
    rows = traversal_cost_table(
        graph,
        {
            name: estimator_factory(name, model=diffusion)
            for name in ("oneshot", "snapshot", "ris")
        },
        k=1,
        num_samples=1,
        num_repetitions=args.repetitions,
        model=diffusion,
        jobs=args.jobs,
    )
    print(
        format_table(
            [row.as_row() for row in rows],
            title=f"Per-sample traversal cost on {graph.name} (k=1, sample number 1)",
        )
    )
    return 0


_COMMANDS = {
    "stats": _command_stats,
    "maximize": _command_maximize,
    "sweep": _command_sweep,
    "traversal": _command_traversal,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
