"""Command-line interface: ``python -m repro <command> ...``.

Five subcommands cover the workflows a user needs without writing Python:

``stats``
    Print Table-3-style statistics for one or all registry datasets.
``maximize``
    Select a seed set on a dataset with a chosen approach and sample number,
    and report its oracle influence and traversal cost.
``sweep``
    Sweep the sample number for one approach and print the entropy and mean
    influence per grid point (the Figure 1 / Figure 4 methodology).
``traversal``
    Print the per-sample traversal-cost rows (Table 8 methodology) for one
    dataset and probability model.
``run``
    Execute any experiment spec JSON file (see :mod:`repro.api.specs`) —
    including the ``trials`` kind that has no dedicated subcommand.
``lint``
    Statically check the source tree against the determinism and
    serialization contracts (see :mod:`repro.lint`).  Dispatched before the
    experiment machinery loads — ``repro lint`` never imports numpy.

Since the declarative-API redesign, the first four subcommands are thin spec
constructors: each builds the equivalent :mod:`repro.api` spec and hands it
to :func:`repro.api.runner.run`, so the CLI and ``repro.run()`` are the same
code path by construction.  Text output is byte-identical to the pre-spec
CLI (pinned by the golden tests in ``tests/api/``).

Every subcommand accepts ``--format {text,json}`` (JSON via
``ExperimentResult.to_json``) and ``--out FILE`` to additionally write the
JSON result to a file (atomically: temp file + rename), ``--jobs N`` for
the runtime's bit-identical multi-process execution, and ``--diffusion
{ic,lt,...}`` to choose the diffusion model (validated up front, before any
sampling).  The simulating subcommands (``maximize``, ``sweep``,
``traversal``) additionally accept ``--batch-mode
{scalar,bitparallel}``: the opt-in bit-parallel kernels run 64 simulated
worlds per machine word (see :mod:`repro.diffusion.bitparallel`), while the
scalar default keeps the golden byte-identical stream.

Observability: the CLI attaches a live :class:`~repro.obs.Telemetry` to
every run, so ``--format json`` results carry a ``"telemetry"`` block;
``--trace FILE`` (or the ``REPRO_TRACE`` environment variable) additionally
writes the run's JSONL trace, and ``--profile`` prints the human span/counter
tree to stderr.  Text output on stdout is unaffected (pinned by the golden
tests).
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from pathlib import Path
from typing import Sequence

from .api.runner import run
from .api.results import ExperimentResult
from .api.specs import (
    EstimatorSpec,
    ExperimentSpec,
    GraphSpec,
    MaximizeSpec,
    StatsSpec,
    SweepSpec,
    TraversalSpec,
    load_spec,
)
from .context import RunContext
from .diffusion.models import available_models
from .experiments.factories import available_approaches
from .graphs.datasets import list_datasets
from .graphs.probability import PROBABILITY_MODELS
from .obs import Telemetry, atomic_write_text, write_trace


def _add_output_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format", default="text", choices=("text", "json"), dest="output_format",
        help="stdout rendering: the classic text table or the JSON result",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="additionally write the JSON result to FILE (atomic write)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help=(
            "write the run's telemetry as a JSONL trace to FILE "
            "(the REPRO_TRACE environment variable sets a default)"
        ),
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print the span/counter profile tree to stderr after the run",
    )


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help=(
            "worker processes; any explicit N (including 1) uses the runtime's "
            "split-stream seeding and gives bit-identical results for every N, "
            "while omitting the flag keeps the historical serial stream"
        ),
    )


def _add_batch_mode_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--batch-mode", default=None, choices=("scalar", "bitparallel"),
        dest="batch_mode",
        help=(
            "simulation batching: 'scalar' is the golden per-simulation "
            "stream (default), 'bitparallel' packs 64 simulated worlds per "
            "machine word (faster, different draw-order contract); omitting "
            "the flag defers to the REPRO_BITPARALLEL environment variable"
        ),
    )


def _add_diffusion_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--diffusion", default="ic", choices=sorted(available_models()),
        help=(
            "diffusion model (ic = independent cascade, lt = linear "
            "threshold); feasibility is validated before sampling"
        ),
    )


def _add_instance_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="karate", choices=sorted(list_datasets()),
        help="registry dataset name",
    )
    parser.add_argument(
        "--model", default="uc0.1",
        help=f"edge-probability model ({', '.join(PROBABILITY_MODELS)} or uc<value>)",
    )
    parser.add_argument("--scale", type=float, default=1.0, help="proxy size multiplier")
    parser.add_argument("--graph-seed", type=int, default=0, help="proxy generation seed")
    _add_diffusion_argument(parser)
    _add_jobs_argument(parser)
    _add_batch_mode_argument(parser)
    _add_output_arguments(parser)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the repro CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'The Solution Distribution of Influence Maximization'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    stats = subparsers.add_parser("stats", help="network statistics (Table 3)")
    stats.add_argument(
        "--dataset", default="all",
        help="dataset name or 'all' for every paper dataset",
    )
    stats.add_argument("--scale", type=float, default=1.0)
    # Accepted for interface uniformity; Table 3 statistics are structural
    # and identical under every diffusion model.
    _add_diffusion_argument(stats)
    _add_jobs_argument(stats)
    _add_output_arguments(stats)

    maximize = subparsers.add_parser("maximize", help="run greedy seed selection")
    _add_instance_arguments(maximize)
    maximize.add_argument("--approach", default="ris", choices=sorted(available_approaches()))
    maximize.add_argument("--samples", type=int, default=1024, help="sample number")
    maximize.add_argument("-k", "--seeds", type=int, default=4, help="seed-set size")
    maximize.add_argument("--run-seed", type=int, default=0)
    maximize.add_argument("--pool-size", type=int, default=20_000, help="oracle RR pool size")

    sweep = subparsers.add_parser("sweep", help="sample-number sweep (Figures 1/4)")
    _add_instance_arguments(sweep)
    sweep.add_argument("--approach", default="ris", choices=sorted(available_approaches()))
    sweep.add_argument("-k", "--seeds", type=int, default=1)
    sweep.add_argument("--max-exponent", type=int, default=10)
    sweep.add_argument("--min-exponent", type=int, default=0)
    sweep.add_argument("--trials", type=int, default=20)
    sweep.add_argument("--pool-size", type=int, default=20_000)
    sweep.add_argument("--run-seed", type=int, default=0)

    traversal = subparsers.add_parser("traversal", help="per-sample traversal cost (Table 8)")
    _add_instance_arguments(traversal)
    traversal.add_argument("--repetitions", type=int, default=3)

    run_command = subparsers.add_parser(
        "run", help="execute an experiment spec JSON file"
    )
    run_command.add_argument("spec", help="path to the spec JSON document")
    _add_output_arguments(run_command)

    # Listed here so ``repro --help`` shows it; actual parsing happens in
    # the lint package's own parser (main() dispatches before parse_args).
    subparsers.add_parser(
        "lint",
        help="statically check determinism & serialization contracts",
        add_help=False,
    )

    return parser


def _emit(
    result: ExperimentResult, args: argparse.Namespace, telemetry: Telemetry
) -> int:
    """Render a result per ``--format``/``--out``/``--trace``/``--profile``."""
    if args.output_format == "json":
        print(result.to_json())
    else:
        print(result.to_text())
    if args.out is not None:
        atomic_write_text(Path(args.out), result.to_json() + "\n")
    trace_target = args.trace or os.environ.get("REPRO_TRACE")
    if trace_target:
        write_trace(telemetry, trace_target)
    if args.profile:
        print(telemetry.render_profile(), file=sys.stderr)
    return 0


def _graph_spec(args: argparse.Namespace) -> GraphSpec:
    """The instance spec shared by maximize/sweep/traversal."""
    return GraphSpec(
        dataset=args.dataset,
        probability=args.model,
        scale=args.scale,
        seed=args.graph_seed,
    )


def _spec_stats(args: argparse.Namespace) -> StatsSpec:
    return StatsSpec(
        dataset=args.dataset,
        scale=args.scale,
        context=RunContext(jobs=args.jobs, model=args.diffusion),
    )


def _spec_maximize(args: argparse.Namespace) -> MaximizeSpec:
    return MaximizeSpec(
        graph=_graph_spec(args),
        estimator=EstimatorSpec(approach=args.approach, num_samples=args.samples),
        k=args.seeds,
        pool_size=args.pool_size,
        context=RunContext(
            seed=args.run_seed, jobs=args.jobs, model=args.diffusion,
            batch_mode=args.batch_mode,
        ),
    )


def _spec_sweep(args: argparse.Namespace) -> SweepSpec:
    return SweepSpec(
        graph=_graph_spec(args),
        approach=args.approach,
        k=args.seeds,
        max_exponent=args.max_exponent,
        min_exponent=args.min_exponent,
        num_trials=args.trials,
        pool_size=args.pool_size,
        context=RunContext(
            seed=args.run_seed, jobs=args.jobs, model=args.diffusion,
            batch_mode=args.batch_mode,
        ),
    )


def _spec_traversal(args: argparse.Namespace) -> TraversalSpec:
    return TraversalSpec(
        graph=_graph_spec(args),
        repetitions=args.repetitions,
        context=RunContext(
            jobs=args.jobs, model=args.diffusion, batch_mode=args.batch_mode
        ),
    )


def _spec_run(args: argparse.Namespace) -> ExperimentSpec:
    return load_spec(args.spec)


_SPEC_BUILDERS = {
    "stats": _spec_stats,
    "maximize": _spec_maximize,
    "sweep": _spec_sweep,
    "traversal": _spec_traversal,
    "run": _spec_run,
}


def _attach_telemetry(spec: ExperimentSpec, telemetry: Telemetry) -> ExperimentSpec:
    """A copy of ``spec`` whose context carries ``telemetry`` (runtime-only)."""
    return dataclasses.replace(
        spec, context=dataclasses.replace(spec.context, telemetry=telemetry)
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Every invocation runs with a live telemetry object: the draws are
    unaffected (recording is passive), text output is byte-identical to the
    uninstrumented CLI, and JSON output gains the ``telemetry`` block.
    """
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        # The linter has its own flag set (--rules, --list-rules, a
        # different --format) and its own exit-code contract (0/1/2).
        from .lint.cli import main as lint_main

        return lint_main(arguments[1:], prog="repro lint")
    parser = build_parser()
    args = parser.parse_args(arguments)
    telemetry = Telemetry()
    spec = _attach_telemetry(_SPEC_BUILDERS[args.command](args), telemetry)
    return _emit(run(spec), args, telemetry)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
