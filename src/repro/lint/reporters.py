"""Finding reporters: human-readable text and machine-readable JSON.

The JSON document is versioned and round-trippable — ``parse_report``
reconstructs the exact :class:`~repro.lint.findings.Finding` list a report
was rendered from, which is what CI consumes from the uploaded artifact and
what the round-trip test pins.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

from .findings import Finding

__all__ = ["JSON_REPORT_VERSION", "parse_report", "render_json", "render_text"]

#: Schema version stamped into every JSON report.
JSON_REPORT_VERSION = 1


def _counts(findings: Sequence[Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return dict(sorted(counts.items()))


def render_text(findings: Sequence[Finding]) -> str:
    """Human report: one ``path:line:col: RULE message`` line per finding."""
    if not findings:
        return "repro lint: no findings\n"
    lines = [finding.render() for finding in findings]
    errors = sum(1 for finding in findings if finding.severity == "error")
    warnings = len(findings) - errors
    summary = f"repro lint: {errors} error(s), {warnings} warning(s)"
    return "\n".join([*lines, summary]) + "\n"


def render_json(
    findings: Sequence[Finding],
    *,
    stats: Mapping[str, Any] | None = None,
) -> str:
    """Versioned JSON report with per-rule counts.

    ``stats`` (run statistics: file counts, cache hits/misses) is embedded
    under a ``"stats"`` key when provided; :func:`parse_report` ignores it,
    so the findings round-trip is unaffected.
    """
    document: dict[str, Any] = {
        "version": JSON_REPORT_VERSION,
        "findings": [finding.to_dict() for finding in findings],
        "counts": _counts(findings),
    }
    if stats is not None:
        document["stats"] = dict(stats)
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def parse_report(text: str) -> list[Finding]:
    """Inverse of :func:`render_json`: report text back to findings."""
    document = json.loads(text)
    version = document.get("version")
    if version != JSON_REPORT_VERSION:
        raise ValueError(
            f"unsupported lint report version {version!r}; "
            f"expected {JSON_REPORT_VERSION}"
        )
    return [Finding.from_dict(record) for record in document["findings"]]
