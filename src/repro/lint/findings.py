"""The :class:`Finding` record: one statically detected contract violation.

A finding pins a rule id to a source location with a human-readable message
and a severity.  Findings are value objects: hashable, totally ordered by
``(path, line, column, rule)`` so reports are deterministic regardless of
the order rules ran in, and round-trippable through the JSON reporter
(:mod:`repro.lint.reporters`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Mapping

__all__ = ["SEVERITIES", "Finding"]

#: Recognised severities, strongest first.
SEVERITIES: tuple[str, ...] = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding: rule id, location, message, severity.

    Ordering sorts by location first (``path``, ``line``, ``column``) and
    rule id second, which is the order both reporters emit.
    """

    path: str
    line: int
    column: int
    rule: str
    message: str
    severity: str = field(default="error", compare=False)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; "
                f"expected one of: {', '.join(SEVERITIES)}"
            )

    def to_dict(self) -> dict[str, Any]:
        """Serialize to the JSON-reporter record shape."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "severity": self.severity,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Finding":
        """Deserialize a JSON-reporter record; unknown keys are rejected."""
        allowed = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - allowed
        if unknown:
            raise ValueError(
                f"unknown Finding key(s): {', '.join(sorted(unknown))}"
            )
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            column=int(data.get("column", 0)),
            rule=str(data["rule"]),
            message=str(data["message"]),
            severity=str(data.get("severity", "error")),
        )

    def render(self) -> str:
        """One-line human rendering: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"
