"""Whole-program analysis: import graph, symbol tables, call graph.

The per-module rules (:class:`~repro.lint.registry.LintRule`) see one parsed
file at a time and therefore cannot check *cross-file* contracts — a seam
kwarg dropped between layers, a layering violation, a lazy export pointing
at a symbol that no longer exists.  This module parses every collected file
once into a :class:`ModuleSummary` — a JSON-serializable digest of exactly
the facts the project rules need — and assembles the summaries into a
:class:`ProjectAnalysis`:

* a **module import graph** (imports resolved to absolute dotted module
  names, relative imports resolved against the importing module's package);
* a **per-module symbol table** with static ``__all__`` resolution
  (including ``*_EXPORTS`` star-expansion) and the lazy ``_EXPORTS``
  name → submodule mapping of PEP 562 packages;
* a conservative **intra-package call graph** keyed by qualified names,
  following import aliases and one-hop re-export chains.

Summaries are deliberately plain data (:meth:`ModuleSummary.to_dict` /
:meth:`ModuleSummary.from_dict` round-trip through JSON) so the content-hash
cache (:mod:`repro.lint.cache`) can persist them: a warm re-run rebuilds the
whole-program view without re-parsing unchanged files.

Everything here is best-effort static analysis in the house style of
:mod:`repro.lint.astutil`: when a construct cannot be resolved the analysis
records nothing and the rules stay silent, trading recall for a near-zero
false-positive rate.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Mapping

from .astutil import dotted_name, iter_assigned_names

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .config import LintConfig

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ImportRecord",
    "ModuleSummary",
    "ProjectAnalysis",
    "is_stdlib_module",
    "module_name_for_path",
    "render_import_graph_dot",
    "render_import_graph_json",
    "summarize_module",
]

#: Bumped whenever the summary shape changes; part of the cache key.
SUMMARY_VERSION = 1

#: Maximum re-export hops followed when resolving a qualified callee.
_MAX_RESOLUTION_HOPS = 8


def is_stdlib_module(module: str) -> bool:
    """Whether ``module``'s top-level package ships with the interpreter."""
    top = module.partition(".")[0]
    return top in sys.stdlib_module_names


def module_name_for_path(path: Path) -> str:
    """Dotted module name for a source file, found via ``__init__.py`` walk.

    ``src/repro/lint/walker.py`` maps to ``repro.lint.walker`` and a package
    ``__init__.py`` maps to the package name itself.  A file outside any
    package resolves to its bare stem.
    """
    resolved = path.resolve()
    parts: list[str] = [] if resolved.stem == "__init__" else [resolved.stem]
    current = resolved.parent
    while (current / "__init__.py").is_file():
        parts.append(current.name)
        parent = current.parent
        if parent == current:  # filesystem root
            break
        current = parent
    return ".".join(reversed(parts)) or resolved.stem


@dataclass
class ImportRecord:
    """One import statement, resolved to an absolute dotted target."""

    #: Absolute dotted module the statement imports from; empty when a
    #: relative import climbs past the package root (unresolvable).
    target: str
    #: Names bound by ``from target import ...`` (empty for plain imports).
    names: tuple[str, ...]
    line: int
    column: int
    is_from: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "target": self.target,
            "names": list(self.names),
            "line": self.line,
            "column": self.column,
            "is_from": self.is_from,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ImportRecord":
        return cls(
            target=str(data["target"]),
            names=tuple(data["names"]),
            line=int(data["line"]),
            column=int(data["column"]),
            is_from=bool(data["is_from"]),
        )


@dataclass
class CallSite:
    """One call expression inside a function body."""

    #: Dotted callee as written, with the root resolved through the module's
    #: import aliases when possible (e.g. ``repro.runtime.engine.map_chunks``).
    callee: str
    line: int
    column: int
    num_positional: int
    has_star_args: bool
    keywords: tuple[str, ...]
    has_star_kwargs: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "callee": self.callee,
            "line": self.line,
            "column": self.column,
            "num_positional": self.num_positional,
            "has_star_args": self.has_star_args,
            "keywords": list(self.keywords),
            "has_star_kwargs": self.has_star_kwargs,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CallSite":
        return cls(
            callee=str(data["callee"]),
            line=int(data["line"]),
            column=int(data["column"]),
            num_positional=int(data["num_positional"]),
            has_star_args=bool(data["has_star_args"]),
            keywords=tuple(data["keywords"]),
            has_star_kwargs=bool(data["has_star_kwargs"]),
        )


@dataclass
class FunctionInfo:
    """Signature and outgoing calls of one top-level function or method."""

    #: ``name`` for module-level functions, ``Class.name`` for methods.
    qualname: str
    line: int
    #: Positional-capable parameters in order (pos-only then regular).
    positional: tuple[str, ...]
    keyword_only: tuple[str, ...]
    has_vararg: bool
    has_kwargs: bool
    is_method: bool
    calls: tuple[CallSite, ...] = ()

    @property
    def parameters(self) -> tuple[str, ...]:
        """Every named parameter (positional and keyword-only)."""
        return self.positional + self.keyword_only

    def to_dict(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "positional": list(self.positional),
            "keyword_only": list(self.keyword_only),
            "has_vararg": self.has_vararg,
            "has_kwargs": self.has_kwargs,
            "is_method": self.is_method,
            "calls": [call.to_dict() for call in self.calls],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FunctionInfo":
        return cls(
            qualname=str(data["qualname"]),
            line=int(data["line"]),
            positional=tuple(data["positional"]),
            keyword_only=tuple(data["keyword_only"]),
            has_vararg=bool(data["has_vararg"]),
            has_kwargs=bool(data["has_kwargs"]),
            is_method=bool(data["is_method"]),
            calls=tuple(CallSite.from_dict(c) for c in data["calls"]),
        )


@dataclass
class ModuleSummary:
    """JSON-serializable digest of one module for the project rules."""

    name: str
    path: str
    is_package: bool
    imports: list[ImportRecord] = field(default_factory=list)
    #: Local name -> absolute dotted target it was imported as.
    aliases: dict[str, str] = field(default_factory=dict)
    #: Names bound at module level (defs, classes, assignments, imports).
    symbols: set[str] = field(default_factory=set)
    #: qualname -> info for top-level functions and one-level class methods.
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Statically resolved ``__all__`` as (name, line) pairs; ``None`` when
    #: absent or not statically resolvable.
    dunder_all: list[tuple[str, int]] | None = None
    #: Lazy-export table literal ``_EXPORTS``: name -> (submodule, line).
    exports: dict[str, tuple[str, int]] | None = None
    defines_getattr: bool = False

    @property
    def package(self) -> str:
        """The package this module's relative imports resolve against."""
        if self.is_package:
            return self.name
        return self.name.rpartition(".")[0]

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "path": self.path,
            "is_package": self.is_package,
            "imports": [record.to_dict() for record in self.imports],
            "aliases": dict(sorted(self.aliases.items())),
            "symbols": sorted(self.symbols),
            "functions": {
                qualname: info.to_dict()
                for qualname, info in sorted(self.functions.items())
            },
            "dunder_all": (
                None
                if self.dunder_all is None
                else [[name, line] for name, line in self.dunder_all]
            ),
            "exports": (
                None
                if self.exports is None
                else {
                    name: [submodule, line]
                    for name, (submodule, line) in sorted(self.exports.items())
                }
            ),
            "defines_getattr": self.defines_getattr,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ModuleSummary":
        dunder_all = data["dunder_all"]
        exports = data["exports"]
        return cls(
            name=str(data["name"]),
            path=str(data["path"]),
            is_package=bool(data["is_package"]),
            imports=[ImportRecord.from_dict(r) for r in data["imports"]],
            aliases=dict(data["aliases"]),
            symbols=set(data["symbols"]),
            functions={
                qualname: FunctionInfo.from_dict(info)
                for qualname, info in data["functions"].items()
            },
            dunder_all=(
                None
                if dunder_all is None
                else [(str(name), int(line)) for name, line in dunder_all]
            ),
            exports=(
                None
                if exports is None
                else {
                    str(name): (str(submodule), int(line))
                    for name, (submodule, line) in exports.items()
                }
            ),
            defines_getattr=bool(data["defines_getattr"]),
        )


# --------------------------------------------------------------------------- #
# summary construction
# --------------------------------------------------------------------------- #
def _resolve_relative(package: str, level: int, tail: str) -> str:
    """Absolute target of a level-``level`` relative import from ``package``.

    Returns an empty string when the import climbs past the package root.
    """
    if level == 0:
        return tail
    parts = package.split(".") if package else []
    strip = level - 1
    if strip > len(parts):
        return ""
    base = ".".join(parts[: len(parts) - strip] if strip else parts)
    if not base:
        return tail
    return f"{base}.{tail}" if tail else base


def _iter_top_level(body: list[ast.stmt]) -> Iterator[ast.stmt]:
    """Module-level statements, descending into if/try/with blocks."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, ast.If):
            yield from _iter_top_level(stmt.body)
            yield from _iter_top_level(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            yield from _iter_top_level(stmt.body)
            for handler in stmt.handlers:
                yield from _iter_top_level(handler.body)
            yield from _iter_top_level(stmt.orelse)
            yield from _iter_top_level(stmt.finalbody)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            yield from _iter_top_level(stmt.body)


class _CallCollector(ast.NodeVisitor):
    """Collect call sites of one function body, excluding nested scopes."""

    def __init__(self, aliases: Mapping[str, str]) -> None:
        self._aliases = aliases
        self.calls: list[CallSite] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return  # nested scope: its calls are not the outer function's

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return

    def visit_Call(self, node: ast.Call) -> None:
        callee = dotted_name(node.func)
        if callee is not None:
            root, _, rest = callee.partition(".")
            resolved_root = self._aliases.get(root, root)
            resolved = f"{resolved_root}.{rest}" if rest else resolved_root
            self.calls.append(
                CallSite(
                    callee=resolved,
                    line=node.lineno,
                    column=node.col_offset,
                    num_positional=sum(
                        1 for arg in node.args if not isinstance(arg, ast.Starred)
                    ),
                    has_star_args=any(
                        isinstance(arg, ast.Starred) for arg in node.args
                    ),
                    keywords=tuple(
                        kw.arg for kw in node.keywords if kw.arg is not None
                    ),
                    has_star_kwargs=any(
                        kw.arg is None for kw in node.keywords
                    ),
                )
            )
        self.generic_visit(node)


def _function_info(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    qualname: str,
    aliases: Mapping[str, str],
    *,
    is_method: bool,
) -> FunctionInfo:
    args = node.args
    collector = _CallCollector(aliases)
    for stmt in node.body:
        collector.visit(stmt)
    return FunctionInfo(
        qualname=qualname,
        line=node.lineno,
        positional=tuple(a.arg for a in (*args.posonlyargs, *args.args)),
        keyword_only=tuple(a.arg for a in args.kwonlyargs),
        has_vararg=args.vararg is not None,
        has_kwargs=args.kwarg is not None,
        is_method=is_method,
        calls=tuple(collector.calls),
    )


def _literal_string_keys(node: ast.expr) -> list[tuple[str, int]] | None:
    """``(key, line)`` pairs of a dict literal with constant string keys."""
    if not isinstance(node, ast.Dict):
        return None
    keys: list[tuple[str, int]] = []
    for key in node.keys:
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        keys.append((key.value, key.lineno))
    return keys


def _resolve_dunder_all(
    value: ast.expr, dict_literals: Mapping[str, list[tuple[str, int]]]
) -> list[tuple[str, int]] | None:
    """Statically resolve an ``__all__`` list/tuple literal, or ``None``.

    Supports constant strings plus ``*name`` where ``name`` is a top-level
    dict literal with constant string keys (the ``*_EXPORTS`` idiom).
    """
    if not isinstance(value, (ast.List, ast.Tuple)):
        return None
    names: list[tuple[str, int]] = []
    for element in value.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            names.append((element.value, element.lineno))
        elif isinstance(element, ast.Starred) and isinstance(
            element.value, ast.Name
        ):
            keys = dict_literals.get(element.value.id)
            if keys is None:
                return None
            names.extend((name, element.lineno) for name, _ in keys)
        else:
            return None
    return names


def summarize_module(
    tree: ast.Module,
    *,
    module_name: str,
    display_path: str,
    is_package: bool,
) -> ModuleSummary:
    """Digest one parsed module into a :class:`ModuleSummary`."""
    summary = ModuleSummary(
        name=module_name, path=display_path, is_package=is_package
    )
    package = summary.package

    # Imports and aliases (anywhere in the module: function-local imports
    # feed the import graph too, which is what the layering rule wants).
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                summary.imports.append(
                    ImportRecord(
                        target=item.name,
                        names=(),
                        line=node.lineno,
                        column=node.col_offset,
                        is_from=False,
                    )
                )
                if item.asname:
                    summary.aliases[item.asname] = item.name
                else:
                    top = item.name.partition(".")[0]
                    summary.aliases.setdefault(top, top)
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_relative(package, node.level, node.module or "")
            names = tuple(
                item.name for item in node.names if item.name != "*"
            )
            summary.imports.append(
                ImportRecord(
                    target=target,
                    names=names,
                    line=node.lineno,
                    column=node.col_offset,
                    is_from=True,
                )
            )
            if target:
                for item in node.names:
                    if item.name == "*":
                        continue
                    local = item.asname or item.name
                    summary.aliases[local] = f"{target}.{item.name}"

    # Top-level symbol table, function/method signatures, __all__, _EXPORTS.
    dict_literals: dict[str, list[tuple[str, int]]] = {}
    dunder_all_value: ast.expr | None = None
    for stmt in _iter_top_level(tree.body):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.symbols.add(stmt.name)
            if stmt.name == "__getattr__":
                summary.defines_getattr = True
            summary.functions.setdefault(
                stmt.name,
                _function_info(
                    stmt, stmt.name, summary.aliases, is_method=False
                ),
            )
        elif isinstance(stmt, ast.ClassDef):
            summary.symbols.add(stmt.name)
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{stmt.name}.{item.name}"
                    summary.functions.setdefault(
                        qualname,
                        _function_info(
                            item, qualname, summary.aliases, is_method=True
                        ),
                    )
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            if isinstance(stmt, ast.Import):
                for item in stmt.names:
                    summary.symbols.add(
                        item.asname or item.name.partition(".")[0]
                    )
            else:
                for item in stmt.names:
                    if item.name != "*":
                        summary.symbols.add(item.asname or item.name)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            value = stmt.value
            for target in targets:
                for name in iter_assigned_names(target):
                    summary.symbols.add(name)
                    if value is not None:
                        keys = _literal_string_keys(value)
                        if keys is not None:
                            dict_literals[name] = keys
                    if name == "__all__" and value is not None:
                        dunder_all_value = value
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            for name in iter_assigned_names(stmt.target):
                summary.symbols.add(name)

    if dunder_all_value is not None:
        summary.dunder_all = _resolve_dunder_all(dunder_all_value, dict_literals)
    exports_keys = dict_literals.get("_EXPORTS")
    if exports_keys is not None:
        # Re-read values: _literal_string_keys only captured keys.
        for stmt in _iter_top_level(tree.body):
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                if not any(
                    "_EXPORTS" in iter_assigned_names(t) for t in targets
                ):
                    continue
                if isinstance(stmt.value, ast.Dict):
                    exports: dict[str, tuple[str, int]] = {}
                    resolvable = True
                    for key, value in zip(stmt.value.keys, stmt.value.values):
                        if (
                            isinstance(key, ast.Constant)
                            and isinstance(key.value, str)
                            and isinstance(value, ast.Constant)
                            and isinstance(value.value, str)
                        ):
                            exports[key.value] = (value.value, key.lineno)
                        else:
                            resolvable = False
                    if resolvable:
                        summary.exports = exports
                break
    return summary


# --------------------------------------------------------------------------- #
# the assembled whole-program view
# --------------------------------------------------------------------------- #
class ProjectAnalysis:
    """Import graph + symbol tables + call graph over a set of summaries."""

    def __init__(
        self,
        summaries: Mapping[str, ModuleSummary] | None = None,
        *,
        config: "LintConfig | None" = None,
    ) -> None:
        from .config import LintConfig  # local: avoid import cycle at load

        self.modules: dict[str, ModuleSummary] = dict(
            sorted((summaries or {}).items())
        )
        self.config: LintConfig = config if config is not None else LintConfig()

    @classmethod
    def from_summaries(
        cls,
        summaries: Iterator[ModuleSummary] | list[ModuleSummary],
        *,
        config: "LintConfig | None" = None,
    ) -> "ProjectAnalysis":
        return cls(
            {summary.name: summary for summary in summaries}, config=config
        )

    # ------------------------------------------------------------------ #
    # import graph
    # ------------------------------------------------------------------ #
    def import_targets(self, record: ImportRecord) -> list[str]:
        """Concrete module targets of one import statement.

        ``from pkg import a, b`` refines to ``pkg.a``/``pkg.b`` when those
        are project modules (submodule imports), else stays ``pkg``.
        """
        if not record.target:
            return []
        if not record.is_from or not record.names:
            return [record.target]
        targets: list[str] = []
        for name in record.names:
            candidate = f"{record.target}.{name}"
            targets.append(
                candidate if candidate in self.modules else record.target
            )
        return sorted(set(targets))

    def first_party_edges(self) -> dict[str, list[str]]:
        """Module -> sorted imported project modules (self-edges dropped)."""
        edges: dict[str, list[str]] = {}
        for name, summary in self.modules.items():
            targets: set[str] = set()
            for record in summary.imports:
                for target in self.import_targets(record):
                    resolved = self._project_prefix(target)
                    if resolved is not None and resolved != name:
                        targets.add(resolved)
            edges[name] = sorted(targets)
        return edges

    def external_imports(self, summary: ModuleSummary) -> list[str]:
        """Sorted top-level external (non-project) imports of a module."""
        external: set[str] = set()
        for record in summary.imports:
            for target in self.import_targets(record):
                if self._project_prefix(target) is None:
                    external.add(target.partition(".")[0])
        return sorted(external)

    def _project_prefix(self, module: str) -> str | None:
        """Longest project-module prefix of ``module``, or ``None``."""
        parts = module.split(".")
        for i in range(len(parts), 0, -1):
            candidate = ".".join(parts[:i])
            if candidate in self.modules:
                return candidate
        return None

    # ------------------------------------------------------------------ #
    # call graph
    # ------------------------------------------------------------------ #
    def resolve_callable(
        self, module_name: str, callee: str
    ) -> tuple[ModuleSummary, FunctionInfo] | None:
        """Resolve a call target to a project function, conservatively.

        Handles locally defined functions, class constructors (resolved to
        ``Class.__init__``), imported names, and one-hop re-export chains
        (``from .engine import map_chunks`` in a package ``__init__``).
        Returns ``None`` whenever the target is dynamic or external.
        """
        summary = self.modules.get(module_name)
        if summary is None:
            return None
        head, _, rest = callee.partition(".")
        if head in summary.aliases:
            target = summary.aliases[head]
            full = f"{target}.{rest}" if rest else target
            return self._resolve_qualified(full, hops=0)
        local = self._lookup_function(summary, callee)
        if local is not None:
            return summary, local
        return self._resolve_qualified(callee, hops=0)

    def _lookup_function(
        self, summary: ModuleSummary, tail: str
    ) -> FunctionInfo | None:
        info = summary.functions.get(tail)
        if info is not None:
            return info
        # A bare class name is a constructor call.
        if "." not in tail and tail in summary.symbols:
            return summary.functions.get(f"{tail}.__init__")
        return None

    def _resolve_qualified(
        self, dotted: str, *, hops: int
    ) -> tuple[ModuleSummary, FunctionInfo] | None:
        if hops > _MAX_RESOLUTION_HOPS:
            return None
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:i])
            summary = self.modules.get(module)
            if summary is None:
                continue
            tail = ".".join(parts[i:])
            info = self._lookup_function(summary, tail)
            if info is not None:
                return summary, info
            head, _, rest = tail.partition(".")
            if head in summary.aliases:
                target = summary.aliases[head]
                full = f"{target}.{rest}" if rest else target
                return self._resolve_qualified(full, hops=hops + 1)
            return None
        return None


# --------------------------------------------------------------------------- #
# import-graph rendering (``repro lint --graph imports``)
# --------------------------------------------------------------------------- #
def render_import_graph_json(analysis: ProjectAnalysis) -> str:
    """Machine-readable import graph: first-party edges + external deps."""
    import json

    edges = analysis.first_party_edges()
    document = {
        "version": 1,
        "modules": {
            name: {
                "path": summary.path,
                "imports": edges.get(name, []),
                "external": analysis.external_imports(summary),
            }
            for name, summary in analysis.modules.items()
        },
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def render_import_graph_dot(analysis: ProjectAnalysis) -> str:
    """Graphviz rendering of the first-party module import graph."""
    lines = ["digraph imports {", "  rankdir=LR;", "  node [shape=box];"]
    edges = analysis.first_party_edges()
    for name in analysis.modules:
        lines.append(f'  "{name}";')
    for name, targets in sorted(edges.items()):
        for target in targets:
            lines.append(f'  "{name}" -> "{target}";')
    lines.append("}")
    return "\n".join(lines) + "\n"
