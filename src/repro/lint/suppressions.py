"""Suppression comments: line-scoped ``allow`` and file-scoped ``file-allow``.

Two forms, both carrying a mandatory human reason after the bracket:

* ``# repro-lint: allow[RULE-ID] reason`` silences the named rule(s) on the
  line it is written on (matching the finding's reported line); when the
  comment is a standalone line it applies to the next code line instead, so
  long reasons need not fight the line-length limit;
* ``# repro-lint: file-allow[RULE-ID] reason`` silences the named rule(s)
  for the whole file, and is only honoured inside the module docstring
  block — the comment lines before the first real statement — so file-wide
  waivers stay visible at the top of the file.

The id list is comma-separated (``allow[RNG001, TME001]``) and everything
after the closing bracket is the reason — the self-clean gate expects every
in-tree suppression to say *why* the contract does not apply at that site.

Suppression hygiene is itself checked: an entry whose rule never fired (on
that line, or anywhere in the file for ``file-allow``), that names an id
the run does not know, or a ``file-allow`` placed below the docstring block
is reported as ``SUP001``, so stale suppressions cannot hide future
regressions.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

__all__ = ["SCOPE_FILE", "SCOPE_LINE", "Suppression", "collect_suppressions"]

_ALLOW_PATTERN = re.compile(r"repro-lint:\s*(file-)?allow\[([^\]]*)\]")

SCOPE_LINE = "line"
SCOPE_FILE = "file"


@dataclass
class Suppression:
    """One ``allow[...]``/``file-allow[...]`` entry pinned to its comment."""

    line: int
    column: int
    rule_id: str
    scope: str = SCOPE_LINE
    #: Set by the walker when a finding of ``rule_id`` is silenced by this.
    used: bool = False

    def to_record(self) -> list:
        """Compact JSON shape for the result cache."""
        return [self.line, self.column, self.rule_id, self.scope]

    @classmethod
    def from_record(cls, record: list) -> "Suppression":
        line, column, rule_id, scope = record
        return cls(
            line=int(line),
            column=int(column),
            rule_id=str(rule_id),
            scope=str(scope),
        )


def collect_suppressions(text: str) -> list[Suppression]:
    """Parse all suppression entries from ``text``'s comments.

    Comments are located with :mod:`tokenize` (never matched inside string
    literals).  Unparseable or empty ``allow[...]`` bodies yield entries
    with an empty ``rule_id`` so the hygiene check can report them.  Scope
    validity (``file-allow`` must sit in the docstring block) is judged by
    the walker, which knows where the block ends.

    A line-scoped ``allow`` in a trailing comment pins to its own line; in a
    standalone comment (nothing but the comment on the line) it pins to the
    next line holding code, so a block of standalone comments above a call
    covers that call.  ``file-allow`` always keeps the comment's own line —
    the walker validates its docstring-block placement against it.
    """
    suppressions: list[Suppression] = []
    #: Line-scoped entries from standalone comments, waiting for the next
    #: code token to tell them which line they cover.
    pending: list[Suppression] = []
    code_lines: set[int] = set()
    _NONCODE = frozenset(
        {
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        }
    )
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type not in _NONCODE:
                code_lines.add(token.start[0])
                if pending:
                    for suppression in pending:
                        suppression.line = token.start[0]
                    suppressions.extend(pending)
                    pending.clear()
                continue
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_PATTERN.search(token.string)
            if match is None:
                continue
            scope = SCOPE_FILE if match.group(1) else SCOPE_LINE
            line, column = token.start
            standalone = line not in code_lines
            ids = [part.strip() for part in match.group(2).split(",")]
            ids = [part for part in ids if part] or [""]
            for rule_id in ids:
                entry = Suppression(
                    line=line, column=column, rule_id=rule_id, scope=scope
                )
                if scope == SCOPE_LINE and standalone:
                    pending.append(entry)
                else:
                    suppressions.append(entry)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    # Standalone comments with no code after them keep their own line so the
    # hygiene check can still report them as unused.
    suppressions.extend(pending)
    suppressions.sort(key=lambda s: (s.line, s.column))
    return suppressions
