"""Inline suppression comments: ``# repro-lint: allow[RULE-ID] reason``.

A suppression silences the named rule(s) on the line it is written on
(matching the finding's reported line).  The id list is comma-separated
(``allow[RNG001, TME001]``) and everything after the closing bracket is the
human reason — the self-clean gate expects every in-tree suppression to say
*why* the contract does not apply at that site.

Suppression hygiene is itself checked: an ``allow`` entry whose rule never
fired on that line (or that names an id the run does not know) is reported
as ``SUP001``, so stale suppressions cannot hide future regressions.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

__all__ = ["Suppression", "collect_suppressions"]

_ALLOW_PATTERN = re.compile(r"repro-lint:\s*allow\[([^\]]*)\]")


@dataclass
class Suppression:
    """One ``allow[...]`` entry: a rule id pinned to a source line."""

    line: int
    column: int
    rule_id: str
    #: Set by the walker when a finding of ``rule_id`` on ``line`` is silenced.
    used: bool = False


def collect_suppressions(text: str) -> list[Suppression]:
    """Parse all suppression entries from ``text``'s comments.

    Comments are located with :mod:`tokenize` (never matched inside string
    literals).  Unparseable or empty ``allow[...]`` bodies yield entries with
    an empty ``rule_id`` so the hygiene check can report them.
    """
    suppressions: list[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        comments = [
            token
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    for token in comments:
        match = _ALLOW_PATTERN.search(token.string)
        if match is None:
            continue
        line, column = token.start
        ids = [part.strip() for part in match.group(1).split(",")]
        ids = [part for part in ids if part] or [""]
        for rule_id in ids:
            suppressions.append(Suppression(line=line, column=column, rule_id=rule_id))
    return suppressions
