"""File/package walker: parse sources, run rules, apply suppressions.

:func:`lint_paths` is the library entry point behind both CLIs: it expands
files and directories into a sorted list of ``*.py`` modules (directory
walks are explicitly sorted — the linter obeys its own ordering rule),
parses each one, runs the selected rules, silences findings covered by
inline ``allow[...]`` comments, and reports suppression hygiene.  The
result is a deterministic, sorted list of findings.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .astutil import collect_import_aliases, parent_map
from .findings import Finding
from .registry import LintRule, available_rules, get_rule
from .suppressions import Suppression, collect_suppressions

__all__ = ["LintError", "SourceModule", "collect_files", "lint_paths"]

#: Directories never descended into when walking a package tree.
_SKIPPED_DIRS: frozenset[str] = frozenset(
    {"__pycache__", ".git", ".hypothesis", ".mypy_cache", ".ruff_cache", "node_modules"}
)

#: Paths containing this fragment are *never* rule-exempt: the lint test
#: fixtures intentionally violate every contract and must keep firing even
#: though they live under ``tests/``.
_FIXTURE_FRAGMENT = "lint/fixtures"


class LintError(Exception):
    """Usage-level linter failure (unknown rule, missing path): exit code 2."""


@dataclass
class SourceModule:
    """One parsed module handed to every rule.

    Carries the parse tree plus lazily built shared analyses (import
    aliases, child->parent links) so individual rules stay cheap.
    """

    path: Path
    display_path: str
    text: str
    tree: ast.Module
    _aliases: dict[str, str] | None = field(default=None, repr=False)
    _parents: dict[ast.AST, ast.AST] | None = field(default=None, repr=False)

    @property
    def aliases(self) -> dict[str, str]:
        """Local name -> fully qualified imported name."""
        if self._aliases is None:
            self._aliases = collect_import_aliases(self.tree)
        return self._aliases

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child -> parent AST links."""
        if self._parents is None:
            self._parents = parent_map(self.tree)
        return self._parents

    def matches_fragment(self, fragments: Iterable[str]) -> bool:
        """Whether this module lives under any of the posix path fragments.

        Fixture modules (``tests/lint/fixtures/``) never match: they exist
        to fire the rules.
        """
        posix = self.path.as_posix()
        if _FIXTURE_FRAGMENT in posix:
            return False
        return any(fragment in posix for fragment in fragments)


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated module list.

    Directory trees are walked with explicitly sorted directory and file
    names so the output order never depends on filesystem enumeration.
    A path that does not exist is a usage error (:class:`LintError`).
    """
    collected: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            candidates = [path]
        elif path.is_dir():
            candidates = []
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d not in _SKIPPED_DIRS)
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        candidates.append(Path(dirpath) / filename)
        else:
            raise LintError(f"no such file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                collected.append(candidate)
    return collected


def resolve_rules(rule_ids: Sequence[str] | None) -> list[LintRule]:
    """Selected rule instances; ``None`` selects every registered rule."""
    if rule_ids is None:
        selected = available_rules()
    else:
        selected = tuple(rule_ids)
        if not selected:
            raise LintError("--rules selected no rules")
    rules = []
    for rule_id in selected:
        try:
            rules.append(get_rule(rule_id))
        except KeyError as error:
            raise LintError(str(error)) from None
    return rules


def _apply_suppressions(
    findings: list[Finding],
    suppressions: list[Suppression],
    selected_ids: set[str],
    display_path: str,
) -> list[Finding]:
    """Silence suppressed findings; report unused/unknown suppressions."""
    by_line: dict[tuple[int, str], list[Suppression]] = {}
    for suppression in suppressions:
        by_line.setdefault((suppression.line, suppression.rule_id), []).append(
            suppression
        )
    kept: list[Finding] = []
    for finding in findings:
        matches = by_line.get((finding.line, finding.rule))
        if matches:
            for suppression in matches:
                suppression.used = True
        else:
            kept.append(finding)
    known_ids = set(available_rules())
    for suppression in suppressions:
        if suppression.used:
            continue
        if suppression.rule_id not in known_ids:
            message = (
                f"suppression names unknown rule {suppression.rule_id or '<empty>'!r}"
            )
        elif suppression.rule_id in selected_ids:
            message = (
                f"unused suppression: {suppression.rule_id} did not fire on this line"
            )
        else:
            # The suppressed rule was deselected this run; its suppression
            # cannot be judged, so leave it alone.
            continue
        kept.append(
            Finding(
                path=display_path,
                line=suppression.line,
                column=suppression.column,
                rule="SUP001",
                message=message,
                severity="warning",
            )
        )
    return kept


def lint_module(
    path: Path, rules: Sequence[LintRule], *, display_path: str | None = None
) -> list[Finding]:
    """Lint one file with ``rules``; returns sorted findings."""
    display = display_path if display_path is not None else path.as_posix()
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise LintError(f"cannot read {path}: {error}") from None
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as error:
        return [
            Finding(
                path=display,
                line=int(error.lineno or 1),
                column=int(error.offset or 0),
                rule="PAR001",
                message=f"file does not parse: {error.msg}",
            )
        ]
    module = SourceModule(path=path, display_path=display, text=text, tree=tree)
    findings: list[Finding] = []
    for rule in rules:
        if module.matches_fragment(rule.exempt_fragments):
            continue
        findings.extend(rule.check(module))
    suppressions = collect_suppressions(text)
    findings = _apply_suppressions(
        findings, suppressions, {rule.rule_id for rule in rules}, display
    )
    return sorted(findings)


def lint_paths(
    paths: Sequence[str | Path], *, rules: Sequence[str] | None = None
) -> list[Finding]:
    """Lint files/packages and return all findings, sorted.

    Parameters
    ----------
    paths:
        Files or directories; directories are walked recursively in sorted
        order collecting ``*.py`` modules.
    rules:
        Rule ids to run; ``None`` runs every registered rule.  Unknown ids
        raise :class:`LintError` (the CLI's usage-error exit code 2).
    """
    selected = resolve_rules(rules)
    findings: list[Finding] = []
    for path in collect_files(paths):
        findings.extend(lint_module(path, selected))
    return sorted(findings)
