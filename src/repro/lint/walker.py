"""File/package walker: parse sources, run rules, apply suppressions.

:func:`run_lint` is the library entry point behind both CLIs.  One run:

1. expands files and directories into a sorted list of ``*.py`` modules
   (directory walks are explicitly sorted — the linter obeys its own
   ordering rule), minus the config's ``exclude`` fragments;
2. loads each module — from the content-hash cache when enabled and
   unchanged, else by parsing — yielding per-module rule findings *and* a
   :class:`~repro.lint.project.ModuleSummary` for the whole-program view;
3. assembles the summaries into a
   :class:`~repro.lint.project.ProjectAnalysis` and runs the selected
   :class:`~repro.lint.registry.ProjectRule` checks over it (changed files
   were re-parsed; their dependents are re-checked automatically because
   the cross-file rules always see every summary);
4. silences findings covered by inline ``allow[...]`` and file-level
   ``file-allow[...]`` comments and reports suppression hygiene.

The result is a deterministic, sorted list of findings plus run statistics.
:func:`lint_paths` is the findings-only wrapper the original API shipped.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from .astutil import collect_import_aliases, parent_map
from .cache import LintCache
from .config import LintConfig, load_config
from .errors import LintError
from .findings import Finding
from .project import ModuleSummary, ProjectAnalysis, module_name_for_path, summarize_module
from .registry import LintRule, ProjectRule, available_rules, get_rule
from .suppressions import SCOPE_FILE, Suppression, collect_suppressions

__all__ = [
    "LintError",
    "LintRun",
    "SourceModule",
    "analyze_paths",
    "collect_files",
    "lint_module",
    "lint_paths",
    "run_lint",
]

#: Directories never descended into when walking a package tree.
_SKIPPED_DIRS: frozenset[str] = frozenset(
    {
        "__pycache__",
        ".git",
        ".hypothesis",
        ".mypy_cache",
        ".repro-lint-cache",
        ".ruff_cache",
        "node_modules",
    }
)

#: Paths containing this fragment are *never* rule-exempt (nor excludable):
#: the lint test fixtures intentionally violate every contract and must keep
#: firing even though they live under ``tests/``.
_FIXTURE_FRAGMENT = "lint/fixtures"


def _path_is_exempt(posix: str, fragments: Iterable[str]) -> bool:
    """Whether a posix path matches any exemption fragment (fixtures never do)."""
    if _FIXTURE_FRAGMENT in posix:
        return False
    return any(fragment in posix for fragment in fragments)


@dataclass
class SourceModule:
    """One parsed module handed to every per-module rule.

    Carries the parse tree plus lazily built shared analyses (import
    aliases, child->parent links) so individual rules stay cheap.
    """

    path: Path
    display_path: str
    text: str
    tree: ast.Module
    _aliases: dict[str, str] | None = field(default=None, repr=False)
    _parents: dict[ast.AST, ast.AST] | None = field(default=None, repr=False)

    @property
    def aliases(self) -> dict[str, str]:
        """Local name -> fully qualified imported name."""
        if self._aliases is None:
            self._aliases = collect_import_aliases(self.tree)
        return self._aliases

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child -> parent AST links."""
        if self._parents is None:
            self._parents = parent_map(self.tree)
        return self._parents

    def matches_fragment(self, fragments: Iterable[str]) -> bool:
        """Whether this module lives under any of the posix path fragments.

        Fixture modules (``tests/lint/fixtures/``) never match: they exist
        to fire the rules.
        """
        return _path_is_exempt(self.path.as_posix(), fragments)


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated module list.

    Directory trees are walked with explicitly sorted directory and file
    names so the output order never depends on filesystem enumeration.
    A path that does not exist is a usage error (:class:`LintError`).
    """
    collected: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            candidates = [path]
        elif path.is_dir():
            candidates = []
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d not in _SKIPPED_DIRS)
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        candidates.append(Path(dirpath) / filename)
        else:
            raise LintError(f"no such file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                collected.append(candidate)
    return collected


def resolve_rules(
    rule_ids: Sequence[str] | None,
) -> list[LintRule | ProjectRule]:
    """Selected rule instances; ``None`` selects every registered rule."""
    if rule_ids is None:
        selected = available_rules()
    else:
        selected = tuple(rule_ids)
        if not selected:
            raise LintError("--rules selected no rules")
    rules: list[LintRule | ProjectRule] = []
    for rule_id in selected:
        try:
            rules.append(get_rule(rule_id))
        except KeyError as error:
            raise LintError(str(error)) from None
    return rules


# --------------------------------------------------------------------------- #
# suppression application
# --------------------------------------------------------------------------- #
def _apply_suppressions(
    findings: list[Finding],
    suppressions: list[Suppression],
    selected_ids: set[str],
    display_path: str,
    header_end: int | None,
) -> list[Finding]:
    """Silence suppressed findings; report suppression hygiene (SUP001).

    ``header_end`` is the line of the first statement after the module
    docstring (``None`` when the file has no such statement): ``file-allow``
    entries at or below it are misplaced and never honoured.
    """
    by_line: dict[tuple[int, str], list[Suppression]] = {}
    by_file: dict[str, list[Suppression]] = {}
    misplaced: list[Suppression] = []
    for suppression in suppressions:
        if suppression.scope == SCOPE_FILE:
            if header_end is not None and suppression.line >= header_end:
                misplaced.append(suppression)
            else:
                by_file.setdefault(suppression.rule_id, []).append(suppression)
        else:
            by_line.setdefault(
                (suppression.line, suppression.rule_id), []
            ).append(suppression)
    kept: list[Finding] = []
    for finding in findings:
        matches = by_line.get((finding.line, finding.rule))
        if not matches:
            matches = by_file.get(finding.rule)
        if matches:
            for suppression in matches:
                suppression.used = True
        else:
            kept.append(finding)
    known_ids = set(available_rules())
    misplaced_ids = {id(suppression) for suppression in misplaced}
    for suppression in misplaced:
        kept.append(
            Finding(
                path=display_path,
                line=suppression.line,
                column=suppression.column,
                rule="SUP001",
                message=(
                    f"file-allow[{suppression.rule_id or '<empty>'}] must "
                    "appear in the module docstring block (before line "
                    f"{header_end})"
                ),
                severity="warning",
            )
        )
    for suppression in suppressions:
        if suppression.used or id(suppression) in misplaced_ids:
            continue
        token = "file-allow" if suppression.scope == SCOPE_FILE else "allow"
        if suppression.rule_id not in known_ids:
            message = (
                f"suppression names unknown rule "
                f"{suppression.rule_id or '<empty>'!r}"
            )
        elif suppression.rule_id in selected_ids:
            where = (
                "in this file"
                if suppression.scope == SCOPE_FILE
                else "on this line"
            )
            message = (
                f"unused suppression: {token}[{suppression.rule_id}] "
                f"did not fire {where}"
            )
        else:
            # The suppressed rule was deselected this run; its suppression
            # cannot be judged, so leave it alone.
            continue
        kept.append(
            Finding(
                path=display_path,
                line=suppression.line,
                column=suppression.column,
                rule="SUP001",
                message=message,
                severity="warning",
            )
        )
    return kept


# --------------------------------------------------------------------------- #
# module loading (parse or cache)
# --------------------------------------------------------------------------- #
def _docstring_header_end(tree: ast.Module) -> int | None:
    """Line of the first statement after the module docstring, if any."""
    body = tree.body
    index = 0
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        index = 1
    if index >= len(body):
        return None
    return body[index].lineno


def _parse_error_finding(display: str, error: SyntaxError) -> Finding:
    line = int(error.lineno or 1)
    # SyntaxError offsets are 1-based; findings use 0-based columns like
    # every AST-anchored rule.
    column = max(int(error.offset or 1) - 1, 0)
    return Finding(
        path=display,
        line=line,
        column=column,
        rule="PAR001",
        message=(
            f"file does not parse: {error.msg} "
            f"(line {line}, column {column})"
        ),
    )


@dataclass
class _LoadedModule:
    """Everything one run needs from one source file."""

    path: Path
    display_path: str
    summary: ModuleSummary | None
    suppressions: list[Suppression]
    header_end: int | None
    findings: list[Finding]
    parse_failed: bool
    from_cache: bool


def _load_module(
    path: Path,
    module_rules: Sequence[LintRule],
    cache: LintCache | None,
) -> _LoadedModule:
    display = path.as_posix()
    try:
        content = path.read_bytes()
    except OSError as error:
        raise LintError(f"cannot read {path}: {error}") from None
    ruleset_key = ",".join(sorted(rule.rule_id for rule in module_rules))
    cache_key = ""
    entry: dict[str, Any] | None = None
    if cache is not None:
        cache_key = cache.key(path, content)
        entry = cache.load(cache_key)
        if entry is not None and ruleset_key in entry.get("findings", {}):
            cache.hits += 1
            summary_data = entry.get("summary")
            return _LoadedModule(
                path=path,
                display_path=display,
                summary=(
                    None
                    if summary_data is None
                    else ModuleSummary.from_dict(summary_data)
                ),
                suppressions=[
                    Suppression.from_record(record)
                    for record in entry.get("suppressions", [])
                ],
                header_end=entry.get("header_end"),
                findings=[
                    Finding.from_dict(record)
                    for record in entry["findings"][ruleset_key]
                ],
                parse_failed=bool(entry.get("parse_failed")),
                from_cache=True,
            )
        cache.misses += 1
    try:
        text = content.decode("utf-8")
    except UnicodeDecodeError as error:
        raise LintError(f"cannot read {path}: {error}") from None
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as error:
        loaded = _LoadedModule(
            path=path,
            display_path=display,
            summary=None,
            suppressions=[],
            header_end=None,
            findings=[_parse_error_finding(display, error)],
            parse_failed=True,
            from_cache=False,
        )
    else:
        module = SourceModule(
            path=path, display_path=display, text=text, tree=tree
        )
        findings: list[Finding] = []
        for rule in module_rules:
            if module.matches_fragment(rule.exempt_fragments):
                continue
            findings.extend(rule.check(module))
        loaded = _LoadedModule(
            path=path,
            display_path=display,
            summary=summarize_module(
                tree,
                module_name=module_name_for_path(path),
                display_path=display,
                is_package=path.stem == "__init__",
            ),
            suppressions=collect_suppressions(text),
            header_end=_docstring_header_end(tree),
            findings=sorted(findings),
            parse_failed=False,
            from_cache=False,
        )
    if cache is not None:
        findings_by_ruleset = dict((entry or {}).get("findings", {}))
        findings_by_ruleset[ruleset_key] = [
            finding.to_dict() for finding in loaded.findings
        ]
        cache.store(
            cache_key,
            {
                "summary": (
                    None
                    if loaded.summary is None
                    else loaded.summary.to_dict()
                ),
                "suppressions": [
                    suppression.to_record()
                    for suppression in loaded.suppressions
                ],
                "header_end": loaded.header_end,
                "parse_failed": loaded.parse_failed,
                "findings": findings_by_ruleset,
            },
        )
    return loaded


# --------------------------------------------------------------------------- #
# the run
# --------------------------------------------------------------------------- #
@dataclass
class LintRun:
    """Findings plus run statistics and the whole-program view."""

    findings: list[Finding]
    stats: dict[str, Any]
    analysis: ProjectAnalysis


def _collect_run_files(
    paths: Sequence[str | Path], config: LintConfig
) -> list[Path]:
    """Collected files minus the config's ``exclude`` fragments.

    Fixture paths are never excluded — same carve-out as rule exemptions.
    """
    files = collect_files(paths)
    if not config.exclude:
        return files
    kept = []
    for path in files:
        posix = path.as_posix()
        if _FIXTURE_FRAGMENT in posix or not any(
            fragment in posix for fragment in config.exclude
        ):
            kept.append(path)
    return kept


def run_lint(
    paths: Sequence[str | Path],
    *,
    rules: Sequence[str] | None = None,
    config: LintConfig | None = None,
    cache_dir: str | Path | None = None,
) -> LintRun:
    """Lint files/packages: per-module rules, whole-program rules, stats.

    Parameters
    ----------
    paths:
        Files or directories; directories are walked recursively in sorted
        order collecting ``*.py`` modules.
    rules:
        Rule ids to run; ``None`` falls back to the config's ``select`` and
        then to every registered rule.  Unknown ids raise
        :class:`LintError` (the CLI's usage-error exit code 2).
    config:
        A resolved :class:`~repro.lint.config.LintConfig`; ``None`` loads
        the nearest ``pyproject.toml`` above the first path.
    cache_dir:
        Enables the content-hash result cache at the given directory.
    """
    if config is None:
        anchor = Path(paths[0]) if paths else Path.cwd()
        config = load_config(anchor)
    rule_ids: Sequence[str] | None = rules
    if rule_ids is None and config.select is not None:
        rule_ids = config.select
    selected = resolve_rules(rule_ids)
    module_rules = [rule for rule in selected if isinstance(rule, LintRule)]
    project_rules = [
        rule for rule in selected if isinstance(rule, ProjectRule)
    ]
    selected_ids = {rule.rule_id for rule in selected}
    files = _collect_run_files(paths, config)
    cache = LintCache(cache_dir) if cache_dir is not None else None
    loaded = [_load_module(path, module_rules, cache) for path in files]

    summaries: dict[str, ModuleSummary] = {}
    for module in loaded:
        if module.summary is not None:
            summaries.setdefault(module.summary.name, module.summary)
    analysis = ProjectAnalysis(summaries, config=config)

    by_path: dict[str, list[Finding]] = {
        module.display_path: list(module.findings) for module in loaded
    }
    for rule in project_rules:
        for finding in rule.check(analysis):
            if _path_is_exempt(finding.path, rule.exempt_fragments):
                continue
            by_path.setdefault(finding.path, []).append(finding)

    findings: list[Finding] = []
    for module in loaded:
        if module.parse_failed:
            findings.extend(by_path[module.display_path])
            continue
        findings.extend(
            _apply_suppressions(
                sorted(by_path[module.display_path]),
                module.suppressions,
                selected_ids,
                module.display_path,
                module.header_end,
            )
        )
    stats: dict[str, Any] = {
        "files": len(files),
        "parsed": sum(1 for module in loaded if not module.from_cache),
        "cache_enabled": cache is not None,
        "cache_hits": cache.hits if cache is not None else 0,
        "cache_misses": cache.misses if cache is not None else 0,
    }
    return LintRun(findings=sorted(findings), stats=stats, analysis=analysis)


def analyze_paths(
    paths: Sequence[str | Path],
    *,
    config: LintConfig | None = None,
    cache_dir: str | Path | None = None,
) -> ProjectAnalysis:
    """Build the whole-program view without running any rules.

    Backs ``repro lint --graph imports``; shares the walker, config
    discovery, and cache with :func:`run_lint`.
    """
    if config is None:
        anchor = Path(paths[0]) if paths else Path.cwd()
        config = load_config(anchor)
    files = _collect_run_files(paths, config)
    cache = LintCache(cache_dir) if cache_dir is not None else None
    summaries: dict[str, ModuleSummary] = {}
    for path in files:
        module = _load_module(path, [], cache)
        if module.summary is not None:
            summaries.setdefault(module.summary.name, module.summary)
    return ProjectAnalysis(summaries, config=config)


def lint_module(
    path: Path,
    rules: Sequence[LintRule | ProjectRule],
    *,
    display_path: str | None = None,
) -> list[Finding]:
    """Lint one file with per-module ``rules``; returns sorted findings.

    Whole-program rules in ``rules`` are ignored — they need the assembled
    project view that only :func:`run_lint` builds.
    """
    module_rules = [rule for rule in rules if isinstance(rule, LintRule)]
    loaded = _load_module(path, module_rules, None)
    if display_path is not None:
        loaded.findings = [
            Finding(
                path=display_path,
                line=finding.line,
                column=finding.column,
                rule=finding.rule,
                message=finding.message,
                severity=finding.severity,
            )
            for finding in loaded.findings
        ]
        loaded.display_path = display_path
    if loaded.parse_failed:
        return loaded.findings
    return sorted(
        _apply_suppressions(
            loaded.findings,
            loaded.suppressions,
            {rule.rule_id for rule in module_rules},
            loaded.display_path,
            loaded.header_end,
        )
    )


def lint_paths(
    paths: Sequence[str | Path],
    *,
    rules: Sequence[str] | None = None,
    config: LintConfig | None = None,
    cache_dir: str | Path | None = None,
) -> list[Finding]:
    """Findings-only wrapper around :func:`run_lint` (the original API)."""
    return run_lint(
        paths, rules=rules, config=config, cache_dir=cache_dir
    ).findings
