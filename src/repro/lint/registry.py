"""Rule registry: plug-in point for static contract checks.

Mirrors the diffusion-model registry (:func:`repro.diffusion.models.register_model`):
rules are instances registered by their ``rule_id``, the built-in ids can
never be replaced, and third-party rules plug in with
:func:`register_rule` — ``repro lint --rules`` then selects them by id like
any shipped rule.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterator

from .findings import SEVERITIES, Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from .project import ProjectAnalysis
    from .walker import SourceModule

__all__ = [
    "BUILTIN_PROJECT_RULE_IDS",
    "BUILTIN_RULE_IDS",
    "FRAMEWORK_RULE_IDS",
    "LintRule",
    "ProjectRule",
    "available_rules",
    "get_rule",
    "register_rule",
]

#: Ids of the shipped per-module AST rules; never replaceable.
BUILTIN_RULE_IDS: frozenset[str] = frozenset(
    {"RNG001", "RNG002", "ORD001", "PKL001", "TEL001", "SPEC001", "TME001"}
)

#: Ids of the shipped whole-program rules; never replaceable either.
BUILTIN_PROJECT_RULE_IDS: frozenset[str] = frozenset(
    {"IMP001", "CTX001", "EXP001"}
)

#: Ids emitted by the framework itself (not AST rules, not selectable):
#: ``PAR001`` for files that fail to parse, ``SUP001`` for suppression
#: hygiene (unused or unknown ``allow[...]`` entries).
FRAMEWORK_RULE_IDS: tuple[str, ...] = ("PAR001", "SUP001")


class LintRule(abc.ABC):
    """Base class for one static contract check.

    Subclasses set the class attributes and implement :meth:`check`, yielding
    :class:`~repro.lint.findings.Finding` objects for one parsed module.
    ``exempt_fragments`` lists path fragments (posix form) where the rule
    never applies — the sanctioned homes of the behaviour it polices.
    """

    #: Unique rule id (e.g. ``RNG001``); also the suppression token.
    rule_id: str = ""
    #: One-line description shown by ``repro lint --list-rules``.
    summary: str = ""
    #: Severity attached to this rule's findings.
    severity: str = "error"
    #: Posix path fragments where the rule does not apply (see
    #: :meth:`repro.lint.walker.SourceModule.matches_fragment`).
    exempt_fragments: tuple[str, ...] = ()

    @abc.abstractmethod
    def check(self, module: "SourceModule") -> Iterator[Finding]:
        """Yield findings for ``module`` (already confirmed non-exempt)."""

    def finding(
        self, module: "SourceModule", node: object, message: str
    ) -> Finding:
        """Build a finding for an AST ``node`` (or ``(line, col)`` pair)."""
        line = getattr(node, "lineno", None)
        column = getattr(node, "col_offset", None)
        if line is None:
            line, column = node  # type: ignore[misc]
        return Finding(
            path=module.display_path,
            line=int(line),
            column=int(column or 0),
            rule=self.rule_id,
            message=message,
            severity=self.severity,
        )


class ProjectRule(abc.ABC):
    """Base class for one whole-program (cross-file) contract check.

    The second rule kind: where :class:`LintRule` sees one parsed module,
    a ``ProjectRule`` sees the assembled
    :class:`~repro.lint.project.ProjectAnalysis` — import graph, symbol
    tables, call graph — and yields findings anchored to the file each
    violation lives in.  Registration, selection (``--rules``), suppression
    (inline ``allow[...]`` and ``file-allow[...]``), and the exit-code
    contract are identical to per-module rules.
    """

    #: Unique rule id (e.g. ``IMP001``); also the suppression token.
    rule_id: str = ""
    #: One-line description shown by ``repro lint --list-rules``.
    summary: str = ""
    #: Severity attached to this rule's findings.
    severity: str = "error"
    #: Posix path fragments whose findings are dropped (fixture paths are
    #: never exempt, mirroring per-module rules).
    exempt_fragments: tuple[str, ...] = ()

    @abc.abstractmethod
    def check(self, project: "ProjectAnalysis") -> Iterator[Finding]:
        """Yield findings for the whole-program ``project`` view."""

    def finding(
        self, path: str, location: object, message: str
    ) -> Finding:
        """Build a finding at ``path`` for a node or ``(line, col)`` pair."""
        line = getattr(location, "line", None) or getattr(
            location, "lineno", None
        )
        column = getattr(location, "column", None)
        if column is None:
            column = getattr(location, "col_offset", None)
        if line is None:
            line, column = location  # type: ignore[misc]
        return Finding(
            path=path,
            line=int(line),
            column=int(column or 0),
            rule=self.rule_id,
            message=message,
            severity=self.severity,
        )


_REGISTRY: dict[str, "LintRule | ProjectRule"] = {}


def register_rule(
    rule: "LintRule | ProjectRule", *, overwrite: bool = False
) -> "LintRule | ProjectRule":
    """Register ``rule`` under its ``rule_id`` and return it.

    Third-party checks plug in here exactly like diffusion models plug into
    :func:`~repro.diffusion.models.register_model`: subclass
    :class:`LintRule` (per-module) or :class:`ProjectRule` (whole-program),
    give it a unique id, and register an instance.  ``overwrite`` permits
    re-registering a third-party id; the built-in rule ids can never be
    replaced.
    """
    if not isinstance(rule, (LintRule, ProjectRule)):
        raise TypeError(
            "register_rule expects a LintRule or ProjectRule instance, "
            f"got {type(rule).__name__}"
        )
    if not rule.rule_id:
        raise ValueError("lint rules must define a non-empty rule_id")
    if rule.rule_id in FRAMEWORK_RULE_IDS:
        raise ValueError(
            f"rule id {rule.rule_id!r} is reserved for framework findings"
        )
    if rule.severity not in SEVERITIES:
        raise ValueError(
            f"rule {rule.rule_id}: unknown severity {rule.severity!r}"
        )
    if rule.rule_id in _REGISTRY:
        if rule.rule_id in BUILTIN_RULE_IDS | BUILTIN_PROJECT_RULE_IDS:
            raise ValueError(
                f"the built-in lint rule {rule.rule_id!r} cannot be replaced"
            )
        if not overwrite:
            raise ValueError(
                f"lint rule {rule.rule_id!r} is already registered "
                "(pass overwrite=True to replace it)"
            )
    _REGISTRY[rule.rule_id] = rule
    return rule


def available_rules() -> tuple[str, ...]:
    """Registered rule ids, sorted."""
    return tuple(sorted(_REGISTRY))


def get_rule(rule_id: str) -> "LintRule | ProjectRule":
    """Look up a registered rule by id."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown lint rule {rule_id!r}; available: {', '.join(available_rules())}"
        ) from None
