"""Content-hash result cache under ``.repro-lint-cache/``.

One JSON entry per source file, keyed by the SHA-256 of the file's bytes
(plus its path and the cache format version, so renamed files and format
bumps miss cleanly).  An entry stores everything a warm run needs without
re-parsing:

* the :class:`~repro.lint.project.ModuleSummary` (whole-program facts), so
  the project rules re-run over unchanged files' summaries — only changed
  files are re-parsed, and their dependents are re-*checked* for free
  because the cross-file rules always run over the assembled summaries;
* the file's suppression comments and docstring-header boundary;
* the pre-suppression per-module findings, keyed by the module-rule
  selection they were computed with (a different ``--rules`` set re-runs
  the rules but keeps the summary).

Writes are atomic (tmp file + ``os.replace``) and corrupt or stale entries
read as misses — the cache can never change a lint verdict, only skip
work.  Entirely opt-in via ``repro lint --cache`` / ``--cache-dir``.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from .errors import LintError

__all__ = ["DEFAULT_CACHE_DIR", "LintCache"]

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-lint-cache"

#: Bumped when the entry shape (or anything it embeds) changes.
CACHE_FORMAT_VERSION = 2


class LintCache:
    """Directory of per-file JSON entries keyed by content hash."""

    def __init__(self, directory: Path | str = DEFAULT_CACHE_DIR) -> None:
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise LintError(
                f"cannot create cache directory {self.directory}: {error}"
            ) from None
        self.hits = 0
        self.misses = 0

    def key(self, path: Path, content: bytes) -> str:
        """Stable cache key for one file's current content."""
        digest = hashlib.sha256()
        digest.update(f"repro-lint-cache-v{CACHE_FORMAT_VERSION}\0".encode())
        digest.update(path.resolve().as_posix().encode())
        digest.update(b"\0")
        digest.update(content)
        return digest.hexdigest()

    def _entry_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> dict[str, Any] | None:
        """The stored entry for ``key``, or ``None`` (corrupt reads miss)."""
        try:
            with self._entry_path(key).open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("format") != CACHE_FORMAT_VERSION
        ):
            return None
        return entry

    def store(self, key: str, entry: dict[str, Any]) -> None:
        """Atomically persist ``entry``; IO failures are silently dropped."""
        entry = {**entry, "format": CACHE_FORMAT_VERSION}
        target = self._entry_path(key)
        tmp = target.with_suffix(".tmp")
        try:
            tmp.write_text(
                json.dumps(entry, sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, target)
        except OSError:
            tmp.unlink(missing_ok=True)
