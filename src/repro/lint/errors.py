"""Shared linter exception types.

Lives in its own module so the config loader, walker, cache, and CLI can
all raise :class:`LintError` without import cycles.
"""

from __future__ import annotations

__all__ = ["LintError"]


class LintError(Exception):
    """Usage-level linter failure (unknown rule, missing path, bad config):
    CLI exit code 2."""
