"""``[tool.repro-lint]`` configuration from ``pyproject.toml``.

The linter reads four keys, all optional, via stdlib :mod:`tomllib`:

``select``
    Rule ids to run by default.  The CLI's ``--rules`` flag always wins.
``exclude``
    Posix path fragments; collected files containing any fragment are
    skipped (the lint-fixture carve-out still applies: fixture paths are
    never excluded).
``layers``
    The declared import-layer DAG for the IMP001 rule: a table mapping a
    module prefix (the layer) to the list of import prefixes modules under
    it may use.  Stdlib imports and intra-layer imports are always allowed;
    an empty list therefore means *stdlib only*.
``seams``
    Parameter names the CTX001 seam-threading rule tracks; defaults to the
    :class:`~repro.context.RunContext` knobs plus ``rng``.

Unknown keys — and values of the wrong shape — are **usage errors**
(:class:`~repro.lint.errors.LintError`, CLI exit code 2), so a typo in the
config cannot silently disable a contract.  A missing file or a missing
``[tool.repro-lint]`` table yields the defaults.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from .errors import LintError

__all__ = ["DEFAULT_SEAMS", "LintConfig", "find_pyproject", "load_config"]

#: Seam parameters tracked by CTX001 when the config does not override them:
#: the cross-cutting execution knobs every layer threads through.
DEFAULT_SEAMS: tuple[str, ...] = (
    "batch_mode",
    "context",
    "executor",
    "jobs",
    "model",
    "rng",
    "telemetry",
)

_KNOWN_KEYS = frozenset({"select", "exclude", "layers", "seams"})


@dataclass
class LintConfig:
    """Resolved linter configuration (defaults when no pyproject is found)."""

    select: tuple[str, ...] | None = None
    exclude: tuple[str, ...] = ()
    #: Layer prefix -> allowed import prefixes (stdlib always implied).
    layers: dict[str, tuple[str, ...]] = field(default_factory=dict)
    seams: tuple[str, ...] = DEFAULT_SEAMS
    #: Path of the pyproject.toml the values came from, if any.
    source: str | None = None


def find_pyproject(anchor: Path) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``anchor`` (file or dir)."""
    current = anchor.resolve()
    if current.is_file():
        current = current.parent
    while True:
        candidate = current / "pyproject.toml"
        if candidate.is_file():
            return candidate
        if current.parent == current:
            return None
        current = current.parent


def _string_tuple(value: Any, key: str, source: Path) -> tuple[str, ...]:
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise LintError(
            f"[tool.repro-lint] {key} in {source} must be a list of strings"
        )
    return tuple(value)


def _parse_table(table: Mapping[str, Any], source: Path) -> LintConfig:
    unknown = sorted(set(table) - _KNOWN_KEYS)
    if unknown:
        raise LintError(
            f"unknown [tool.repro-lint] key(s) in {source}: "
            f"{', '.join(unknown)} (known: {', '.join(sorted(_KNOWN_KEYS))})"
        )
    config = LintConfig(source=source.as_posix())
    if "select" in table:
        config.select = _string_tuple(table["select"], "select", source)
    if "exclude" in table:
        config.exclude = _string_tuple(table["exclude"], "exclude", source)
    if "seams" in table:
        config.seams = _string_tuple(table["seams"], "seams", source)
    if "layers" in table:
        layers = table["layers"]
        if not isinstance(layers, Mapping):
            raise LintError(
                f"[tool.repro-lint] layers in {source} must be a table of "
                "layer prefix -> allowed import prefixes"
            )
        config.layers = {
            layer: _string_tuple(allowed, f"layers.{layer}", source)
            for layer, allowed in layers.items()
        }
    return config


def load_config(
    anchor: Path | None = None, *, explicit: Path | None = None
) -> LintConfig:
    """Load the linter config for a run.

    ``explicit`` names a pyproject.toml directly (missing file is a usage
    error); otherwise the nearest pyproject.toml at or above ``anchor`` is
    used, and no pyproject at all yields the built-in defaults.
    """
    if explicit is not None:
        if not explicit.is_file():
            raise LintError(f"config file not found: {explicit}")
        pyproject = explicit
    else:
        if anchor is None:
            anchor = Path.cwd()
        pyproject = find_pyproject(anchor)
        if pyproject is None:
            return LintConfig()
    try:
        with pyproject.open("rb") as handle:
            data = tomllib.load(handle)
    except (OSError, tomllib.TOMLDecodeError) as error:
        raise LintError(f"cannot read {pyproject}: {error}") from None
    table = data.get("tool", {}).get("repro-lint")
    if table is None:
        return LintConfig()
    if not isinstance(table, Mapping):
        raise LintError(f"[tool.repro-lint] in {pyproject} must be a table")
    return _parse_table(table, pyproject)
