"""Static determinism & contract linter for the repro codebase.

The test suite checks the determinism contracts *dynamically* — equal
outputs across seeds, jobs counts, executors.  This package enforces the
same contracts *statically*: AST rules walk the source and flag code that
could violate reproducibility even on paths no test exercises.

Shipped rules (see :data:`repro.lint.registry.BUILTIN_RULE_IDS`):

========  ==============================================================
RNG001    ambient randomness outside the sanctioned seeding modules
RNG002    rng-threaded functions constructing fresh generators
ORD001    set / unsorted-directory iteration order feeding results
PKL001    unpicklable workers at the executor seam
TEL001    counter names breaking the deterministic-naming convention
SPEC001   spec dataclass fields invisible to to_dict/from_dict
TME001    wall-clock reads outside the observability layer
========  ==============================================================

Findings are silenced line-by-line with ``# repro-lint: allow[RULE-ID]``;
unused suppressions are themselves reported (``SUP001``).  Third-party
rules plug in via :func:`register_rule`, mirroring
:func:`repro.diffusion.models.register_model`.

This package is deliberately stdlib-only (no numpy) so
``python -m repro.lint`` runs in a bare interpreter.
"""

from __future__ import annotations

from .findings import SEVERITIES, Finding
from .registry import (
    BUILTIN_RULE_IDS,
    FRAMEWORK_RULE_IDS,
    LintRule,
    available_rules,
    get_rule,
    register_rule,
)
from .reporters import JSON_REPORT_VERSION, parse_report, render_json, render_text
from .suppressions import Suppression, collect_suppressions
from .walker import LintError, SourceModule, collect_files, lint_paths

from . import rules as _rules  # noqa: F401  (import registers the built-in rules)

from .cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main

__all__ = [
    "BUILTIN_RULE_IDS",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "FRAMEWORK_RULE_IDS",
    "Finding",
    "JSON_REPORT_VERSION",
    "LintError",
    "LintRule",
    "SEVERITIES",
    "SourceModule",
    "Suppression",
    "available_rules",
    "collect_files",
    "collect_suppressions",
    "get_rule",
    "lint_paths",
    "main",
    "parse_report",
    "register_rule",
    "render_json",
    "render_text",
]
