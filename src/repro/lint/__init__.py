"""Static determinism & contract linter for the repro codebase.

The test suite checks the determinism contracts *dynamically* — equal
outputs across seeds, jobs counts, executors.  This package enforces the
same contracts *statically*: AST rules walk the source and flag code that
could violate reproducibility even on paths no test exercises.

Shipped per-module rules (see :data:`repro.lint.registry.BUILTIN_RULE_IDS`):

========  ==============================================================
RNG001    ambient randomness outside the sanctioned seeding modules
RNG002    rng-threaded functions constructing fresh generators
ORD001    set / unsorted-directory iteration order feeding results
PKL001    unpicklable workers at the executor seam
TEL001    counter names breaking the deterministic-naming convention
SPEC001   spec dataclass fields invisible to to_dict/from_dict
TME001    wall-clock reads outside the observability layer
========  ==============================================================

Shipped whole-program rules (:data:`~repro.lint.registry.BUILTIN_PROJECT_RULE_IDS`),
which see the assembled project — import graph, symbol tables, call graph
(:mod:`repro.lint.project`) — rather than one file at a time:

========  ==============================================================
IMP001    import crossing the [tool.repro-lint.layers] layer DAG
CTX001    seam kwarg (rng/jobs/telemetry/...) dropped between layers
EXP001    lazy ``_EXPORTS`` entry or ``__all__`` name that cannot resolve
========  ==============================================================

Findings are silenced line-by-line with ``# repro-lint: allow[RULE-ID]``
or file-wide with ``# repro-lint: file-allow[RULE-ID]`` in the module
docstring block; unused suppressions are themselves reported (``SUP001``).
Third-party rules plug in via :func:`register_rule`, mirroring
:func:`repro.diffusion.models.register_model` — per-module checks subclass
:class:`LintRule`, whole-program checks subclass :class:`ProjectRule`.

This package is deliberately stdlib-only (no numpy) so
``python -m repro.lint`` runs in a bare interpreter.
"""

from __future__ import annotations

from .cache import DEFAULT_CACHE_DIR, LintCache
from .config import DEFAULT_SEAMS, LintConfig, load_config
from .errors import LintError
from .findings import SEVERITIES, Finding
from .project import ModuleSummary, ProjectAnalysis, summarize_module
from .registry import (
    BUILTIN_PROJECT_RULE_IDS,
    BUILTIN_RULE_IDS,
    FRAMEWORK_RULE_IDS,
    LintRule,
    ProjectRule,
    available_rules,
    get_rule,
    register_rule,
)
from .reporters import JSON_REPORT_VERSION, parse_report, render_json, render_text
from .suppressions import Suppression, collect_suppressions
from .walker import (
    LintRun,
    SourceModule,
    analyze_paths,
    collect_files,
    lint_paths,
    run_lint,
)

from . import rules as _rules  # noqa: F401  (import registers the built-in rules)

from .cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main

__all__ = [
    "BUILTIN_PROJECT_RULE_IDS",
    "BUILTIN_RULE_IDS",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_SEAMS",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "FRAMEWORK_RULE_IDS",
    "Finding",
    "JSON_REPORT_VERSION",
    "LintCache",
    "LintConfig",
    "LintError",
    "LintRule",
    "LintRun",
    "ModuleSummary",
    "ProjectAnalysis",
    "ProjectRule",
    "SEVERITIES",
    "SourceModule",
    "Suppression",
    "analyze_paths",
    "available_rules",
    "collect_files",
    "collect_suppressions",
    "get_rule",
    "lint_paths",
    "load_config",
    "main",
    "parse_report",
    "register_rule",
    "render_json",
    "render_text",
    "run_lint",
    "summarize_module",
]
