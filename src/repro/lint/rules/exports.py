"""EXP001: lazy ``_EXPORTS`` tables and ``__all__`` lists must resolve.

``repro/__init__.py`` exports its public surface lazily (PEP 562): a
``_EXPORTS`` dict maps each public name to the submodule that defines it,
and ``__getattr__`` imports on first access.  Nothing at import time checks
that the named submodule exists or still defines the symbol — a rename
deep in the package silently turns ``repro.X`` into an ``AttributeError``
at first use.  This rule resolves every entry statically:

* each ``_EXPORTS`` entry's submodule must be a project module, and that
  module's symbol table must contain the exported name;
* every name in a statically resolvable ``__all__`` must exist in the
  module's own symbol table (or be covered by its ``_EXPORTS`` table, which
  the first check already validates).

Dynamically built ``__all__`` lists are skipped — the analysis only judges
what it can prove.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..findings import Finding
from ..registry import ProjectRule, register_rule

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..project import ProjectAnalysis

__all__ = ["ExportIntegrityRule"]


class ExportIntegrityRule(ProjectRule):
    """EXP001: an export that does not resolve to a defined symbol."""

    rule_id = "EXP001"
    summary = (
        "_EXPORTS entry or __all__ name does not resolve to a defined "
        "symbol"
    )

    def check(self, project: "ProjectAnalysis") -> Iterator[Finding]:
        for summary in project.modules.values():
            if summary.exports is not None:
                base = summary.package
                for name, (submodule, line) in sorted(
                    summary.exports.items(), key=lambda item: item[1][1]
                ):
                    target_name = (
                        f"{base}.{submodule}" if base else submodule
                    )
                    target = project.modules.get(target_name)
                    if target is None:
                        yield self.finding(
                            summary.path,
                            (line, 0),
                            f"_EXPORTS entry {name!r} names module "
                            f"{target_name!r}, which is not in the project",
                        )
                    elif name not in target.symbols and not (
                        target.exports is not None and name in target.exports
                    ):
                        yield self.finding(
                            summary.path,
                            (line, 0),
                            f"_EXPORTS entry {name!r} does not resolve: "
                            f"module {target_name!r} defines no such symbol",
                        )
            if summary.dunder_all is not None:
                for name, line in summary.dunder_all:
                    if name in summary.symbols:
                        continue
                    if summary.exports is not None and name in summary.exports:
                        continue  # judged by the _EXPORTS pass above
                    yield self.finding(
                        summary.path,
                        (line, 0),
                        f"__all__ names {name!r}, which the module neither "
                        "defines nor imports",
                    )


register_rule(ExportIntegrityRule())
