"""SPEC001: every spec field must be reachable from to_dict/from_dict.

The declarative API round-trips frozen dataclass specs through plain dicts
(``to_dict``/``from_dict``); a field that serialization machinery cannot
see silently drops on save/load and resurfaces as an irreproducible run.
For each frozen dataclass that participates in serialization (inherits the
``_SpecBase`` machinery, declares ``_nested``/``_tuple_fields``, or defines
``to_dict``/``from_dict`` by hand) the rule checks:

* ``_nested`` keys and ``_tuple_fields`` entries name declared fields;
* under the generic ``_SpecBase`` machinery, fields annotated with a
  spec-like type (``*Spec`` or ``RunContext``) are listed in ``_nested`` —
  otherwise ``from_dict`` would hand the constructor a plain dict;
* hand-written ``to_dict``/``from_dict`` overrides either delegate to
  ``super()``, enumerate ``dataclasses.fields(...)`` (generically complete
  by construction), or jointly mention every declared field.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import LintRule, register_rule
from ..walker import SourceModule

__all__ = ["SpecCoverageRule"]

_SERIALIZER_NAMES: frozenset[str] = frozenset({"to_dict", "from_dict"})


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "frozen"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


def _annotation_leaf(node: ast.expr) -> str | None:
    """Rightmost name of an annotation (``api.GraphSpec`` -> ``GraphSpec``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.rsplit(".", 1)[-1].strip("'\" ")
    if isinstance(node, ast.Subscript):
        # Optional[GraphSpec] / "GraphSpec | None" style wrappers: look inside.
        return _annotation_leaf(node.slice)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_leaf(node.left)
        return left if left is not None else _annotation_leaf(node.right)
    return None


def _string_keys(node: ast.expr) -> list[tuple[str, ast.expr]] | None:
    """(key, key-node) pairs of a dict literal with constant-string keys."""
    if not isinstance(node, ast.Dict):
        return None
    pairs = []
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            pairs.append((key.value, key))
    return pairs


def _string_elements(node: ast.expr) -> list[tuple[str, ast.expr]]:
    """(value, node) pairs of constant strings in a tuple/list/set literal."""
    if not isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return []
    return [
        (element.value, element)
        for element in node.elts
        if isinstance(element, ast.Constant) and isinstance(element.value, str)
    ]


class SpecCoverageRule(LintRule):
    """SPEC001: spec dataclass fields vs. their serialization machinery."""

    rule_id = "SPEC001"
    summary = (
        "frozen spec dataclass has a field invisible to to_dict/from_dict "
        "(or serialization metadata naming an unknown field)"
    )
    exempt_fragments = ("/tests/", "tests/conftest")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and _is_frozen_dataclass(node):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: SourceModule, node: ast.ClassDef
    ) -> Iterator[Finding]:
        fields = self._declared_fields(node)
        metadata = self._class_metadata(node)
        methods = {
            item.name: item
            for item in node.body
            if isinstance(item, ast.FunctionDef) and item.name in _SERIALIZER_NAMES
        }
        has_spec_base = any(
            "SpecBase" in (base.id if isinstance(base, ast.Name) else getattr(base, "attr", ""))
            for base in node.bases
        )
        if not (has_spec_base or metadata or methods):
            # Plain frozen dataclass with no serialization surface at all
            # (e.g. an internal record type): nothing to cross-check.
            return
        field_names = {name for name, _ in fields}
        for meta_name, entries in metadata.items():
            for key, key_node in entries:
                if key not in field_names:
                    yield self.finding(
                        module,
                        key_node,
                        f"{node.name}.{meta_name} names {key!r} which is not "
                        "a declared field",
                    )
        if has_spec_base:
            nested_keys = {key for key, _ in metadata.get("_nested", [])}
            for name, annotation in fields:
                leaf = _annotation_leaf(annotation) if annotation is not None else None
                if leaf is None:
                    continue
                if (leaf.endswith("Spec") or leaf == "RunContext") and name not in nested_keys:
                    yield self.finding(
                        module,
                        annotation,
                        f"{node.name}.{name} is a nested {leaf} but is "
                        "missing from _nested; from_dict would leave it a "
                        "plain dict",
                    )
        yield from self._check_overrides(module, node, methods, field_names)

    def _check_overrides(
        self,
        module: SourceModule,
        cls: ast.ClassDef,
        methods: dict[str, ast.FunctionDef],
        field_names: set[str],
    ) -> Iterator[Finding]:
        """Check hand-written serializers jointly.

        Fields must be reachable from the to_dict/from_dict *pair*: a field
        mentioned by either method counts (e.g. a runtime-only field that
        ``from_dict`` explicitly rejects).  A method that delegates to
        ``super()`` or enumerates ``dataclasses.fields(...)`` covers every
        field by construction.
        """
        if not methods:
            return
        mentioned: set[str] = set()
        for method in methods.values():
            if self._delegates_to_super(method) or self._enumerates_fields(method):
                return
            for child in ast.walk(method):
                if isinstance(child, ast.Attribute):
                    mentioned.add(child.attr)
                elif isinstance(child, ast.Name):
                    mentioned.add(child.id)
                elif isinstance(child, ast.Constant) and isinstance(child.value, str):
                    mentioned.add(child.value)
                elif isinstance(child, ast.keyword) and child.arg is not None:
                    mentioned.add(child.arg)
        anchor = min(methods.values(), key=lambda method: method.lineno)
        names = "/".join(sorted(methods))
        for name in sorted(field_names - mentioned):
            yield self.finding(
                module,
                anchor,
                f"{cls.name}.{names} never mention field {name!r}; "
                "the field would be dropped on round-trip",
            )

    def _delegates_to_super(self, method: ast.FunctionDef) -> bool:
        for child in ast.walk(method):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and isinstance(child.func.value, ast.Call)
                and isinstance(child.func.value.func, ast.Name)
                and child.func.value.func.id == "super"
                and child.func.attr in _SERIALIZER_NAMES
            ):
                return True
        return False

    def _enumerates_fields(self, method: ast.FunctionDef) -> bool:
        """Whether the method iterates ``dataclasses.fields(...)``."""
        for child in ast.walk(method):
            if not isinstance(child, ast.Call):
                continue
            func = child.func
            leaf = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
            if leaf == "fields":
                return True
        return False

    def _declared_fields(
        self, node: ast.ClassDef
    ) -> list[tuple[str, ast.expr | None]]:
        fields: list[tuple[str, ast.expr | None]] = []
        for item in node.body:
            if not isinstance(item, ast.AnnAssign):
                continue
            if not isinstance(item.target, ast.Name):
                continue
            name = item.target.id
            if name.startswith("_"):
                continue
            annotation_text = ast.dump(item.annotation)
            if "ClassVar" in annotation_text:
                continue
            fields.append((name, item.annotation))
        return fields

    def _class_metadata(
        self, node: ast.ClassDef
    ) -> dict[str, list[tuple[str, ast.expr]]]:
        """Literal contents of ``_nested`` / ``_tuple_fields`` declarations."""
        metadata: dict[str, list[tuple[str, ast.expr]]] = {}
        for item in node.body:
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(item, ast.AnnAssign) and item.value is not None:
                target, value = item.target, item.value
            elif isinstance(item, ast.Assign) and len(item.targets) == 1:
                target, value = item.targets[0], item.value
            if not isinstance(target, ast.Name) or value is None:
                continue
            if target.id == "_nested":
                pairs = _string_keys(value)
                if pairs is not None:
                    metadata["_nested"] = pairs
            elif target.id == "_tuple_fields":
                metadata["_tuple_fields"] = _string_elements(value)
        return metadata


register_rule(SpecCoverageRule())
