"""IMP001: the import graph must respect the declared layer DAG.

The architecture is layered (models → kernels → runtime → specs →
telemetry → linter) and each layer's allowed dependencies are declared
once, in ``[tool.repro-lint.layers]`` in pyproject.toml::

    [tool.repro-lint.layers]
    "repro.lint" = []                       # stdlib only
    "repro.obs"  = ["repro.exceptions"]     # never repro.api

A module belongs to the *longest* declared prefix that matches its dotted
name.  Every import it performs (top-level or function-local — deferred
imports are dependencies too) must then be stdlib, intra-layer, or match
one of the allowed prefixes; anything else is an IMP001 finding at the
import statement.  ``from pkg import name`` is refined to ``pkg.name``
when that is a project module, so importing a sanctioned submodule of an
otherwise-forbidden package stays expressible.

Modules under no declared layer are unconstrained — the rule enforces
exactly the DAG the project wrote down, nothing inferred.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..findings import Finding
from ..project import is_stdlib_module
from ..registry import ProjectRule, register_rule

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..project import ProjectAnalysis

__all__ = ["ImportLayeringRule"]


def _matches_prefix(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


class ImportLayeringRule(ProjectRule):
    """IMP001: imports crossing the declared layer DAG."""

    rule_id = "IMP001"
    summary = (
        "import violates the [tool.repro-lint.layers] layer DAG "
        "(stdlib and intra-layer imports are always allowed)"
    )

    def check(self, project: "ProjectAnalysis") -> Iterator[Finding]:
        layers = project.config.layers
        if not layers:
            return
        for summary in project.modules.values():
            layer = self._layer_for(summary.name, layers)
            if layer is None:
                continue
            allowed = layers[layer]
            for record in summary.imports:
                for target in project.import_targets(record):
                    if is_stdlib_module(target):
                        continue
                    if _matches_prefix(target, layer):
                        continue
                    if any(
                        _matches_prefix(target, prefix) for prefix in allowed
                    ):
                        continue
                    allowed_text = ", ".join(("stdlib", *allowed))
                    yield self.finding(
                        summary.path,
                        record,
                        f"layer {layer!r} may not import {target!r} "
                        f"(allowed: {allowed_text})",
                    )

    @staticmethod
    def _layer_for(
        module: str, layers: dict[str, tuple[str, ...]]
    ) -> str | None:
        best: str | None = None
        for layer in layers:
            if _matches_prefix(module, layer):
                if best is None or len(layer) > len(best):
                    best = layer
        return best


register_rule(ImportLayeringRule())
