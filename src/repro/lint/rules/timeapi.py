"""TME001: wall-clock reads stay inside the observability layer.

Results must be a pure function of spec + seed; a ``time.time()`` or
``datetime.now()`` anywhere in the compute layers leaks the environment
into outputs (timestamps in results, time-based early exits, duration-
dependent branching).  The observability layer (``repro/obs/``) and the
benchmark harness are the sanctioned homes for clocks — everything else is
flagged.  Genuine infrastructure timing outside those homes (e.g. the
runtime engine's per-task duration capture) carries an inline suppression
with the reason spelled out.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import call_name
from ..findings import Finding
from ..registry import LintRule, register_rule
from ..walker import SourceModule

__all__ = ["WallClockRule"]

_CLOCK_CALLS: frozenset[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule(LintRule):
    """TME001: no wall-clock reads outside obs/ and benchmarks/."""

    rule_id = "TME001"
    summary = (
        "wall-clock read (time.*, datetime.now) outside repro/obs/ and "
        "benchmarks/ — results must be a function of spec + seed"
    )
    exempt_fragments = (
        "repro/obs/",
        "benchmarks/",
        "/tests/",
        "tests/conftest",
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node, module.aliases)
            if name in _CLOCK_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"{name}() reads the wall clock outside the "
                    "observability layer; route timing through repro.obs "
                    "or drop it",
                )


register_rule(WallClockRule())
