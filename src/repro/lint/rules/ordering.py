"""ORD001: nondeterministic iteration order feeding results.

Python sets iterate in hash-table order — reproducible only by accident of
the current CPython build — and directory listings come back in filesystem
order.  Results derived from either (float accumulation, emitted rows,
edge-append order) silently depend on it.  The rule flags the statically
certain cases:

* ``for x in <set-typed expr>`` (loops and comprehensions) where the
  expression is syntactically known to be a set (literal, ``set(...)``/
  ``frozenset(...)`` call, set-operator combination, or a name every one of
  whose local bindings is set-typed);
* set-typed expressions passed to order-sensitive consumers
  (``sum``/``list``/``tuple``/``enumerate``/``str.join``);
* ``os.listdir``/``os.scandir``/``glob.glob``/``glob.iglob`` and pathlib
  ``.glob``/``.rglob``/``.iterdir`` calls not directly wrapped in
  ``sorted(...)``.

``sorted(<set>)`` and order-free consumers (``len``/``min``/``max``/``any``/
``all``/membership) are the sanctioned forms and are never flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import SetTypeTracker, call_name
from ..findings import Finding
from ..registry import LintRule, register_rule
from ..walker import SourceModule

__all__ = ["IterationOrderRule"]

#: Builtin consumers whose output depends on iteration order.
_ORDER_SENSITIVE_BUILTINS: frozenset[str] = frozenset(
    {"sum", "list", "tuple", "enumerate"}
)

#: Fully qualified directory-listing calls with filesystem-dependent order.
_LISTING_CALLS: frozenset[str] = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)

#: Pathlib-style listing methods (matched by attribute name, best effort).
_LISTING_METHODS: frozenset[str] = frozenset({"glob", "rglob", "iterdir"})


class IterationOrderRule(LintRule):
    """ORD001: set/directory iteration order must not reach results."""

    rule_id = "ORD001"
    summary = (
        "iteration over a set or an unsorted directory listing feeds "
        "results; wrap in sorted(...) or restructure"
    )
    exempt_fragments = ("/tests/", "tests/conftest")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        trackers: dict[ast.AST, SetTypeTracker] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                trackers[node] = SetTypeTracker(node)
        module_tracker = _ModuleTracker()
        for node in ast.walk(module.tree):
            tracker = self._enclosing_tracker(module, node, trackers) or module_tracker
            if isinstance(node, ast.For):
                if tracker.is_set_typed(node.iter):
                    yield self.finding(
                        module,
                        node.iter,
                        "iterating a set: the loop order is hash-table "
                        "order; iterate sorted(...) instead",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for comprehension in node.generators:
                    if tracker.is_set_typed(comprehension.iter):
                        if self._is_order_free_comprehension(module, node):
                            continue
                        yield self.finding(
                            module,
                            comprehension.iter,
                            "comprehension iterates a set in hash-table "
                            "order; iterate sorted(...) instead",
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, tracker)

    def _check_call(
        self, module: SourceModule, node: ast.Call, tracker: "SetTypeTracker | _ModuleTracker"
    ) -> Iterator[Finding]:
        name = call_name(node, module.aliases)
        if name in _LISTING_CALLS:
            if not self._directly_sorted(module, node):
                yield self.finding(
                    module,
                    node,
                    f"{name}() returns entries in filesystem order; wrap "
                    "the call in sorted(...)",
                )
            return
        if isinstance(node.func, ast.Attribute) and node.func.attr in _LISTING_METHODS:
            if not self._directly_sorted(module, node):
                yield self.finding(
                    module,
                    node,
                    f".{node.func.attr}() returns entries in filesystem "
                    "order; wrap the call in sorted(...)",
                )
            return
        if isinstance(node.func, ast.Name) and node.func.id in _ORDER_SENSITIVE_BUILTINS:
            if node.args and tracker.is_set_typed(node.args[0]):
                yield self.finding(
                    module,
                    node.args[0],
                    f"{node.func.id}() over a set consumes hash-table "
                    "order; pass sorted(...) instead",
                )
        elif isinstance(node.func, ast.Attribute) and node.func.attr == "join":
            if node.args and tracker.is_set_typed(node.args[0]):
                yield self.finding(
                    module,
                    node.args[0],
                    "join() over a set concatenates in hash-table order; "
                    "pass sorted(...) instead",
                )

    def _enclosing_tracker(
        self,
        module: SourceModule,
        node: ast.AST,
        trackers: dict[ast.AST, SetTypeTracker],
    ) -> SetTypeTracker | None:
        current = module.parents.get(node)
        while current is not None:
            if current in trackers:
                return trackers[current]
            current = module.parents.get(current)
        return None

    def _directly_sorted(self, module: SourceModule, node: ast.Call) -> bool:
        """Whether the call is an immediate argument of ``sorted(...)``."""
        parent = module.parents.get(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id == "sorted"
        )

    def _is_order_free_comprehension(
        self, module: SourceModule, node: ast.AST
    ) -> bool:
        """Set comprehensions feeding sorted()/order-free reducers are fine."""
        if isinstance(node, (ast.SetComp, ast.DictComp)):
            # Building another unordered container keeps order out of play.
            return True
        parent = module.parents.get(node)
        if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name):
            return parent.func.id in ("sorted", "len", "min", "max", "any", "all", "set", "frozenset")
        return False


class _ModuleTracker:
    """Module-level fallback: only literal/call set expressions are known."""

    def is_set_typed(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_typed(node.left) or self.is_set_typed(node.right)
        return False


register_rule(IterationOrderRule())
