"""TEL001: counter names must match the deterministic-naming convention.

:func:`repro.obs.telemetry.is_deterministic_counter` classifies counters by
name alone: everything outside ``runtime.*`` not ending in ``_seconds``/
``_bytes`` is promised to be a deterministic function of spec + seed.  The
classification only works if names are chosen consistently, so this rule
checks every counter-name literal passed to ``.incr(...)``:

* a name with an environmental unit suffix (``_seconds``/``_bytes``) whose
  static namespace is *not* ``runtime.`` is flagged — measured quantities
  belong under ``runtime.*`` or a phase-parameterised namespace
  (f-strings with a dynamic ``{phase}.`` prefix are treated as
  phase-namespaced and skipped);
* conversely, a literal ``runtime.*`` name *without* a unit suffix is
  flagged — either it is a deterministic count that belongs outside the
  environmental namespace, or it is a measurement missing its unit
  (genuine environmental counts are suppressed inline with a reason);
* a counter increment whose value expression directly calls a wall-clock
  function must use a ``_seconds`` name.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import call_name
from ..findings import Finding
from ..registry import LintRule, register_rule
from ..walker import SourceModule

__all__ = ["CounterNamingRule"]

_UNIT_SUFFIXES: tuple[str, ...] = ("_seconds", "_bytes")

_CLOCK_CALLS: frozenset[str] = frozenset(
    {
        "time.time",
        "time.perf_counter",
        "time.monotonic",
        "time.process_time",
    }
)


class CounterNamingRule(LintRule):
    """TEL001: literal counter names vs. the deterministic-name convention."""

    rule_id = "TEL001"
    summary = (
        "telemetry counter-name literal inconsistent with the "
        "is_deterministic_counter naming convention"
    )
    exempt_fragments = ("/tests/", "tests/conftest")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (
                isinstance(node.func, ast.Attribute) and node.func.attr == "incr"
            ):
                continue
            if not node.args:
                continue
            name_arg = node.args[0]
            literal = self._static_name(name_arg)
            if literal is None:
                continue
            name, prefix_known = literal
            has_suffix = name.endswith(_UNIT_SUFFIXES)
            in_runtime = name.startswith("runtime.")
            if prefix_known and has_suffix and not in_runtime:
                yield self.finding(
                    module,
                    name_arg,
                    f"counter {name!r} carries an environmental unit suffix "
                    "but lives outside the runtime.* namespace; move it "
                    "under runtime.* (or a phase-parameterised namespace)",
                )
            elif prefix_known and in_runtime and not has_suffix:
                yield self.finding(
                    module,
                    name_arg,
                    f"counter {name!r} sits in the environmental runtime.* "
                    "namespace without a unit suffix; deterministic counts "
                    "belong outside runtime.*, measurements need "
                    "_seconds/_bytes",
                )
            if not has_suffix and self._measures_wall_clock(node, module):
                yield self.finding(
                    module,
                    name_arg,
                    f"counter {name!r} accumulates a wall-clock measurement "
                    "but is named like a deterministic counter; use a "
                    "_seconds name",
                )

    def _static_name(self, node: ast.expr) -> tuple[str, bool] | None:
        """``(name, prefix_known)`` for literal or literal-tailed names.

        Plain string constants are fully known.  For f-strings only the
        rendered *tail* matters for the suffix check; the prefix is known
        only when the first piece is a constant (``f"runtime.{x}"``), and a
        dynamic prefix (``f"{phase}.kernel_seconds"``) marks the name as
        phase-namespaced: suffix placement is the phase owner's contract.
        """
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value, True
        if isinstance(node, ast.JoinedStr) and node.values:
            first = node.values[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                # Static prefix: judge it like a literal (the dynamic parts
                # cannot remove a runtime. prefix already present).
                return first.value, True
            return None
        return None

    def _measures_wall_clock(self, node: ast.Call, module: SourceModule) -> bool:
        """Whether the increment value directly calls a wall-clock function."""
        if len(node.args) < 2:
            return False
        for child in ast.walk(node.args[1]):
            if isinstance(child, ast.Call):
                name = call_name(child, module.aliases)
                if name in _CLOCK_CALLS:
                    return True
        return False


register_rule(CounterNamingRule())
