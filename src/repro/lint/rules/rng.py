"""Randomness rules: RNG001 (ambient randomness), RNG002 (generator threading).

The repository's determinism contract routes every draw through an
explicitly seeded generator (:class:`repro.diffusion.random_source.RandomSource`
or a ``numpy.random.Generator`` derived by the runtime's split-stream
seeding).  RNG001 flags ambient randomness — stdlib ``random`` calls, the
legacy ``numpy.random.*`` global-state functions, and
``default_rng()``/``default_rng(<constant>)`` — outside the two sanctioned
modules.  RNG002 flags public functions that *accept* an ``rng``/``generator``
parameter and then construct a fresh generator in their body anyway: every
draw in such a function must come from the threaded parameter (a fallback
construction guarded by an ``if rng is None`` test is sanctioned).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import call_name
from ..findings import Finding
from ..registry import LintRule, register_rule
from ..walker import SourceModule

__all__ = ["AmbientRandomnessRule", "GeneratorThreadingRule"]

#: Parameter names that mark a function as generator-threaded.
_RNG_PARAM_NAMES: frozenset[str] = frozenset({"rng", "generator"})

#: Call-name suffixes that construct a fresh generator.
_CONSTRUCTOR_SUFFIXES: tuple[str, ...] = (
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "random.Random",
    "RandomSource",
)


def _is_constant_expr(node: ast.expr) -> bool:
    """Whether an expression is a literal constant (incl. unary +/- forms)."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        return isinstance(node.operand, ast.Constant)
    return False


class AmbientRandomnessRule(LintRule):
    """RNG001: no ambient randomness outside the sanctioned modules."""

    rule_id = "RNG001"
    summary = (
        "ambient randomness (stdlib random, numpy.random globals, argless or "
        "constant-seeded default_rng) outside random_source.py / runtime/seeding.py"
    )
    exempt_fragments = (
        "repro/diffusion/random_source.py",
        "repro/runtime/seeding.py",
        "/tests/",
        "tests/conftest",
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node, module.aliases)
            if name is None:
                continue
            if name.startswith("random."):
                yield self.finding(
                    module,
                    node,
                    f"stdlib random call {name}() draws from ambient global "
                    "state; thread a seeded numpy Generator instead",
                )
            elif name.startswith("numpy.random."):
                leaf = name.rsplit(".", 1)[-1]
                if leaf == "default_rng":
                    if not node.args and not node.keywords:
                        yield self.finding(
                            module,
                            node,
                            "default_rng() without a seed is entropy-seeded "
                            "and unreproducible; derive the generator from "
                            "the run seed",
                        )
                    elif node.args and _is_constant_expr(node.args[0]):
                        yield self.finding(
                            module,
                            node,
                            "default_rng(<constant>) hard-codes a seed; "
                            "accept the seed as a parameter so runs stay "
                            "reproducible and controllable",
                        )
                elif leaf.islower():
                    # Lowercase numpy.random attributes are the legacy
                    # module-level draw functions sharing one hidden global
                    # RandomState (classes like SeedSequence are capitalized).
                    yield self.finding(
                        module,
                        node,
                        f"numpy.random.{leaf}() uses the hidden global "
                        "RandomState; use an explicitly seeded Generator",
                    )


class GeneratorThreadingRule(LintRule):
    """RNG002: functions taking an rng/generator must not build a fresh one."""

    rule_id = "RNG002"
    summary = (
        "public function naming an rng/generator parameter constructs a fresh "
        "generator in its body instead of threading the parameter"
    )
    exempt_fragments = ("/tests/", "tests/conftest")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for scope in ast.walk(module.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if scope.name.startswith("_"):
                continue
            params = {
                arg.arg
                for arg in [
                    *scope.args.posonlyargs,
                    *scope.args.args,
                    *scope.args.kwonlyargs,
                ]
            }
            rng_params = params & _RNG_PARAM_NAMES
            if not rng_params:
                continue
            yield from self._check_body(module, scope, rng_params)

    def _check_body(
        self,
        module: SourceModule,
        scope: ast.FunctionDef | ast.AsyncFunctionDef,
        rng_params: set[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(scope):
            if node is not scope and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                # Nested functions are separate scopes checked on their own.
                continue
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node, module.aliases)
            if name is None or not name.endswith(_CONSTRUCTOR_SUFFIXES):
                continue
            if self._guarded_by_none_check(module, node, rng_params):
                continue
            param = ", ".join(sorted(rng_params))
            yield self.finding(
                module,
                node,
                f"{scope.name}() accepts {param!r} but constructs a fresh "
                f"generator via {name.rsplit('.', 1)[-1]}(); every draw must "
                "come from the threaded parameter",
            )

    def _guarded_by_none_check(
        self, module: SourceModule, node: ast.Call, rng_params: set[str]
    ) -> bool:
        """Whether the construction sits under an ``if <rng> is None`` guard.

        The sanctioned default-construction idiom: ``if rng is None: rng =
        RandomSource(seed)`` (or the equivalent conditional expression).
        Any ``if``/ternary whose test mentions the rng parameter counts.
        """
        current: ast.AST | None = node
        while current is not None:
            parent = module.parents.get(current)
            if isinstance(parent, (ast.If, ast.IfExp)):
                test_names = {
                    child.id
                    for child in ast.walk(parent.test)
                    if isinstance(child, ast.Name)
                }
                if test_names & rng_params:
                    return True
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
            current = parent
        return False


register_rule(AmbientRandomnessRule())
register_rule(GeneratorThreadingRule())
