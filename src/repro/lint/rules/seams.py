"""CTX001: seam kwargs must be threaded through the call graph explicitly.

The recurring cross-file bug class in this codebase: a function accepts one
of the cross-cutting seam parameters (``rng``, ``jobs``, ``executor``,
``model``, ``telemetry``, ``batch_mode``, ``context`` — configurable via
``[tool.repro-lint] seams``) and calls a callee that *also* accepts it, but
silently drops it — the callee falls back to its default and one layer of
the stack runs unseeded / serial / unobserved.  PRs 3, 7, and 8 each fixed
hand-found instances; this rule finds them statically.

A seam counts as forwarded when the call passes it as a keyword, covers its
position with positional arguments, or uses ``*args``/``**kwargs`` (which
the analysis cannot see through — conservative, no finding).  Call targets
are resolved through the project call graph
(:meth:`~repro.lint.project.ProjectAnalysis.resolve_callable`), so only
calls to statically known project functions are judged.

Deliberate drops — a callee that must *not* inherit the caller's seam — are
suppressed inline with a reason, or per-file via
``# repro-lint: file-allow[CTX001] reason`` in the module docstring block.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..findings import Finding
from ..registry import ProjectRule, register_rule

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..project import CallSite, FunctionInfo, ProjectAnalysis

__all__ = ["SeamThreadingRule"]


class SeamThreadingRule(ProjectRule):
    """CTX001: a seam parameter dropped between caller and callee."""

    rule_id = "CTX001"
    summary = (
        "function accepts a seam parameter but drops it when calling a "
        "callee that also accepts it"
    )

    def check(self, project: "ProjectAnalysis") -> Iterator[Finding]:
        seams = project.config.seams
        if not seams:
            return
        for summary in project.modules.values():
            for info in sorted(
                summary.functions.values(), key=lambda f: f.line
            ):
                held = [s for s in seams if s in info.parameters]
                if not held:
                    continue
                for call in info.calls:
                    resolved = project.resolve_callable(
                        summary.name, call.callee
                    )
                    if resolved is None:
                        continue
                    callee_module, callee = resolved
                    for seam in held:
                        if self._dropped(seam, call, callee):
                            yield self.finding(
                                summary.path,
                                call,
                                f"{info.qualname} accepts seam {seam!r} but "
                                f"its call to {callee_module.name}."
                                f"{callee.qualname} (which also accepts "
                                f"{seam!r}) does not forward it",
                            )

    @staticmethod
    def _dropped(seam: str, call: "CallSite", callee: "FunctionInfo") -> bool:
        positional = (
            callee.positional[1:] if callee.is_method else callee.positional
        )
        if seam not in positional and seam not in callee.keyword_only:
            return False
        if seam in call.keywords:
            return False
        if call.has_star_kwargs or call.has_star_args:
            return False  # cannot see through star expansion: stay silent
        if seam in positional and positional.index(seam) < call.num_positional:
            return False  # covered positionally
        return True


register_rule(SeamThreadingRule())
