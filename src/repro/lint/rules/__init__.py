"""Built-in lint rules; importing this package registers all of them.

Each module calls :func:`repro.lint.registry.register_rule` at import time,
so the imports below are load-bearing — they populate the registry that
``repro lint`` and :func:`repro.lint.lint_paths` draw from.
"""

from __future__ import annotations

from . import exports, layering, ordering, pickling, rng, seams, specs, telemetry, timeapi
from .exports import ExportIntegrityRule
from .layering import ImportLayeringRule
from .ordering import IterationOrderRule
from .pickling import PicklableWorkerRule
from .rng import AmbientRandomnessRule, GeneratorThreadingRule
from .seams import SeamThreadingRule
from .specs import SpecCoverageRule
from .telemetry import CounterNamingRule
from .timeapi import WallClockRule

__all__ = [
    "AmbientRandomnessRule",
    "CounterNamingRule",
    "ExportIntegrityRule",
    "GeneratorThreadingRule",
    "ImportLayeringRule",
    "IterationOrderRule",
    "PicklableWorkerRule",
    "SeamThreadingRule",
    "SpecCoverageRule",
    "WallClockRule",
    "exports",
    "layering",
    "ordering",
    "pickling",
    "rng",
    "seams",
    "specs",
    "telemetry",
    "timeapi",
]
