"""PKL001: workers crossing the executor seam must be picklable.

The parallel runtime ships workers to process pools by pickling, and
pickling resolves functions by module-level name — lambdas, functions
defined inside another function, and bound instance methods all fail (or,
worse for determinism, capture mutable state).  PR 2 established the
convention that everything passed to ``run_seeded_tasks``/``run_tasks``/
``instrumented_map``/``executor.map`` is a module-level callable; this rule
enforces it statically, including on code paths no test exercises.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import LintRule, register_rule
from ..walker import SourceModule

__all__ = ["PicklableWorkerRule"]

#: Seam functions whose first positional argument is the worker callable.
_SEAM_FUNCTIONS: frozenset[str] = frozenset(
    {"run_seeded_tasks", "run_tasks"}
)

#: Seam functions whose *second* positional argument is the worker.
_SEAM_FUNCTIONS_ARG1: frozenset[str] = frozenset({"instrumented_map"})

#: Method names treated as executor seams (``executor.map(fn, tasks)``).
_SEAM_METHODS: frozenset[str] = frozenset({"map"})

#: Keyword names carrying the worker at any seam.
_WORKER_KEYWORDS: frozenset[str] = frozenset({"worker", "fn"})


class PicklableWorkerRule(LintRule):
    """PKL001: no lambdas / nested defs / bound methods at executor seams."""

    rule_id = "PKL001"
    summary = (
        "lambda, nested function, or bound method passed to "
        "run_seeded_tasks/run_tasks/executor.map — workers must be "
        "picklable module-level callables"
    )
    exempt_fragments = ("/tests/", "tests/conftest")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        nested_defs = self._nested_function_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            worker = self._worker_argument(node)
            if worker is None:
                continue
            yield from self._check_worker(module, node, worker, nested_defs)

    def _worker_argument(self, node: ast.Call) -> ast.expr | None:
        """The worker expression if ``node`` is a seam call, else ``None``."""
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        else:
            return None
        for keyword in node.keywords:
            if keyword.arg in _WORKER_KEYWORDS and (
                name in _SEAM_FUNCTIONS
                or name in _SEAM_FUNCTIONS_ARG1
                or (isinstance(func, ast.Attribute) and name in _SEAM_METHODS)
            ):
                return keyword.value
        if name in _SEAM_FUNCTIONS and node.args:
            return node.args[0]
        if name in _SEAM_FUNCTIONS_ARG1 and len(node.args) >= 2:
            return node.args[1]
        if (
            isinstance(func, ast.Attribute)
            and name in _SEAM_METHODS
            and node.args
        ):
            # ``<anything>.map(fn, ...)``: builtin map() is a Name call and
            # does not reach here; attribute .map is the executor protocol.
            return node.args[0]
        return None

    def _check_worker(
        self,
        module: SourceModule,
        call: ast.Call,
        worker: ast.expr,
        nested_defs: frozenset[str],
    ) -> Iterator[Finding]:
        if isinstance(worker, ast.Lambda):
            yield self.finding(
                module,
                worker,
                "lambda passed across the executor seam cannot be pickled; "
                "define a module-level worker function",
            )
        elif isinstance(worker, ast.Name) and worker.id in nested_defs:
            yield self.finding(
                module,
                worker,
                f"nested function {worker.id!r} passed across the executor "
                "seam cannot be pickled; move it to module level",
            )
        elif isinstance(worker, ast.Attribute) and isinstance(
            worker.value, ast.Name
        ) and worker.value.id in ("self", "cls"):
            yield self.finding(
                module,
                worker,
                f"bound method {worker.value.id}.{worker.attr} passed across "
                "the executor seam pickles the whole instance (or fails); "
                "use a module-level function taking the state explicitly",
            )

    def _nested_function_names(self, tree: ast.Module) -> frozenset[str]:
        """Names of functions defined inside another function."""
        nested: set[str] = set()
        for outer in ast.walk(tree):
            if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for inner in ast.walk(outer):
                if inner is outer:
                    continue
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested.add(inner.name)
        return frozenset(nested)
    # Note: methods of classes defined at module level are *not* nested —
    # ast.walk from a FunctionDef only reaches defs inside that function.


register_rule(PicklableWorkerRule())
