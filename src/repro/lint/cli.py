"""Command-line front end for the determinism linter.

Reached two ways with identical behaviour:

* ``repro lint [PATHS] [--rules ...] [--format ...]`` (the main CLI), and
* ``python -m repro.lint ...`` — importable without numpy, so CI can run it
  in a bare interpreter before any heavy dependency is installed.

Configuration comes from the nearest ``pyproject.toml``'s
``[tool.repro-lint]`` table (``select``, ``exclude``, ``layers``,
``seams``); CLI flags always win.  ``--graph imports`` dumps the module
import graph instead of linting, and ``--cache``/``--cache-dir`` enable the
content-hash result cache so warm re-runs skip unchanged files.

Exit-code contract (stable, tested):

* ``0`` — linted clean, no findings;
* ``1`` — at least one finding (of any severity);
* ``2`` — usage error: unknown rule id, missing path, bad flag, bad config.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence, TextIO

from .cache import DEFAULT_CACHE_DIR
from .config import LintConfig, load_config
from .errors import LintError
from .project import render_import_graph_dot, render_import_graph_json
from .registry import FRAMEWORK_RULE_IDS, ProjectRule, available_rules, get_rule
from .reporters import render_json, render_text
from .walker import analyze_paths, run_lint

__all__ = ["EXIT_CLEAN", "EXIT_FINDINGS", "EXIT_USAGE", "build_parser", "main"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser(prog: str = "repro lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Statically check the repository's determinism and serialization "
            "contracts (seeded randomness, iteration order, picklable "
            "workers, counter naming, spec round-trips, wall-clock use) plus "
            "the whole-program contracts (import layering, seam threading, "
            "export integrity)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help=(
            "files or directories to lint (default: src/ when it exists, "
            "else the current directory)"
        ),
    )
    parser.add_argument(
        "--rules",
        action="append",
        metavar="ID[,ID...]",
        help=(
            "run only these rule ids (repeatable, comma-separated); "
            "overrides the config's select list"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "dot"),
        default=None,
        help=(
            "report format (default: text; for --graph: json or dot, "
            "default json)"
        ),
    )
    parser.add_argument(
        "--graph",
        choices=("imports",),
        help="dump the module import graph instead of linting",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        help=(
            "explicit pyproject.toml to read [tool.repro-lint] from "
            "(default: nearest pyproject.toml above the first path)"
        ),
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore pyproject.toml and run with built-in defaults",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help=(
            "enable the content-hash result cache "
            f"(default directory: {DEFAULT_CACHE_DIR}/)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="cache directory (implies --cache)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rule ids with summaries and exit",
    )
    return parser


def _selected_rules(values: Sequence[str] | None) -> list[str] | None:
    if values is None:
        return None
    selected: list[str] = []
    for value in values:
        selected.extend(part.strip() for part in value.split(",") if part.strip())
    return selected


def _default_paths() -> list[str]:
    return ["src"] if Path("src").is_dir() else ["."]


def _list_rules(stream: TextIO) -> None:
    for rule_id in available_rules():
        rule = get_rule(rule_id)
        marker = "error" if rule.severity == "error" else rule.severity
        kind = "  [project]" if isinstance(rule, ProjectRule) else ""
        stream.write(f"{rule_id}  [{marker}]{kind}  {rule.summary}\n")
    framework = ", ".join(FRAMEWORK_RULE_IDS)
    stream.write(
        f"(framework findings, not selectable via --rules: {framework})\n"
    )


def _resolve_config(args: argparse.Namespace, paths: Sequence[str]) -> LintConfig:
    if args.no_config:
        return LintConfig()
    if args.config is not None:
        return load_config(explicit=Path(args.config))
    anchor = Path(paths[0]) if paths else Path.cwd()
    return load_config(anchor)


def main(
    argv: Sequence[str] | None = None,
    *,
    prog: str = "repro lint",
    stdout: TextIO | None = None,
    stderr: TextIO | None = None,
) -> int:
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    parser = build_parser(prog)
    try:
        args = parser.parse_args(argv)
    except SystemExit as exit_:  # argparse uses exit code 2 for usage errors
        return int(exit_.code or 0)
    if args.list_rules:
        _list_rules(out)
        return EXIT_CLEAN
    paths = args.paths or _default_paths()
    cache_dir = args.cache_dir if args.cache_dir else (
        DEFAULT_CACHE_DIR if args.cache else None
    )
    try:
        config = _resolve_config(args, paths)
        if args.graph is not None:
            graph_format = args.format or "json"
            if graph_format == "text":
                raise LintError(
                    "--graph supports --format json or dot, not text"
                )
            analysis = analyze_paths(paths, config=config, cache_dir=cache_dir)
            if graph_format == "dot":
                out.write(render_import_graph_dot(analysis))
            else:
                out.write(render_import_graph_json(analysis))
            return EXIT_CLEAN
        report_format = args.format or "text"
        if report_format == "dot":
            raise LintError("--format dot requires --graph imports")
        run = run_lint(
            paths,
            rules=_selected_rules(args.rules),
            config=config,
            cache_dir=cache_dir,
        )
    except LintError as error:
        err.write(f"{prog}: error: {error}\n")
        return EXIT_USAGE
    if report_format == "json":
        out.write(render_json(run.findings, stats=run.stats))
    else:
        out.write(render_text(run.findings))
    return EXIT_FINDINGS if run.findings else EXIT_CLEAN
