"""Command-line front end for the determinism linter.

Reached two ways with identical behaviour:

* ``repro lint [PATHS] [--rules ...] [--format ...]`` (the main CLI), and
* ``python -m repro.lint ...`` — importable without numpy, so CI can run it
  in a bare interpreter before any heavy dependency is installed.

Exit-code contract (stable, tested):

* ``0`` — linted clean, no findings;
* ``1`` — at least one finding (of any severity);
* ``2`` — usage error: unknown rule id, missing path, bad flag.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence, TextIO

from .registry import FRAMEWORK_RULE_IDS, available_rules, get_rule
from .reporters import render_json, render_text
from .walker import LintError, lint_paths

__all__ = ["EXIT_CLEAN", "EXIT_FINDINGS", "EXIT_USAGE", "build_parser", "main"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser(prog: str = "repro lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Statically check the repository's determinism and serialization "
            "contracts (seeded randomness, iteration order, picklable "
            "workers, counter naming, spec round-trips, wall-clock use)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help=(
            "files or directories to lint (default: src/ when it exists, "
            "else the current directory)"
        ),
    )
    parser.add_argument(
        "--rules",
        action="append",
        metavar="ID[,ID...]",
        help="run only these rule ids (repeatable, comma-separated)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rule ids with summaries and exit",
    )
    return parser


def _selected_rules(values: Sequence[str] | None) -> list[str] | None:
    if values is None:
        return None
    selected: list[str] = []
    for value in values:
        selected.extend(part.strip() for part in value.split(",") if part.strip())
    return selected


def _default_paths() -> list[str]:
    return ["src"] if Path("src").is_dir() else ["."]


def _list_rules(stream: TextIO) -> None:
    for rule_id in available_rules():
        rule = get_rule(rule_id)
        marker = "error" if rule.severity == "error" else rule.severity
        stream.write(f"{rule_id}  [{marker}]  {rule.summary}\n")
    framework = ", ".join(FRAMEWORK_RULE_IDS)
    stream.write(
        f"(framework findings, not selectable via --rules: {framework})\n"
    )


def main(
    argv: Sequence[str] | None = None,
    *,
    prog: str = "repro lint",
    stdout: TextIO | None = None,
    stderr: TextIO | None = None,
) -> int:
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    parser = build_parser(prog)
    try:
        args = parser.parse_args(argv)
    except SystemExit as exit_:  # argparse uses exit code 2 for usage errors
        return int(exit_.code or 0)
    if args.list_rules:
        _list_rules(out)
        return EXIT_CLEAN
    paths = args.paths or _default_paths()
    try:
        findings = lint_paths(paths, rules=_selected_rules(args.rules))
    except LintError as error:
        err.write(f"{prog}: error: {error}\n")
        return EXIT_USAGE
    if args.format == "json":
        out.write(render_json(findings))
    else:
        out.write(render_text(findings))
    return EXIT_FINDINGS if findings else EXIT_CLEAN
