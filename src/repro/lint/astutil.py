"""Shared AST helpers for the lint rules.

Pure-stdlib utilities: import-alias resolution (so ``np.random.default_rng``
and ``from numpy.random import default_rng`` resolve to the same qualified
name), a child -> parent map for ancestry queries, and a conservative
set-typedness analysis used by the ordering rule.  Everything here is
best-effort static analysis — when a construct cannot be resolved the
helpers return ``None``/``False`` and the rules stay silent, trading recall
for a near-zero false-positive rate.
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "call_name",
    "collect_import_aliases",
    "dotted_name",
    "function_scopes",
    "iter_assigned_names",
    "parent_map",
    "SetTypeTracker",
]


def collect_import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the fully qualified names they import.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random import
    default_rng as rng_factory`` maps ``rng_factory -> numpy.random.default_rng``.
    Relative imports keep their leading dots so rules can recognise
    package-local names (e.g. ``.random_source.RandomSource``).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                target = item.name if item.asname else item.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            prefix = "." * node.level + (node.module or "")
            for item in node.names:
                if item.name == "*":
                    continue
                local = item.asname or item.name
                aliases[local] = f"{prefix}.{item.name}" if prefix else item.name
    return aliases


def dotted_name(node: ast.expr) -> str | None:
    """The dotted source form of a Name/Attribute chain, or ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def call_name(node: ast.Call, aliases: dict[str, str]) -> str | None:
    """Resolve a call's target through the module's import aliases.

    Returns the fully qualified dotted name when the call target is a plain
    Name/Attribute chain rooted in an imported name, the dotted source form
    when the root is a local name, and ``None`` for dynamic targets
    (subscripts, call results, lambdas).
    """
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    root, _, rest = dotted.partition(".")
    resolved_root = aliases.get(root, root)
    return f"{resolved_root}.{rest}" if rest else resolved_root


def parent_map(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    """Child -> parent links for every node in ``tree``."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def function_scopes(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in the module, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def iter_assigned_names(target: ast.expr) -> Iterator[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from iter_assigned_names(element)


def _annotation_is_set(annotation: ast.expr | None) -> bool:
    """Whether a type annotation's outermost constructor is set/frozenset."""
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):  # set[int], frozenset[str]
        node = node.value
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: look at the leading identifier only.
        head = node.value.split("[", 1)[0].strip()
        return head in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
    name = dotted_name(node)
    if name is None:
        return False
    leaf = name.rsplit(".", 1)[-1]
    return leaf in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")


class SetTypeTracker:
    """Conservative set-typedness analysis for one function scope.

    An expression is *known set-typed* when it is a set literal or
    comprehension, a direct ``set(...)``/``frozenset(...)`` call, a set
    operator combination of known set-typed operands, or a plain name whose
    annotation or every tracked assignment in this scope is set-typed.
    Anything else — subscripts, attributes, call results — is unknown and
    never reported, so the ordering rule only fires where the set type is
    syntactically certain.
    """

    def __init__(self, scope: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._set_names: set[str] = set()
        self._unknown_names: set[str] = set()
        for arg in [
            *scope.args.posonlyargs,
            *scope.args.args,
            *scope.args.kwonlyargs,
        ]:
            if _annotation_is_set(arg.annotation):
                self._set_names.add(arg.arg)
        for node in ast.walk(scope):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if _annotation_is_set(node.annotation):
                    self._set_names.add(node.target.id)
                else:
                    self._unknown_names.add(node.target.id)
            elif isinstance(node, ast.Assign):
                is_set_value = self._expression_is_set(node.value, names=False)
                for name in (
                    name
                    for target in node.targets
                    for name in iter_assigned_names(target)
                ):
                    if is_set_value:
                        self._set_names.add(name)
                    else:
                        self._unknown_names.add(name)
        # A name with any non-set binding is ambiguous: never report it.
        self._set_names -= self._unknown_names

    def is_set_typed(self, node: ast.expr) -> bool:
        """Whether ``node`` is statically known to evaluate to a set."""
        return self._expression_is_set(node, names=True)

    def _expression_is_set(self, node: ast.expr, *, names: bool) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._expression_is_set(
                node.left, names=names
            ) or self._expression_is_set(node.right, names=names)
        if names and isinstance(node, ast.Name):
            return node.id in self._set_names
        return False
