"""Seeded random-number management for reproducible experiments.

The paper (Section 4.1) is explicit about where pseudorandom numbers are
drawn: Oneshot draws one uniform per examined edge, Snapshot one uniform per
edge per sampled graph, and RIS uses two streams (one to pick a random target
vertex, one per examined in-edge).  Each of the ``T`` independent algorithm
runs uses a distinct PRNG seed.

:class:`RandomSource` wraps :class:`numpy.random.Generator` and provides
``spawn`` for deriving independent child streams deterministically, so a
single experiment seed expands into per-trial, per-algorithm streams without
correlation.
"""

from __future__ import annotations

import numpy as np

from .._validation import require_non_negative_int


class RandomSource:
    """A seeded source of uniform random numbers and child streams."""

    def __init__(self, seed: int | np.random.SeedSequence = 0) -> None:
        if isinstance(seed, np.random.SeedSequence):
            self._sequence = seed
        else:
            self._sequence = np.random.SeedSequence(require_non_negative_int(int(seed), "seed"))
        self._generator = np.random.default_rng(self._sequence)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator (PCG64)."""
        return self._generator

    @property
    def sequence(self) -> np.random.SeedSequence:
        """The seed sequence this source was constructed from.

        The parallel runtime (:mod:`repro.runtime.seeding`) uses it to derive
        stateless per-task child streams; note it reflects the construction
        seed, not how far :attr:`generator` has since been consumed.
        """
        return self._sequence

    def spawn(self, count: int) -> list["RandomSource"]:
        """Create ``count`` statistically independent child sources."""
        require_non_negative_int(count, "count")
        return [RandomSource(child) for child in self._sequence.spawn(count)]

    def uniform(self, size: int | None = None) -> float | np.ndarray:
        """Uniform draws in ``[0, 1)``; a scalar when ``size`` is ``None``."""
        if size is None:
            return float(self._generator.random())
        return self._generator.random(size)

    def integers(self, upper: int, size: int | None = None) -> int | np.ndarray:
        """Uniform integers in ``[0, upper)``."""
        if size is None:
            return int(self._generator.integers(upper))
        return self._generator.integers(upper, size=size)

    def permutation(self, length: int) -> np.ndarray:
        """A uniformly random permutation of ``range(length)``."""
        return self._generator.permutation(length)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomSource(entropy={self._sequence.entropy})"


def trial_seeds(experiment_seed: int, num_trials: int) -> list[int]:
    """Derive ``num_trials`` distinct 32-bit trial seeds from one experiment seed.

    The derivation uses :class:`numpy.random.SeedSequence` spawning so the
    per-trial streams are independent; the returned integers are convenient to
    log and to re-run a single trial in isolation.
    """
    require_non_negative_int(experiment_seed, "experiment_seed")
    require_non_negative_int(num_trials, "num_trials")
    sequence = np.random.SeedSequence(experiment_seed)
    return [int(child.generate_state(1)[0]) for child in sequence.spawn(num_trials)]
