"""Linear threshold (LT) diffusion model (Granovetter; Kempe et al. 2003).

The paper's experiments use the independent cascade model, but the LT model
is the other classical diffusion model of Kempe et al. and every algorithmic
approach studied by the paper applies to it unchanged, because LT also admits
a live-edge (random-graph) interpretation:

    each vertex v independently selects **at most one** incoming edge, picking
    edge (u, v) with probability p(u, v) and no edge with probability
    1 - sum_u p(u, v); the spread of S equals the expected number of vertices
    reachable from S over the selected edges.

This module provides the LT counterparts of the IC primitives: forward
threshold simulation, live-edge snapshot sampling, reverse-reachable set
generation, and exact spread for tiny graphs.  All of them return the
*shared* result types (:class:`~repro.diffusion.cascade.CascadeResult`,
:class:`~repro.diffusion.reverse.RRSet`, and — via
:meth:`LTSnapshot.to_snapshot` — the CSR
:class:`~repro.diffusion.snapshots.Snapshot`), so the estimators in
:mod:`repro.algorithms` consume LT samples through the exact same interfaces
as IC samples.  The :class:`~repro.diffusion.models.LinearThreshold` model in
:mod:`repro.diffusion.models` wraps these functions behind the
``DiffusionModel`` protocol, which is how the experiment harness and the CLI
reach them (an extension beyond the paper's scope, documented in
``docs/DESIGN.md``).

Validity requirement: the LT model needs ``sum_u p(u, v) <= 1`` for every
vertex ``v``.  The paper's ``iwc`` assignment satisfies this with equality;
``uc0.01`` satisfies it on low-in-degree graphs; :func:`validate_lt_weights`
checks it explicitly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from .._validation import normalize_seed_set, require_positive_int, require_vertex
from ..exceptions import InvalidParameterError
from ..graphs.influence_graph import InfluenceGraph
from .cascade import CascadeResult
from .costs import SampleSize, TraversalCost
from .random_source import RandomSource
from .reverse import RRSet
from .snapshots import Snapshot, snapshot_from_live_edges

#: Tolerance when checking that incoming weights sum to at most one.
WEIGHT_TOLERANCE = 1e-9


def validate_lt_weights(graph: InfluenceGraph) -> None:
    """Raise unless every vertex's incoming probabilities sum to at most 1.

    Fully vectorised (one pass over the reverse CSR), so estimators can
    afford to re-validate on every Build without a measurable cost.
    """
    indptr, _, probs = graph.in_csr
    if probs.size == 0:
        return
    totals = np.zeros(graph.num_vertices, dtype=np.float64)
    nonempty = np.diff(indptr) > 0
    # Consecutive non-empty segment starts are strictly increasing and span
    # exactly one vertex's in-edges each, so reduceat sums per vertex without
    # accumulating error across the whole edge array.
    totals[nonempty] = np.add.reduceat(probs, indptr[:-1][nonempty])
    worst = int(np.argmax(totals))
    if totals[worst] > 1.0 + WEIGHT_TOLERANCE:
        raise InvalidParameterError(
            f"LT model requires sum of incoming weights <= 1; vertex {worst} "
            f"has {float(totals[worst]):.6f}"
        )


#: LT cascades share the IC result type; the alias is kept for back-compat.
LTCascadeResult = CascadeResult


def simulate_lt_cascade(
    graph: InfluenceGraph,
    seeds: tuple[int, ...] | list[int] | set[int],
    rng: RandomSource | np.random.Generator,
    *,
    cost: TraversalCost | None = None,
) -> CascadeResult:
    """Run one forward LT cascade using per-vertex random thresholds.

    Each non-seed vertex draws a uniform threshold; an inactive vertex becomes
    active once the total weight of its active in-neighbours reaches the
    threshold.  Traversal cost follows the IC convention: every activated
    vertex counts one vertex examination, and each of its out-edges counts one
    edge examination (the weight pushed to each out-neighbour).
    """
    generator = rng.generator if isinstance(rng, RandomSource) else rng
    seed_tuple = normalize_seed_set(seeds, graph.num_vertices)
    thresholds = generator.random(graph.num_vertices)
    accumulated = np.zeros(graph.num_vertices, dtype=np.float64)
    active = np.zeros(graph.num_vertices, dtype=bool)

    activated_order: list[int] = []
    frontier: list[int] = []
    for seed in seed_tuple:
        active[seed] = True
        activated_order.append(seed)
        frontier.append(seed)

    indptr, targets, probs = graph.out_csr
    while frontier:
        next_frontier: list[int] = []
        for vertex in frontier:
            if cost is not None:
                cost.add_vertices(1)
            start, stop = indptr[vertex], indptr[vertex + 1]
            if cost is not None and stop > start:
                cost.add_edges(int(stop - start))
            for offset in range(start, stop):
                target = int(targets[offset])
                if active[target]:
                    continue
                accumulated[target] += probs[offset]
                if accumulated[target] >= thresholds[target]:
                    active[target] = True
                    activated_order.append(target)
                    next_frontier.append(target)
        frontier = next_frontier
    return CascadeResult(tuple(activated_order), len(activated_order))


def simulate_lt_spread(
    graph: InfluenceGraph,
    seeds: tuple[int, ...] | list[int] | set[int],
    num_simulations: int,
    rng: RandomSource | np.random.Generator,
    *,
    cost: TraversalCost | None = None,
) -> float:
    """Average activated count over ``num_simulations`` LT cascades."""
    require_positive_int(num_simulations, "num_simulations")
    generator = rng.generator if isinstance(rng, RandomSource) else rng
    total = 0
    for _ in range(num_simulations):
        total += simulate_lt_cascade(graph, seeds, generator, cost=cost).num_activated
    return total / num_simulations


@dataclass(frozen=True)
class LTSnapshot:
    """One LT live-edge graph: each vertex keeps at most one incoming edge.

    Stored as a parent array: ``parent[v]`` is the selected in-neighbour of
    ``v`` or ``-1`` when no edge was selected.  Forward reachability is
    computed on demand from the implied child adjacency.
    """

    parent: np.ndarray

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return int(self.parent.shape[0])

    @property
    def num_live_edges(self) -> int:
        """Number of selected (live) edges."""
        return int(np.count_nonzero(self.parent >= 0))

    def children(self) -> list[list[int]]:
        """Adjacency from each vertex to the vertices that selected it."""
        adjacency: list[list[int]] = [[] for _ in range(self.num_vertices)]
        for child, parent in enumerate(self.parent.tolist()):
            if parent >= 0:
                adjacency[parent].append(child)
        return adjacency

    def to_snapshot(self) -> Snapshot:
        """Convert to the shared forward-CSR :class:`Snapshot` representation.

        The live edges are ``(parent[v], v)`` for every vertex with a selected
        parent; re-expressed as a forward CSR, snapshot reachability, blocked
        masks, and the Snapshot estimator consume LT live-edge graphs exactly
        as they consume IC ones.
        """
        mask = self.parent >= 0
        return snapshot_from_live_edges(
            self.num_vertices, self.parent[mask], np.nonzero(mask)[0].astype(np.int64)
        )


def sample_lt_snapshot(
    graph: InfluenceGraph,
    rng: RandomSource | np.random.Generator,
    *,
    sample_size: SampleSize | None = None,
) -> LTSnapshot:
    """Draw one LT live-edge graph (at most one in-edge per vertex)."""
    generator = rng.generator if isinstance(rng, RandomSource) else rng
    parent = np.full(graph.num_vertices, -1, dtype=np.int64)
    for vertex in graph.vertices:
        sources = graph.in_neighbors(vertex)
        if sources.shape[0] == 0:
            continue
        probabilities = graph.in_probabilities(vertex)
        draw = float(generator.random())
        cumulative = 0.0
        for offset in range(sources.shape[0]):
            cumulative += float(probabilities[offset])
            if draw < cumulative:
                parent[vertex] = int(sources[offset])
                break
    snapshot = LTSnapshot(parent)
    if sample_size is not None:
        sample_size.add_edges(snapshot.num_live_edges)
    return snapshot


def lt_reachable_set(
    snapshot: LTSnapshot,
    seeds: tuple[int, ...] | list[int] | set[int],
    *,
    cost: TraversalCost | None = None,
) -> set[int]:
    """Vertices reachable from ``seeds`` over the selected live edges."""
    seed_tuple = normalize_seed_set(seeds, snapshot.num_vertices)
    adjacency = snapshot.children()
    visited: set[int] = set(seed_tuple)
    queue: deque[int] = deque(seed_tuple)
    while queue:
        vertex = queue.popleft()
        if cost is not None:
            cost.add_vertices(1)
        if cost is not None and adjacency[vertex]:
            cost.add_edges(len(adjacency[vertex]))
        for child in adjacency[vertex]:
            if child not in visited:
                visited.add(child)
                queue.append(child)
    return visited


#: LT RR sets share the IC RR-set type (RRSetCollection works for both);
#: the alias is kept for back-compat.
LTRRSet = RRSet


def sample_lt_rr_set(
    graph: InfluenceGraph,
    rng: RandomSource | np.random.Generator,
    *,
    target: int | None = None,
    cost: TraversalCost | None = None,
    sample_size: SampleSize | None = None,
) -> RRSet:
    """Generate one LT RR set: walk backwards over selected in-edges.

    Under LT, the reverse of the live-edge selection is a random walk: from
    the current vertex, select one in-neighbour with probability proportional
    to the edge weight (or stop with the residual probability), and repeat
    until stopping or revisiting a vertex (Tang et al. 2014, IMM).
    """
    generator = rng.generator if isinstance(rng, RandomSource) else rng
    if graph.num_vertices == 0:
        raise InvalidParameterError("cannot sample an RR set from an empty graph")
    if target is None:
        current = int(generator.integers(graph.num_vertices))
    else:
        current = require_vertex(target, graph.num_vertices, name="target")
    visited: set[int] = {current}
    weight = 0
    start_target = current
    while True:
        if cost is not None:
            cost.add_vertices(1)
        sources = graph.in_neighbors(current)
        if sources.shape[0] == 0:
            break
        probabilities = graph.in_probabilities(current)
        weight += int(sources.shape[0])
        if cost is not None:
            cost.add_edges(int(sources.shape[0]))
        draw = float(generator.random())
        cumulative = 0.0
        selected: int | None = None
        for offset in range(sources.shape[0]):
            cumulative += float(probabilities[offset])
            if draw < cumulative:
                selected = int(sources[offset])
                break
        if selected is None or selected in visited:
            break
        visited.add(selected)
        current = selected
    rr_set = RRSet(target=start_target, vertices=frozenset(visited), weight=weight)
    if sample_size is not None:
        sample_size.add_vertices(rr_set.size)
    return rr_set


def exact_lt_spread(
    graph: InfluenceGraph, seeds: tuple[int, ...] | list[int] | set[int]
) -> float:
    """Exact LT spread by enumerating per-vertex in-edge selections.

    Each vertex independently selects one in-edge or none, so the number of
    live-edge realizations is ``prod_v (d-(v) + 1)``; tiny graphs only.
    """
    seed_tuple = normalize_seed_set(seeds, graph.num_vertices)
    validate_lt_weights(graph)
    choices: list[list[tuple[int | None, float]]] = []
    total_realizations = 1
    for vertex in graph.vertices:
        sources = graph.in_neighbors(vertex).tolist()
        probabilities = graph.in_probabilities(vertex).tolist()
        options: list[tuple[int | None, float]] = [
            (int(source), float(p)) for source, p in zip(sources, probabilities)
        ]
        options.append((None, max(0.0, 1.0 - sum(probabilities))))
        choices.append(options)
        total_realizations *= len(options)
        if total_realizations > 2_000_000:
            raise InvalidParameterError(
                "exact_lt_spread supports only tiny graphs "
                f"(would enumerate more than {total_realizations} realizations)"
            )

    def recurse(vertex: int, parent: list[int | None], probability: float) -> float:
        if probability == 0.0:
            return 0.0
        if vertex == graph.num_vertices:
            adjacency: list[list[int]] = [[] for _ in range(graph.num_vertices)]
            for child, chosen in enumerate(parent):
                if chosen is not None:
                    adjacency[chosen].append(child)
            visited = set(seed_tuple)
            queue = deque(seed_tuple)
            while queue:
                u = queue.popleft()
                for child in adjacency[u]:
                    if child not in visited:
                        visited.add(child)
                        queue.append(child)
            return probability * len(visited)
        total = 0.0
        for chosen, option_probability in choices[vertex]:
            parent.append(chosen)
            total += recurse(vertex + 1, parent, probability * option_probability)
            parent.pop()
        return total

    return recurse(0, [], 1.0)
