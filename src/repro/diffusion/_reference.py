"""Reference per-vertex implementations of the frontier hot loops.

These are the historical (pre-vectorization) kernels, kept verbatim for two
purposes:

* the golden determinism tests (``tests/diffusion/test_golden_kernels.py``)
  assert that the vectorized kernels in :mod:`repro.diffusion.cascade`,
  :mod:`repro.diffusion.reverse`, and :mod:`repro.diffusion.snapshots`
  reproduce them byte-for-byte — same activation order, same RR-set contents
  and weights, same traversal-cost totals, same PRNG stream consumption;
* ``benchmarks/bench_vectorized_kernels.py`` measures old-vs-new wall time on
  the same inputs.

They are not exported from the package and must not grow features: any
behavioural change here would silently weaken the golden tests.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .._validation import normalize_seed_set, require_vertex
from ..graphs.influence_graph import InfluenceGraph
from .cascade import CascadeResult
from .costs import SampleSize, TraversalCost
from .random_source import RandomSource
from .reverse import RRSet
from .snapshots import Snapshot


def simulate_cascade_reference(
    graph: InfluenceGraph,
    seeds,
    rng: RandomSource | np.random.Generator,
    *,
    cost: TraversalCost | None = None,
) -> CascadeResult:
    """The historical per-vertex forward IC cascade loop."""
    generator = rng.generator if isinstance(rng, RandomSource) else rng
    seed_tuple = normalize_seed_set(seeds, graph.num_vertices)
    indptr, targets, probs = graph.out_csr

    active = np.zeros(graph.num_vertices, dtype=bool)
    activated_order: list[int] = []
    frontier: list[int] = []
    for seed in seed_tuple:
        active[seed] = True
        activated_order.append(seed)
        frontier.append(seed)

    while frontier:
        next_frontier: list[int] = []
        for vertex in frontier:
            if cost is not None:
                cost.add_vertices(1)
            start, stop = indptr[vertex], indptr[vertex + 1]
            degree = stop - start
            if degree == 0:
                continue
            if cost is not None:
                cost.add_edges(int(degree))
            draws = generator.random(degree)
            live = draws < probs[start:stop]
            for offset in np.nonzero(live)[0]:
                target = int(targets[start + offset])
                if not active[target]:
                    active[target] = True
                    activated_order.append(target)
                    next_frontier.append(target)
        frontier = next_frontier

    return CascadeResult(tuple(activated_order), len(activated_order))


def sample_rr_set_reference(
    graph: InfluenceGraph,
    rng: RandomSource | np.random.Generator,
    *,
    target: int | None = None,
    cost: TraversalCost | None = None,
    sample_size: SampleSize | None = None,
) -> RRSet:
    """The historical per-vertex reverse-BFS RR-set loop."""
    generator = rng.generator if isinstance(rng, RandomSource) else rng
    if graph.num_vertices == 0:
        raise ValueError("cannot sample an RR set from an empty graph")
    if target is None:
        chosen_target = int(generator.integers(graph.num_vertices))
    else:
        chosen_target = require_vertex(target, graph.num_vertices, name="target")

    indptr, sources, probs = graph.in_csr
    visited: set[int] = {chosen_target}
    queue: deque[int] = deque([chosen_target])
    weight = 0
    while queue:
        vertex = queue.popleft()
        if cost is not None:
            cost.add_vertices(1)
        start, stop = indptr[vertex], indptr[vertex + 1]
        degree = int(stop - start)
        weight += degree
        if degree == 0:
            continue
        if cost is not None:
            cost.add_edges(degree)
        draws = generator.random(degree)
        live = draws < probs[start:stop]
        for offset in np.nonzero(live)[0]:
            source = int(sources[start + offset])
            if source not in visited:
                visited.add(source)
                queue.append(source)

    rr_set = RRSet(target=chosen_target, vertices=frozenset(visited), weight=weight)
    if sample_size is not None:
        sample_size.add_vertices(rr_set.size)
    return rr_set


def reachable_set_reference(
    snapshot: Snapshot,
    seeds,
    *,
    cost: TraversalCost | None = None,
    blocked: np.ndarray | None = None,
) -> set[int]:
    """The historical per-vertex live-edge BFS reachability loop."""
    seed_tuple = normalize_seed_set(seeds, snapshot.num_vertices)
    visited: set[int] = set()
    queue: deque[int] = deque()
    for seed in seed_tuple:
        if blocked is not None and blocked[seed]:
            continue
        if seed not in visited:
            visited.add(seed)
            queue.append(seed)
    while queue:
        vertex = queue.popleft()
        if cost is not None:
            cost.add_vertices(1)
        neighbours = snapshot.out_neighbors(vertex)
        if cost is not None:
            cost.add_edges(int(neighbours.shape[0]))
        for target in neighbours:
            target = int(target)
            if blocked is not None and blocked[target]:
                continue
            if target not in visited:
                visited.add(target)
                queue.append(target)
    return visited
