"""Forward simulation of the independent cascade (IC) model (Section 2.2).

The IC process starts with the seed vertices active.  Each newly activated
vertex gets a single chance to activate each currently inactive out-neighbour
``v`` with probability ``p(u, v)``; the process stops when no new vertex is
activated.  The influence spread ``Inf(S)`` is the expected number of
activated vertices.

Traversal-cost convention (matches the paper's Appendix): simulating one
cascade examines every *activated* vertex (vertex cost) and every out-edge of
an activated vertex (edge cost), because each such edge receives a coin flip
regardless of the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from .._validation import normalize_seed_set, require_positive_int
from ..graphs.influence_graph import InfluenceGraph
from .costs import TraversalCost
from .random_source import RandomSource


@dataclass(frozen=True)
class CascadeResult:
    """Outcome of one forward diffusion simulation (shared by IC and LT)."""

    activated: tuple[int, ...]
    num_activated: int

    @cached_property
    def _activated_set(self) -> frozenset[int]:
        # cached_property writes straight into __dict__, which a frozen
        # dataclass permits, so repeated membership checks stay O(1).
        return frozenset(self.activated)

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._activated_set


def simulate_cascade(
    graph: InfluenceGraph,
    seeds: tuple[int, ...] | list[int] | set[int],
    rng: RandomSource | np.random.Generator,
    *,
    cost: TraversalCost | None = None,
) -> CascadeResult:
    """Run one forward IC cascade from ``seeds`` and return the activated set.

    Parameters
    ----------
    graph:
        The influence graph.
    seeds:
        Initially active vertices (must be distinct and in range).
    rng:
        Random source; one uniform draw is consumed per examined edge, in the
        order the cascade discovers them (the paper's Oneshot PRNG protocol).
    cost:
        Optional traversal-cost accumulator updated in place.
    """
    generator = rng.generator if isinstance(rng, RandomSource) else rng
    seed_tuple = normalize_seed_set(seeds, graph.num_vertices)
    indptr, targets, probs = graph.out_csr

    active = np.zeros(graph.num_vertices, dtype=bool)
    activated_order: list[int] = []
    frontier: list[int] = []
    for seed in seed_tuple:
        active[seed] = True
        activated_order.append(seed)
        frontier.append(seed)

    while frontier:
        next_frontier: list[int] = []
        for vertex in frontier:
            if cost is not None:
                cost.add_vertices(1)
            start, stop = indptr[vertex], indptr[vertex + 1]
            degree = stop - start
            if degree == 0:
                continue
            if cost is not None:
                cost.add_edges(int(degree))
            draws = generator.random(degree)
            live = draws < probs[start:stop]
            for offset in np.nonzero(live)[0]:
                target = int(targets[start + offset])
                if not active[target]:
                    active[target] = True
                    activated_order.append(target)
                    next_frontier.append(target)
        frontier = next_frontier

    return CascadeResult(tuple(activated_order), len(activated_order))


def simulate_spread(
    graph: InfluenceGraph,
    seeds: tuple[int, ...] | list[int] | set[int],
    num_simulations: int,
    rng: RandomSource | np.random.Generator,
    *,
    cost: TraversalCost | None = None,
) -> float:
    """Average activated-vertex count over ``num_simulations`` cascades.

    This is the Oneshot estimator's Estimate body (Algorithm 3.2): an unbiased
    Monte-Carlo estimate of ``Inf(seeds)``.
    """
    require_positive_int(num_simulations, "num_simulations")
    generator = rng.generator if isinstance(rng, RandomSource) else rng
    total = 0
    for _ in range(num_simulations):
        total += simulate_cascade(graph, seeds, generator, cost=cost).num_activated
    return total / num_simulations


def activation_probabilities(
    graph: InfluenceGraph,
    seeds: tuple[int, ...] | list[int] | set[int],
    num_simulations: int,
    rng: RandomSource | np.random.Generator,
) -> np.ndarray:
    """Per-vertex empirical activation probabilities from repeated cascades.

    Returns an array of length ``n`` where entry ``v`` is the fraction of the
    ``num_simulations`` cascades in which ``v`` was activated.  Useful for
    diagnostics and for the viral-marketing example.
    """
    require_positive_int(num_simulations, "num_simulations")
    generator = rng.generator if isinstance(rng, RandomSource) else rng
    counts = np.zeros(graph.num_vertices, dtype=np.int64)
    for _ in range(num_simulations):
        result = simulate_cascade(graph, seeds, generator)
        counts[list(result.activated)] += 1
    return counts / num_simulations
