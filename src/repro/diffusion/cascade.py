"""Forward simulation of the independent cascade (IC) model (Section 2.2).

The IC process starts with the seed vertices active.  Each newly activated
vertex gets a single chance to activate each currently inactive out-neighbour
``v`` with probability ``p(u, v)``; the process stops when no new vertex is
activated.  The influence spread ``Inf(S)`` is the expected number of
activated vertices.

Traversal-cost convention (matches the paper's Appendix): simulating one
cascade examines every *activated* vertex (vertex cost) and every out-edge of
an activated vertex (edge cost), because each such edge receives a coin flip
regardless of the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

import numpy as np

from .._validation import normalize_seed_set, require_rng_or_streams
from ..graphs.influence_graph import InfluenceGraph
from .costs import TraversalCost
from .frontier import first_hit, frontier_edges, use_scalar_frontier
from .random_source import RandomSource


@dataclass(frozen=True)
class CascadeResult:
    """Outcome of one forward diffusion simulation (shared by IC and LT)."""

    activated: tuple[int, ...]
    num_activated: int

    @cached_property
    def _activated_set(self) -> frozenset[int]:
        # cached_property writes straight into __dict__, which a frozen
        # dataclass permits, so repeated membership checks stay O(1).
        return frozenset(self.activated)

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._activated_set


def simulate_cascade(
    graph: InfluenceGraph,
    seeds: tuple[int, ...] | list[int] | set[int],
    rng: RandomSource | np.random.Generator,
    *,
    cost: TraversalCost | None = None,
) -> CascadeResult:
    """Run one forward IC cascade from ``seeds`` and return the activated set.

    Parameters
    ----------
    graph:
        The influence graph.
    seeds:
        Initially active vertices (must be distinct and in range).
    rng:
        Random source; one uniform draw is consumed per examined edge, in the
        order the cascade discovers them (the paper's Oneshot PRNG protocol).
    cost:
        Optional traversal-cost accumulator updated in place.
    """
    generator = rng.generator if isinstance(rng, RandomSource) else rng
    seed_tuple = normalize_seed_set(seeds, graph.num_vertices)
    active = np.zeros(graph.num_vertices, dtype=bool)
    slot = np.empty(graph.num_vertices, dtype=np.int64)
    return _cascade_kernel(graph.out_csr, seed_tuple, generator, active, slot, cost)


def _cascade_kernel(
    out_csr: tuple[np.ndarray, np.ndarray, np.ndarray],
    seed_tuple: tuple[int, ...],
    generator: np.random.Generator,
    active: np.ndarray,
    slot: np.ndarray,
    cost: TraversalCost | None,
) -> CascadeResult:
    """Whole-frontier vectorized IC cascade over forward CSR.

    One uniform vector is drawn per BFS level, covering the frontier's edges
    in the frontier's vertex-then-edge order — byte-identical PRNG stream
    consumption to the historical per-vertex loop (see
    :mod:`repro.diffusion.frontier` for the draw-order contract).  ``active``
    must be all-``False`` on entry (only activated entries are set, so batch
    callers can reset it cheaply); ``slot`` is integer scratch of length
    ``num_vertices``.
    """
    indptr, targets, probs = out_csr
    activated_order: list[int] = list(seed_tuple)
    # The frontier lives as a Python list; it only round-trips through numpy
    # on the (large) levels that take the vectorized path.
    frontier: list[int] = list(seed_tuple)
    for seed in frontier:
        active[seed] = True

    while frontier:
        if use_scalar_frontier(frontier):
            # Small frontier: the plain per-vertex loop beats the batched
            # gather's fixed overhead.  Identical draws either way.
            next_frontier: list[int] = []
            edges_scanned = 0
            for vertex in frontier:
                start, stop = indptr[vertex], indptr[vertex + 1]
                degree = stop - start
                if degree == 0:
                    continue
                edges_scanned += int(degree)
                draws = generator.random(degree)
                live = draws < probs[start:stop]
                for target in targets[start:stop][live].tolist():
                    if not active[target]:
                        active[target] = True
                        next_frontier.append(target)
            if cost is not None:
                cost.add_vertices(len(frontier))
                cost.add_edges(edges_scanned)
        else:
            frontier_array = np.asarray(frontier, dtype=np.int64)
            edge_indices, _, total = frontier_edges(indptr, frontier_array)
            if cost is not None:
                cost.add_vertices(len(frontier))
                cost.add_edges(total)
            if total == 0:
                break
            draws = generator.random(total)
            live_edges = edge_indices[draws < probs[edge_indices]]
            candidates = targets[live_edges]
            candidates = candidates[~active[candidates]]
            new_vertices = first_hit(candidates, slot)
            active[new_vertices] = True
            next_frontier = new_vertices.tolist()
        activated_order.extend(next_frontier)
        frontier = next_frontier

    return CascadeResult(tuple(activated_order), len(activated_order))


def simulate_cascades(
    graph: InfluenceGraph,
    seeds: tuple[int, ...] | list[int] | set[int],
    count: int,
    rng: RandomSource | np.random.Generator | None = None,
    *,
    cost: TraversalCost | None = None,
    streams: Sequence[RandomSource | np.random.Generator] | None = None,
    batch_mode: str | None = None,
) -> list[CascadeResult]:
    """Run ``count`` forward IC cascades from ``seeds`` in one batched call.

    Byte-identical to calling :func:`simulate_cascade` ``count`` times with
    the same ``rng`` — the batch only amortizes per-call overhead (one seed
    normalization, one CSR unpack, reused activation/scratch buffers; the
    ``active`` mask is reset by clearing only the activated entries, so small
    cascades on large graphs never pay an O(n) refill).

    Parameters
    ----------
    rng:
        Single random source; all cascades draw sequentially from its stream.
    streams:
        Alternative to ``rng``: one independent source per cascade, in order.
        The parallel runtime's chunk workers use this form so each simulation
        index keeps its own child stream (the split-stream contract).
    batch_mode:
        ``"bitparallel"`` opts into the 64-worlds-per-word mask kernel (own
        draw-order contract — see :mod:`repro.diffusion.bitparallel` — and
        activated vertices listed in ascending id, not activation order);
        ``None`` defers to the ``REPRO_BITPARALLEL`` environment variable.
    """
    from . import bitparallel as _bp

    if _bp.resolve_batch_mode(batch_mode) == _bp.BITPARALLEL:
        if streams is not None:
            from ..exceptions import InvalidParameterError

            raise InvalidParameterError(
                "streams is incompatible with batch_mode='bitparallel': the "
                "bit-parallel unit is the 64-world word, not the single simulation"
            )
        require_rng_or_streams(count, rng, None)
        generator = rng.generator if isinstance(rng, RandomSource) else rng
        return _bp.batched_cascade_results(
            graph,
            seeds,
            count,
            generator,
            lambda lanes, gen: _bp.ic_live_words(graph.out_csr[2], lanes, gen),
            cost=cost,
        )
    require_rng_or_streams(count, rng, streams)
    seed_tuple = normalize_seed_set(seeds, graph.num_vertices)
    out_csr = graph.out_csr
    active = np.zeros(graph.num_vertices, dtype=bool)
    slot = np.empty(graph.num_vertices, dtype=np.int64)
    if streams is None:
        generator = rng.generator if isinstance(rng, RandomSource) else rng
        generators = (generator for _ in range(count))
    else:
        generators = (
            source.generator if isinstance(source, RandomSource) else source
            for source in streams
        )
    results: list[CascadeResult] = []
    for generator in generators:
        result = _cascade_kernel(out_csr, seed_tuple, generator, active, slot, cost)
        active[list(result.activated)] = False
        results.append(result)
    return results


def simulate_spread(
    graph: InfluenceGraph,
    seeds: tuple[int, ...] | list[int] | set[int],
    num_simulations: int,
    rng: RandomSource | np.random.Generator,
    *,
    cost: TraversalCost | None = None,
    batch_mode: str | None = None,
) -> float:
    """Average activated-vertex count over ``num_simulations`` cascades.

    This is the Oneshot estimator's Estimate body (Algorithm 3.2): an unbiased
    Monte-Carlo estimate of ``Inf(seeds)``.  With
    ``batch_mode="bitparallel"`` the counts come straight from the mask
    kernel's popcounts, skipping per-cascade result objects entirely.
    """
    from . import bitparallel as _bp

    if _bp.resolve_batch_mode(batch_mode) == _bp.BITPARALLEL:
        generator = rng.generator if isinstance(rng, RandomSource) else rng
        counts = _bp.batched_cascade_counts(
            graph,
            seeds,
            num_simulations,
            generator,
            lambda lanes, gen: _bp.ic_live_words(graph.out_csr[2], lanes, gen),
            cost=cost,
        )
        return float(counts.sum()) / num_simulations
    # repro-lint: allow[CTX001] batch_mode was consumed by the dispatch above;
    # this branch is the already-resolved sequential path.
    results = simulate_cascades(graph, seeds, num_simulations, rng, cost=cost)
    return sum(result.num_activated for result in results) / num_simulations


def activation_probabilities(
    graph: InfluenceGraph,
    seeds: tuple[int, ...] | list[int] | set[int],
    num_simulations: int,
    rng: RandomSource | np.random.Generator,
) -> np.ndarray:
    """Per-vertex empirical activation probabilities from repeated cascades.

    Returns an array of length ``n`` where entry ``v`` is the fraction of the
    ``num_simulations`` cascades in which ``v`` was activated.  Useful for
    diagnostics and for the viral-marketing example.
    """
    counts = np.zeros(graph.num_vertices, dtype=np.int64)
    for result in simulate_cascades(graph, seeds, num_simulations, rng):
        counts[list(result.activated)] += 1
    return counts / num_simulations
