"""Bit-parallel cascade kernels: 64 simulated worlds per machine word.

Every estimator in this codebase spends its budget on thousands of
near-identical randomized BFS traversals.  PR 4 vectorized *across the
frontier* (one gather per BFS level); this module vectorizes *across
simulations*: it samples up to :data:`LANES_PER_WORD` independent live-edge
worlds into one ``uint64`` word per edge (bit ``w`` of ``live[e]`` = edge
``e`` is live in world ``w``) and then runs a **single** whole-frontier BFS
per 64-world batch, replacing activation sets with activation *masks* —
``active[v]`` is the word of worlds in which ``v`` is active — and per-edge
coin flips with bitwise AND/OR plus popcounts.

Draw-order contract (documented, intentionally *not* byte-identical to the
scalar stream — see ``docs/DESIGN.md``):

* simulations are processed in **words** of up to 64 lanes; word ``i`` covers
  simulation indices ``64*i .. min(64*(i+1), count) - 1`` and lane ``w`` of
  word ``i`` is simulation ``64*i + w``;
* a forward-cascade word consumes exactly one ``generator.random((m,
  lanes))`` call (edge-major: the ``lanes`` flips of edge 0 are the first
  doubles of the stream), or ``generator.random((n, lanes))`` for LT
  threshold draws (vertex-major);
* an RR-set word first draws its targets — one ``generator.integers(n,
  size=lanes)`` call — and then its live words as above;
* with a single ``rng``, words are consumed sequentially from its stream;
  under the runtime's split-stream contract, word ``i`` draws from the child
  stream of ``(seed, i)``, so any ``jobs`` value is bit-identical.

The results are therefore deterministic given ``(seed, lane layout)`` and
statistically exchangeable with the scalar path (same per-world live-edge
distribution), but the two paths consume the PRNG differently: scalar
kernels flip coins lazily for *examined* edges only, while bit-parallel
words pre-sample every edge of the graph per world.  The scalar path stays
the default for reproduction runs; this fast path is opt-in via
``batch_mode="bitparallel"`` or the :data:`ENV_VAR` environment variable.

Portability: per-word population counts use :func:`numpy.bitwise_count`
where available (numpy >= 2.0) and fall back to a 16-bit lookup table on the
``numpy >= 1.23`` floor pinned by ``setup.py``.  Both paths are unit-tested
against each other.
"""

from __future__ import annotations

import os

import numpy as np

from .._validation import normalize_seed_set, require_positive_int
from ..exceptions import InvalidParameterError
from ..graphs.influence_graph import InfluenceGraph
from .cascade import CascadeResult
from .costs import SampleSize, TraversalCost
from .frontier import frontier_edges, use_scalar_frontier
from .reverse import RRSet

#: Number of simulated worlds packed into one ``uint64`` machine word.
LANES_PER_WORD = 64

#: The scalar (golden, default) batch mode name.
SCALAR = "scalar"

#: The bit-parallel opt-in batch mode name.
BITPARALLEL = "bitparallel"

#: Accepted ``batch_mode`` values, in precedence order of the docs.
BATCH_MODES: tuple[str, ...] = (SCALAR, BITPARALLEL)

#: Environment variable consulted when ``batch_mode`` is left unset.
ENV_VAR = "REPRO_BITPARALLEL"

#: True when this numpy ships the native ``bitwise_count`` ufunc (>= 2.0).
HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: 16-bit population-count lookup table for the pre-numpy-2.0 fallback.
_POPCOUNT16 = np.array([bin(value).count("1") for value in range(1 << 16)], dtype=np.uint8)


def require_batch_mode(value: str) -> str:
    """Validate an explicit ``batch_mode`` value, naming the alternatives."""
    if value not in BATCH_MODES:
        raise InvalidParameterError(
            f"unknown batch_mode {value!r}; expected one of: {', '.join(BATCH_MODES)}"
        )
    return value


def resolve_batch_mode(batch_mode: str | None) -> str:
    """Normalise a ``batch_mode`` argument against the environment.

    An explicit value wins; ``None`` consults :data:`ENV_VAR` (truthy values
    ``1/true/yes/on/bitparallel`` opt into the fast path, falsy values and an
    unset variable keep the golden scalar default).  Resolution happens at
    the sampling seams, so flipping the environment variable switches every
    batched entry point without touching call sites.
    """
    if batch_mode is not None:
        return require_batch_mode(batch_mode)
    env = os.environ.get(ENV_VAR, "").strip().lower()
    if env in ("1", "true", "yes", "on", BITPARALLEL):
        return BITPARALLEL
    if env in ("", "0", "false", "no", "off", SCALAR):
        return SCALAR
    raise InvalidParameterError(
        f"unrecognised {ENV_VAR} value {env!r}; expected a boolean-like value "
        f"or one of: {', '.join(BATCH_MODES)}"
    )


# --------------------------------------------------------------------------- #
# word primitives: popcount, lane packing, lane counting
# --------------------------------------------------------------------------- #
def _popcount_bitwise_count(words: np.ndarray) -> np.ndarray:
    """Per-element population count via the native numpy >= 2.0 ufunc."""
    return np.bitwise_count(words).astype(np.int64)


def _popcount_lookup(words: np.ndarray) -> np.ndarray:
    """Per-element population count via the 16-bit lookup table.

    A ``uint64`` word is four ``uint16`` chunks; which chunk holds which bits
    depends on byte order, but a popcount sums all four, so the reinterpreting
    view is endian-independent.
    """
    chunks = np.ascontiguousarray(words, dtype=np.uint64).view(np.uint16)
    return (
        _POPCOUNT16[chunks]
        .reshape(words.shape + (4,))
        .sum(axis=-1, dtype=np.int64)
    )


#: Per-element population count of a ``uint64`` array, as ``int64``.
popcount = _popcount_bitwise_count if HAVE_BITWISE_COUNT else _popcount_lookup


def pack_lanes(matrix: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(num_lanes, n)`` matrix into ``n`` ``uint64`` words.

    Bit ``w`` of word ``j`` is ``matrix[w, j]``; ``num_lanes`` (the number of
    rows) must be between 1 and :data:`LANES_PER_WORD`.  Inverse of
    :func:`unpack_lanes`.
    """
    matrix = np.asarray(matrix, dtype=bool)
    if matrix.ndim != 2 or not 1 <= matrix.shape[0] <= LANES_PER_WORD:
        raise InvalidParameterError(
            f"pack_lanes expects a (num_lanes <= {LANES_PER_WORD}, n) boolean "
            f"matrix, got shape {matrix.shape}"
        )
    return _pack_rows(np.ascontiguousarray(matrix.T))


def _pack_rows(matrix: np.ndarray) -> np.ndarray:
    """Pack a C-contiguous boolean ``(n, num_lanes)`` matrix into ``n`` words.

    Row-major inner kernel of :func:`pack_lanes` (and the samplers, which
    produce lane-minor matrices directly): one ``np.packbits`` call packs
    every row into 8 little-endian bytes, which *are* the ``uint64`` word on
    any host once viewed through an explicit little-endian dtype.  ~3x
    faster than shifting out each lane.
    """
    n, num_lanes = matrix.shape
    if num_lanes < LANES_PER_WORD:
        padded = np.zeros((n, LANES_PER_WORD), dtype=bool)
        padded[:, :num_lanes] = matrix
        matrix = padded
    packed = np.packbits(matrix, axis=1, bitorder="little")
    return packed.view("<u8").ravel().astype(np.uint64, copy=False)


def unpack_lanes(words: np.ndarray, num_lanes: int) -> np.ndarray:
    """Unpack ``uint64`` words into a boolean ``(num_lanes, n)`` matrix.

    Inverse of :func:`pack_lanes` for the first ``num_lanes`` bits; higher
    bits are ignored.
    """
    require_lanes(num_lanes)
    words = np.asarray(words, dtype=np.uint64)
    shifts = np.arange(num_lanes, dtype=np.uint64)[:, None]
    return ((words[None, :] >> shifts) & np.uint64(1)).astype(bool)


def lane_counts(words: np.ndarray, num_lanes: int) -> np.ndarray:
    """Per-lane set-bit totals of a word array (``int64`` of length lanes).

    Entry ``w`` counts the elements of ``words`` whose bit ``w`` is set — for
    an activation-mask array this is world ``w``'s activated-vertex count.
    """
    require_lanes(num_lanes)
    words = np.asarray(words, dtype=np.uint64)
    if words.size == 0:
        return np.zeros(num_lanes, dtype=np.int64)
    # Unpack to one byte per bit and column-sum: ~2x faster than shifting
    # out each lane, and the explicit little-endian view keeps lane w at
    # flat bit position w on big-endian hosts too.
    bits = np.unpackbits(
        words.astype("<u8", copy=False).view(np.uint8), bitorder="little"
    ).reshape(words.size, LANES_PER_WORD)
    return bits.sum(axis=0, dtype=np.int64)[:num_lanes]


def require_lanes(num_lanes: int) -> int:
    """Validate a lane count (1 .. :data:`LANES_PER_WORD`)."""
    require_positive_int(num_lanes, "num_lanes")
    if num_lanes > LANES_PER_WORD:
        raise InvalidParameterError(
            f"num_lanes must be at most {LANES_PER_WORD}, got {num_lanes}"
        )
    return num_lanes


def lanes_mask(num_lanes: int) -> np.uint64:
    """The ``uint64`` word with the low ``num_lanes`` bits set."""
    require_lanes(num_lanes)
    return np.uint64((1 << num_lanes) - 1)


def word_spans(count: int) -> list[tuple[int, int]]:
    """Partition ``count`` simulations into ``(start, num_lanes)`` words.

    Word ``i`` covers simulation indices ``start .. start + num_lanes - 1``
    with ``start = 64 * i``; only the last word may be partial.  This is the
    lane layout every bit-parallel driver (and the runtime's word-chunked
    workers) uses, so it is the unit of the determinism contract.
    """
    require_positive_int(count, "count")
    return [
        (start, min(LANES_PER_WORD, count - start))
        for start in range(0, count, LANES_PER_WORD)
    ]


# --------------------------------------------------------------------------- #
# live-edge world sampling (the model-specific part)
# --------------------------------------------------------------------------- #
def ic_live_words(
    probs: np.ndarray, num_lanes: int, generator: np.random.Generator
) -> np.ndarray:
    """Sample ``num_lanes`` independent-cascade worlds over one edge array.

    ``probs`` is a per-edge probability array in either CSR order (the same
    function serves forward cascades over ``out_csr`` and reverse RR
    generation over ``in_csr``).  Consumes exactly one
    ``generator.random((len(probs), num_lanes))`` call, edge-major — the
    draws land directly in the row-packed layout, skipping a transpose.
    """
    require_lanes(num_lanes)
    draws = generator.random((probs.shape[0], num_lanes))
    return _pack_rows(draws < probs[:, None])


def _segment_intervals(
    indptr: np.ndarray, probs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-edge ``[lower, upper)`` sub-intervals of each CSR segment.

    For a vertex whose segment holds probabilities ``p_1 .. p_d`` the edges
    receive the consecutive intervals ``[0, p_1), [p_1, p_1 + p_2), ...`` —
    the linear-threshold one-in-edge selection rule: a uniform draw ``u``
    selects edge ``j`` iff ``lower_j <= u < upper_j`` and no edge at all when
    ``u >= sum p_j``.
    """
    cumulative = np.concatenate(([0.0], np.cumsum(probs)))
    base = np.repeat(cumulative[indptr[:-1]], np.diff(indptr))
    return cumulative[:-1] - base, cumulative[1:] - base


def lt_live_words(
    graph: InfluenceGraph,
    num_lanes: int,
    generator: np.random.Generator,
    *,
    reverse: bool = False,
) -> np.ndarray:
    """Sample ``num_lanes`` linear-threshold worlds as per-edge words.

    Per world, each vertex draws one uniform threshold and keeps **at most
    one** in-edge — edge ``(u, v)`` iff the draw lands in that edge's
    sub-interval of ``[0, sum of v's incoming weights)``.  Consumes exactly
    one ``generator.random((n, num_lanes))`` call (vertex-major, one
    threshold per vertex per world).

    ``reverse=False`` returns words aligned with the **forward** CSR edge
    order (for mask cascades over ``out_csr``); ``reverse=True`` aligns with
    the **reverse** CSR order (for RR generation over ``in_csr``).  The two
    orderings partition each vertex's incoming probability mass into the same
    interval lengths but may order parallel edges differently, which is
    immaterial: each call samples its own worlds.
    """
    require_lanes(num_lanes)
    draws = generator.random((graph.num_vertices, num_lanes))
    if reverse:
        in_indptr, _, in_probs = graph.in_csr
        owner = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64), np.diff(in_indptr)
        )
        lower, upper = _segment_intervals(in_indptr, in_probs)
        gathered = draws[owner]
        selected = (gathered >= lower[:, None]) & (gathered < upper[:, None])
        return _pack_rows(selected)
    out_indptr, out_targets, out_probs = graph.out_csr
    # Group the forward edges by target to assign the per-target intervals,
    # then scatter the words back to forward-CSR positions.
    order = np.argsort(out_targets, kind="stable")
    grouped_targets = out_targets[order]
    in_degrees = np.bincount(out_targets, minlength=graph.num_vertices)
    grouped_indptr = np.concatenate(([0], np.cumsum(in_degrees)))
    lower, upper = _segment_intervals(grouped_indptr, out_probs[order])
    gathered = draws[grouped_targets]
    selected = (gathered >= lower[:, None]) & (gathered < upper[:, None])
    words = np.empty(graph.num_edges, dtype=np.uint64)
    words[order] = _pack_rows(selected)
    return words


# --------------------------------------------------------------------------- #
# mask BFS kernels (model-agnostic: live worlds come in, masks go out)
# --------------------------------------------------------------------------- #
def forward_cascade_masks(
    graph: InfluenceGraph,
    seeds: tuple[int, ...] | list[int] | set[int],
    live_words: np.ndarray,
    num_lanes: int,
    *,
    cost: TraversalCost | None = None,
) -> np.ndarray:
    """Run one 64-world forward cascade; returns per-vertex activation words.

    ``live_words`` holds one ``uint64`` word per **forward-CSR** edge (bit
    ``w`` = live in world ``w``).  The BFS maintains ``active[v]`` (worlds
    where ``v`` is active) and a frontier of vertices whose words gained bits
    last level; one gather + one scatter-OR per level advances all worlds at
    once.  Traversal cost follows the scalar per-world convention exactly:
    each (vertex, world) activation counts one vertex examination and each of
    its out-edges one edge examination in that world.
    """
    require_lanes(num_lanes)
    indptr, targets, _ = graph.out_csr
    seed_tuple = normalize_seed_set(seeds, graph.num_vertices)
    if live_words.shape[0] != graph.num_edges:
        raise InvalidParameterError(
            f"live_words must hold one word per edge ({graph.num_edges}), "
            f"got {live_words.shape[0]}"
        )
    active = np.zeros(graph.num_vertices, dtype=np.uint64)
    full = lanes_mask(num_lanes)
    frontier = np.asarray(seed_tuple, dtype=np.int64)
    active[frontier] = full
    delta = np.full(frontier.shape[0], full, dtype=np.uint64)
    _mask_bfs(indptr, targets, live_words, active, frontier, delta, cost)
    return active


def reverse_rr_masks(
    graph: InfluenceGraph,
    targets: np.ndarray,
    live_words: np.ndarray,
    num_lanes: int,
    *,
    cost: TraversalCost | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run one 64-world reverse BFS; returns ``(membership words, weights)``.

    ``targets`` assigns lane ``w`` its RR target ``targets[w]`` (lanes may
    share a target vertex); ``live_words`` holds one word per **reverse-CSR**
    edge.  The returned ``weights`` array gives each lane's RR-set weight —
    the number of per-world coin flips, i.e. in-edges examined in that world
    — matching the scalar convention.
    """
    require_lanes(num_lanes)
    targets = np.asarray(targets, dtype=np.int64)
    if targets.shape[0] != num_lanes:
        raise InvalidParameterError(
            f"targets must hold one vertex per lane ({num_lanes}), "
            f"got {targets.shape[0]}"
        )
    indptr, sources, _ = graph.in_csr
    if live_words.shape[0] != graph.num_edges:
        raise InvalidParameterError(
            f"live_words must hold one word per edge ({graph.num_edges}), "
            f"got {live_words.shape[0]}"
        )
    active = np.zeros(graph.num_vertices, dtype=np.uint64)
    lane_bits = np.uint64(1) << np.arange(num_lanes, dtype=np.uint64)
    np.bitwise_or.at(active, targets, lane_bits)
    frontier = np.unique(targets)
    delta = active[frontier].copy()
    weights = np.zeros(num_lanes, dtype=np.int64)
    _mask_bfs(indptr, sources, live_words, active, frontier, delta, cost, weights=weights)
    return active, weights


def _mask_bfs(
    indptr: np.ndarray,
    endpoints: np.ndarray,
    live_words: np.ndarray,
    active: np.ndarray,
    frontier: np.ndarray,
    delta: np.ndarray,
    cost: TraversalCost | None,
    *,
    weights: np.ndarray | None = None,
) -> None:
    """Shared 64-world BFS over one CSR direction, updating ``active`` in place.

    ``frontier`` lists the vertices whose activation words changed last level
    and ``delta`` the newly-set bits of each; a level expands every frontier
    edge in every newly-active world at once (``delta & live``), ORs the
    surviving bits into the endpoints, and keeps the vertices that actually
    gained bits as the next frontier.  Levels below the shared
    :func:`~repro.diffusion.frontier.use_scalar_frontier` threshold run a
    plain per-vertex Python-int loop instead of the batched gather — same
    masks, smaller constant.  ``weights`` (reverse kernels) accumulates each
    lane's examined-edge count in place.
    """
    num_lanes = int(weights.shape[0]) if weights is not None else LANES_PER_WORD
    # Dense per-vertex accumulator for the batched branch: scatter-OR the
    # surviving bits here, then read the next frontier off its nonzeros.
    # Cheaper than np.unique + before/after snapshots on every level, and
    # naturally yields the frontier in ascending-vertex order.
    gained_words = np.zeros(active.shape[0], dtype=np.uint64)
    # Scratch buffers for the batched branch, sized for the worst level (all
    # edges): np.take with ``out=`` keeps the many small per-level gathers
    # from allocating fresh arrays each time.
    word_buffer = np.empty(live_words.shape[0], dtype=np.uint64)
    mask_buffer = np.empty(live_words.shape[0], dtype=np.uint64)
    id_buffer = np.empty(live_words.shape[0], dtype=np.int64)
    while frontier.size:
        if use_scalar_frontier(frontier):
            if cost is not None:
                cost.add_vertices(int(popcount(delta).sum()))
            gained: dict[int, int] = {}
            for vertex, word in zip(frontier.tolist(), delta.tolist()):
                start, stop = int(indptr[vertex]), int(indptr[vertex + 1])
                degree = stop - start
                if weights is not None and degree:
                    bits = word
                    while bits:
                        low = bits & -bits
                        weights[low.bit_length() - 1] += degree
                        bits ^= low
                if cost is not None:
                    cost.add_edges(word.bit_count() * degree)
                if degree == 0:
                    continue
                for offset in range(start, stop):
                    endpoint = int(endpoints[offset])
                    new_bits = word & int(live_words[offset]) & ~int(active[endpoint])
                    if new_bits:
                        active[endpoint] |= np.uint64(new_bits)
                        gained[endpoint] = gained.get(endpoint, 0) | new_bits
            # Sorted next frontier, matching the vectorized branch's np.unique
            # order so the two paths are step-identical, not just mask-equal.
            frontier = np.array(sorted(gained), dtype=np.int64)
            delta = np.array([np.uint64(gained[v]) for v in frontier.tolist()], dtype=np.uint64)
            continue
        edge_indices, degrees, total = frontier_edges(indptr, frontier)
        examined = np.repeat(delta, degrees)
        if cost is not None:
            cost.add_vertices(int(popcount(delta).sum()))
            cost.add_edges(int(popcount(examined).sum()))
        if weights is not None and total:
            weights += lane_counts(examined, num_lanes)
        if total == 0:
            break
        new_words = examined
        live_gather = word_buffer[:total]
        np.take(live_words, edge_indices, out=live_gather)
        new_words &= live_gather
        endpoint_ids = id_buffer[:total]
        np.take(endpoints, edge_indices, out=endpoint_ids)
        blocked = mask_buffer[:total]
        np.take(active, endpoint_ids, out=blocked)
        np.bitwise_not(blocked, out=blocked)
        new_words &= blocked
        nonzero = np.nonzero(new_words)[0]
        if nonzero.size == 0:
            break
        endpoint_ids = endpoint_ids[nonzero]
        new_words = new_words[nonzero]
        np.bitwise_or.at(gained_words, endpoint_ids, new_words)
        frontier = np.nonzero(gained_words)[0]
        delta = gained_words[frontier]
        active[frontier] |= delta
        gained_words[frontier] = np.uint64(0)


# --------------------------------------------------------------------------- #
# word-batched drivers (what the seams call)
# --------------------------------------------------------------------------- #
def batched_cascade_counts(
    graph: InfluenceGraph,
    seeds: tuple[int, ...] | list[int] | set[int],
    count: int,
    generator: np.random.Generator,
    live_words_fn,
    *,
    cost: TraversalCost | None = None,
) -> np.ndarray:
    """Per-simulation activated counts for ``count`` bit-parallel cascades.

    ``live_words_fn(num_lanes, generator)`` samples one word batch of live
    edges in forward-CSR order (the model hook).  Words are drawn and run
    sequentially on ``generator`` per the draw-order contract; the returned
    ``int64`` array has one activated-vertex count per simulation, without
    materialising per-world activation lists.
    """
    seed_tuple = normalize_seed_set(seeds, graph.num_vertices)
    counts = np.empty(count, dtype=np.int64)
    for start, lanes in word_spans(count):
        words = live_words_fn(lanes, generator)
        active = forward_cascade_masks(graph, seed_tuple, words, lanes, cost=cost)
        counts[start : start + lanes] = lane_counts(active, lanes)
    return counts


def batched_cascade_results(
    graph: InfluenceGraph,
    seeds: tuple[int, ...] | list[int] | set[int],
    count: int,
    generator: np.random.Generator,
    live_words_fn,
    *,
    cost: TraversalCost | None = None,
) -> list[CascadeResult]:
    """``count`` bit-parallel cascades materialised as :class:`CascadeResult`.

    Unlike the scalar kernels, per-world activation *order* is not tracked —
    each result lists its activated vertices in ascending vertex id (the
    activated **set**, totals, and costs follow the per-world convention
    exactly).  Callers that depend on activation order must use the scalar
    path.
    """
    seed_tuple = normalize_seed_set(seeds, graph.num_vertices)
    results: list[CascadeResult] = []
    for _, lanes in word_spans(count):
        words = live_words_fn(lanes, generator)
        active = forward_cascade_masks(graph, seed_tuple, words, lanes, cost=cost)
        bits = unpack_lanes(active, lanes)
        for lane in range(lanes):
            activated = np.flatnonzero(bits[lane])
            results.append(
                CascadeResult(tuple(activated.tolist()), int(activated.shape[0]))
            )
    return results


def batched_rr_sets(
    graph: InfluenceGraph,
    count: int,
    generator: np.random.Generator,
    reverse_words_fn,
    *,
    cost: TraversalCost | None = None,
    sample_size: SampleSize | None = None,
) -> list[RRSet]:
    """``count`` bit-parallel RR sets (shared :class:`RRSet` type).

    Each word draws its lane targets first (``generator.integers(n,
    size=lanes)``), then its live words via ``reverse_words_fn(num_lanes,
    generator)`` — one word batch of reverse-CSR live edges (the model
    hook).  Lane ``w``'s RR set is the vertices whose membership word has bit
    ``w`` set; weights count the per-world examined in-edges, matching the
    scalar convention.
    """
    if graph.num_vertices == 0:
        raise ValueError("cannot sample an RR set from an empty graph")
    rr_sets: list[RRSet] = []
    total_size = 0
    for _, lanes in word_spans(count):
        targets = generator.integers(graph.num_vertices, size=lanes).astype(np.int64)
        words = reverse_words_fn(lanes, generator)
        membership, weights = reverse_rr_masks(graph, targets, words, lanes, cost=cost)
        bits = unpack_lanes(membership, lanes)
        for lane in range(lanes):
            members = np.flatnonzero(bits[lane])
            total_size += int(members.shape[0])
            rr_sets.append(
                RRSet(
                    target=int(targets[lane]),
                    vertices=frozenset(members.tolist()),
                    weight=int(weights[lane]),
                )
            )
    if sample_size is not None:
        sample_size.add_vertices(total_size)
    return rr_sets
