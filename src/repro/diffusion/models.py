"""Pluggable diffusion models: one protocol for IC, LT, and future models.

The paper studies Oneshot, Snapshot, and RIS under the independent cascade
(IC) model, but all three approaches rest only on the *live-edge*
interpretation of diffusion: a random subgraph is drawn by keeping edges
according to some per-model rule, and the spread of ``S`` is the expected
number of vertices reachable from ``S``.  The linear threshold (LT) model
shares that interpretation (each vertex keeps at most one in-edge), so every
estimator in :mod:`repro.algorithms` applies to it unchanged — provided the
model-specific sampling primitives are swappable.

:class:`DiffusionModel` bundles the four primitives a model must provide:

* **forward cascade** — one simulation of the diffusion process,
* **live-edge snapshot sampling** — one random subgraph ``G ~ G``,
* **RR-set sampling** — the vertices reaching a random target in ``G ~ G``,
* **exact spread** — ground-truth ``Inf(S)`` for tiny graphs.

All primitives return the *shared* result types (:class:`CascadeResult`,
:class:`Snapshot`, :class:`RRSet`), so downstream consumers — reachability,
``RRSetCollection``, the estimators, the oracle — are model-agnostic.  The
plural samplers (:meth:`DiffusionModel.sample_rr_sets`,
:meth:`DiffusionModel.sample_snapshots`) integrate with :mod:`repro.runtime`
under the same split-stream contract as the IC-specific entry points: task
``i`` draws from a child stream of ``(rng, i)``, so any ``jobs`` value is
bit-identical.

Models are stateless singletons registered by name (``"ic"``, ``"lt"``);
:func:`register_model` admits third-party models, and :func:`resolve_model`
is the ``model=`` parameter normaliser used across the codebase (``None``
means IC, preserving historical behaviour exactly).  See ``docs/DESIGN.md``
for the architectural rationale.
"""

from __future__ import annotations

import abc

import numpy as np

from .._validation import require_positive_int, require_rng_or_streams
from ..exceptions import InvalidParameterError
from ..graphs.influence_graph import InfluenceGraph
from . import bitparallel as _bp
from . import cascade as _ic_cascade
from . import exact as _ic_exact
from . import linear_threshold as _lt
from . import reverse as _ic_reverse
from . import snapshots as _ic_snapshots
from .cascade import CascadeResult
from .costs import SampleSize, TraversalCost
from .random_source import RandomSource
from .reverse import RRSet
from .snapshots import Snapshot


def _as_generator(rng: RandomSource | np.random.Generator) -> np.random.Generator:
    """Normalise a random source to its underlying generator."""
    return rng.generator if isinstance(rng, RandomSource) else rng


def _record_bitparallel(telemetry, count: int) -> None:
    """Record the deterministic bit-parallel counters for ``count`` lanes.

    Incremented at the dispatch seam — before any serial-vs-chunked split —
    so ``bitparallel.words`` / ``bitparallel.lanes_used`` are identical for
    every ``jobs`` value, per the deterministic-counter naming convention.
    """
    if telemetry is not None and telemetry.enabled:
        telemetry.incr("bitparallel.words", len(_bp.word_spans(count)))
        telemetry.incr("bitparallel.lanes_used", count)


class DiffusionModel(abc.ABC):
    """Abstract diffusion model: the four live-edge primitives behind one name.

    Implementations must be stateless (all randomness comes from the ``rng``
    arguments) and picklable, because model instances are shipped to worker
    processes by the parallel runtime and bound into estimator factories.
    """

    #: Registry name ("ic", "lt", ...); also used in reports and CLI flags.
    name: str = "abstract"

    def validate(self, graph: InfluenceGraph) -> None:
        """Raise unless ``graph`` is a feasible instance for this model.

        The default accepts every influence graph; LT overrides this with the
        incoming-weight feasibility check.  Estimators and the oracle call it
        in Build so infeasible instances fail fast with a clear error.
        """

    # ------------------------------------------------------------------ #
    # the four primitives
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def simulate_cascade(
        self,
        graph: InfluenceGraph,
        seeds,
        rng: RandomSource | np.random.Generator,
        *,
        cost: TraversalCost | None = None,
    ) -> CascadeResult:
        """Run one forward diffusion simulation from ``seeds``."""

    @abc.abstractmethod
    def sample_snapshot(
        self,
        graph: InfluenceGraph,
        rng: RandomSource | np.random.Generator,
        *,
        sample_size: SampleSize | None = None,
    ) -> Snapshot:
        """Draw one live-edge random graph in the shared CSR representation."""

    @abc.abstractmethod
    def sample_rr_set(
        self,
        graph: InfluenceGraph,
        rng: RandomSource | np.random.Generator,
        *,
        target: int | None = None,
        cost: TraversalCost | None = None,
        sample_size: SampleSize | None = None,
    ) -> RRSet:
        """Generate one reverse-reachable set under this model's live edges."""

    @abc.abstractmethod
    def exact_spread(self, graph: InfluenceGraph, seeds) -> float:
        """Exact ``Inf(seeds)`` by enumerating live-edge realizations (tiny graphs)."""

    # ------------------------------------------------------------------ #
    # bit-parallel live-word hooks (optional capability)
    # ------------------------------------------------------------------ #
    def forward_live_words(
        self, graph: InfluenceGraph, num_lanes: int, generator: np.random.Generator
    ) -> np.ndarray:
        """Sample ``num_lanes`` live-edge worlds in **forward-CSR** edge order.

        One ``uint64`` word per edge of ``graph.out_csr`` (bit ``w`` = live in
        world ``w``), consumed by the bit-parallel forward-cascade kernel.
        Models that cannot express their diffusion as per-world live edges
        keep the default, which rejects ``batch_mode="bitparallel"``.
        """
        raise InvalidParameterError(
            f"diffusion model {self.name!r} does not support batch_mode='bitparallel'"
        )

    def reverse_live_words(
        self, graph: InfluenceGraph, num_lanes: int, generator: np.random.Generator
    ) -> np.ndarray:
        """Sample ``num_lanes`` live-edge worlds in **reverse-CSR** edge order.

        One ``uint64`` word per edge of ``graph.in_csr``, consumed by the
        bit-parallel RR-set kernel.  Same capability contract as
        :meth:`forward_live_words`.
        """
        raise InvalidParameterError(
            f"diffusion model {self.name!r} does not support batch_mode='bitparallel'"
        )

    def _require_bitparallel_rng(self, count, rng, streams):
        """Shared guard for the bit-parallel plural paths.

        The bit-parallel unit of work is the 64-world word, so per-simulation
        ``streams`` cannot apply; a single ``rng`` is required.
        """
        if streams is not None:
            raise InvalidParameterError(
                "streams is incompatible with batch_mode='bitparallel': the "
                "bit-parallel unit is the 64-world word, not the single "
                "simulation (use jobs/executor for parallel word chunks)"
            )
        require_rng_or_streams(count, rng, None)

    # ------------------------------------------------------------------ #
    # plural conveniences (shared implementations, runtime-integrated)
    # ------------------------------------------------------------------ #
    def simulate_cascades(
        self,
        graph: InfluenceGraph,
        seeds,
        count: int,
        rng: RandomSource | np.random.Generator | None = None,
        *,
        cost: TraversalCost | None = None,
        streams=None,
        batch_mode: str | None = None,
    ) -> list[CascadeResult]:
        """Run ``count`` forward cascades in one batched call.

        Pass either ``rng`` (all cascades draw sequentially from one stream —
        byte-identical to ``count`` :meth:`simulate_cascade` calls) or
        ``streams`` (one independent source per cascade, the form the
        parallel runtime's chunk workers use).  The default implementation
        loops; models with a batched kernel (IC) override it to amortize
        per-call overhead without changing a single draw.

        ``batch_mode="bitparallel"`` (or the ``REPRO_BITPARALLEL``
        environment variable with the default ``None``) opts into the
        64-worlds-per-word kernel: same cascade distribution and costs,
        different draw-order contract (see
        :mod:`repro.diffusion.bitparallel`), results listing activated
        vertices in ascending id rather than activation order.
        """
        if _bp.resolve_batch_mode(batch_mode) == _bp.BITPARALLEL:
            self._require_bitparallel_rng(count, rng, streams)
            return _bp.batched_cascade_results(
                graph,
                seeds,
                count,
                _as_generator(rng),
                lambda lanes, generator: self.forward_live_words(graph, lanes, generator),
                cost=cost,
            )
        require_rng_or_streams(count, rng, streams)
        sources = [rng] * count if streams is None else streams
        return [
            self.simulate_cascade(graph, seeds, source, cost=cost) for source in sources
        ]

    def simulate_spread(
        self,
        graph: InfluenceGraph,
        seeds,
        num_simulations: int,
        rng: RandomSource | np.random.Generator,
        *,
        cost: TraversalCost | None = None,
        batch_mode: str | None = None,
    ) -> float:
        """Average activated count over ``num_simulations`` forward cascades.

        With ``batch_mode="bitparallel"`` the per-world activation counts
        come straight from the mask kernel's popcounts — no per-cascade
        result objects are materialised.
        """
        if _bp.resolve_batch_mode(batch_mode) == _bp.BITPARALLEL:
            self._require_bitparallel_rng(num_simulations, rng, None)
            counts = _bp.batched_cascade_counts(
                graph,
                seeds,
                num_simulations,
                _as_generator(rng),
                lambda lanes, generator: self.forward_live_words(graph, lanes, generator),
                cost=cost,
            )
            return float(counts.sum()) / num_simulations
        results = self.simulate_cascades(graph, seeds, num_simulations, rng, cost=cost)
        return sum(result.num_activated for result in results) / num_simulations

    def sample_snapshots(
        self,
        graph: InfluenceGraph,
        count: int,
        rng: RandomSource | np.random.Generator,
        *,
        sample_size: SampleSize | None = None,
        jobs: int | None = None,
        executor: "Executor | None" = None,
        telemetry=None,
    ) -> list[Snapshot]:
        """Draw ``count`` independent snapshots.

        Same contract as :func:`repro.diffusion.snapshots.sample_snapshots`:
        the default is the historical sequential single-stream draw, while
        ``jobs``/``executor`` opts into the runtime's split-stream seeding
        (snapshot ``i`` from a child stream of ``(rng, i)``; bit-identical
        for any worker count).  ``telemetry`` (optional) records a
        ``snapshot.samples`` counter and the runtime dispatch metrics.
        """
        require_positive_int(count, "count")
        if telemetry is not None and telemetry.enabled:
            telemetry.incr("snapshot.samples", count)
        if jobs is None and executor is None:
            return [
                self.sample_snapshot(graph, rng, sample_size=sample_size)
                for _ in range(count)
            ]

        from ..runtime.engine import run_seeded_tasks

        snapshots: list[Snapshot] = []
        for chunk_snapshots, chunk_size in run_seeded_tasks(
            _model_snapshot_chunk_worker,
            count,
            rng,
            jobs=jobs,
            executor=executor,
            payload=(self, graph),
            telemetry=telemetry,
        ):
            snapshots.extend(chunk_snapshots)
            if sample_size is not None:
                sample_size.merge(chunk_size)
        return snapshots

    def sample_rr_sets(
        self,
        graph: InfluenceGraph,
        count: int,
        rng: RandomSource | np.random.Generator | None = None,
        *,
        cost: TraversalCost | None = None,
        sample_size: SampleSize | None = None,
        jobs: int | None = None,
        executor: "Executor | None" = None,
        streams=None,
        telemetry=None,
        batch_mode: str | None = None,
    ) -> list[RRSet]:
        """Generate ``count`` independent RR sets.

        Same contract as :func:`repro.diffusion.reverse.sample_rr_sets`
        (sequential single stream by default, split-stream with
        ``jobs``/``executor``); cost accumulators are merged in chunk order,
        keeping totals exact.  ``streams`` (one source per set, mutually
        exclusive with ``jobs``/``executor``) is the runtime chunk workers'
        form: set ``i`` draws only from ``streams[i]``, letting batched
        kernels reuse scratch buffers across a whole chunk.  ``telemetry``
        (optional) records an ``rr.sets`` counter and the runtime dispatch
        metrics.

        ``batch_mode="bitparallel"`` generates the sets 64 worlds per word
        (own draw-order contract, see :mod:`repro.diffusion.bitparallel`);
        under ``jobs``/``executor`` the runtime's task unit becomes the
        **word** index — word ``i`` draws from the child stream of
        ``(rng, i)`` — so any worker count is bit-identical.
        """
        if streams is not None and (jobs is not None or executor is not None):
            raise InvalidParameterError(
                "streams is mutually exclusive with jobs/executor"
            )
        if _bp.resolve_batch_mode(batch_mode) == _bp.BITPARALLEL:
            self._require_bitparallel_rng(count, rng, streams)
            if telemetry is not None and telemetry.enabled:
                telemetry.incr("rr.sets", count)
            _record_bitparallel(telemetry, count)
            if jobs is None and executor is None:
                from ..obs import as_telemetry

                with as_telemetry(telemetry).span("bitparallel.kernel"):
                    return _bp.batched_rr_sets(
                        graph,
                        count,
                        _as_generator(rng),
                        lambda lanes, generator: self.reverse_live_words(
                            graph, lanes, generator
                        ),
                        cost=cost,
                        sample_size=sample_size,
                    )

            from ..runtime.engine import run_seeded_tasks

            rr_sets: list[RRSet] = []
            for chunk_sets, chunk_cost, chunk_size in run_seeded_tasks(
                _model_rr_word_chunk_worker,
                len(_bp.word_spans(count)),
                rng,
                jobs=jobs,
                executor=executor,
                payload=(self, graph, count),
                telemetry=telemetry,
            ):
                rr_sets.extend(chunk_sets)
                if cost is not None:
                    cost.merge(chunk_cost)
                if sample_size is not None:
                    sample_size.merge(chunk_size)
            return rr_sets
        require_rng_or_streams(count, rng, streams)
        if telemetry is not None and telemetry.enabled:
            telemetry.incr("rr.sets", count)
        if streams is not None:
            return [
                self.sample_rr_set(graph, source, cost=cost, sample_size=sample_size)
                for source in streams
            ]
        if jobs is None and executor is None:
            return [
                self.sample_rr_set(graph, rng, cost=cost, sample_size=sample_size)
                for _ in range(count)
            ]

        from ..runtime.engine import run_seeded_tasks

        rr_sets: list[RRSet] = []
        for chunk_sets, chunk_cost, chunk_size in run_seeded_tasks(
            _model_rr_chunk_worker,
            count,
            rng,
            jobs=jobs,
            executor=executor,
            payload=(self, graph),
            telemetry=telemetry,
        ):
            rr_sets.extend(chunk_sets)
            if cost is not None:
                cost.merge(chunk_cost)
            if sample_size is not None:
                sample_size.merge(chunk_size)
        return rr_sets

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def _model_snapshot_chunk_worker(
    payload: tuple[DiffusionModel, InfluenceGraph], root_key: tuple, start: int, stop: int
) -> tuple[list[Snapshot], SampleSize]:
    """Sample model snapshots for task indices ``start..stop-1`` (one per index).

    Module-level so it pickles into worker processes; each index derives its
    own child generator, making results independent of the chunk layout (and
    of which model the payload carries).
    """
    from ..runtime.seeding import child_generator

    model, graph = payload
    chunk_size = SampleSize()
    snapshots = [
        model.sample_snapshot(graph, child_generator(root_key, index), sample_size=chunk_size)
        for index in range(start, stop)
    ]
    return snapshots, chunk_size


def _model_rr_chunk_worker(
    payload: tuple[DiffusionModel, InfluenceGraph], root_key: tuple, start: int, stop: int
) -> tuple[list[RRSet], TraversalCost, SampleSize]:
    """Sample model RR sets for task indices ``start..stop-1`` (one per index).

    Each index derives its own child stream; the streams form of
    :meth:`DiffusionModel.sample_rr_sets` lets batched kernels (IC) reuse
    scratch buffers across the whole chunk instead of allocating two
    O(num_vertices) arrays per RR set.
    """
    from ..runtime.seeding import child_generator

    model, graph = payload
    chunk_cost = TraversalCost()
    chunk_size = SampleSize()
    rr_sets = model.sample_rr_sets(
        graph,
        stop - start,
        cost=chunk_cost,
        sample_size=chunk_size,
        streams=[child_generator(root_key, index) for index in range(start, stop)],
        batch_mode=_bp.SCALAR,
    )
    return rr_sets, chunk_cost, chunk_size


def _model_rr_word_chunk_worker(
    payload: tuple[DiffusionModel, InfluenceGraph, int],
    root_key: tuple,
    start: int,
    stop: int,
) -> tuple[list[RRSet], TraversalCost, SampleSize]:
    """Bit-parallel RR generation for **word** indices ``start..stop-1``.

    The runtime task unit here is the 64-world word, not the single RR set:
    word ``i`` covers simulation indices ``64*i .. min(64*(i+1), count) - 1``
    and draws every one of its values (targets first, then live words) from
    the child stream of ``(root_key, i)``, so results are independent of the
    chunk layout and worker count.
    """
    from ..runtime.seeding import child_generator

    model, graph, count = payload
    chunk_cost = TraversalCost()
    chunk_size = SampleSize()
    rr_sets: list[RRSet] = []
    for word_index in range(start, stop):
        lanes = min(_bp.LANES_PER_WORD, count - word_index * _bp.LANES_PER_WORD)
        rr_sets.extend(
            _bp.batched_rr_sets(
                graph,
                lanes,
                child_generator(root_key, word_index),
                lambda n, generator: model.reverse_live_words(graph, n, generator),
                cost=chunk_cost,
                sample_size=chunk_size,
            )
        )
    return rr_sets, chunk_cost, chunk_size


class IndependentCascade(DiffusionModel):
    """The paper's independent cascade model (Section 2.2).

    A pure delegation wrapper over the historical IC primitives; every draw
    consumes the random stream exactly as the wrapped function does, so going
    through the model layer is byte-identical to calling the primitives
    directly.
    """

    name = "ic"

    def simulate_cascade(self, graph, seeds, rng, *, cost=None):
        return _ic_cascade.simulate_cascade(graph, seeds, rng, cost=cost)

    def simulate_cascades(
        self, graph, seeds, count, rng=None, *, cost=None, streams=None, batch_mode=None
    ):
        if _bp.resolve_batch_mode(batch_mode) == _bp.BITPARALLEL:
            return super().simulate_cascades(
                graph, seeds, count, rng, cost=cost, streams=streams,
                batch_mode=_bp.BITPARALLEL,
            )
        # Batched kernel entry: identical draws, amortized per-call overhead
        # (one seed normalization, one CSR unpack, reused scratch buffers).
        # repro-lint: allow[CTX001] batch_mode was consumed by the dispatch
        # above; this branch is the already-resolved sequential path.
        return _ic_cascade.simulate_cascades(
            graph, seeds, count, rng, cost=cost, streams=streams
        )

    def forward_live_words(self, graph, num_lanes, generator):
        # IC live edges are independent Bernoulli flips, so one batched draw
        # over the forward-CSR probability array is the whole sampler.
        return _bp.ic_live_words(graph.out_csr[2], num_lanes, generator)

    def reverse_live_words(self, graph, num_lanes, generator):
        return _bp.ic_live_words(graph.in_csr[2], num_lanes, generator)

    def sample_snapshot(self, graph, rng, *, sample_size=None):
        return _ic_snapshots.sample_snapshot(graph, rng, sample_size=sample_size)

    def sample_rr_set(self, graph, rng, *, target=None, cost=None, sample_size=None):
        return _ic_reverse.sample_rr_set(
            graph, rng, target=target, cost=cost, sample_size=sample_size
        )

    def sample_rr_sets(
        self,
        graph,
        count,
        rng=None,
        *,
        cost=None,
        sample_size=None,
        jobs=None,
        executor=None,
        streams=None,
        telemetry=None,
        batch_mode=None,
    ):
        if (
            jobs is None
            and executor is None
            and _bp.resolve_batch_mode(batch_mode) == _bp.SCALAR
        ):
            # Batched kernel (single stream or one stream per set):
            # byte-identical to the base class's per-set loop, with buffer
            # reuse across the whole batch.
            if telemetry is not None and telemetry.enabled:
                telemetry.incr("rr.sets", count)
            return _ic_reverse._sample_rr_sets_batch(
                graph, count, rng, cost=cost, sample_size=sample_size, streams=streams
            )
        return super().sample_rr_sets(
            graph,
            count,
            rng,
            cost=cost,
            sample_size=sample_size,
            jobs=jobs,
            executor=executor,
            streams=streams,
            telemetry=telemetry,
            batch_mode=batch_mode,
        )

    def exact_spread(self, graph, seeds):
        return _ic_exact.exact_spread(graph, seeds)


class LinearThreshold(DiffusionModel):
    """The linear threshold model of Granovetter / Kempe et al. (2003).

    Snapshots are sampled with the LT live-edge rule (each vertex keeps at
    most one in-edge) and converted to the shared CSR :class:`Snapshot`
    representation, so snapshot reachability, blocked-vertex reduction, and
    the Snapshot estimator work unchanged.  RR sets are reverse random walks
    returning the shared :class:`RRSet` type.
    """

    name = "lt"

    def validate(self, graph):
        _lt.validate_lt_weights(graph)

    def simulate_cascade(self, graph, seeds, rng, *, cost=None):
        return _lt.simulate_lt_cascade(graph, seeds, rng, cost=cost)

    def forward_live_words(self, graph, num_lanes, generator):
        # LT live edges come from one threshold draw per (vertex, world):
        # each vertex keeps at most one in-edge, selected by where its draw
        # lands among the incoming-weight intervals.
        return _bp.lt_live_words(graph, num_lanes, generator)

    def reverse_live_words(self, graph, num_lanes, generator):
        return _bp.lt_live_words(graph, num_lanes, generator, reverse=True)

    def sample_snapshot(self, graph, rng, *, sample_size=None):
        return _lt.sample_lt_snapshot(graph, rng, sample_size=sample_size).to_snapshot()

    def sample_rr_set(self, graph, rng, *, target=None, cost=None, sample_size=None):
        return _lt.sample_lt_rr_set(
            graph, rng, target=target, cost=cost, sample_size=sample_size
        )

    def exact_spread(self, graph, seeds):
        return _lt.exact_lt_spread(graph, seeds)


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
_REGISTRY: dict[str, DiffusionModel] = {}

#: Names whose registrations may never be replaced: the module-level
#: singletons below are aliased throughout the codebase (``resolve_model``'s
#: default, the IC shorthands in ``reverse``/``snapshots``), so replacing the
#: registry entry would make ``model="ic"`` and ``model=None`` resolve to
#: different models.
_BUILTIN_NAMES: frozenset[str] = frozenset({"ic", "lt"})


def register_model(model: DiffusionModel, *, overwrite: bool = False) -> DiffusionModel:
    """Register ``model`` under its ``name`` and return it.

    Third-party models plug in here: subclass :class:`DiffusionModel`,
    implement the four primitives, and register an instance — every estimator,
    experiment, and CLI subcommand can then select it by name.  ``overwrite``
    permits re-registering a third-party name (e.g. during development); the
    built-in ``ic``/``lt`` entries can never be replaced.
    """
    if not isinstance(model, DiffusionModel):
        raise InvalidParameterError(
            f"register_model expects a DiffusionModel instance, got {type(model).__name__}"
        )
    if not model.name or model.name == DiffusionModel.name:
        raise InvalidParameterError("diffusion models must define a non-default name")
    if model.name in _REGISTRY:
        if model.name in _BUILTIN_NAMES:
            raise InvalidParameterError(
                f"the built-in diffusion model {model.name!r} cannot be replaced"
            )
        if not overwrite:
            raise InvalidParameterError(
                f"diffusion model {model.name!r} is already registered "
                "(pass overwrite=True to replace it)"
            )
    _REGISTRY[model.name] = model
    return model


def available_models() -> tuple[str, ...]:
    """Registered diffusion-model names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_model(name: str) -> DiffusionModel:
    """Look up a registered diffusion model by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown diffusion model {name!r}; available: {', '.join(available_models())}"
        ) from None


def resolve_model(model: "str | DiffusionModel | None") -> DiffusionModel:
    """Normalise a ``model=`` argument: name, instance, or ``None`` (= IC).

    ``None`` resolves to the independent cascade model, so every ``model=``
    parameter added across the codebase defaults to the paper's setting and
    preserves historical behaviour exactly.
    """
    if model is None:
        return INDEPENDENT_CASCADE
    if isinstance(model, DiffusionModel):
        return model
    if isinstance(model, str):
        return get_model(model)
    raise InvalidParameterError(
        f"model must be a name, a DiffusionModel, or None, got {type(model).__name__}"
    )


#: The registered singletons (also the ``resolve_model`` defaults).
INDEPENDENT_CASCADE = register_model(IndependentCascade())
LINEAR_THRESHOLD = register_model(LinearThreshold())
