"""Machine-independent cost accounting (Section 1.3 and Table 1 of the paper).

The paper deliberately avoids wall-clock time and RAM, which depend on
implementation and machine, and instead reports

* **traversal cost** — the number of vertices and edges *examined* (possibly
  more than once) by an algorithm, proportional to running time, and
* **sample size** — the number of vertices and edges *stored in memory* as
  approach-specific samples, proportional to memory usage.

:class:`TraversalCost` and :class:`SampleSize` are small mutable accumulators
that the diffusion kernels and estimators update as they touch the graph.
They support addition, scaling and snapshot/restore, so experiment code can
compute per-phase and per-sample deltas without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TraversalCost:
    """Counter of vertices and edges examined during graph traversal."""

    vertices: int = 0
    edges: int = 0

    def add_vertices(self, count: int = 1) -> None:
        """Record that ``count`` vertices were examined."""
        self.vertices += int(count)

    def add_edges(self, count: int = 1) -> None:
        """Record that ``count`` edges were examined."""
        self.edges += int(count)

    def merge(self, other: "TraversalCost") -> None:
        """Accumulate another counter into this one in place."""
        self.vertices += other.vertices
        self.edges += other.edges

    def snapshot(self) -> "TraversalCost":
        """Return an independent copy of the current counts."""
        return TraversalCost(self.vertices, self.edges)

    def since(self, earlier: "TraversalCost") -> "TraversalCost":
        """Return the difference ``self - earlier`` (both components)."""
        return TraversalCost(self.vertices - earlier.vertices, self.edges - earlier.edges)

    def scaled(self, factor: float) -> "TraversalCost":
        """Return a copy with both components multiplied by ``factor`` (rounded)."""
        return TraversalCost(
            int(round(self.vertices * factor)), int(round(self.edges * factor))
        )

    @property
    def total(self) -> int:
        """Vertices plus edges: the paper's combined cost used in Table 9."""
        return self.vertices + self.edges

    def reset(self) -> None:
        """Zero both counters."""
        self.vertices = 0
        self.edges = 0

    def __add__(self, other: "TraversalCost") -> "TraversalCost":
        return TraversalCost(self.vertices + other.vertices, self.edges + other.edges)

    def __iadd__(self, other: "TraversalCost") -> "TraversalCost":
        self.merge(other)
        return self


@dataclass
class SampleSize:
    """Counter of vertices and edges stored in memory as samples.

    For Oneshot nothing is stored (sample size 0); for Snapshot the live edges
    of every sampled random graph are stored; for RIS the vertices of every RR
    set are stored (Table 1).
    """

    vertices: int = 0
    edges: int = 0

    def add_vertices(self, count: int = 1) -> None:
        """Record ``count`` vertices stored."""
        self.vertices += int(count)

    def add_edges(self, count: int = 1) -> None:
        """Record ``count`` edges stored."""
        self.edges += int(count)

    def merge(self, other: "SampleSize") -> None:
        """Accumulate another counter into this one in place."""
        self.vertices += other.vertices
        self.edges += other.edges

    @property
    def total(self) -> int:
        """Vertices plus edges, the paper's scalar "sample size"."""
        return self.vertices + self.edges

    def reset(self) -> None:
        """Zero both counters."""
        self.vertices = 0
        self.edges = 0

    def __add__(self, other: "SampleSize") -> "SampleSize":
        return SampleSize(self.vertices + other.vertices, self.edges + other.edges)


@dataclass(frozen=True)
class CostReport:
    """Immutable pairing of traversal cost and sample size for reporting."""

    traversal: TraversalCost
    sample_size: SampleSize

    @staticmethod
    def empty() -> "CostReport":
        """A report with all counters at zero."""
        return CostReport(TraversalCost(), SampleSize())

    def as_dict(self) -> dict[str, int]:
        """Flatten to a dictionary for table rendering."""
        return {
            "traversal_vertices": self.traversal.vertices,
            "traversal_edges": self.traversal.edges,
            "sample_vertices": self.sample_size.vertices,
            "sample_edges": self.sample_size.edges,
        }
