"""Shared whole-frontier CSR gather/dedupe helpers for the diffusion kernels.

The three hot loops of the paper's estimators — forward IC cascades, reverse
RR-set generation, and snapshot reachability — are all breadth-first frontier
expansions over a CSR adjacency.  Each of them needs the same two primitives:

* :func:`frontier_edges` — gather the concatenated edge indices of a whole
  frontier, in frontier order, so one batched operation (one uniform draw,
  one probability compare, one target gather) replaces the per-vertex loop.
* :func:`first_hit` — deduplicate the discovered endpoints so each new vertex
  is activated exactly once, by its *first* discovering edge, preserving the
  exact activation order the historical per-vertex loops produced.

Draw-order contract (why vectorization is PRNG-transparent): numpy's
``Generator.random`` fills doubles sequentially from the underlying PCG64
bitstream, so ``random(k)`` followed by ``random(j)`` yields exactly the same
numbers, elementwise, as one ``random(k + j)`` call (and ``random(0)``
consumes nothing).  A kernel that draws one uniform vector per BFS level —
covering the frontier's edges in the same vertex-then-edge order the serial
loop used — therefore consumes the generator's stream byte-for-byte
identically to per-vertex draws.  ``tests/diffusion/test_golden_kernels.py``
pins this equivalence against the reference loops; see ``docs/DESIGN.md``.
"""

from __future__ import annotations

import numpy as np

#: Frontier sizes below this are expanded with the scalar per-vertex loop
#: instead of the batched gather: the vectorized path has a fixed ~10-numpy-op
#: overhead per BFS level, which loses to the plain loop when a level holds
#: only a handful of vertices (the common case on small graphs and in the
#: tails of every BFS).  Both paths consume the PRNG stream identically, so
#: the switch is invisible to results — it only moves the constant factor.
SCALAR_FRONTIER_LIMIT = 16

#: Shared empty index array, so zero-degree frontiers avoid an allocation.
_EMPTY_INDEX = np.empty(0, dtype=np.int64)
_EMPTY_INDEX.setflags(write=False)


def use_scalar_frontier(frontier) -> bool:
    """True when ``frontier`` is small enough for the per-vertex loop.

    The single hybrid-dispatch policy shared by every BFS kernel (forward
    cascades, reverse RR generation, snapshot reachability, and the
    bit-parallel mask kernels): levels below :data:`SCALAR_FRONTIER_LIMIT`
    take the plain loop, larger levels the batched gather.  Accepts anything
    with a length (list or array frontier).
    """
    return len(frontier) < SCALAR_FRONTIER_LIMIT


def frontier_edges(
    indptr: np.ndarray, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    """Concatenated CSR edge indices of every vertex in ``frontier``.

    Parameters
    ----------
    indptr:
        CSR row-pointer array of length ``num_vertices + 1``.
    frontier:
        Integer array of vertex ids, in processing order.

    Returns
    -------
    (edge_indices, degrees, total)
        ``edge_indices`` lists the edge positions of ``frontier[0]``'s
        adjacency, then ``frontier[1]``'s, and so on — the exact order in
        which a per-vertex loop over the frontier would have examined them.
        ``degrees`` is the per-frontier-vertex degree array and ``total`` its
        sum (``edge_indices.shape[0]``).
    """
    starts = indptr[frontier]
    degrees = indptr[frontier + 1] - starts
    total = int(degrees.sum())
    if total == 0:
        return _EMPTY_INDEX, degrees, 0
    # Within-group offsets: arange(total) minus each group's cumulative start,
    # shifted back to the group's CSR start position.
    group_starts = np.cumsum(degrees) - degrees
    edge_indices = np.arange(total, dtype=np.int64) + np.repeat(
        starts - group_starts, degrees
    )
    return edge_indices, degrees, total


def first_hit(candidates: np.ndarray, slot: np.ndarray) -> np.ndarray:
    """First occurrence of each distinct value in ``candidates``, in order.

    ``slot`` is a reusable scratch array of length ``num_vertices`` (any
    integer dtype); its contents are clobbered.  The result preserves the
    order in which values first appear — exactly the order in which the
    historical per-vertex loop would have activated them — without sorting
    (``np.unique``-free, as one scatter + one gather).
    """
    if candidates.shape[0] <= 1:
        return candidates
    positions = np.arange(candidates.shape[0], dtype=np.int64)
    slot[candidates] = candidates.shape[0]  # clear only the touched entries
    np.minimum.at(slot, candidates, positions)
    keep = slot[candidates] == positions
    return candidates[keep]
