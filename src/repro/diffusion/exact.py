"""Exact influence-spread computation for tiny graphs.

Computing ``Inf(S)`` exactly is #P-hard in general (Section 2.3), but for
graphs with a handful of edges it can be done by enumerating all ``2^m``
live-edge realizations of the random-graph interpretation and weighting each
by its probability.  This is the ground truth used by the test suite to
verify that the Oneshot, Snapshot, and RIS estimators are unbiased and that
the greedy framework picks genuinely optimal seeds on small fixtures.
"""

from __future__ import annotations

from collections import deque
from itertools import combinations

import numpy as np

from .._validation import normalize_seed_set, require_positive_int
from ..exceptions import InvalidParameterError
from ..graphs.influence_graph import InfluenceGraph

#: Refuse exact enumeration beyond this many edges (2^24 realizations).
MAX_EXACT_EDGES = 24


def _reachable_in_realization(
    num_vertices: int,
    adjacency: list[list[int]],
    seeds: tuple[int, ...],
) -> int:
    """Number of vertices reachable from ``seeds`` given a fixed adjacency."""
    visited = [False] * num_vertices
    queue: deque[int] = deque()
    for seed in seeds:
        if not visited[seed]:
            visited[seed] = True
            queue.append(seed)
    count = len(queue)
    while queue:
        vertex = queue.popleft()
        for target in adjacency[vertex]:
            if not visited[target]:
                visited[target] = True
                count += 1
                queue.append(target)
    return count


def exact_spread(graph: InfluenceGraph, seeds: tuple[int, ...] | list[int] | set[int]) -> float:
    """Exact influence spread ``Inf(seeds)`` by live-edge enumeration.

    Raises
    ------
    InvalidParameterError
        If the graph has more than :data:`MAX_EXACT_EDGES` edges.
    """
    seed_tuple = normalize_seed_set(seeds, graph.num_vertices)
    m = graph.num_edges
    if m > MAX_EXACT_EDGES:
        raise InvalidParameterError(
            f"exact_spread supports at most {MAX_EXACT_EDGES} edges, got {m}"
        )
    sources, targets, probs = graph.edge_arrays()
    total = 0.0
    for mask in range(1 << m):
        probability = 1.0
        adjacency: list[list[int]] = [[] for _ in range(graph.num_vertices)]
        for edge_index in range(m):
            if mask & (1 << edge_index):
                probability *= probs[edge_index]
                adjacency[int(sources[edge_index])].append(int(targets[edge_index]))
            else:
                probability *= 1.0 - probs[edge_index]
        if probability == 0.0:
            continue
        total += probability * _reachable_in_realization(
            graph.num_vertices, adjacency, seed_tuple
        )
    return total


def exact_single_vertex_spreads(graph: InfluenceGraph) -> np.ndarray:
    """Exact ``Inf(v)`` for every vertex ``v`` (tiny graphs only)."""
    return np.array(
        [exact_spread(graph, (vertex,)) for vertex in range(graph.num_vertices)],
        dtype=np.float64,
    )


def exact_optimal_seed_set(
    graph: InfluenceGraph, k: int
) -> tuple[tuple[int, ...], float]:
    """Exhaustively find the spread-optimal seed set of size ``k``.

    Only feasible for tiny graphs; used to check the greedy approximation
    guarantee ``Inf(greedy) >= (1 - 1/e) * OPT`` in tests.
    """
    require_positive_int(k, "k")
    if k > graph.num_vertices:
        raise InvalidParameterError(
            f"k ({k}) cannot exceed the number of vertices ({graph.num_vertices})"
        )
    best_set: tuple[int, ...] = ()
    best_value = -1.0
    for candidate in combinations(range(graph.num_vertices), k):
        value = exact_spread(graph, candidate)
        if value > best_value:
            best_value = value
            best_set = candidate
    return best_set, best_value
